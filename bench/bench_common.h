// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Every figure bench uses the same trained RESPECT agent: the first bench to
// run trains it on the paper's synthetic curriculum and caches the weights
// under artifacts/; later benches (and reruns) load the cache.  Set
// RESPECT_FAST=1 to shrink training and solver budgets for smoke runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/respect.h"

namespace respect::bench {

inline bool FastMode() {
  const char* fast = std::getenv("RESPECT_FAST");
  return fast != nullptr && fast[0] == '1';
}

inline std::string ArtifactDir() {
  const char* dir = std::getenv("RESPECT_ARTIFACTS");
  return dir != nullptr ? dir : "artifacts";
}

/// The evaluation pipeline depths of the paper (Figs. 3-5).
inline const int kStageCounts[] = {4, 5, 6};

/// Training configuration for the cached benchmark agent.  Scaled-down but
/// faithful reproduction of the paper's setup (synthetic graphs, |V|=30,
/// deg ∈ {2..6}, REINFORCE + rollout baseline, Adam).
inline rl::TrainConfig BenchTrainConfig() {
  rl::TrainConfig config;
  config.iterations = FastMode() ? 12 : 120;
  config.batch_size = 24;
  config.graph_nodes = 30;
  config.adam.learning_rate = 1e-3f;
  return config;
}

inline rl::PtrNetConfig BenchNetConfig() {
  rl::PtrNetConfig net;
  net.hidden_dim = 48;
  return net;
}

/// Compiler options used by every figure bench.
inline CompilerOptions BenchOptions() {
  CompilerOptions options;
  options.net = BenchNetConfig();
  options.exact_max_expansions = 0;  // time-limited instead
  options.exact_time_limit_seconds = FastMode() ? 0.3 : 1.5;
  if (FastMode()) {
    options.compiler.refinement_rounds = 2;
    options.compiler.compile_passes = 1;
  }
  return options;
}

/// Returns a compiler whose RL agent is trained (cached in artifacts/).
inline PipelineCompiler MakeTrainedCompiler() {
  const std::string weights =
      ArtifactDir() + (FastMode() ? "/respect_agent_fast.bin"
                                  : "/respect_agent.bin");
  PipelineCompiler compiler(BenchOptions());
  const std::shared_ptr<rl::RlScheduler> rl = compiler.Rl();
  const bool trained = EnsureTrainedAgent(*rl, weights, BenchTrainConfig());
  if (trained) {
    std::printf("# trained benchmark agent and cached to %s\n",
                weights.c_str());
  } else {
    std::printf("# loaded cached benchmark agent from %s\n", weights.c_str());
  }
  return compiler;
}

}  // namespace respect::bench
