// Fig. 5 reproduction: gap-to-optimal analysis of parameter caching.
//
// For the twelve ImageNet models and 4/5/6-stage pipelines, prints the peak
// per-stage parameter memory (MB, quantized — what the 8 MiB cache holds) of
// the exact-optimal schedule and of RESPECT, plus the absolute gap.
// The paper reports average gaps of 2.26% / 2.74% / 6.31% for 4/5/6 stages.
#include <cstdio>

#include "bench/bench_common.h"
#include "models/zoo.h"

int main() {
  using namespace respect;
  PipelineCompiler compiler = bench::MakeTrainedCompiler();

  std::printf("\nFig. 5: gap-to-optimal peak per-stage parameter memory "
              "(MB)\n");

  for (const int stages : bench::kStageCounts) {
    std::printf("\n-- %d-stage pipeline --\n", stages);
    std::printf("%-20s %12s %12s %10s\n", "Model", "Optimal(MB)",
                "RESPECT(MB)", "Gap(%)");

    double gap_sum = 0.0;
    int count = 0;
    for (const models::ModelName name : models::Fig5Models()) {
      const graph::Dag dag = models::BuildModel(name);
      const auto exact = compiler.Compile(dag, stages, Method::kExactIlp);
      const auto rl = compiler.Compile(dag, stages, Method::kRespectRl);

      const double opt_mb =
          static_cast<double>(exact.peak_stage_param_bytes) / 1048576.0;
      const double rl_mb =
          static_cast<double>(rl.peak_stage_param_bytes) / 1048576.0;
      const double gap = 100.0 * (rl_mb - opt_mb) / opt_mb;
      gap_sum += gap;
      ++count;

      std::printf("%-20s %12.2f %12.2f %9.2f%%\n",
                  std::string(models::ModelNameString(name)).c_str(), opt_mb,
                  rl_mb, gap);
    }
    std::printf("average gap-to-optimal at %d stages: %.2f%%   "
                "(paper: %s)\n",
                stages, gap_sum / count,
                stages == 4 ? "2.26%" : (stages == 5 ? "2.74%" : "6.31%"));
  }
  return 0;
}
