// Micro-benchmarks (google-benchmark) for every substrate: graph analyses,
// samplers, exact solvers, the backend compiler, NN forward/backward, PtrNet
// decode, the pipeline simulator, per-engine solve times enumerated from the
// SchedulerEngine registry, and CompileBatch throughput across thread counts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/respect.h"
#include "core/thread_pool.h"
#include "deploy/package.h"
#include "engines/registry.h"
#include "exact/bnb_scheduler.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "graph/topology.h"
#include "heuristics/backend_compile.h"
#include "models/zoo.h"
#include "net/fleet_client.h"
#include "net/fleet_server.h"
#include "obs/trace.h"
#include "nn/lstm.h"
#include "nn/simd.h"
#include "nn/tape.h"
#include "rl/batch_decode_workspace.h"
#include "rl/decode_workspace.h"
#include "rl/ptrnet.h"
#include "rl/reference_decode.h"
#include "serve/compile_service.h"
#include "serve/request.h"
#include "serve/store/spill_codec.h"
#include "tpu/sim.h"

namespace {

using namespace respect;

void BM_SampleTrainingDag(benchmark::State& state) {
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::SampleTrainingDag(30, rng));
  }
}
BENCHMARK(BM_SampleTrainingDag);

void BM_AnalyzeTopology(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::AnalyzeTopology(dag));
  }
}
BENCHMARK(BM_AnalyzeTopology);

void BM_DpPartition(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet152);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact::PartitionDefaultOrder(dag, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_DpPartition)->Arg(4)->Arg(6);

void BM_BnbExactSmall(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  exact::BnbConfig config;
  config.num_stages = 4;
  config.max_expansions = 200'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::SolveExact(dag, config));
  }
}
BENCHMARK(BM_BnbExactSmall);

void BM_CompileSegment(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  const auto topo = graph::AnalyzeTopology(dag);
  const std::vector<graph::NodeId> ops(
      topo.order.begin(), topo.order.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristics::CompileSegment(dag, ops));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompileSegment)->Arg(50)->Arg(150);

void BM_LstmStepForward(benchmark::State& state) {
  std::mt19937_64 rng(3);
  nn::ParamStore store;
  nn::LstmCell cell(store, "lstm", 48, 48, rng);
  const nn::Tensor x = nn::Tensor::Xavier(48, 1, rng);
  auto s = cell.InitialState();
  for (auto _ : state) {
    s = cell.Step(x, s);
    benchmark::DoNotOptimize(s.h);
  }
}
BENCHMARK(BM_LstmStepForward);

/// The decode-throughput trio (the tentpole metric).  All three decode the
/// same graphs with the same weights and produce bit-identical sequences
/// (tests/decode_parity_test.cc):
///  * Reference — the frozen pre-optimization allocate-per-op path;
///  * PtrNetGreedyDecode — the fused path through the compatibility entry
///    point (fresh workspace per call);
///  * Workspace — the fused path on a warm per-thread workspace, i.e. the
///    steady-state serving hot path (zero heap allocations per decode).
/// Acceptance bar: Workspace >= 3x Reference items/s on ~100-node graphs.
rl::PtrNetAgent& DecodeBenchAgent() {
  static rl::PtrNetAgent* agent = [] {
    rl::PtrNetConfig config;
    config.hidden_dim = 48;
    return new rl::PtrNetAgent(config);
  }();
  return *agent;
}

graph::Dag DecodeBenchDag(int nodes) {
  std::mt19937_64 rng(4);
  return graph::SampleTrainingDag(nodes, rng);
}

void BM_DecodeGreedyReference(benchmark::State& state) {
  const graph::Dag dag = DecodeBenchDag(static_cast<int>(state.range(0)));
  const rl::PtrNetAgent& agent = DecodeBenchAgent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rl::ReferenceDecodeGreedy(agent, dag));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeGreedyReference)->Arg(30)->Arg(100);

void BM_PtrNetGreedyDecode(benchmark::State& state) {
  const graph::Dag dag = DecodeBenchDag(static_cast<int>(state.range(0)));
  const rl::PtrNetAgent& agent = DecodeBenchAgent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.DecodeGreedy(dag));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PtrNetGreedyDecode)->Arg(30)->Arg(100);

void BM_DecodeGreedyWorkspace(benchmark::State& state) {
  const graph::Dag dag = DecodeBenchDag(static_cast<int>(state.range(0)));
  const rl::PtrNetAgent& agent = DecodeBenchAgent();
  rl::DecodeWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.DecodeGreedy(dag, ws));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeGreedyWorkspace)->Arg(30)->Arg(100);

/// Batched multi-graph decode (this PR's tentpole metric): 16 fixed
/// 100-node graphs decoded per iteration, lock-stepped in groups of
/// `state.range(0)`.  Arg(1) degrades to the single-graph fused workspace
/// path (the PR 3 baseline — groups of < 2 fall back); Arg(16) is the full
/// GEMV→GEMM width.  Acceptance bar: Arg(16) >= 4x Arg(1) items/s.  All
/// widths produce bit-identical sequences (tests/batch_decode_test.cc).
void BatchedDecodeBody(benchmark::State& state, std::size_t batch) {
  const rl::PtrNetAgent& agent = DecodeBenchAgent();
  static const std::vector<graph::Dag>* dags = [] {
    auto* sampled = new std::vector<graph::Dag>();
    std::mt19937_64 rng(9);
    for (int i = 0; i < 16; ++i) {
      sampled->push_back(graph::SampleTrainingDag(100, rng));
    }
    return sampled;
  }();
  rl::DecodeWorkspace single_ws;
  rl::BatchDecodeWorkspace batch_ws;
  std::vector<const graph::Dag*> group;
  for (auto _ : state) {
    for (std::size_t begin = 0; begin < dags->size(); begin += batch) {
      const std::size_t end = std::min(dags->size(), begin + batch);
      if (end - begin < 2) {
        for (std::size_t i = begin; i < end; ++i) {
          benchmark::DoNotOptimize(agent.DecodeGreedy((*dags)[i], single_ws));
        }
        continue;
      }
      group.clear();
      for (std::size_t i = begin; i < end; ++i) group.push_back(&(*dags)[i]);
      benchmark::DoNotOptimize(agent.DecodeGreedyBatch(
          std::span<const graph::Dag* const>(group), batch_ws));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dags->size()) * 100);
}

void BM_BatchedDecode(benchmark::State& state) {
  BatchedDecodeBody(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_BatchedDecode)->Arg(1)->Arg(4)->Arg(16);

/// Registered only in RESPECT_SIMD builds: the same batched decode with the
/// runtime SIMD flag held on for the benchmark's duration (the off-by-
/// default contract is the caller's choice; this is the caller opting in).
/// The aggregate >= 4x bar is this divided by BM_BatchedDecode/1.  The two
/// levers stack roughly multiplicatively because they attack different
/// bottlenecks: batching turns the latency-bound per-step GEMVs into
/// GEMMs with a contiguous batch axis (~2.1x), and the SIMD build then
/// vectorizes those GEMM sweeps plus the gate/score activations with the
/// host's full vector ISA (~2x on top).
void RegisterSimdDecodeBenchmarks() {
  if (!nn::simd::Compiled()) return;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
    benchmark::RegisterBenchmark(
        ("BM_BatchedDecodeSimd/" + std::to_string(batch)).c_str(),
        [batch](benchmark::State& state) {
          nn::simd::SetEnabled(true);
          BatchedDecodeBody(state, batch);
          nn::simd::SetEnabled(false);
        });
  }
}

void BM_SampleWithTapeAndBackward(benchmark::State& state) {
  std::mt19937_64 rng(5);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  rl::PtrNetConfig config;
  config.hidden_dim = 48;
  rl::PtrNetAgent agent(config);
  for (auto _ : state) {
    nn::Tape tape;
    const auto sample = agent.SampleWithTape(dag, tape, rng);
    tape.Backward(sample.log_prob_sum, 0.01f);
    benchmark::DoNotOptimize(sample.sequence);
  }
}
BENCHMARK(BM_SampleWithTapeAndBackward);

void BM_PipelineSimulation(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet50);
  const auto dp = exact::PartitionDefaultOrder(dag, 4);
  const auto package = deploy::BuildPackage(dag, dp.schedule, true);
  tpu::SimConfig sim;
  sim.num_inferences = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpu::SimulatePipeline(package, sim));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineSimulation)->Arg(1000)->Arg(10000);

void BM_BuildResNet101(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        models::BuildModel(models::ModelName::kResNet101));
  }
}
BENCHMARK(BM_BuildResNet101);

CompilerOptions BatchBenchOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 32;
  options.exact_max_expansions = 50'000;
  options.exact_time_limit_seconds = 0.2;
  options.compiler.refinement_rounds = 4;
  options.compiler.compile_passes = 2;
  return options;
}

const std::vector<graph::Dag>& BatchDags() {
  static const std::vector<graph::Dag>* dags = [] {
    auto* sampled = new std::vector<graph::Dag>();
    std::mt19937_64 rng(6);
    for (int i = 0; i < 8; ++i) {
      sampled->push_back(graph::SampleTrainingDag(40, rng));
    }
    return sampled;
  }();
  return *dags;
}

std::vector<const graph::Dag*> BatchPointers() {
  std::vector<const graph::Dag*> pointers;
  for (const graph::Dag& dag : BatchDags()) pointers.push_back(&dag);
  return pointers;
}

/// The tentpole throughput benchmark: one batch of 8 sampled DAGs compiled
/// with `state.range(0)` worker threads.  Arg(1) is the sequential baseline;
/// Arg(4) must show the >= 2x wall-clock speedup the batch path exists for.
/// The pool lives outside the timed loop (the serving-loop shape), so this
/// measures steady-state throughput, not thread spawn/join.
void BM_CompileBatchThroughput(benchmark::State& state) {
  static const PipelineCompiler* compiler =
      new PipelineCompiler(BatchBenchOptions());
  const std::vector<const graph::Dag*> pointers = BatchPointers();
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiler->CompileBatch(pointers, 4, Method::kAnnealing, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pointers.size()));
}
BENCHMARK(BM_CompileBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// CompileService on a repeated-request stream, cold vs. warm.  Cold clears
/// the cache every iteration, so each request pays the full engine solve;
/// warm answers every iteration from the content-addressed cache (hash +
/// shard lookup).  The serving acceptance bar is warm >= 10x cold
/// throughput; in practice the gap is orders of magnitude.  The
/// CompileRequest is built once outside the loop — the serving shape, and
/// what keeps the warm path free of per-iteration Dag copies.
void BM_CompileServiceColdSolve(benchmark::State& state) {
  static serve::CompileService* service =
      new serve::CompileService(BatchBenchOptions());
  const serve::CompileRequest request{.dag = BatchDags()[0],
                                      .num_stages = 4,
                                      .engine = Method::kAnnealing};
  for (auto _ : state) {
    service->ClearCache();  // negligible against the solve it forces
    benchmark::DoNotOptimize(service->Compile(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileServiceColdSolve);

void BM_CompileServiceWarmCache(benchmark::State& state) {
  static serve::CompileService* service =
      new serve::CompileService(BatchBenchOptions());
  const serve::CompileRequest request{.dag = BatchDags()[0],
                                      .num_stages = 4,
                                      .engine = Method::kAnnealing};
  benchmark::DoNotOptimize(service->Compile(request));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->Compile(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileServiceWarmCache);

/// Tracing tax on the hot serving path.  Disarmed is the default serving
/// configuration: every OBS_SPAN along the warm-cache path costs one relaxed
/// atomic load and nothing else, so this must stay within noise of
/// BM_CompileServiceWarmCache (the regression gate watches the pair at a 1%
/// band).  Armed runs the same stream with the tracer recording and the ring
/// drained every 4096 iterations — the price of leaving tracing on in
/// production, not a gate, just a published number.
void BM_TraceOverheadDisarmed(benchmark::State& state) {
  static serve::CompileService* service =
      new serve::CompileService(BatchBenchOptions());
  const serve::CompileRequest request{.dag = BatchDags()[0],
                                      .num_stages = 4,
                                      .engine = Method::kAnnealing};
  obs::Tracer::Global().Stop();  // belt-and-braces: a prior armed run
  benchmark::DoNotOptimize(service->Compile(request));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->Compile(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceOverheadDisarmed);

void BM_TraceOverheadArmed(benchmark::State& state) {
  static serve::CompileService* service =
      new serve::CompileService(BatchBenchOptions());
  const serve::CompileRequest request{.dag = BatchDags()[0],
                                      .num_stages = 4,
                                      .engine = Method::kAnnealing};
  obs::Tracer::Global().Start();
  benchmark::DoNotOptimize(service->Compile(request));
  std::int64_t since_drain = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->Compile(request));
    if (++since_drain == 4096) {  // keep the ring from saturating
      state.PauseTiming();
      benchmark::DoNotOptimize(obs::Tracer::Global().Drain());
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  obs::Tracer::Global().Stop();
  benchmark::DoNotOptimize(obs::Tracer::Global().Drain());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceOverheadArmed);

/// Restart warm-start throughput: every iteration drops the in-memory
/// cache, so each request pays the full persistent-tier path — index check,
/// spill read + checksum verify + deserialize, memory promote (the
/// CacheOutcome::kDiskHit shape).  The spill is written once, outside the
/// timed loop; disk hits never re-write.  Compare against
/// BM_CompileServiceWarmCache (memory hit) for the tier gap and
/// BM_CompileServiceColdSolve for what the disk tier saves after a restart.
void BM_CompileServiceDiskWarmStart(benchmark::State& state) {
  static serve::CompileService* service = [] {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "respect-bench-disk-store";
    std::filesystem::remove_all(dir);  // fresh store per process
    serve::ServiceOptions options;
    options.cache_dir = dir.string();
    return new serve::CompileService(BatchBenchOptions(), options);
  }();
  const serve::CompileRequest request{.dag = BatchDags()[0],
                                      .num_stages = 4,
                                      .engine = Method::kAnnealing};
  benchmark::DoNotOptimize(service->Compile(request));  // populate
  service->FlushStore();                                // spill landed
  for (auto _ : state) {
    service->ClearCache();  // memory gone: the next answer comes from disk
    benchmark::DoNotOptimize(service->Compile(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileServiceDiskWarmStart);

/// Peer warm-fetch round trip: what a freshly restarted fleet shard pays
/// per already-solved graph — one FetchSpill over the loopback wire
/// protocol (frame encode, socket round trip, spill read on the peer) plus
/// the local checksum-verify + decode of the returned envelope.  Compare
/// against BM_CompileServiceDiskWarmStart for the network-hop tax over a
/// local disk hit, and BM_CompileServiceColdSolve for what peer warmth
/// saves.
void BM_FleetWarmFetch(benchmark::State& state) {
  struct Fixture {
    serve::CompileService service;
    net::FleetServer server;
    net::FleetClient client;
    graph::CanonicalHash key;
    Fixture()
        : service(BatchBenchOptions(),
                  [] {
                    const std::filesystem::path dir =
                        std::filesystem::temp_directory_path() /
                        "respect-bench-fleet-store";
                    std::filesystem::remove_all(dir);
                    serve::ServiceOptions options;
                    options.cache_dir = dir.string();
                    return options;
                  }()),
          server(service, {}),
          client(server.Address()) {
      const serve::CompileRequest request{.dag = BatchDags()[0],
                                          .num_stages = 4,
                                          .engine = Method::kAnnealing};
      benchmark::DoNotOptimize(service.Compile(request));
      service.FlushStore();  // the spill the fetches serve
      key = service.KeyFor(request);
    }
  };
  static Fixture* fixture = new Fixture();
  for (auto _ : state) {
    std::optional<std::string> envelope =
        fixture->client.FetchSpill(fixture->key);
    if (!envelope ||
        !serve::store::TryDecodeSpillEnvelope(*envelope).has_value()) {
      state.SkipWithError("peer fetch missed or failed to verify");
      return;
    }
    benchmark::DoNotOptimize(envelope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetWarmFetch);

/// The degraded-path tax: every iteration asks for Annealing under a solve
/// budget far too small for it, so the service pays one budget-blown attempt
/// (CancelToken poll -> CancelledError unwind) and then the ListScheduling
/// fallback solve — the exact shape a saturated preferred engine produces in
/// production.  Cache bypass keeps every iteration on this path, and the
/// breaker is disabled so no iteration short-circuits the blown attempt
/// (which would silently change what is being measured mid-run).  items/s is
/// degraded requests per second; compare BM_CompileServiceColdSolve for the
/// healthy-path cost.
void BM_DegradedFallbackLatency(benchmark::State& state) {
  static serve::CompileService* service = [] {
    serve::ServiceOptions options;
    options.fallback_chain = {"list"};
    options.default_solve_budget_seconds = 5e-4;
    options.breaker_failure_threshold = 0;  // disabled: iterations identical
    return new serve::CompileService(BatchBenchOptions(), options);
  }();
  const serve::CompileRequest request{
      .dag = BatchDags()[0],
      .num_stages = 4,
      .engine = Method::kAnnealing,
      .cache_policy = serve::CachePolicy::kBypass};
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->Compile(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DegradedFallbackLatency);

std::vector<serve::CompileRequest> BatchRequests(serve::Priority priority,
                                                 serve::CachePolicy policy) {
  std::vector<serve::CompileRequest> requests;
  for (const graph::Dag& dag : BatchDags()) {
    requests.push_back(serve::CompileRequest{.dag = dag,
                                             .num_stages = 4,
                                             .engine = Method::kAnnealing,
                                             .priority = priority,
                                             .cache_policy = policy});
  }
  return requests;
}

/// Batch-aware caching: a warm CompileBatch through the service answers the
/// whole batch from the shared cache (cf. BM_CompileBatchThroughput, which
/// re-solves every graph every time).
void BM_CompileServiceBatchWarm(benchmark::State& state) {
  static serve::CompileService* service =
      new serve::CompileService(BatchBenchOptions());
  const std::vector<serve::CompileRequest> requests = BatchRequests(
      serve::Priority::kBatch, serve::CachePolicy::kUse);
  benchmark::DoNotOptimize(service->CompileBatch(requests));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->CompileBatch(requests));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_CompileServiceBatchWarm);

/// The serving miss storm the grouped batch path exists for: every
/// iteration rolls the RL weights (ReplaceRl invalidates all 8 cached
/// entries) and refills them through CompileBatch — one grouped
/// lock-stepped solve on the single worker.  Compare against the same
/// refill with batch_decode off (BM_MissStormRefill/unbatched) for what
/// the GEMM path buys a cold cache.  Alternating between two premade
/// snapshots keeps weight (re)initialization out of the timed rollout.
void MissStormRefill(benchmark::State& state, bool batch_decode) {
  serve::ServiceOptions options;
  options.num_threads = 1;  // isolate per-worker refill throughput
  options.batch_decode = batch_decode;
  serve::CompileService service(BatchBenchOptions(), options);
  const auto snapshot_a =
      std::make_shared<rl::RlScheduler>(BatchBenchOptions().net);
  const auto snapshot_b =
      std::make_shared<rl::RlScheduler>(BatchBenchOptions().net);
  std::vector<serve::CompileRequest> storm;
  for (const graph::Dag& dag : BatchDags()) {
    storm.push_back(serve::CompileRequest{
        .dag = dag, .num_stages = 4, .engine = Method::kRespectRl});
  }
  bool flip = false;
  for (auto _ : state) {
    service.ReplaceRl(flip ? snapshot_a : snapshot_b);  // the rollout
    flip = !flip;
    benchmark::DoNotOptimize(service.CompileBatch(storm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(storm.size()));
}

void BM_MissStormRefill(benchmark::State& state) {
  MissStormRefill(state, /*batch_decode=*/true);
}
BENCHMARK(BM_MissStormRefill)->Unit(benchmark::kMillisecond);

void BM_MissStormRefill_Unbatched(benchmark::State& state) {
  MissStormRefill(state, /*batch_decode=*/false);
}
BENCHMARK(BM_MissStormRefill_Unbatched)->Unit(benchmark::kMillisecond);

/// Interactive latency under a batch flood: each iteration submits the full
/// 8-graph batch on the batch lane with cache bypass (every one a real
/// solve occupying the 2 workers), then one interactive request, and the
/// manual time is submit-to-complete for the interactive request alone.
/// Run with /fifo vs /lanes to see what the deadline-aware queue buys: on
/// the FIFO baseline the interactive request waits out the whole flood; on
/// the lane queue it overtakes everything still queued.
void MixedPriorityLoad(benchmark::State& state, bool fifo_queue) {
  serve::ServiceOptions options;
  options.num_threads = 2;
  options.fifo_queue = fifo_queue;
  serve::CompileService service(BatchBenchOptions(), options);
  const std::vector<serve::CompileRequest> flood = BatchRequests(
      serve::Priority::kBatch, serve::CachePolicy::kBypass);
  const serve::CompileRequest interactive{
      .dag = BatchDags()[0],
      .num_stages = 4,
      .engine = Method::kAnnealing,
      .priority = serve::Priority::kInteractive,
      .cache_policy = serve::CachePolicy::kBypass};
  for (auto _ : state) {
    std::vector<serve::CompileService::Ticket> tickets;
    tickets.reserve(flood.size());
    for (const serve::CompileRequest& request : flood) {
      tickets.push_back(service.Submit(request));
    }
    const auto start = std::chrono::steady_clock::now();
    auto urgent = service.Submit(interactive);
    (void)urgent.Wait();
    state.SetIterationTime(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    for (auto& ticket : tickets) (void)ticket.Wait();  // drain, untimed
  }
}

void BM_MixedPriorityLoad_Fifo(benchmark::State& state) {
  MixedPriorityLoad(state, /*fifo_queue=*/true);
}
BENCHMARK(BM_MixedPriorityLoad_Fifo)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_MixedPriorityLoad_Lanes(benchmark::State& state) {
  MixedPriorityLoad(state, /*fifo_queue=*/false);
}
BENCHMARK(BM_MixedPriorityLoad_Lanes)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Adversarial tenant mix through the weighted-fair queue: tenant "mallory"
/// floods the single worker first, then "alice" (weight 2) and "bob" arrive
/// — under FIFO the late tenants would wait out the whole flood.  Reports
/// completed requests/s (the gated metric) plus two counters: Jain's
/// fairness index over weight-normalized per-tenant service rates and the
/// worst per-tenant p99 queue wait in milliseconds.
void BM_TenantFairness(benchmark::State& state) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.tenant_weights = {{"alice", 2.0}};  // bob/mallory default to 1
  serve::CompileService service(BatchBenchOptions(), options);
  const std::vector<std::pair<std::string, double>> tenants = {
      {"mallory", 1.0}, {"alice", 2.0}, {"bob", 1.0}};
  constexpr int kPerTenant = 12;

  double jain_min = 1.0;
  double worst_p99_seconds = 0.0;
  std::int64_t completed = 0;
  for (auto _ : state) {
    struct Pending {
      std::size_t tenant;
      serve::CompileService::Ticket ticket;
    };
    std::vector<Pending> pending;
    pending.reserve(tenants.size() * kPerTenant);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      for (int r = 0; r < kPerTenant; ++r) {
        pending.push_back(
            {t, service.Submit(serve::CompileRequest{
                    .dag = BatchDags()[(t * kPerTenant + r) %
                                       BatchDags().size()],
                    .num_stages = 4,
                    .engine = Method::kAnnealing,
                    .priority = serve::Priority::kNormal,
                    .cache_policy = serve::CachePolicy::kBypass,
                    .tenant = tenants[t].first})});
      }
    }
    std::vector<std::vector<double>> waits(tenants.size());
    for (auto& [tenant, ticket] : pending) {
      waits[tenant].push_back(ticket.WaitResponse().queue_wait_seconds);
      ++completed;
    }
    state.SetIterationTime(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());

    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      double mean_wait = 0.0;
      for (const double w : waits[t]) mean_wait += w;
      mean_wait /= static_cast<double>(waits[t].size());
      const double rate = 1.0 / (mean_wait * tenants[t].second);
      sum += rate;
      sum_sq += rate * rate;
      worst_p99_seconds =
          std::max(worst_p99_seconds, serve::Percentile(waits[t], 0.99));
    }
    const double jain =
        sum_sq == 0.0
            ? 1.0
            : sum * sum / (static_cast<double>(tenants.size()) * sum_sq);
    jain_min = std::min(jain_min, jain);
  }
  state.SetItemsProcessed(completed);
  state.counters["jain"] = jain_min;
  state.counters["tenant_wait_p99_ms"] = worst_p99_seconds * 1e3;
}
BENCHMARK(BM_TenantFairness)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// One engine solve (SchedulerEngine::Schedule only — no post-processing or
/// packaging, the Fig. 3 quantity) per registered engine on a 30-node
/// training graph — registered dynamically so new engines show up here
/// without editing this file.
void EngineSolve(benchmark::State& state, const std::string& engine_name) {
  static const PipelineCompiler* compiler =
      new PipelineCompiler(BatchBenchOptions());
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, compiler->MakeEngineContext());
  std::mt19937_64 rng(8);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;
  engines::EngineBudget budget;
  budget.max_expansions = 50'000;
  budget.time_limit_seconds = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Schedule(dag, constraints, budget));
  }
}

void RegisterEngineSolveBenchmarks() {
  for (const engines::EngineRegistration& registration :
       engines::EngineRegistry::Global().Registrations()) {
    benchmark::RegisterBenchmark(
        ("BM_EngineSolve/" + registration.name).c_str(),
        [name = registration.name](benchmark::State& state) {
          EngineSolve(state, name);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterEngineSolveBenchmarks();
  RegisterSimdDecodeBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
