// Micro-benchmarks (google-benchmark) for every substrate: graph analyses,
// samplers, exact solvers, the backend compiler, NN forward/backward, PtrNet
// decode and the pipeline simulator.
#include <benchmark/benchmark.h>

#include <random>

#include "deploy/package.h"
#include "exact/bnb_scheduler.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "graph/topology.h"
#include "heuristics/backend_compile.h"
#include "models/zoo.h"
#include "nn/lstm.h"
#include "nn/tape.h"
#include "rl/ptrnet.h"
#include "tpu/sim.h"

namespace {

using namespace respect;

void BM_SampleTrainingDag(benchmark::State& state) {
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::SampleTrainingDag(30, rng));
  }
}
BENCHMARK(BM_SampleTrainingDag);

void BM_AnalyzeTopology(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::AnalyzeTopology(dag));
  }
}
BENCHMARK(BM_AnalyzeTopology);

void BM_DpPartition(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet152);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exact::PartitionDefaultOrder(dag, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_DpPartition)->Arg(4)->Arg(6);

void BM_BnbExactSmall(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  exact::BnbConfig config;
  config.num_stages = 4;
  config.max_expansions = 200'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::SolveExact(dag, config));
  }
}
BENCHMARK(BM_BnbExactSmall);

void BM_CompileSegment(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  const auto topo = graph::AnalyzeTopology(dag);
  const std::vector<graph::NodeId> ops(
      topo.order.begin(), topo.order.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristics::CompileSegment(dag, ops));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompileSegment)->Arg(50)->Arg(150);

void BM_LstmStepForward(benchmark::State& state) {
  std::mt19937_64 rng(3);
  nn::ParamStore store;
  nn::LstmCell cell(store, "lstm", 48, 48, rng);
  const nn::Tensor x = nn::Tensor::Xavier(48, 1, rng);
  auto s = cell.InitialState();
  for (auto _ : state) {
    s = cell.Step(x, s);
    benchmark::DoNotOptimize(s.h);
  }
}
BENCHMARK(BM_LstmStepForward);

void BM_PtrNetGreedyDecode(benchmark::State& state) {
  std::mt19937_64 rng(4);
  const graph::Dag dag =
      graph::SampleTrainingDag(static_cast<int>(state.range(0)), rng);
  rl::PtrNetConfig config;
  config.hidden_dim = 48;
  rl::PtrNetAgent agent(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.DecodeGreedy(dag));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PtrNetGreedyDecode)->Arg(30)->Arg(100);

void BM_SampleWithTapeAndBackward(benchmark::State& state) {
  std::mt19937_64 rng(5);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  rl::PtrNetConfig config;
  config.hidden_dim = 48;
  rl::PtrNetAgent agent(config);
  for (auto _ : state) {
    nn::Tape tape;
    const auto sample = agent.SampleWithTape(dag, tape, rng);
    tape.Backward(sample.log_prob_sum, 0.01f);
    benchmark::DoNotOptimize(sample.sequence);
  }
}
BENCHMARK(BM_SampleWithTapeAndBackward);

void BM_PipelineSimulation(benchmark::State& state) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet50);
  const auto dp = exact::PartitionDefaultOrder(dag, 4);
  const auto package = deploy::BuildPackage(dag, dp.schedule, true);
  tpu::SimConfig sim;
  sim.num_inferences = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpu::SimulatePipeline(package, sim));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineSimulation)->Arg(1000)->Arg(10000);

void BM_BuildResNet101(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        models::BuildModel(models::ModelName::kResNet101));
  }
}
BENCHMARK(BM_BuildResNet101);

}  // namespace

BENCHMARK_MAIN();
