// Fig. 3 reproduction: schedule-solving runtime of RESPECT vs the Edge TPU
// compiler baseline and the exact (ILP) method, across the ten ImageNet
// models and 4/5/6-stage pipelines.
//
// The paper reports 24-683x speedups over the commercial compiler and
// 100-930x over CPLEX, growing with |V|.  Our substitutes preserve the
// ordering (RESPECT is orders of magnitude faster) and the growth with
// graph size; absolute ratios depend on how much work the closed-source
// backends really do per pass, which our mini backend necessarily
// understates (see EXPERIMENTS.md).
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "models/zoo.h"

namespace {

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace respect;
  PipelineCompiler compiler = bench::MakeTrainedCompiler();

  std::printf("\nFig. 3: schedule solving time (ms) and speedups\n");

  for (const int stages : bench::kStageCounts) {
    std::printf("\n-- %d-stage pipeline --\n", stages);
    std::printf("%-20s %5s %10s %12s %10s %12s %12s\n", "Model", "|V|",
                "RL(ms)", "Compiler(ms)", "Exact(ms)", "RLvsComp", "RLvsExact");

    double min_comp = 1e30, max_comp = 0, min_exact = 1e30, max_exact = 0;
    for (const models::ModelName name : models::TableIModels()) {
      const graph::Dag dag = models::BuildModel(name);

      auto t0 = std::chrono::steady_clock::now();
      (void)compiler.Compile(dag, stages, Method::kRespectRl);
      const double rl_s = Seconds(t0);

      t0 = std::chrono::steady_clock::now();
      (void)compiler.Compile(dag, stages, Method::kEdgeTpuCompiler);
      const double comp_s = Seconds(t0);

      t0 = std::chrono::steady_clock::now();
      (void)compiler.Compile(dag, stages, Method::kExactIlp);
      const double exact_s = Seconds(t0);

      const double speed_comp = comp_s / rl_s;
      const double speed_exact = exact_s / rl_s;
      min_comp = std::min(min_comp, speed_comp);
      max_comp = std::max(max_comp, speed_comp);
      min_exact = std::min(min_exact, speed_exact);
      max_exact = std::max(max_exact, speed_exact);

      std::printf("%-20s %5d %10.1f %12.1f %10.1f %11.1fx %11.1fx\n",
                  std::string(models::ModelNameString(name)).c_str(),
                  dag.NodeCount(), rl_s * 1e3, comp_s * 1e3, exact_s * 1e3,
                  speed_comp, speed_exact);
    }
    std::printf("speedup ranges: over compiler %.0fx-%.0fx   over exact "
                "%.0fx-%.0fx   (paper: 24x-683x and 100x-930x)\n",
                min_comp, max_comp, min_exact, max_exact);
  }
  return 0;
}
