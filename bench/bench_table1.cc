// Table I reproduction: statistics of the ten evaluation DNNs.
//
// Prints |V|, deg(V) and Depth for every model next to the values published
// in the paper; the MATCH column must read "yes" for all ten.
#include <cstdio>

#include "graph/topology.h"
#include "models/zoo.h"

int main() {
  using namespace respect;

  std::printf("Table I: Statistics of DNN models and their computational "
              "graphs\n");
  std::printf("%-20s %6s %6s %8s %8s %8s %8s  %s\n", "Model", "|V|", "deg",
              "Depth", "|V|(pap)", "deg(pap)", "Dep(pap)", "MATCH");

  bool all_match = true;
  for (const models::ModelName name : models::TableIModels()) {
    const graph::Dag dag = models::BuildModel(name);
    const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
    const models::TableIStats paper = models::PaperStats(name);

    const int depth = topo.depth - 1;  // Table I excludes the input node
    const bool match = dag.NodeCount() == paper.num_nodes &&
                       dag.MaxInDegree() == paper.max_in_degree &&
                       depth == paper.depth;
    all_match = all_match && match;
    std::printf("%-20s %6d %6d %8d %8d %8d %8d  %s\n",
                std::string(models::ModelNameString(name)).c_str(),
                dag.NodeCount(), dag.MaxInDegree(), depth, paper.num_nodes,
                paper.max_in_degree, paper.depth, match ? "yes" : "NO");
  }
  std::printf("\nAll ten models match Table I: %s\n",
              all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
