// Fig. 4 reproduction: multi-stage pipelined Edge TPU inference runtime,
// normalized to the Edge TPU compiler baseline (scale = 1.0), for the
// exact method and RESPECT, across 4/5/6 stages.
//
// Metric follows the paper: average runtime of 10 rounds of 1,000 ImageNet
// inferences (the simulator is deterministic, so rounds are exact repeats;
// we simulate the full 10,000).  Expected shape: RESPECT <= 1.0 everywhere,
// gains grow with stage count (paper: 1.06x/1.08x/1.65x average, up to 2.5x
// at 6 stages), and the exact method occasionally loses to RESPECT (the
// performance-modeling miscorrelation of §IV-A).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "models/zoo.h"
#include "tpu/sim.h"

int main() {
  using namespace respect;
  PipelineCompiler compiler = bench::MakeTrainedCompiler();

  tpu::SimConfig sim;
  sim.num_inferences = bench::FastMode() ? 1000 : 5'000;  // 10 x 1000

  std::printf("\nFig. 4: pipelined Edge TPU inference runtime "
              "(normalized to Edge TPU compiler = 1.0)\n");

  for (const int stages : bench::kStageCounts) {
    std::printf("\n-- %d-stage pipeline --\n", stages);
    std::printf("%-20s %12s %12s %12s %10s\n", "Model", "Compiler(us)",
                "Exact", "RESPECT", "RL speedup");

    double geo_speedup = 1.0;
    double best_speedup = 0.0;
    int count = 0;
    for (const models::ModelName name : models::TableIModels()) {
      const graph::Dag dag = models::BuildModel(name);

      const auto compiled =
          compiler.Compile(dag, stages, Method::kEdgeTpuCompiler);
      const auto exact = compiler.Compile(dag, stages, Method::kExactIlp);
      const auto respect_rl = compiler.Compile(dag, stages, Method::kRespectRl);

      const double base =
          tpu::SimulatePipeline(compiled.package, sim).per_inference_us;
      const double exact_us =
          tpu::SimulatePipeline(exact.package, sim).per_inference_us;
      const double rl_us =
          tpu::SimulatePipeline(respect_rl.package, sim).per_inference_us;

      const double speedup = base / rl_us;
      geo_speedup *= speedup;
      best_speedup = std::max(best_speedup, speedup);
      ++count;

      std::printf("%-20s %12.1f %12.3f %12.3f %9.2fx%s\n",
                  std::string(models::ModelNameString(name)).c_str(), base,
                  exact_us / base, rl_us / base, speedup,
                  exact_us > rl_us ? "  (exact worse than RL)" : "");
    }
    geo_speedup = std::pow(geo_speedup, 1.0 / count);
    std::printf("geo-mean RESPECT speedup over compiler: %.2fx   best: %.2fx"
                "   (paper averages: 1.06x/1.08x/1.65x; best 2.5x)\n",
                geo_speedup, best_speedup);
  }
  return 0;
}
