// Ablation: reward form (Eq. 3 stage-vector cosine vs Eq. 1 raw sequence
// cosine) and rollout baseline (on vs off).
//
// Trains four small agents under identical budgets and seeds, then evaluates
// mean imitation reward (always measured with the Eq. 3 metric, the paper's
// default) on a held-out synthetic set.  Expected: Eq. 3 trains better than
// Eq. 1 (its signal is invariant to within-stage permutations), and the
// rollout baseline reduces variance (higher final reward for the same
// budget).
#include <cstdio>
#include <random>

#include "bench/bench_common.h"
#include "graph/sampler.h"
#include "rl/reward.h"
#include "rl/trainer.h"

namespace {

using namespace respect;

struct Variant {
  const char* name;
  rl::RewardForm form;
  bool baseline;
};

double EvaluateAgent(rl::PtrNetAgent& agent, int num_stages) {
  std::mt19937_64 rng(0xe5a1);
  double total = 0.0;
  const int kGraphs = 40;
  for (int i = 0; i < kGraphs; ++i) {
    const graph::Dag dag = graph::SampleTrainingDag(30, rng);
    const rl::ImitationTarget target = rl::ComputeTarget(dag, num_stages);
    total += rl::ComputeReward(dag, target, agent.DecodeGreedy(dag),
                               num_stages, rl::RewardForm::kStageCosine);
  }
  return total / kGraphs;
}

}  // namespace

int main() {
  const Variant variants[] = {
      {"Eq3 stage-cosine + rollout baseline (paper)",
       rl::RewardForm::kStageCosine, true},
      {"Eq3 stage-cosine, no baseline", rl::RewardForm::kStageCosine, false},
      {"Eq1 sequence-cosine + rollout baseline",
       rl::RewardForm::kSequenceCosine, true},
      {"Eq1 sequence-cosine, no baseline", rl::RewardForm::kSequenceCosine,
       false},
  };

  std::printf("Ablation: reward form (Eq. 1 vs Eq. 3) and rollout baseline\n");
  std::printf("%-46s %14s %14s\n", "Variant", "train-reward",
              "heldout-Eq3");

  for (const Variant& variant : variants) {
    rl::PtrNetConfig net;
    net.hidden_dim = 24;
    net.masking = rl::MaskingMode::kVisitedOnly;  // learning visible here
    rl::PtrNetAgent agent(net);

    rl::TrainConfig config;
    config.iterations = bench::FastMode() ? 8 : 50;
    config.batch_size = 12;
    config.graph_nodes = 24;
    config.reward_form = variant.form;
    config.use_rollout_baseline = variant.baseline;
    config.adam.learning_rate = 2e-3f;
    const rl::TrainStats stats = rl::Train(agent, config);

    const double heldout = EvaluateAgent(agent, config.num_stages);
    std::printf("%-46s %14.4f %14.4f\n", variant.name,
                stats.mean_reward.back(), heldout);
  }
  return 0;
}
