// Ablation: embedding feature groups (Fig. 1a step 2) and decoding masks.
//
// Part 1 trains small agents with individual embedding groups disabled and
// reports held-out imitation reward — quantifying how much the paper's
// topology / ID / memory columns each contribute.
// Part 2 compares the two decoding-validity modes on a real model: the
// paper's visited-only masking (+ post-inference repair) vs ready-set
// masking, reporting repaired-node counts and final peak memory.
#include <cstdio>
#include <random>

#include "bench/bench_common.h"
#include "graph/sampler.h"
#include "models/zoo.h"
#include "rl/reward.h"
#include "rl/scheduler.h"
#include "rl/trainer.h"
#include "sched/postprocess.h"
#include "sched/rho.h"

namespace {

using namespace respect;

double TrainAndEvaluate(const rl::EmbeddingConfig& embedding) {
  rl::PtrNetConfig net;
  net.hidden_dim = 24;
  net.embedding = embedding;
  net.masking = rl::MaskingMode::kVisitedOnly;
  rl::PtrNetAgent agent(net);

  rl::TrainConfig config;
  config.iterations = bench::FastMode() ? 8 : 50;
  config.batch_size = 12;
  config.graph_nodes = 24;
  config.adam.learning_rate = 2e-3f;
  rl::Train(agent, config);

  std::mt19937_64 rng(0xe5a2);
  double total = 0.0;
  const int kGraphs = 40;
  for (int i = 0; i < kGraphs; ++i) {
    const graph::Dag dag = graph::SampleTrainingDag(30, rng);
    const rl::ImitationTarget target = rl::ComputeTarget(dag, 4);
    total += rl::ComputeReward(dag, target, agent.DecodeGreedy(dag), 4,
                               rl::RewardForm::kStageCosine);
  }
  return total / kGraphs;
}

}  // namespace

int main() {
  std::printf("Ablation part 1: embedding feature groups "
              "(held-out Eq.3 reward)\n");

  rl::EmbeddingConfig full;
  rl::EmbeddingConfig no_ids = full;
  no_ids.include_ids = false;
  rl::EmbeddingConfig no_memory = full;
  no_memory.include_memory = false;
  rl::EmbeddingConfig no_topology = full;
  no_topology.include_topology = false;

  std::printf("%-40s %10.4f\n", "full embedding (paper)",
              TrainAndEvaluate(full));
  std::printf("%-40s %10.4f\n", "without node/parent IDs",
              TrainAndEvaluate(no_ids));
  std::printf("%-40s %10.4f\n", "without memory column",
              TrainAndEvaluate(no_memory));
  std::printf("%-40s %10.4f\n", "without topological coordinates",
              TrainAndEvaluate(no_topology));

  std::printf("\nAblation part 2: decoding validity mask on ResNet101, "
              "4 stages\n");
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  for (const rl::MaskingMode mode :
       {rl::MaskingMode::kVisitedOnly, rl::MaskingMode::kReadySet}) {
    rl::PtrNetConfig net = bench::BenchNetConfig();
    net.masking = mode;
    rl::RlScheduler scheduler(net);

    const auto seq = scheduler.Agent().DecodeGreedy(dag);
    sched::Schedule packed = sched::PackSequence(dag, seq, 4);
    const int repaired = sched::RepairDependencies(dag, packed);
    const auto metrics = sched::ComputeMetrics(dag, packed);
    std::printf("%-14s repaired-nodes %4d   peak %7.2f MB (float32)\n",
                mode == rl::MaskingMode::kVisitedOnly ? "visited-only"
                                                      : "ready-set",
                repaired,
                static_cast<double>(metrics.peak_stage_param_bytes) /
                    1048576.0);
  }
  std::printf("\n(ready-set decoding emits topological sequences: zero "
              "repairs and balanced packing; visited-only reproduces the "
              "paper's repair pipeline)\n");
  return 0;
}
