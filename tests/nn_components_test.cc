// LSTM cell, parameter store, Adam optimizer and serialization tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>

#include "nn/adam.h"
#include "nn/lstm.h"
#include "nn/params.h"
#include "nn/tape.h"

namespace respect::nn {
namespace {

TEST(ParamStoreTest, CreateAndLookup) {
  std::mt19937_64 rng(1);
  ParamStore store;
  Tensor& w = store.GetOrCreate("w", 3, 4, rng);
  EXPECT_EQ(w.Rows(), 3);
  EXPECT_TRUE(store.Contains("w"));
  EXPECT_FALSE(store.Contains("v"));
  EXPECT_EQ(store.ScalarCount(), 12);
  EXPECT_THROW(store.Value("missing"), std::invalid_argument);
  EXPECT_THROW(store.GetOrCreate("w", 2, 2, rng), std::invalid_argument);
}

TEST(ParamStoreTest, ZeroGradsClearsAccumulation) {
  std::mt19937_64 rng(2);
  ParamStore store;
  store.GetOrCreate("w", 2, 2, rng);
  store.Grad("w").At(0, 0) = 5.0f;
  store.ZeroGrads();
  EXPECT_FLOAT_EQ(store.Grad("w").At(0, 0), 0.0f);
}

TEST(ParamStoreTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/respect_params_test.bin";
  std::mt19937_64 rng(3);
  ParamStore store;
  store.GetOrCreate("alpha", 2, 3, rng);
  store.GetOrCreate("beta", 1, 1, rng);
  store.Save(path);

  ParamStore loaded;
  loaded.Load(path);
  EXPECT_TRUE(loaded.Contains("alpha"));
  EXPECT_TRUE(loaded.Contains("beta"));
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(loaded.Value("alpha").At(i, j),
                      store.Value("alpha").At(i, j));
    }
  }
  std::filesystem::remove(path);
}

TEST(ParamStoreTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/respect_params_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a param file", f);
    std::fclose(f);
  }
  ParamStore store;
  EXPECT_THROW(store.Load(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(store.Load("/nonexistent/nope.bin"), std::runtime_error);
}

TEST(LstmCellTest, StateShapesAndDeterminism) {
  std::mt19937_64 rng(4);
  ParamStore store;
  LstmCell cell(store, "lstm", 3, 5, rng);
  EXPECT_EQ(cell.HiddenDim(), 5);

  Tensor x(3, 1, 0.5f);
  const auto s1 = cell.Step(x, cell.InitialState());
  EXPECT_EQ(s1.h.Rows(), 5);
  const auto s2 = cell.Step(x, cell.InitialState());
  for (int i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(s1.h.At(i, 0), s2.h.At(i, 0));
}

TEST(LstmCellTest, TapeAndValuePathsAgree) {
  std::mt19937_64 rng(5);
  ParamStore store;
  LstmCell cell(store, "lstm", 3, 4, rng);
  Tensor x(3, 1, 0.25f);

  const auto value_state = cell.Step(x, cell.InitialState());

  Tape tape;
  const auto tape_state =
      cell.Step(tape, tape.Constant(x), cell.InitialState(tape));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(tape.Value(tape_state.h).At(i, 0), value_state.h.At(i, 0),
                1e-6f);
    EXPECT_NEAR(tape.Value(tape_state.c).At(i, 0), value_state.c.At(i, 0),
                1e-6f);
  }
}

TEST(LstmCellTest, ForgetBiasInitializedOpen) {
  std::mt19937_64 rng(6);
  ParamStore store;
  LstmCell cell(store, "lstm", 2, 3, rng);
  const Tensor& b = store.Value("lstm.b");
  for (int i = 3; i < 6; ++i) EXPECT_FLOAT_EQ(b.At(i, 0), 1.0f);
}

TEST(AdamTest, DescendsQuadratic) {
  // Minimize (w - 3)^2 by feeding grad = 2(w-3).
  std::mt19937_64 rng(7);
  ParamStore store;
  Tensor& w = store.GetOrCreate("w", 1, 1, rng);
  w.At(0, 0) = 0.0f;
  AdamConfig config;
  config.learning_rate = 0.1f;
  config.max_grad_norm = 0;  // no clipping
  Adam adam(config);
  for (int i = 0; i < 200; ++i) {
    store.Grad("w").At(0, 0) = 2.0f * (w.At(0, 0) - 3.0f);
    adam.Step(store);
  }
  EXPECT_NEAR(w.At(0, 0), 3.0f, 0.1f);
  EXPECT_EQ(adam.StepCount(), 200);
}

TEST(AdamTest, GradClippingBoundsStep) {
  std::mt19937_64 rng(8);
  ParamStore store;
  Tensor& w = store.GetOrCreate("w", 1, 1, rng);
  const float before = w.At(0, 0);
  AdamConfig config;
  config.learning_rate = 0.01f;
  config.max_grad_norm = 1.0f;
  Adam adam(config);
  store.Grad("w").At(0, 0) = 1e6f;  // huge gradient
  const float norm = adam.Step(store);
  EXPECT_GT(norm, 1e5f);
  // Adam's per-step movement is bounded by lr regardless of magnitude.
  EXPECT_NEAR(w.At(0, 0), before - 0.01f, 5e-3f);
}

TEST(AdamTest, ZeroesGradsAfterStep) {
  std::mt19937_64 rng(9);
  ParamStore store;
  store.GetOrCreate("w", 1, 1, rng);
  Adam adam;
  store.Grad("w").At(0, 0) = 1.0f;
  adam.Step(store);
  EXPECT_FLOAT_EQ(store.Grad("w").At(0, 0), 0.0f);
}

}  // namespace
}  // namespace respect::nn
