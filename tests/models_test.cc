// Verifies the model zoo reproduces the paper's Table I statistics exactly:
// |V|, deg(V) and Depth for all ten evaluated models, plus sanity checks on
// parameter footprints against the published architectures.
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "models/zoo.h"

namespace respect::models {
namespace {

using graph::AnalyzeTopology;

class TableIStatsTest : public ::testing::TestWithParam<ModelName> {};

TEST_P(TableIStatsTest, NodeCountMatchesPaper) {
  const graph::Dag dag = BuildModel(GetParam());
  EXPECT_EQ(dag.NodeCount(), PaperStats(GetParam()).num_nodes)
      << ModelNameString(GetParam());
}

TEST_P(TableIStatsTest, MaxInDegreeMatchesPaper) {
  const graph::Dag dag = BuildModel(GetParam());
  EXPECT_EQ(dag.MaxInDegree(), PaperStats(GetParam()).max_in_degree)
      << ModelNameString(GetParam());
}

TEST_P(TableIStatsTest, DepthMatchesPaper) {
  // Table I counts the longest path excluding the input placeholder, i.e.
  // level-count minus one.
  const graph::Dag dag = BuildModel(GetParam());
  const auto topo = AnalyzeTopology(dag);
  EXPECT_EQ(topo.depth - 1, PaperStats(GetParam()).depth)
      << ModelNameString(GetParam());
}

TEST_P(TableIStatsTest, GraphIsValidSingleSourceDag) {
  const graph::Dag dag = BuildModel(GetParam());
  EXPECT_TRUE(dag.IsAcyclic());
  EXPECT_EQ(dag.Sources().size(), 1u);
  EXPECT_EQ(dag.Sinks().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTableIModels, TableIStatsTest, ::testing::ValuesIn(TableIModels()),
    [](const ::testing::TestParamInfo<ModelName>& info) {
      return std::string(ModelNameString(info.param));
    });

// Published parameter counts (keras.applications, include_top=true), in
// millions.  Our builders must land within 3% — they use the true layer
// shapes, so mismatches indicate structural bugs.
struct ParamSpec {
  ModelName model;
  double millions;
};

class ParamCountTest : public ::testing::TestWithParam<ParamSpec> {};

TEST_P(ParamCountTest, TotalParametersMatchPublishedModel) {
  const graph::Dag dag = BuildModel(GetParam().model);
  const double actual =
      static_cast<double>(dag.TotalParamBytes()) / 4.0 / 1e6;  // float32
  EXPECT_NEAR(actual, GetParam().millions, GetParam().millions * 0.03)
      << ModelNameString(GetParam().model);
}

INSTANTIATE_TEST_SUITE_P(
    PublishedCounts, ParamCountTest,
    ::testing::Values(ParamSpec{ModelName::kResNet50, 25.6},
                      ParamSpec{ModelName::kResNet101, 44.7},
                      ParamSpec{ModelName::kResNet152, 60.4},
                      ParamSpec{ModelName::kResNet50V2, 25.6},
                      ParamSpec{ModelName::kResNet101V2, 44.7},
                      ParamSpec{ModelName::kResNet152V2, 60.4},
                      ParamSpec{ModelName::kDenseNet121, 8.06},
                      ParamSpec{ModelName::kDenseNet169, 14.3},
                      ParamSpec{ModelName::kDenseNet201, 20.2},
                      ParamSpec{ModelName::kXception, 22.9},
                      ParamSpec{ModelName::kInceptionV3, 23.9},
                      ParamSpec{ModelName::kInceptionResNetV2, 55.9}),
    [](const ::testing::TestParamInfo<ParamSpec>& info) {
      return std::string(ModelNameString(info.param.model));
    });

TEST(ZooTest, Fig5ListHasTwelveDistinctModels) {
  const auto models = Fig5Models();
  EXPECT_EQ(models.size(), 12u);
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(models[i], models[j]);
    }
  }
}

TEST(ZooTest, TableIListHasTenModels) {
  EXPECT_EQ(TableIModels().size(), 10u);
}

TEST(ZooTest, EveryModelHasPositiveMemoryAttributes) {
  for (const ModelName m : Fig5Models()) {
    const graph::Dag dag = BuildModel(m);
    EXPECT_GT(dag.TotalParamBytes(), 0) << ModelNameString(m);
    EXPECT_GT(dag.TotalMacs(), 0) << ModelNameString(m);
    for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
      EXPECT_GT(dag.Attr(v).output_bytes, 0)
          << ModelNameString(m) << " node " << v;
    }
  }
}

TEST(ZooTest, ModelNamesAreUniqueStrings) {
  const auto models = Fig5Models();
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(ModelNameString(models[i]), ModelNameString(models[j]));
    }
  }
}

}  // namespace
}  // namespace respect::models
