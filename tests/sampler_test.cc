// Synthetic DAG sampler tests: the paper's training distribution must be
// valid, controllable and reproducible.
#include <gtest/gtest.h>

#include <random>

#include "graph/sampler.h"
#include "graph/topology.h"

namespace respect::graph {
namespace {

TEST(SamplerTest, DeterministicForFixedSeed) {
  SamplerConfig config;
  std::mt19937_64 rng1(42), rng2(42);
  const Dag a = SampleDag(config, rng1);
  const Dag b = SampleDag(config, rng2);
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  ASSERT_EQ(a.EdgeCount(), b.EdgeCount());
  for (int i = 0; i < a.EdgeCount(); ++i) {
    EXPECT_EQ(a.Edges()[i], b.Edges()[i]);
  }
  for (NodeId v = 0; v < a.NodeCount(); ++v) {
    EXPECT_EQ(a.Attr(v).param_bytes, b.Attr(v).param_bytes);
  }
}

TEST(SamplerTest, DifferentSeedsDiffer) {
  SamplerConfig config;
  std::mt19937_64 rng1(1), rng2(2);
  const Dag a = SampleDag(config, rng1);
  const Dag b = SampleDag(config, rng2);
  bool any_difference = a.EdgeCount() != b.EdgeCount();
  for (int i = 0; !any_difference && i < a.EdgeCount(); ++i) {
    any_difference = !(a.Edges()[i] == b.Edges()[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SamplerTest, RespectsNodeCount) {
  SamplerConfig config;
  config.num_nodes = 17;
  std::mt19937_64 rng(3);
  EXPECT_EQ(SampleDag(config, rng).NodeCount(), 17);
}

TEST(SamplerTest, RealizesRequestedDegreeClass) {
  // The advertised complexity class must actually appear in the graph.
  for (const int degree : {2, 3, 4, 5, 6}) {
    SamplerConfig config;
    config.num_nodes = 30;
    config.max_in_degree = degree;
    std::mt19937_64 rng(17 + degree);
    const Dag dag = SampleDag(config, rng);
    EXPECT_EQ(dag.MaxInDegree(), degree) << "degree " << degree;
  }
}

TEST(SamplerTest, MemoryAttributesWithinConfiguredRanges) {
  SamplerConfig config;
  config.min_param_bytes = 1000;
  config.max_param_bytes = 2000;
  config.min_output_bytes = 500;
  config.max_output_bytes = 600;
  std::mt19937_64 rng(5);
  const Dag dag = SampleDag(config, rng);
  for (NodeId v = 1; v < dag.NodeCount(); ++v) {  // 0 is the input node
    EXPECT_GE(dag.Attr(v).param_bytes, 1000);
    EXPECT_LE(dag.Attr(v).param_bytes, 2001);  // log-uniform rounding slack
    EXPECT_GE(dag.Attr(v).output_bytes, 500);
    EXPECT_LE(dag.Attr(v).output_bytes, 601);
  }
}

TEST(SamplerTest, InputNodeHasNoParams) {
  std::mt19937_64 rng(7);
  const Dag dag = SampleDag(SamplerConfig{}, rng);
  EXPECT_EQ(dag.Attr(0).param_bytes, 0);
  EXPECT_EQ(dag.Attr(0).type, OpType::kInput);
}

TEST(SamplerTest, RejectsDegenerateConfigs) {
  std::mt19937_64 rng(9);
  SamplerConfig tiny;
  tiny.num_nodes = 1;
  EXPECT_THROW(SampleDag(tiny, rng), std::invalid_argument);
  SamplerConfig bad_degree;
  bad_degree.max_in_degree = 0;
  EXPECT_THROW(SampleDag(bad_degree, rng), std::invalid_argument);
}

TEST(SamplerTest, TrainingCurriculumCoversAllDegrees) {
  // SampleTrainingDag draws deg(V) from {2..6}; over many draws every class
  // must appear (the paper trains 200k graphs per class).
  std::mt19937_64 rng(11);
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) {
    const Dag dag = SampleTrainingDag(30, rng);
    seen.insert(dag.MaxInDegree());
  }
  EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5, 6}));
}

TEST(SamplerTest, JoinProbabilityControlsComplexity) {
  // More joins => more edges on average.
  SamplerConfig sparse;
  sparse.join_probability = 0.0;
  SamplerConfig dense;
  dense.join_probability = 0.9;
  dense.max_in_degree = 4;
  int sparse_edges = 0, dense_edges = 0;
  for (int i = 0; i < 20; ++i) {
    std::mt19937_64 r1(100 + i), r2(200 + i);
    sparse_edges += SampleDag(sparse, r1).EdgeCount();
    dense_edges += SampleDag(dense, r2).EdgeCount();
  }
  EXPECT_GT(dense_edges, sparse_edges);
}

}  // namespace
}  // namespace respect::graph
