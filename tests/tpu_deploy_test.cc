// Deployment packaging + Edge TPU simulator tests: quantization arithmetic,
// segment closure, package round trips, cache-overflow behaviour, DES vs
// analytic recurrence agreement.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>

#include "deploy/package.h"
#include "deploy/quantize.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "graph/topology.h"
#include "models/zoo.h"
#include "sched/rho.h"
#include "tpu/sim.h"

namespace respect {
namespace {

TEST(QuantizeTest, ScalesBytesByFour) {
  graph::Dag dag;
  graph::OpAttr attr;
  attr.param_bytes = 400;
  attr.output_bytes = 101;  // rounds up
  dag.AddNode(std::move(attr));
  dag.AddNode({});
  dag.AddEdge(0, 1);
  const graph::Dag q = deploy::QuantizeGraph(dag);
  EXPECT_EQ(q.Attr(0).param_bytes, 100);
  EXPECT_EQ(q.Attr(0).output_bytes, 26);  // ceil(101/4)
  EXPECT_EQ(q.EdgeCount(), 1);
}

TEST(QuantizeTest, CustomWidths) {
  graph::Dag dag;
  graph::OpAttr attr;
  attr.param_bytes = 64;
  dag.AddNode(std::move(attr));
  deploy::QuantizationSpec spec;
  spec.weight_bits = 16;
  const graph::Dag q = deploy::QuantizeGraph(dag, spec);
  EXPECT_EQ(q.Attr(0).param_bytes, 32);
}

TEST(QuantizeTest, RejectsZeroWidths) {
  graph::Dag dag;
  dag.AddNode({});
  deploy::QuantizationSpec spec;
  spec.weight_bits = 0;
  EXPECT_THROW(deploy::QuantizeGraph(dag, spec), std::invalid_argument);
}

deploy::PipelinePackage MakePackage(int stages, std::uint64_t seed = 42,
                                    bool quantize = true) {
  std::mt19937_64 rng(seed);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  const auto dp = exact::PartitionDefaultOrder(dag, stages);
  return deploy::BuildPackage(dag, dp.schedule, quantize);
}

TEST(PackageTest, SegmentsPartitionTheGraph) {
  const auto package = MakePackage(4);
  std::size_t total_ops = 0;
  for (const auto& seg : package.segments) total_ops += seg.ops.size();
  EXPECT_EQ(total_ops, 30u);
  EXPECT_EQ(package.num_stages, 4);
  EXPECT_TRUE(package.quantized);
}

TEST(PackageTest, SegmentOpsInternallyOrdered) {
  std::mt19937_64 rng(43);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  const auto dp = exact::PartitionDefaultOrder(dag, 3);
  const auto package = deploy::BuildPackage(dag, dp.schedule, false);
  for (const auto& seg : package.segments) {
    // Within a segment, every edge between local ops points forward.
    std::vector<int> pos(dag.NodeCount(), -1);
    for (int i = 0; i < static_cast<int>(seg.ops.size()); ++i) {
      pos[seg.ops[i]] = i;
    }
    for (const graph::Edge& e : dag.Edges()) {
      if (pos[e.from] >= 0 && pos[e.to] >= 0) {
        EXPECT_LT(pos[e.from], pos[e.to]);
      }
    }
  }
}

TEST(PackageTest, BoundaryTensorsConnectStages) {
  const auto package = MakePackage(4);
  for (const auto& seg : package.segments) {
    for (const auto& t : seg.outputs) {
      EXPECT_EQ(t.from_stage, seg.stage);
      EXPECT_GT(t.to_stage, seg.stage);
      EXPECT_GT(t.bytes, 0);
    }
    for (const auto& t : seg.inputs) {
      EXPECT_LT(t.from_stage, seg.stage + 1);
    }
  }
  EXPECT_GT(package.host_input_bytes, 0);
  EXPECT_GT(package.host_output_bytes, 0);
}

TEST(PackageTest, RejectsInvalidSchedule) {
  std::mt19937_64 rng(44);
  const graph::Dag dag = graph::SampleTrainingDag(10, rng);
  sched::Schedule bad{2, std::vector<int>(10, 0)};
  bad.stage[0] = 1;  // source after its children
  EXPECT_THROW(deploy::BuildPackage(dag, bad, true), std::invalid_argument);
}

TEST(PackageTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/respect_package_test.bin";
  const auto package = MakePackage(5, 45);
  deploy::SavePackage(package, path);
  const auto loaded = deploy::LoadPackage(path);
  EXPECT_EQ(loaded.model_name, package.model_name);
  EXPECT_EQ(loaded.num_stages, package.num_stages);
  ASSERT_EQ(loaded.segments.size(), package.segments.size());
  for (std::size_t k = 0; k < loaded.segments.size(); ++k) {
    EXPECT_EQ(loaded.segments[k].ops, package.segments[k].ops);
    EXPECT_EQ(loaded.segments[k].param_bytes, package.segments[k].param_bytes);
    EXPECT_EQ(loaded.segments[k].inputs.size(),
              package.segments[k].inputs.size());
  }
  std::filesystem::remove(path);
}

TEST(PackageTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/respect_package_garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "garbage";
  }
  EXPECT_THROW(deploy::LoadPackage(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ProfileTest, CacheOverflowTriggersStreaming) {
  auto package = MakePackage(3, 46);
  tpu::EdgeTpuModel device;
  device.cache_bytes = 1;  // force overflow everywhere
  const auto costs = tpu::ProfilePackage(package, device, tpu::UsbLinkModel{});
  for (const auto& c : costs) {
    EXPECT_FALSE(c.OnCache());
    EXPECT_GT(c.param_stream_us, 0.0);
  }
  device.cache_bytes = 1ll << 40;  // everything cached
  const auto cached = tpu::ProfilePackage(package, device, tpu::UsbLinkModel{});
  for (const auto& c : cached) {
    EXPECT_TRUE(c.OnCache());
  }
}

TEST(ProfileTest, BalancedScheduleHasLowerPeakCostThanSkewed) {
  // A skewed schedule overflows the cache on one stage and must be slower.
  std::mt19937_64 rng(47);
  graph::SamplerConfig config;
  config.num_nodes = 30;
  config.min_param_bytes = 3 << 20;
  config.max_param_bytes = 4 << 20;
  const graph::Dag dag = graph::SampleDag(config, rng);

  const auto balanced = exact::PartitionDefaultOrder(dag, 4).schedule;
  // Skew: nearly everything on stage 0.
  sched::Schedule skewed{4, std::vector<int>(30, 0)};
  const auto topo = graph::AnalyzeTopology(dag);
  skewed.stage[topo.order[27]] = 1;
  skewed.stage[topo.order[28]] = 2;
  skewed.stage[topo.order[29]] = 3;

  const auto pb = deploy::BuildPackage(dag, balanced, true);
  const auto ps = deploy::BuildPackage(dag, skewed, true);
  tpu::SimConfig sim;
  sim.num_inferences = 200;
  EXPECT_LT(tpu::SimulatePipeline(pb, sim).per_inference_us,
            tpu::SimulatePipeline(ps, sim).per_inference_us);
}

TEST(SimTest, DesMatchesAnalyticRecurrence) {
  for (const std::uint64_t seed : {48u, 49u, 50u}) {
    const auto package = MakePackage(4, seed);
    tpu::SimConfig config;
    config.num_inferences = 137;
    const auto des = tpu::SimulatePipeline(package, config);
    const auto costs = tpu::ProfilePackage(package, config.device, config.link);
    const double analytic = tpu::AnalyticPipelineUs(costs, 137);
    EXPECT_NEAR(des.total_us, analytic, 1e-6 * analytic) << "seed " << seed;
  }
}

TEST(SimTest, ThroughputApproachesBottleneckRate) {
  const auto package = MakePackage(4, 51);
  tpu::SimConfig config;
  config.num_inferences = 2000;
  const auto result = tpu::SimulatePipeline(package, config);
  const auto costs = tpu::ProfilePackage(package, config.device, config.link);
  double bottleneck = 0;
  for (const auto& c : costs) bottleneck = std::max(bottleneck, c.TotalUs());
  // Steady state: per-inference time ~ bottleneck (within fill overhead).
  EXPECT_NEAR(result.per_inference_us, bottleneck, bottleneck * 0.05);
  EXPECT_GE(result.first_latency_us, bottleneck);
}

TEST(SimTest, MoreInferencesAmortizeFill) {
  const auto package = MakePackage(5, 52);
  tpu::SimConfig few;
  few.num_inferences = 2;
  tpu::SimConfig many;
  many.num_inferences = 500;
  EXPECT_GT(tpu::SimulatePipeline(package, few).per_inference_us,
            tpu::SimulatePipeline(package, many).per_inference_us);
}

TEST(SimTest, RejectsEmptyInput) {
  const auto package = MakePackage(3, 53);
  tpu::SimConfig config;
  config.num_inferences = 0;
  EXPECT_THROW(tpu::SimulatePipeline(package, config), std::invalid_argument);
  EXPECT_THROW(tpu::AnalyticPipelineUs({}, 5), std::invalid_argument);
}

TEST(SimTest, RealModelEndToEnd) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet50);
  const auto dp = exact::PartitionDefaultOrder(dag, 4);
  const auto package = deploy::BuildPackage(dag, dp.schedule, true);
  tpu::SimConfig config;
  config.num_inferences = 100;
  const auto result = tpu::SimulatePipeline(package, config);
  // Sanity band: a quantized ResNet50 on 4 pipelined Edge TPUs lands in the
  // low milliseconds per inference.
  EXPECT_GT(result.per_inference_us, 100.0);
  EXPECT_LT(result.per_inference_us, 100'000.0);
}

}  // namespace
}  // namespace respect
