// CompileService cache correctness: content-addressed hits must be
// bit-identical to cold solves for every registered engine, ReplaceRl must
// invalidate exactly the RL-dependent entries, and single-flight must
// collapse N concurrent identical requests into one engine solve.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/respect.h"
#include "engines/registry.h"
#include "graph/canonical_hash.h"
#include "graph/sampler.h"
#include "serve/compile_service.h"

namespace respect {
namespace {

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 12;
  options.exact_max_expansions = 200'000;
  // Expansion-capped only: a live wall-clock limit would make exact solves
  // depend on CPU contention, breaking the hit==cold-solve assertions.
  options.exact_time_limit_seconds = 0.0;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

graph::Dag SampleDag(int nodes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return graph::SampleTrainingDag(nodes, rng);
}

/// Everything deterministic about a CompileResult (solve_seconds is wall
/// clock and deliberately excluded).
void ExpectSameResult(const CompileResult& a, const CompileResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.schedule.num_stages, b.schedule.num_stages) << label;
  EXPECT_EQ(a.schedule.stage, b.schedule.stage) << label;
  EXPECT_EQ(a.peak_stage_param_bytes, b.peak_stage_param_bytes) << label;
  EXPECT_EQ(a.proved_optimal, b.proved_optimal) << label;
  ASSERT_EQ(a.package.segments.size(), b.package.segments.size()) << label;
  for (std::size_t s = 0; s < a.package.segments.size(); ++s) {
    EXPECT_EQ(a.package.segments[s].ops, b.package.segments[s].ops)
        << label << " stage " << s;
    EXPECT_EQ(a.package.segments[s].param_bytes,
              b.package.segments[s].param_bytes)
        << label << " stage " << s;
  }
}

TEST(CanonicalHashTest, EqualContentHashesEqual) {
  const graph::Dag a = SampleDag(24, 5);
  const graph::Dag b = SampleDag(24, 5);  // same seed, same content
  EXPECT_EQ(graph::HashDag(a), graph::HashDag(b));
  EXPECT_EQ(graph::HashDag(a).ToHex().size(), 32u);
}

TEST(CanonicalHashTest, ContentChangesChangeTheHash) {
  const graph::Dag base = SampleDag(24, 5);
  const graph::CanonicalHash h = graph::HashDag(base);

  graph::Dag renamed = base;
  renamed.SetName("something-else");
  EXPECT_NE(graph::HashDag(renamed), h);

  graph::Dag reattributed = base;
  reattributed.MutableAttr(3).param_bytes += 1;
  EXPECT_NE(graph::HashDag(reattributed), h);

  graph::Dag other = SampleDag(24, 6);
  EXPECT_NE(graph::HashDag(other), h);
}

TEST(CanonicalHashTest, HasherIsStreamingForBytesOnly) {
  graph::CanonicalHasher one;
  one.Update("abc");
  graph::CanonicalHasher split;
  split.Update("ab");
  split.Update("c");
  EXPECT_EQ(one.Finish(), split.Finish());

  graph::CanonicalHasher number;
  number.Update(std::uint64_t{0x616263});  // fixed-width, != the text "abc"
  EXPECT_NE(number.Finish(), one.Finish());
}

TEST(CompileServiceTest, CacheHitMatchesColdSolveForEveryBuiltinEngine) {
  serve::CompileService service(FastOptions());
  PipelineCompiler cold(FastOptions());
  const graph::Dag dag = SampleDag(24, 7);

  for (const Method method : kAllMethods) {
    const std::string name(MethodName(method));
    const auto first = service.Compile(dag, 4, method);
    const auto second = service.Compile(dag, 4, method);
    // Pointer equality proves the second answer came from the cache.
    EXPECT_EQ(first, second) << name;
    ExpectSameResult(*first, cold.Compile(dag, 4, method), name);
  }
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, kAllMethods.size());
  EXPECT_EQ(metrics.hits, kAllMethods.size());
  EXPECT_EQ(metrics.cache_size, kAllMethods.size());
}

TEST(CompileServiceTest, AliasNameAndMethodShareOneEntry) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 9);
  const auto by_alias = service.Compile(dag, 4, "anneal");
  const auto by_name = service.Compile(dag, 4, "Annealing");
  const auto by_method = service.Compile(dag, 4, Method::kAnnealing);
  EXPECT_EQ(by_alias, by_name);
  EXPECT_EQ(by_alias, by_method);
  EXPECT_EQ(service.Metrics().misses, 1u);
  EXPECT_EQ(service.Metrics().hits, 2u);
}

TEST(CompileServiceTest, KeyCoversStagesAndGraphContent) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 11);
  (void)service.Compile(dag, 4, "list");
  (void)service.Compile(dag, 5, "list");  // different stage count
  graph::Dag renamed = dag;
  renamed.SetName("renamed");  // name flows into the package -> own entry
  (void)service.Compile(renamed, 4, "list");
  EXPECT_EQ(service.Metrics().misses, 3u);
  EXPECT_EQ(service.Metrics().hits, 0u);
}

TEST(CompileServiceTest, ReplaceRlInvalidatesOnlyRlEntries) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(24, 13);

  EXPECT_EQ(service.Compiler().RlVersion(), 0u);
  const auto rl_before = service.Compile(dag, 4, Method::kRespectRl);
  const auto list_before = service.Compile(dag, 4, Method::kListScheduling);
  const auto ilp_before = service.Compile(dag, 4, Method::kExactIlp);

  service.ReplaceRl(std::make_shared<rl::RlScheduler>(FastOptions().net));
  EXPECT_EQ(service.Compiler().RlVersion(), 1u);
  EXPECT_EQ(service.Metrics().invalidations, 1u);

  // Deterministic engines stay warm (same shared object), the RL entry is
  // recomputed (fresh object, one extra miss).
  EXPECT_EQ(service.Compile(dag, 4, Method::kListScheduling), list_before);
  EXPECT_EQ(service.Compile(dag, 4, Method::kExactIlp), ilp_before);
  const auto rl_after = service.Compile(dag, 4, Method::kRespectRl);
  EXPECT_NE(rl_after, rl_before);
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 4u);
  EXPECT_EQ(metrics.hits, 2u);

  // A null swap resets to the configured weights and still versions.
  service.ReplaceRl(nullptr);
  EXPECT_EQ(service.Compiler().RlVersion(), 2u);
  EXPECT_EQ(service.Metrics().invalidations, 2u);
}

/// Counts engine solves so the single-flight test can assert exactly one
/// happened; sleeps long enough that concurrent requests really overlap.
class CountingSlowEngine : public engines::SchedulerEngine {
 public:
  static std::atomic<int>& Solves() {
    static std::atomic<int> solves{0};
    return solves;
  }

  [[nodiscard]] std::string_view Name() const override {
    return "CountingSlow";
  }

  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget&) const override {
    Solves().fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

TEST(CompileServiceTest, SingleFlightCollapsesConcurrentIdenticalRequests) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("CountingSlow")) {
    registry.Register({"CountingSlow", "", "test-only counting engine", {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<CountingSlowEngine>();
                       }});
  }
  CountingSlowEngine::Solves().store(0);

  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 17);
  constexpr int kRequests = 8;

  std::vector<serve::CompileService::ResultPtr> results(kRequests);
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      results[i] = service.Compile(dag, 4, "CountingSlow");
    });
  }
  for (std::thread& t : threads) t.join();

  // One engine solve total; whether a given request collapsed onto the
  // in-flight solve or arrived after it cached, it shares the one result.
  EXPECT_EQ(CountingSlowEngine::Solves().load(), 1);
  for (int i = 1; i < kRequests; ++i) EXPECT_EQ(results[i], results[0]);
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 1u);
  EXPECT_EQ(metrics.hits + metrics.single_flight_waits, kRequests - 1u);
}

TEST(CompileServiceTest, LruEvictionRespectsCapacity) {
  serve::ServiceOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  serve::CompileService service(FastOptions(), options);

  const graph::Dag a = SampleDag(20, 19);
  const graph::Dag b = SampleDag(20, 21);
  const graph::Dag c = SampleDag(20, 23);
  (void)service.Compile(a, 4, "list");
  (void)service.Compile(b, 4, "list");
  (void)service.Compile(c, 4, "list");  // evicts a (least recently used)
  EXPECT_EQ(service.Metrics().evictions, 1u);
  EXPECT_EQ(service.Metrics().cache_size, 2u);

  (void)service.Compile(a, 4, "list");  // cold again
  EXPECT_EQ(service.Metrics().misses, 4u);
  EXPECT_EQ(service.Metrics().hits, 0u);
}

TEST(CompileServiceTest, SubmitWaitSharesTheSyncCache) {
  serve::ServiceOptions options;
  options.num_threads = 2;
  serve::CompileService service(FastOptions(), options);
  const graph::Dag dag = SampleDag(24, 25);

  auto ticket_a = service.Submit(dag, 4, "greedy");
  auto ticket_b = service.Submit(dag, 4, "GreedyBalance");
  const auto async_a = ticket_a.Wait();
  const auto async_b = ticket_b.Wait();
  EXPECT_EQ(async_a, async_b);
  // The sync path hits the entry the async path populated.
  EXPECT_EQ(service.Compile(dag, 4, Method::kGreedyBalance), async_a);
  EXPECT_EQ(service.Metrics().misses, 1u);

  auto bad = service.Submit(dag, 4, "NoSuchEngine");
  EXPECT_THROW((void)bad.Wait(), std::invalid_argument);
  EXPECT_THROW((void)bad.Wait(), std::invalid_argument);  // repeatable

  // A ticket that never held a request reports no_state, not UB.
  const serve::CompileService::Ticket empty;
  EXPECT_FALSE(empty.Valid());
  EXPECT_THROW((void)empty.Wait(), std::future_error);
}

TEST(CompileServiceTest, FailedSolvesPropagateAndAreNotCached) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(10, 27);
  // 10 nodes cannot fill 64 stages; the solve must fail both times (no
  // negative caching) and the failure must not poison later requests.
  EXPECT_THROW((void)service.Compile(dag, 64, "greedy"), std::exception);
  EXPECT_THROW((void)service.Compile(dag, 64, "greedy"), std::exception);
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.failures, 2u);
  EXPECT_EQ(metrics.misses, 2u);
  EXPECT_EQ(metrics.cache_size, 0u);

  EXPECT_NE(service.Compile(dag, 2, "greedy"), nullptr);
}

TEST(CompileServiceTest, MetricsReportSolveLatencyPercentiles) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(24, 29);
  for (int stages = 2; stages <= 5; ++stages) {
    (void)service.Compile(dag, stages, "list");
  }
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_GT(metrics.solve_p50_seconds, 0.0);
  EXPECT_GE(metrics.solve_p99_seconds, metrics.solve_p50_seconds);
}

TEST(CompileServiceTest, CompileBatchPopulatesAndHitsTheSharedCache) {
  serve::ServiceOptions options;
  // One pool thread makes the duplicate-collapse accounting deterministic:
  // the owner's insert always lands before the duplicate's task runs, so 2
  // unique graphs cost exactly 2 cold solves.  (With more threads the
  // collapse is via single-flight and the split between hits and waits —
  // and, under adverse scheduling, even the miss count — depends on
  // timing; SingleFlightCollapsesConcurrentIdenticalRequests covers the
  // concurrent case.)
  options.num_threads = 1;
  serve::CompileService service(FastOptions(), options);

  const graph::Dag a = SampleDag(24, 33);
  const graph::Dag b = SampleDag(24, 35);
  const std::vector<const graph::Dag*> batch = {&a, &b, &a, &b, &a};
  const auto results = service.CompileBatch(batch, 4, "list");
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& result : results) ASSERT_NE(result, nullptr);
  EXPECT_EQ(results[0], results[2]);  // shared cache entry, same pointer
  EXPECT_EQ(results[0], results[4]);
  EXPECT_EQ(results[1], results[3]);
  EXPECT_EQ(service.Metrics().misses, 2u);

  // Batch results equal the sync path's, and a repeat batch is all-warm.
  EXPECT_EQ(service.Compile(a, 4, "list"), results[0]);
  const auto warm = service.CompileBatch(batch, 4, Method::kListScheduling);
  EXPECT_EQ(warm[0], results[0]);
  EXPECT_EQ(warm[1], results[1]);
  EXPECT_EQ(service.Metrics().misses, 2u);  // still only the two cold solves

  // Partial failure: at 16 stages `tiny` (10 nodes) cannot fill the
  // pipeline and fails, while `a` (24 nodes) solves fine.  The batch
  // rethrows after every flight finishes, the good graph's result is
  // cached, and the failure is not.
  const graph::Dag tiny = SampleDag(10, 37);
  const std::vector<const graph::Dag*> mixed = {&a, &tiny};
  EXPECT_THROW((void)service.CompileBatch(mixed, 16, "greedy"),
               std::exception);
  const auto misses_after_mixed = service.Metrics().misses;
  EXPECT_NE(service.Compile(a, 16, "greedy"), nullptr);  // warm hit
  EXPECT_EQ(service.Metrics().misses, misses_after_mixed);
  EXPECT_THROW((void)service.Compile(tiny, 16, "greedy"),  // retried cold
               std::exception);
  EXPECT_EQ(service.Metrics().misses, misses_after_mixed + 1);
}

TEST(CompileServiceTest, UnknownEngineThrowsBeforeTouchingTheCache) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(10, 31);
  EXPECT_THROW((void)service.Compile(dag, 4, "NoSuchEngine"),
               std::invalid_argument);
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 0u);
  EXPECT_EQ(metrics.failures, 0u);
}

}  // namespace
}  // namespace respect
