// CompileService correctness over the CompileRequest/CompileResponse API:
// content-addressed hits must be bit-identical to cold solves for every
// registered engine, ReplaceRl must invalidate exactly the RL-dependent
// entries, single-flight must collapse N concurrent identical requests into
// one engine solve, priority lanes must let interactive requests overtake
// queued batch work, and deadlines must fail fast with DeadlineExceeded
// before a solve ever runs.  The deprecated pre-request overloads are
// exercised once at the bottom to prove the shims still serve.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/respect.h"
#include "engines/registry.h"
#include "graph/canonical_hash.h"
#include "graph/sampler.h"
#include "serve/compile_service.h"
#include "serve/request.h"

namespace respect {
namespace {

using serve::CachePolicy;
using serve::CacheOutcome;
using serve::CompileRequest;
using serve::CompileResponse;
using serve::DeadlineExceeded;
using serve::Priority;

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 12;
  options.exact_max_expansions = 200'000;
  // Expansion-capped only: a live wall-clock limit would make exact solves
  // depend on CPU contention, breaking the hit==cold-solve assertions.
  options.exact_time_limit_seconds = 0.0;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

graph::Dag SampleDag(int nodes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return graph::SampleTrainingDag(nodes, rng);
}

/// Shorthand for the common synchronous request shape.
CompileResponse Ask(serve::CompileService& service, const graph::Dag& dag,
                    int num_stages, serve::EngineRef engine,
                    CachePolicy policy = CachePolicy::kUse) {
  return service.Compile(CompileRequest{.dag = dag,
                                        .num_stages = num_stages,
                                        .engine = std::move(engine),
                                        .cache_policy = policy});
}

/// Everything deterministic about a CompileResult (solve_seconds is wall
/// clock and deliberately excluded).
void ExpectSameResult(const CompileResult& a, const CompileResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.schedule.num_stages, b.schedule.num_stages) << label;
  EXPECT_EQ(a.schedule.stage, b.schedule.stage) << label;
  EXPECT_EQ(a.peak_stage_param_bytes, b.peak_stage_param_bytes) << label;
  EXPECT_EQ(a.proved_optimal, b.proved_optimal) << label;
  ASSERT_EQ(a.package.segments.size(), b.package.segments.size()) << label;
  for (std::size_t s = 0; s < a.package.segments.size(); ++s) {
    EXPECT_EQ(a.package.segments[s].ops, b.package.segments[s].ops)
        << label << " stage " << s;
    EXPECT_EQ(a.package.segments[s].param_bytes,
              b.package.segments[s].param_bytes)
        << label << " stage " << s;
  }
}

TEST(CanonicalHashTest, EqualContentHashesEqual) {
  const graph::Dag a = SampleDag(24, 5);
  const graph::Dag b = SampleDag(24, 5);  // same seed, same content
  EXPECT_EQ(graph::HashDag(a), graph::HashDag(b));
  EXPECT_EQ(graph::HashDag(a).ToHex().size(), 32u);
}

TEST(CanonicalHashTest, ContentChangesChangeTheHash) {
  const graph::Dag base = SampleDag(24, 5);
  const graph::CanonicalHash h = graph::HashDag(base);

  graph::Dag renamed = base;
  renamed.SetName("something-else");
  EXPECT_NE(graph::HashDag(renamed), h);

  graph::Dag reattributed = base;
  reattributed.MutableAttr(3).param_bytes += 1;
  EXPECT_NE(graph::HashDag(reattributed), h);

  graph::Dag other = SampleDag(24, 6);
  EXPECT_NE(graph::HashDag(other), h);
}

TEST(CanonicalHashTest, HasherIsStreamingForBytesOnly) {
  graph::CanonicalHasher one;
  one.Update("abc");
  graph::CanonicalHasher split;
  split.Update("ab");
  split.Update("c");
  EXPECT_EQ(one.Finish(), split.Finish());

  graph::CanonicalHasher number;
  number.Update(std::uint64_t{0x616263});  // fixed-width, != the text "abc"
  EXPECT_NE(number.Finish(), one.Finish());
}

TEST(EngineRefTest, ResolvesEverySpellingToOneRegistration) {
  const engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  const engines::EngineRegistration& by_name = registry.Resolve("Annealing");
  EXPECT_EQ(&registry.Resolve("anneal"), &by_name);
  EXPECT_EQ(&registry.Resolve(Method::kAnnealing), &by_name);
  EXPECT_THROW((void)registry.Resolve("NoSuchEngine"), std::invalid_argument);
  EXPECT_THROW((void)registry.Resolve(serve::EngineRef{}),
               std::invalid_argument);
  EXPECT_EQ(serve::EngineRef{}.Spelling(), "<unset>");
  EXPECT_EQ(serve::EngineRef(Method::kAnnealing).Spelling(), "Annealing");
}

TEST(CompileServiceTest, CacheHitMatchesColdSolveForEveryBuiltinEngine) {
  serve::CompileService service(FastOptions());
  PipelineCompiler cold(FastOptions());
  const graph::Dag dag = SampleDag(24, 7);

  for (const Method method : kAllMethods) {
    const std::string name(MethodName(method));
    const CompileResponse first = Ask(service, dag, 4, method);
    const CompileResponse second = Ask(service, dag, 4, method);
    // Pointer equality proves the second answer came from the cache.
    EXPECT_EQ(first.result, second.result) << name;
    EXPECT_EQ(first.outcome, CacheOutcome::kMiss) << name;
    EXPECT_EQ(second.outcome, CacheOutcome::kHit) << name;
    EXPECT_GT(first.solve_seconds, 0.0) << name;
    EXPECT_EQ(second.solve_seconds, 0.0) << name;
    EXPECT_EQ(first.engine_name, name);
    EXPECT_EQ(first.key_hex.size(), 32u);
    EXPECT_EQ(first.key_hex, second.key_hex);
    ExpectSameResult(*first.result, cold.Compile(dag, 4, method), name);
  }
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, kAllMethods.size());
  EXPECT_EQ(metrics.hits, kAllMethods.size());
  EXPECT_EQ(metrics.cache_size, kAllMethods.size());
}

TEST(CompileServiceTest, AliasNameAndMethodShareOneEntry) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 9);
  const CompileResponse by_alias = Ask(service, dag, 4, "anneal");
  const CompileResponse by_name = Ask(service, dag, 4, "Annealing");
  const CompileResponse by_method = Ask(service, dag, 4, Method::kAnnealing);
  EXPECT_EQ(by_alias.result, by_name.result);
  EXPECT_EQ(by_alias.result, by_method.result);
  EXPECT_EQ(service.Metrics().misses, 1u);
  EXPECT_EQ(service.Metrics().hits, 2u);
}

TEST(CompileServiceTest, KeyCoversStagesAndGraphContent) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 11);
  (void)Ask(service, dag, 4, "list");
  (void)Ask(service, dag, 5, "list");  // different stage count
  graph::Dag renamed = dag;
  renamed.SetName("renamed");  // name flows into the package -> own entry
  (void)Ask(service, renamed, 4, "list");
  EXPECT_EQ(service.Metrics().misses, 3u);
  EXPECT_EQ(service.Metrics().hits, 0u);
}

TEST(PriorityTest, ParsePriorityRoundTripsEveryLaneName) {
  for (const Priority priority :
       {Priority::kInteractive, Priority::kNormal, Priority::kBatch}) {
    const auto parsed = serve::ParsePriority(serve::PriorityName(priority));
    ASSERT_TRUE(parsed.has_value()) << serve::PriorityName(priority);
    EXPECT_EQ(*parsed, priority);
  }
  EXPECT_FALSE(serve::ParsePriority("urgent").has_value());
  EXPECT_FALSE(serve::ParsePriority("").has_value());
  EXPECT_FALSE(serve::ParsePriority("Interactive").has_value());  // exact case
}

// ── Device profiles in the serving key ───────────────────────────────────

TEST(CompileServiceProfileTest, ProfilesSeparateCacheEntriesPerFleet) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(24, 77);
  const auto ask = [&](const std::string& profile) {
    return service.Compile(CompileRequest{.dag = dag,
                                          .num_stages = 4,
                                          .engine = "greedy",
                                          .profile = profile});
  };

  // "" and the default preset's name are the same key: the default profile
  // folds nothing in, so pre-profile cache entries stay reachable.
  const CompileResponse unnamed = ask("");
  const CompileResponse named_default = ask("coral");
  EXPECT_EQ(named_default.result, unnamed.result);
  EXPECT_EQ(named_default.key_hex, unnamed.key_hex);
  EXPECT_EQ(named_default.outcome, CacheOutcome::kHit);

  // Each non-default fleet gets its own entry for the same DAG/engine.
  const CompileResponse fast = ask("coral-x2fast");
  const CompileResponse usb2 = ask("coral-usb2");
  EXPECT_NE(fast.key_hex, unnamed.key_hex);
  EXPECT_NE(usb2.key_hex, unnamed.key_hex);
  EXPECT_NE(fast.key_hex, usb2.key_hex);
  EXPECT_EQ(fast.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(service.Metrics().misses, 3u);

  // And each is warm on repeat.
  EXPECT_EQ(ask("coral-x2fast").result, fast.result);
}

TEST(CompileServiceProfileTest, UnknownProfileFailsBeforeTouchingTheCache) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(10, 79);
  EXPECT_THROW((void)service.Compile(CompileRequest{.dag = dag,
                                                    .num_stages = 2,
                                                    .engine = "greedy",
                                                    .profile = "no-such-fleet"}),
               std::invalid_argument);
  EXPECT_EQ(service.Metrics().misses, 0u);
  EXPECT_EQ(service.Metrics().failures, 0u);
}

// ── Per-tenant accounting ────────────────────────────────────────────────

TEST(CompileServiceTenantTest, MetricsCountWorkPerTenant) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::CompileService service(FastOptions(), options);

  const graph::Dag a = SampleDag(20, 83);
  const graph::Dag b = SampleDag(20, 85);
  const graph::Dag c = SampleDag(20, 87);
  const auto submit = [&](const graph::Dag& dag, const std::string& tenant) {
    return service.Submit(CompileRequest{.dag = dag,
                                         .num_stages = 4,
                                         .engine = "greedy",
                                         .tenant = tenant});
  };
  auto t0 = submit(a, "alpha");
  auto t1 = submit(b, "alpha");
  auto t2 = submit(c, "beta");
  (void)t0.Wait();
  (void)t1.Wait();
  (void)t2.Wait();

  const serve::ServiceMetrics metrics = service.Metrics();
  ASSERT_TRUE(metrics.tenants.count("alpha"));
  ASSERT_TRUE(metrics.tenants.count("beta"));
  EXPECT_EQ(metrics.tenants.at("alpha").enqueued, 2u);
  EXPECT_EQ(metrics.tenants.at("alpha").started, 2u);
  EXPECT_EQ(metrics.tenants.at("alpha").expired, 0u);
  EXPECT_EQ(metrics.tenants.at("beta").enqueued, 1u);
  EXPECT_EQ(metrics.tenants.at("beta").started, 1u);
}

TEST(CompileServiceTest, ReplaceRlInvalidatesOnlyRlEntries) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(24, 13);

  EXPECT_EQ(service.Compiler().RlVersion(), 0u);
  const CompileResponse rl_before = Ask(service, dag, 4, Method::kRespectRl);
  const CompileResponse list_before =
      Ask(service, dag, 4, Method::kListScheduling);
  const CompileResponse ilp_before = Ask(service, dag, 4, Method::kExactIlp);

  service.ReplaceRl(std::make_shared<rl::RlScheduler>(FastOptions().net));
  EXPECT_EQ(service.Compiler().RlVersion(), 1u);
  EXPECT_EQ(service.Metrics().invalidations, 1u);

  // Deterministic engines stay warm (same shared object), the RL entry is
  // recomputed (fresh object, one extra miss).
  EXPECT_EQ(Ask(service, dag, 4, Method::kListScheduling).result,
            list_before.result);
  EXPECT_EQ(Ask(service, dag, 4, Method::kExactIlp).result,
            ilp_before.result);
  const CompileResponse rl_after = Ask(service, dag, 4, Method::kRespectRl);
  EXPECT_NE(rl_after.result, rl_before.result);
  EXPECT_NE(rl_after.key_hex, rl_before.key_hex);  // version is in the key
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 4u);
  EXPECT_EQ(metrics.hits, 2u);

  // A null swap resets to the configured weights and still versions.
  service.ReplaceRl(nullptr);
  EXPECT_EQ(service.Compiler().RlVersion(), 2u);
  EXPECT_EQ(service.Metrics().invalidations, 2u);
}

TEST(CompileServiceTest, CachePolicyBypassAndRefresh) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 15);

  // Bypass solves fresh and leaves the cache empty behind it.
  const CompileResponse bypass = Ask(service, dag, 4, "list",
                                     CachePolicy::kBypass);
  EXPECT_EQ(bypass.outcome, CacheOutcome::kBypass);
  EXPECT_GT(bypass.solve_seconds, 0.0);
  EXPECT_EQ(service.Metrics().cache_size, 0u);
  EXPECT_EQ(service.Metrics().misses, 0u);
  EXPECT_EQ(service.Metrics().bypasses, 1u);

  // Populate, then refresh: a fresh result object replaces the entry.
  const CompileResponse cold = Ask(service, dag, 4, "list");
  EXPECT_EQ(cold.outcome, CacheOutcome::kMiss);
  const CompileResponse refreshed = Ask(service, dag, 4, "list",
                                        CachePolicy::kRefresh);
  EXPECT_EQ(refreshed.outcome, CacheOutcome::kRefresh);
  EXPECT_NE(refreshed.result, cold.result);  // fresh object
  EXPECT_EQ(service.Metrics().refreshes, 1u);
  ExpectSameResult(*refreshed.result, *cold.result, "refresh determinism");

  // The refreshed object now answers hits.
  const CompileResponse warm = Ask(service, dag, 4, "list");
  EXPECT_EQ(warm.outcome, CacheOutcome::kHit);
  EXPECT_EQ(warm.result, refreshed.result);
  EXPECT_EQ(service.Metrics().cache_size, 1u);
}

/// Counts engine solves so the single-flight test can assert exactly one
/// happened; sleeps long enough that concurrent requests really overlap.
class CountingSlowEngine : public engines::SchedulerEngine {
 public:
  static std::atomic<int>& Solves() {
    static std::atomic<int> solves{0};
    return solves;
  }

  [[nodiscard]] std::string_view Name() const override {
    return "CountingSlow";
  }

  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget&) const override {
    Solves().fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

TEST(CompileServiceTest, SingleFlightCollapsesConcurrentIdenticalRequests) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("CountingSlow")) {
    registry.Register({"CountingSlow", "", "test-only counting engine", {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<CountingSlowEngine>();
                       }});
  }
  CountingSlowEngine::Solves().store(0);

  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(20, 17);
  constexpr int kRequests = 8;

  std::vector<CompileResponse> responses(kRequests);
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      responses[i] = Ask(service, dag, 4, "CountingSlow");
    });
  }
  for (std::thread& t : threads) t.join();

  // One engine solve total; whether a given request collapsed onto the
  // in-flight solve or arrived after it cached, it shares the one result.
  EXPECT_EQ(CountingSlowEngine::Solves().load(), 1);
  for (int i = 1; i < kRequests; ++i) {
    EXPECT_EQ(responses[i].result, responses[0].result);
    EXPECT_TRUE(responses[i].outcome == CacheOutcome::kHit ||
                responses[i].outcome == CacheOutcome::kCollapsed ||
                responses[i].outcome == CacheOutcome::kMiss);
  }
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 1u);
  EXPECT_EQ(metrics.hits + metrics.single_flight_waits, kRequests - 1u);
}

TEST(CompileServiceTest, LruEvictionRespectsCapacity) {
  serve::ServiceOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  serve::CompileService service(FastOptions(), options);

  const graph::Dag a = SampleDag(20, 19);
  const graph::Dag b = SampleDag(20, 21);
  const graph::Dag c = SampleDag(20, 23);
  (void)Ask(service, a, 4, "list");
  (void)Ask(service, b, 4, "list");
  (void)Ask(service, c, 4, "list");  // evicts a (least recently used)
  EXPECT_EQ(service.Metrics().evictions, 1u);
  EXPECT_EQ(service.Metrics().cache_size, 2u);

  (void)Ask(service, a, 4, "list");  // cold again
  EXPECT_EQ(service.Metrics().misses, 4u);
  EXPECT_EQ(service.Metrics().hits, 0u);
}

TEST(CompileServiceTest, SubmitWaitSharesTheSyncCache) {
  serve::ServiceOptions options;
  options.num_threads = 2;
  serve::CompileService service(FastOptions(), options);
  const graph::Dag dag = SampleDag(24, 25);

  auto ticket_a = service.Submit(
      CompileRequest{.dag = dag, .num_stages = 4, .engine = "greedy"});
  auto ticket_b = service.Submit(
      CompileRequest{.dag = dag, .num_stages = 4, .engine = "GreedyBalance"});
  const CompileResponse& async_a = ticket_a.WaitResponse();
  const CompileResponse& async_b = ticket_b.WaitResponse();
  EXPECT_EQ(async_a.result, async_b.result);
  EXPECT_GE(async_a.queue_wait_seconds, 0.0);
  // The sync path hits the entry the async path populated.
  EXPECT_EQ(Ask(service, dag, 4, Method::kGreedyBalance).result,
            async_a.result);
  EXPECT_EQ(service.Metrics().misses, 1u);

  auto bad = service.Submit(
      CompileRequest{.dag = dag, .num_stages = 4, .engine = "NoSuchEngine"});
  EXPECT_THROW((void)bad.Wait(), std::invalid_argument);
  EXPECT_THROW((void)bad.Wait(), std::invalid_argument);  // repeatable

  // A ticket that never held a request reports no_state, not UB.
  const serve::CompileService::Ticket empty;
  EXPECT_FALSE(empty.Valid());
  EXPECT_THROW((void)empty.Wait(), std::future_error);
}

TEST(CompileServiceTest, FailedSolvesPropagateAndAreNotCached) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(10, 27);
  // 10 nodes cannot fill 64 stages; the solve must fail both times (no
  // negative caching) and the failure must not poison later requests.
  EXPECT_THROW((void)Ask(service, dag, 64, "greedy"), std::exception);
  EXPECT_THROW((void)Ask(service, dag, 64, "greedy"), std::exception);
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.failures, 2u);
  EXPECT_EQ(metrics.misses, 2u);
  EXPECT_EQ(metrics.cache_size, 0u);

  EXPECT_NE(Ask(service, dag, 2, "greedy").result, nullptr);
}

TEST(CompileServiceTest, MetricsReportSolveLatencyPercentiles) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(24, 29);
  for (int stages = 2; stages <= 5; ++stages) {
    (void)Ask(service, dag, stages, "list");
  }
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_GT(metrics.solve_p50_seconds, 0.0);
  EXPECT_GE(metrics.solve_p99_seconds, metrics.solve_p50_seconds);
}

TEST(CompileServiceTest, LatencyWindowWrapsToTheMostRecentSamples) {
  // Window of one: every solve overwrites the single slot, so after many
  // solves p50 == p99 == the last solve's latency and nothing runs off the
  // end of the ring.
  serve::ServiceOptions options;
  options.latency_window = 1;
  serve::CompileService service(FastOptions(), options);
  const graph::Dag dag = SampleDag(24, 29);
  for (int stages = 2; stages <= 6; ++stages) {
    (void)Ask(service, dag, stages, "list");
  }
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_GT(metrics.solve_p50_seconds, 0.0);
  EXPECT_EQ(metrics.solve_p50_seconds, metrics.solve_p99_seconds);
}

TEST(CompileServiceTest, CompileBatchPopulatesAndHitsTheSharedCache) {
  serve::ServiceOptions options;
  // One pool thread makes the duplicate-collapse accounting deterministic:
  // the owner's insert always lands before the duplicate's task runs, so 2
  // unique graphs cost exactly 2 cold solves.  (With more threads the
  // collapse is via single-flight and the split between hits and waits —
  // and, under adverse scheduling, even the miss count — depends on
  // timing; SingleFlightCollapsesConcurrentIdenticalRequests covers the
  // concurrent case.)
  options.num_threads = 1;
  serve::CompileService service(FastOptions(), options);

  const graph::Dag a = SampleDag(24, 33);
  const graph::Dag b = SampleDag(24, 35);
  const auto batch_of = [](std::span<const graph::Dag* const> dags,
                           int num_stages, serve::EngineRef engine) {
    std::vector<CompileRequest> requests;
    for (const graph::Dag* dag : dags) {
      requests.push_back(CompileRequest{.dag = *dag,
                                        .num_stages = num_stages,
                                        .engine = engine,
                                        .priority = Priority::kBatch});
    }
    return requests;
  };

  const std::vector<const graph::Dag*> batch = {&a, &b, &a, &b, &a};
  const auto responses = service.CompileBatch(batch_of(batch, 4, "list"));
  ASSERT_EQ(responses.size(), batch.size());
  for (const auto& response : responses) ASSERT_NE(response.result, nullptr);
  EXPECT_EQ(responses[0].result, responses[2].result);  // shared cache entry
  EXPECT_EQ(responses[0].result, responses[4].result);
  EXPECT_EQ(responses[1].result, responses[3].result);
  EXPECT_EQ(service.Metrics().misses, 2u);

  // Batch results equal the sync path's, and a repeat batch is all-warm.
  EXPECT_EQ(Ask(service, a, 4, "list").result, responses[0].result);
  const auto warm =
      service.CompileBatch(batch_of(batch, 4, Method::kListScheduling));
  EXPECT_EQ(warm[0].result, responses[0].result);
  EXPECT_EQ(warm[1].result, responses[1].result);
  for (const auto& response : warm) {
    EXPECT_EQ(response.outcome, CacheOutcome::kHit);
  }
  EXPECT_EQ(service.Metrics().misses, 2u);  // still only the two cold solves

  // Partial failure: at 16 stages `tiny` (10 nodes) cannot fill the
  // pipeline and fails, while `a` (24 nodes) solves fine.  The batch
  // rethrows after every flight finishes, the good graph's result is
  // cached, and the failure is not.
  const graph::Dag tiny = SampleDag(10, 37);
  const std::vector<const graph::Dag*> mixed = {&a, &tiny};
  EXPECT_THROW((void)service.CompileBatch(batch_of(mixed, 16, "greedy")),
               std::exception);
  const auto misses_after_mixed = service.Metrics().misses;
  EXPECT_NE(Ask(service, a, 16, "greedy").result, nullptr);  // warm hit
  EXPECT_EQ(service.Metrics().misses, misses_after_mixed);
  EXPECT_THROW((void)Ask(service, tiny, 16, "greedy"),  // retried cold
               std::exception);
  EXPECT_EQ(service.Metrics().misses, misses_after_mixed + 1);
}

TEST(CompileServiceBatchDecodeTest, GroupedMissStormSolvesBatchedAndMatchesSync) {
  serve::CompileService service(FastOptions());
  PipelineCompiler reference(FastOptions());

  // Four same-size cold graphs plus one duplicate → ONE group task: the
  // four unique keys lock-step through a single batched decode and the
  // duplicate collapses onto the first one's flight.
  const graph::Dag g0 = SampleDag(30, 101);
  const graph::Dag g1 = SampleDag(30, 102);
  const graph::Dag g2 = SampleDag(30, 103);
  const graph::Dag g3 = SampleDag(30, 104);
  std::vector<CompileRequest> requests;
  for (const graph::Dag* dag : {&g0, &g1, &g2, &g3, &g0}) {
    requests.push_back(
        CompileRequest{.dag = *dag, .num_stages = 4, .engine = "respect"});
  }

  const auto responses = service.CompileBatch(requests);
  ASSERT_EQ(responses.size(), 5u);
  serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 4u);
  EXPECT_EQ(metrics.batch_solved, 4u);
  EXPECT_EQ(metrics.batch_groups, 1u);
  EXPECT_EQ(metrics.batch_single, 0u);
  EXPECT_EQ(metrics.single_flight_waits, 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(responses[i].outcome, CacheOutcome::kMiss) << i;
    EXPECT_GT(responses[i].solve_seconds, 0.0) << i;
  }
  EXPECT_EQ(responses[4].outcome, CacheOutcome::kCollapsed);
  EXPECT_EQ(responses[4].result, responses[0].result);

  // The scalar batch decode is bit-identical to the sync single-graph path.
  const graph::Dag* const dags[] = {&g0, &g1, &g2, &g3};
  for (int i = 0; i < 4; ++i) {
    ExpectSameResult(*responses[i].result,
                     reference.Compile(*dags[i], 4, "respect"),
                     "batched vs sync graph " + std::to_string(i));
  }

  // Repeat batch: all warm, no new group.
  const auto warm = service.CompileBatch(requests);
  for (const auto& response : warm) {
    EXPECT_EQ(response.outcome, CacheOutcome::kHit);
  }
  EXPECT_EQ(service.Metrics().batch_groups, 1u);

  // The miss storm this path exists for: ReplaceRl cold-starts every RL
  // key, and the refill goes back through one batched group with results
  // identical to the first pass (same configured weights).
  service.ReplaceRl(nullptr);
  const auto refill = service.CompileBatch(requests);
  metrics = service.Metrics();
  EXPECT_EQ(metrics.batch_solved, 8u);
  EXPECT_EQ(metrics.batch_groups, 2u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(refill[i].outcome, CacheOutcome::kMiss) << i;
    ExpectSameResult(*refill[i].result, *responses[i].result,
                     "refill graph " + std::to_string(i));
  }
}

TEST(CompileServiceBatchDecodeTest, StragglersAndDisabledPathFallBackToSingles) {
  const graph::Dag a = SampleDag(30, 111);
  const graph::Dag b = SampleDag(30, 112);
  const graph::Dag lone = SampleDag(20, 113);
  std::vector<CompileRequest> requests;
  for (const graph::Dag* dag : {&a, &b, &lone}) {
    requests.push_back(
        CompileRequest{.dag = *dag, .num_stages = 4, .engine = "respect"});
  }

  // {30, 30, 20}: the pair lock-steps, the 20-node straggler takes the
  // ordinary async path — still a cold solve, just not a grouped one.
  serve::CompileService service(FastOptions());
  const auto responses = service.CompileBatch(requests);
  for (const auto& response : responses) ASSERT_NE(response.result, nullptr);
  serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 3u);
  EXPECT_EQ(metrics.batch_solved, 2u);
  EXPECT_EQ(metrics.batch_groups, 1u);

  // A non-batch engine never groups, whatever the sizes.
  std::vector<CompileRequest> list_requests;
  for (const graph::Dag* dag : {&a, &b}) {
    list_requests.push_back(
        CompileRequest{.dag = *dag, .num_stages = 4, .engine = "list"});
  }
  (void)service.CompileBatch(list_requests);
  EXPECT_EQ(service.Metrics().batch_groups, 1u);  // unchanged

  // batch_decode = false: the same storm fans out as independent requests.
  serve::ServiceOptions off;
  off.batch_decode = false;
  serve::CompileService plain(FastOptions(), off);
  const auto plain_responses = plain.CompileBatch(requests);
  for (const auto& response : plain_responses) {
    ASSERT_NE(response.result, nullptr);
  }
  metrics = plain.Metrics();
  EXPECT_EQ(metrics.misses, 3u);
  EXPECT_EQ(metrics.batch_solved, 0u);
  EXPECT_EQ(metrics.batch_groups, 0u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ExpectSameResult(*plain_responses[i].result, *responses[i].result,
                     "grouped vs fanned-out graph " + std::to_string(i));
  }
}

TEST(CompileServiceTest, UnknownEngineThrowsBeforeTouchingTheCache) {
  serve::CompileService service(FastOptions());
  const graph::Dag dag = SampleDag(10, 31);
  EXPECT_THROW((void)Ask(service, dag, 4, "NoSuchEngine"),
               std::invalid_argument);
  EXPECT_THROW((void)Ask(service, dag, 4, serve::EngineRef{}),
               std::invalid_argument);
  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.misses, 0u);
  EXPECT_EQ(metrics.failures, 0u);
}

// ── Queue semantics ──────────────────────────────────────────────────────

/// Records solve order by dag name; dags named "hold-*" block until the
/// test calls Release(), which is how a test pins the single worker while
/// it stacks up queued requests.
class RecordingEngine : public engines::SchedulerEngine {
 public:
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::string> order;
    bool released = false;
  };

  static State& GetState() {
    static State* state = new State();
    return *state;
  }

  static void Reset() {
    State& state = GetState();
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.order.clear();
    state.released = false;
  }

  static void Release() {
    State& state = GetState();
    {
      const std::lock_guard<std::mutex> lock(state.mutex);
      state.released = true;
    }
    state.cv.notify_all();
  }

  static std::vector<std::string> Order() {
    State& state = GetState();
    const std::lock_guard<std::mutex> lock(state.mutex);
    return state.order;
  }

  /// Spins until the recorded order reaches `n` entries (the worker is
  /// then inside a solve or past it).
  static void WaitForSolves(std::size_t n) {
    while (Order().size() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  [[nodiscard]] std::string_view Name() const override { return "Recording"; }

  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget&) const override {
    State& state = GetState();
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.order.push_back(dag.Name());
      if (dag.Name().rfind("hold", 0) == 0) {
        state.cv.wait(lock, [&] { return state.released; });
      }
    }
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

void EnsureRecordingEngine() {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("Recording")) {
    registry.Register({"Recording", "", "test-only order-recording engine",
                       {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<RecordingEngine>();
                       }});
  }
  RecordingEngine::Reset();
}

graph::Dag NamedDag(std::uint64_t seed, const std::string& name) {
  graph::Dag dag = SampleDag(20, seed);
  dag.SetName(name);
  return dag;
}

CompileRequest QueuedRequest(graph::Dag dag, Priority priority) {
  return CompileRequest{.dag = std::move(dag),
                        .num_stages = 2,
                        .engine = "Recording",
                        .priority = priority};
}

// The acceptance scenario: with the one-worker pool pinned by a running
// solve and batch work already queued, a later-submitted interactive
// request is solved before any of the queued batch requests.
TEST(CompileServiceQueueTest, InteractiveOvertakesQueuedBatchWork) {
  EnsureRecordingEngine();
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.queue_aging_seconds = 3600.0;  // no aging interference
  serve::CompileService service(FastOptions(), options);

  std::vector<serve::CompileService::Ticket> tickets;
  tickets.push_back(service.Submit(
      QueuedRequest(NamedDag(41, "hold-blocker"), Priority::kInteractive)));
  RecordingEngine::WaitForSolves(1);  // worker is pinned inside the blocker

  for (int i = 0; i < 3; ++i) {
    tickets.push_back(service.Submit(QueuedRequest(
        NamedDag(43 + 2 * i, "batch-" + std::to_string(i)),
        Priority::kBatch)));
  }
  tickets.push_back(service.Submit(
      QueuedRequest(NamedDag(51, "interactive"), Priority::kInteractive)));

  RecordingEngine::Release();
  for (const auto& ticket : tickets) (void)ticket.Wait();

  const std::vector<std::string> order = RecordingEngine::Order();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "hold-blocker");
  EXPECT_EQ(order[1], "interactive");  // submitted last, ran first
  EXPECT_EQ(order[2], "batch-0");      // batch stays FIFO within its lane
  EXPECT_EQ(order[3], "batch-1");
  EXPECT_EQ(order[4], "batch-2");

  const serve::ServiceMetrics metrics = service.Metrics();
  const auto interactive =
      static_cast<std::size_t>(Priority::kInteractive);
  const auto batch = static_cast<std::size_t>(Priority::kBatch);
  EXPECT_EQ(metrics.lanes[interactive].enqueued, 2u);
  EXPECT_EQ(metrics.lanes[interactive].started, 2u);
  EXPECT_EQ(metrics.lanes[batch].enqueued, 3u);
  EXPECT_EQ(metrics.lanes[batch].started, 3u);
  EXPECT_EQ(metrics.lanes[batch].depth, 0u);
  EXPECT_EQ(metrics.deadline_expired, 0u);
  EXPECT_GE(metrics.lanes[batch].wait_p99_seconds,
            metrics.lanes[batch].wait_p50_seconds);
}

// A request whose deadline passes while it queues fails with
// DeadlineExceeded and never reaches the engine.
TEST(CompileServiceQueueTest, ExpiredDeadlineFailsFastWithoutASolve) {
  EnsureRecordingEngine();
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::CompileService service(FastOptions(), options);

  auto blocker = service.Submit(
      QueuedRequest(NamedDag(61, "hold-blocker"), Priority::kNormal));
  RecordingEngine::WaitForSolves(1);

  CompileRequest doomed =
      QueuedRequest(NamedDag(63, "doomed"), Priority::kInteractive);
  doomed.deadline = serve::DeadlineIn(0.02);
  auto doomed_ticket = service.Submit(std::move(doomed));

  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // let it lapse
  RecordingEngine::Release();

  EXPECT_THROW((void)doomed_ticket.Wait(), DeadlineExceeded);
  (void)blocker.Wait();

  const std::vector<std::string> order = RecordingEngine::Order();
  for (const std::string& name : order) EXPECT_NE(name, "doomed");

  const serve::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.deadline_expired, 1u);
  const auto interactive = static_cast<std::size_t>(Priority::kInteractive);
  EXPECT_EQ(metrics.lanes[interactive].expired, 1u);
  EXPECT_EQ(metrics.lanes[interactive].started, 0u);
  EXPECT_EQ(metrics.failures, 0u);  // an expiry is not a solve failure
}

// The synchronous path honors deadlines too: an already-lapsed deadline
// fails before any engine work.
TEST(CompileServiceQueueTest, SyncCompileRejectsLapsedDeadline) {
  EnsureRecordingEngine();
  serve::CompileService service(FastOptions());
  CompileRequest request =
      QueuedRequest(NamedDag(65, "sync-doomed"), Priority::kInteractive);
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_THROW((void)service.Compile(request), DeadlineExceeded);
  EXPECT_TRUE(RecordingEngine::Order().empty());
  EXPECT_EQ(service.Metrics().deadline_expired, 1u);
  EXPECT_EQ(service.Metrics().misses, 0u);
}

// ServiceOptions::max_batch_inflight: with 2 workers and a batch cap of 1,
// a batch flood holds at most one worker — the second worker stays free,
// so an interactive request submitted behind three queued batch solves
// never waits behind more than the one batch solve the cap admits.
TEST(CompileServiceQueueTest, BatchCapKeepsAWorkerFreeForInteractive) {
  EnsureRecordingEngine();
  serve::ServiceOptions options;
  options.num_threads = 2;
  options.max_batch_inflight = 1;
  options.queue_aging_seconds = 3600.0;  // no aging interference
  serve::CompileService service(FastOptions(), options);

  std::vector<serve::CompileService::Ticket> tickets;
  // Three blocking batch solves.  Without the cap, b0 and b1 would claim
  // both workers; with it, only b0 starts.
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(service.Submit(QueuedRequest(
        NamedDag(81 + 2 * i, "hold-batch-" + std::to_string(i)),
        Priority::kBatch)));
  }
  RecordingEngine::WaitForSolves(1);  // b0 pinned inside its solve

  auto interactive = service.Submit(
      QueuedRequest(NamedDag(91, "interactive"), Priority::kInteractive));
  // Completes on the free worker while every batch solve but b0 is still
  // queued — this Wait would deadlock behind the flood without the cap.
  (void)interactive.Wait();

  {
    const std::vector<std::string> order = RecordingEngine::Order();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "hold-batch-0");
    EXPECT_EQ(order[1], "interactive");
  }
  const serve::ServiceMetrics mid = service.Metrics();
  const auto batch = static_cast<std::size_t>(Priority::kBatch);
  EXPECT_EQ(mid.lanes[batch].started, 1u);  // the cap admitted exactly one
  EXPECT_EQ(mid.lanes[batch].depth, 2u);

  RecordingEngine::Release();
  for (const auto& ticket : tickets) (void)ticket.Wait();
  const std::vector<std::string> order = RecordingEngine::Order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[2], "hold-batch-1");  // backlog resumes in FIFO order
  EXPECT_EQ(order[3], "hold-batch-2");
  EXPECT_EQ(service.Metrics().lanes[batch].started, 3u);
}

// The FIFO baseline still fails lapsed deadlines (at task start rather
// than at pop time) — the escape hatch must not silently drop the deadline
// contract.
TEST(CompileServiceQueueTest, FifoQueueStillFailsLapsedDeadlines) {
  EnsureRecordingEngine();
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.fifo_queue = true;
  serve::CompileService service(FastOptions(), options);

  auto blocker = service.Submit(
      QueuedRequest(NamedDag(67, "hold-blocker"), Priority::kNormal));
  RecordingEngine::WaitForSolves(1);

  CompileRequest doomed =
      QueuedRequest(NamedDag(69, "doomed"), Priority::kInteractive);
  doomed.deadline = serve::DeadlineIn(0.02);
  auto doomed_ticket = service.Submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  RecordingEngine::Release();

  EXPECT_THROW((void)doomed_ticket.Wait(), DeadlineExceeded);
  (void)blocker.Wait();
  for (const std::string& name : RecordingEngine::Order()) {
    EXPECT_NE(name, "doomed");
  }
  EXPECT_EQ(service.Metrics().deadline_expired, 1u);
}

// ── Deprecated shim coverage ─────────────────────────────────────────────
// The six pre-CompileRequest overloads must keep old call sites compiling
// and serving through the same cache until they are removed.

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(CompileServiceLegacyShimTest, OldOverloadsShareTheRequestApiCache) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::CompileService service(FastOptions(), options);
  const graph::Dag dag = SampleDag(24, 71);

  const auto by_name = service.Compile(dag, 4, "list");
  const auto by_method = service.Compile(dag, 4, Method::kListScheduling);
  EXPECT_EQ(by_name, by_method);  // shims share one cache entry

  // The request API sees the shim-populated entry.
  EXPECT_EQ(Ask(service, dag, 4, "list").result, by_name);

  auto ticket = service.Submit(dag, 4, std::string("list"));
  EXPECT_EQ(ticket.Wait(), by_name);
  auto method_ticket = service.Submit(dag, 4, Method::kListScheduling);
  EXPECT_EQ(method_ticket.Wait(), by_name);

  const graph::Dag other = SampleDag(24, 73);
  const std::vector<const graph::Dag*> batch = {&dag, &other, &dag};
  const auto results = service.CompileBatch(batch, 4, "list");
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], by_name);
  EXPECT_EQ(results[2], by_name);
  const auto method_results =
      service.CompileBatch(batch, 4, Method::kListScheduling);
  EXPECT_EQ(method_results[1], results[1]);

  EXPECT_EQ(service.Metrics().misses, 2u);  // dag + other, once each
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace respect
