// Cross-module property tests: invariants that must hold across random
// graphs, stage counts and schedulers, plus structural edge cases.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "exact/bnb_scheduler.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "graph/topology.h"
#include "heuristics/force_directed.h"
#include "heuristics/hu_scheduler.h"
#include "heuristics/list_scheduler.h"
#include "sched/postprocess.h"
#include "sched/rho.h"

namespace respect {
namespace {

using graph::Dag;
using sched::Schedule;

class SchedulingInvariantsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulingInvariantsTest, ExactIsLowerBoundAndBoundsAreConsistent) {
  const auto [seed, stages] = GetParam();
  std::mt19937_64 rng(seed * 7919);
  const Dag dag = graph::SampleTrainingDag(24, rng);

  exact::BnbConfig config;
  config.num_stages = stages;
  config.max_expansions = 400'000;
  const exact::BnbResult exact = exact::SolveExact(dag, config);

  // Peak can never beat perfect balance or the heaviest node.
  std::int64_t max_node = 0;
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    max_node = std::max(max_node, dag.Attr(v).param_bytes);
  }
  const std::int64_t balance_lb =
      (dag.TotalParamBytes() + stages - 1) / stages;
  EXPECT_GE(exact.objective.peak_param_bytes,
            std::max(max_node, balance_lb));

  // Every heuristic is feasible and no better than exact on the objective.
  sched::PipelineConstraints c;
  c.num_stages = stages;
  for (const Schedule& s :
       {heuristics::ListSchedule(dag, stages),
        heuristics::HuLevelSchedule(dag, stages),
        heuristics::ForceDirectedSchedule(dag, stages),
        exact::PartitionDefaultOrder(dag, stages).schedule}) {
    ASSERT_TRUE(ValidateSchedule(dag, s, c).ok);
    EXPECT_GE(Evaluate(dag, s).peak_param_bytes,
              exact.objective.peak_param_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulingInvariantsTest,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(2, 3, 4, 6)));

class PackSequenceOptimalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PackSequenceOptimalityTest, PeakEqualsMinBottleneckOfTheOrder) {
  const auto [seed, stages] = GetParam();
  std::mt19937_64 rng(seed * 104729);
  const Dag dag = graph::SampleTrainingDag(30, rng);
  const auto topo = graph::AnalyzeTopology(dag);

  const Schedule s = sched::PackSequence(dag, topo.order, stages);
  std::vector<std::int64_t> weights(topo.order.size());
  for (std::size_t i = 0; i < topo.order.size(); ++i) {
    weights[i] = dag.Attr(topo.order[i]).param_bytes;
  }
  const auto metrics = ComputeMetrics(dag, s);
  EXPECT_EQ(metrics.peak_stage_param_bytes,
            sched::MinBottleneckBound(weights, stages));

  // Also equals the DP partitioner's bottleneck for the same order.
  const auto dp = exact::PartitionTopoOrder(dag, topo.order, stages);
  EXPECT_EQ(metrics.peak_stage_param_bytes, dp.objective.peak_param_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackSequenceOptimalityTest,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(2, 4, 5)));

TEST(PropertyTest, PostProcessIdempotent) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 6; ++trial) {
    const Dag dag = graph::SampleTrainingDag(25, rng);
    sched::PipelineConstraints c;
    c.num_stages = 4;
    Schedule s =
        sched::PackSequence(dag, graph::AnalyzeTopology(dag).order, 4);
    PostProcess(dag, c, s);
    Schedule again = s;
    PostProcess(dag, c, again);
    EXPECT_EQ(s.stage, again.stage);
  }
}

TEST(PropertyTest, DpInvariantToEquivalentOrders) {
  // Chains have a single topological order; DP must agree with the packer.
  Dag dag("chain");
  std::mt19937_64 rng(11);
  for (int i = 0; i < 12; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = 1 + static_cast<std::int64_t>(rng() % 500);
    attr.output_bytes = 1;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  const auto dp = exact::PartitionDefaultOrder(dag, 4);
  const auto packed =
      sched::PackSequence(dag, graph::AnalyzeTopology(dag).order, 4);
  EXPECT_EQ(dp.objective.peak_param_bytes,
            ComputeMetrics(dag, packed).peak_stage_param_bytes);
}

TEST(EdgeCaseTest, GraphWithExactlyStagesNodes) {
  // |V| == num_stages: every stage gets exactly one node.
  Dag dag("tiny");
  for (int i = 0; i < 4; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = 10 * (i + 1);
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  exact::BnbConfig config;
  config.num_stages = 4;
  const auto result = exact::SolveExact(dag, config);
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_EQ(result.objective.peak_param_bytes, 40);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(result.schedule.stage[i], i);
}

TEST(EdgeCaseTest, WideForkJoin) {
  // One source fanning out to many parallel nodes and joining: monotone
  // assignments may split the parallel section across stages.
  Dag dag("fork");
  graph::OpAttr src_attr;
  src_attr.param_bytes = 1;
  const auto src = dag.AddNode(std::move(src_attr));
  std::vector<graph::NodeId> mid;
  for (int i = 0; i < 8; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = 100;
    attr.output_bytes = 10;
    mid.push_back(dag.AddNode(std::move(attr)));
    dag.AddEdge(src, mid.back());
  }
  graph::OpAttr sink_attr;
  sink_attr.param_bytes = 1;
  const auto sink = dag.AddNode(std::move(sink_attr));
  for (const auto m : mid) dag.AddEdge(m, sink);

  exact::BnbConfig config;
  config.num_stages = 4;
  config.max_expansions = 0;
  const auto result = exact::SolveExact(dag, config);
  EXPECT_TRUE(result.proved_optimal);
  // 802 total over 4 stages; parallel nodes are free to move, so the optimum
  // is a 1+2x100 / 2x100 / 2x100 / 2x100+1 style split with peak 202.
  EXPECT_LE(result.objective.peak_param_bytes, 202);
}

TEST(EdgeCaseTest, ZeroParameterGraphStillSchedules) {
  // All-zero parameter bytes (e.g. purely elementwise models) must not
  // break the packers or solvers.
  Dag dag("zeros");
  for (int i = 0; i < 8; ++i) {
    graph::OpAttr attr;
    attr.output_bytes = 64;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  const auto packed =
      sched::PackSequence(dag, graph::AnalyzeTopology(dag).order, 4);
  sched::PipelineConstraints c;
  c.num_stages = 4;
  EXPECT_TRUE(ValidateSchedule(dag, packed, c).ok);
  const auto exact = exact::SolveExact(dag, {.num_stages = 4});
  EXPECT_EQ(exact.objective.peak_param_bytes, 0);
}

TEST(EdgeCaseTest, HeavySingleNodeDominatesBottleneck) {
  Dag dag("heavy");
  for (int i = 0; i < 6; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = (i == 3) ? 1'000'000 : 10;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  const auto result = exact::SolveExact(dag, {.num_stages = 3});
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_EQ(result.objective.peak_param_bytes, 1'000'000);
}

TEST(EdgeCaseTest, RepairHandlesFullyReversedSchedule) {
  std::mt19937_64 rng(17);
  const Dag dag = graph::SampleTrainingDag(20, rng);
  Schedule s{5, std::vector<int>(20)};
  const auto topo = graph::AnalyzeTopology(dag);
  // Assign stages in reverse topological order: maximally infeasible.
  for (int i = 0; i < 20; ++i) {
    s.stage[topo.order[i]] = 4 - (i * 5) / 20;
  }
  sched::PipelineConstraints c;
  c.num_stages = 5;
  PostProcess(dag, c, s);
  EXPECT_TRUE(ValidateSchedule(dag, s, c).ok);
}

}  // namespace
}  // namespace respect
