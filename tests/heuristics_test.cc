// Baseline schedulers: feasibility on random graphs, quality orderings, the
// compiler substitute's behaviour and the mini backend.
#include <gtest/gtest.h>

#include <random>

#include "exact/bnb_scheduler.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "graph/topology.h"
#include "heuristics/annealing.h"
#include "heuristics/backend_compile.h"
#include "heuristics/edgetpu_compiler.h"
#include "heuristics/force_directed.h"
#include "heuristics/hu_scheduler.h"
#include "heuristics/list_scheduler.h"
#include "models/zoo.h"

namespace respect::heuristics {
namespace {

sched::PipelineConstraints Stages(int n) {
  sched::PipelineConstraints c;
  c.num_stages = n;
  return c;
}

class AllHeuristicsFeasibilityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllHeuristicsFeasibilityTest, EverySchedulerProducesValidSchedules) {
  const auto [seed, stages] = GetParam();
  std::mt19937_64 rng(seed * 131);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);

  EXPECT_TRUE(
      ValidateSchedule(dag, ListSchedule(dag, stages), Stages(stages)).ok);
  EXPECT_TRUE(
      ValidateSchedule(dag, HuLevelSchedule(dag, stages), Stages(stages)).ok);
  EXPECT_TRUE(ValidateSchedule(dag, ForceDirectedSchedule(dag, stages),
                               Stages(stages))
                  .ok);
  AnnealingConfig annealing;
  annealing.num_stages = stages;
  annealing.iterations = 2000;
  EXPECT_TRUE(
      ValidateSchedule(dag, AnnealSchedule(dag, annealing), Stages(stages)).ok);
  EdgeTpuCompilerConfig compiler;
  compiler.num_stages = stages;
  compiler.refinement_rounds = 2;
  compiler.compile_passes = 1;
  EXPECT_TRUE(ValidateSchedule(dag, CompileForPipeline(dag, compiler).schedule,
                               Stages(stages))
                  .ok);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllHeuristicsFeasibilityTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(2, 4, 6)));

TEST(AnnealingTest, ImprovesOrMatchesItsSeed) {
  std::mt19937_64 rng(7);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  const auto seed_obj = exact::PartitionDefaultOrder(dag, 4).objective;
  AnnealingConfig config;
  config.num_stages = 4;
  config.iterations = 5000;
  const auto annealed = Evaluate(dag, AnnealSchedule(dag, config));
  EXPECT_LE(annealed.peak_param_bytes, seed_obj.peak_param_bytes);
}

TEST(AnnealingTest, DeterministicForFixedSeed) {
  std::mt19937_64 rng(8);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  AnnealingConfig config;
  config.num_stages = 3;
  config.iterations = 3000;
  const auto a = AnnealSchedule(dag, config);
  const auto b = AnnealSchedule(dag, config);
  EXPECT_EQ(a.stage, b.stage);
}

TEST(HuSchedulerTest, RespectsLevelBands) {
  // Nodes on the same ASAP level share a stage by construction.
  std::mt19937_64 rng(9);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  const auto topo = graph::AnalyzeTopology(dag);
  const auto s = HuLevelSchedule(dag, 4);
  for (graph::NodeId a = 0; a < dag.NodeCount(); ++a) {
    for (graph::NodeId b = 0; b < dag.NodeCount(); ++b) {
      if (topo.asap_level[a] == topo.asap_level[b]) {
        EXPECT_EQ(s.stage[a], s.stage[b]);
      }
    }
  }
}

TEST(ListSchedulerTest, HigherPriorityScheduledNoLater) {
  // In a fork of two independent chains, the longer (higher critical path)
  // chain should never lag behind the shorter one stage-wise.
  graph::Dag dag;
  const graph::NodeId root = dag.AddNode({"root", graph::OpType::kInput, 0, 1, 0});
  graph::NodeId heavy = root, light = root;
  for (int i = 0; i < 4; ++i) {
    const graph::NodeId h =
        dag.AddNode({"h" + std::to_string(i), graph::OpType::kConv2D, 10, 1, 1000});
    dag.AddEdge(heavy, h);
    heavy = h;
  }
  const graph::NodeId l =
      dag.AddNode({"l", graph::OpType::kRelu, 10, 1, 1});
  dag.AddEdge(light, l);
  const graph::NodeId join = dag.AddNode({"join", graph::OpType::kAdd, 10, 1, 1});
  dag.AddEdge(heavy, join);
  dag.AddEdge(l, join);

  const auto s = ListSchedule(dag, 2);
  EXPECT_TRUE(ValidateSchedule(dag, s, Stages(2)).ok);
}

TEST(BackendCompileTest, DeterministicChecksum) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet50);
  const auto topo = graph::AnalyzeTopology(dag);
  const std::vector<graph::NodeId> ops(topo.order.begin(),
                                       topo.order.begin() + 40);
  const CompiledSegment a = CompileSegment(dag, ops);
  const CompiledSegment b = CompileSegment(dag, ops);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.scratch_bytes, b.scratch_bytes);
  EXPECT_GT(a.code.size(), ops.size());  // at least one instr per op
}

TEST(BackendCompileTest, ParamBytesMatchSegmentContents) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet50);
  const auto topo = graph::AnalyzeTopology(dag);
  const std::vector<graph::NodeId> ops(topo.order.begin(),
                                       topo.order.begin() + 25);
  const CompiledSegment seg = CompileSegment(dag, ops);
  std::int64_t expected = 0;
  for (const graph::NodeId v : ops) expected += dag.Attr(v).param_bytes;
  EXPECT_EQ(seg.param_bytes, expected);
}

TEST(BackendCompileTest, ScratchCoversWidestLiveSet) {
  // Two tensors alive simultaneously cannot share addresses.
  graph::Dag dag;
  for (int i = 0; i < 3; ++i) {
    graph::OpAttr attr;
    attr.output_bytes = 1000;
    dag.AddNode(std::move(attr));
  }
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 2);
  const CompiledSegment seg = CompileSegment(dag, {0, 1, 2});
  EXPECT_GE(seg.scratch_bytes, 2000);
}

TEST(BackendCompileTest, RejectsDuplicateOps) {
  graph::Dag dag;
  dag.AddNode({});
  EXPECT_THROW(CompileSegment(dag, {0, 0}), std::invalid_argument);
}

TEST(EdgeTpuCompilerTest, ProducesContiguousMonotoneSegments) {
  const graph::Dag dag = models::BuildModel(models::ModelName::kXception);
  EdgeTpuCompilerConfig config;
  config.num_stages = 4;
  config.refinement_rounds = 4;
  config.compile_passes = 1;
  const EdgeTpuCompileResult result = CompileForPipeline(dag, config);
  EXPECT_TRUE(ValidateSchedule(dag, result.schedule, Stages(4)).ok);
  EXPECT_EQ(result.rounds_executed, 4);
  EXPECT_GT(result.ops_compiled, dag.NodeCount());
}

TEST(EdgeTpuCompilerTest, MemoryBalanceWorseOrEqualToExact) {
  // The miscorrelated latency balancing must not beat the exact memory
  // optimizer on peak memory (this is the mechanism behind Fig. 4/5).
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  EdgeTpuCompilerConfig config;
  config.num_stages = 6;
  config.refinement_rounds = 6;
  config.compile_passes = 1;
  const auto compiler_peak =
      Evaluate(dag, CompileForPipeline(dag, config).schedule).peak_param_bytes;

  exact::BnbConfig bnb;
  bnb.num_stages = 6;
  bnb.max_expansions = 500'000;
  const auto exact_peak =
      exact::SolveExact(dag, bnb).objective.peak_param_bytes;
  EXPECT_GE(compiler_peak, exact_peak);
}

}  // namespace
}  // namespace respect::heuristics
