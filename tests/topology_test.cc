// Topological analysis tests: orders, ASAP/ALAP levels, mobility, depth,
// reachability, critical path — including property sweeps on random DAGs.
#include <gtest/gtest.h>

#include <random>

#include "graph/sampler.h"
#include "graph/topology.h"

namespace respect::graph {
namespace {

Dag Chain(int n) {
  Dag dag("chain");
  for (int i = 0; i < n; ++i) {
    dag.AddNode(OpAttr{"c" + std::to_string(i), OpType::kGeneric, 1, 1, 1});
  }
  for (int i = 0; i + 1 < n; ++i) dag.AddEdge(i, i + 1);
  return dag;
}

Dag Diamond() {
  Dag dag("diamond");
  for (int i = 0; i < 4; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 3);
  dag.AddEdge(2, 3);
  return dag;
}

TEST(TopologyTest, ChainLevels) {
  const TopoInfo t = AnalyzeTopology(Chain(5));
  EXPECT_EQ(t.depth, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(t.asap_level[i], i);
    EXPECT_EQ(t.alap_level[i], i);
    EXPECT_EQ(t.mobility[i], 0);
  }
}

TEST(TopologyTest, DiamondLevelsAndMobility) {
  const TopoInfo t = AnalyzeTopology(Diamond());
  EXPECT_EQ(t.depth, 3);
  EXPECT_EQ(t.asap_level[0], 0);
  EXPECT_EQ(t.asap_level[1], 1);
  EXPECT_EQ(t.asap_level[2], 1);
  EXPECT_EQ(t.asap_level[3], 2);
  EXPECT_EQ(t.mobility[1], 0);
  EXPECT_EQ(t.mobility[2], 0);
}

TEST(TopologyTest, MobilityPositiveForSlackNode) {
  // 0 -> 1 -> 2 -> 3 and 0 -> s -> 3: s has slack 1.
  Dag dag;
  for (int i = 0; i < 5; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  dag.AddEdge(2, 3);
  dag.AddEdge(0, 4);
  dag.AddEdge(4, 3);
  const TopoInfo t = AnalyzeTopology(dag);
  EXPECT_EQ(t.mobility[4], 1);
  EXPECT_EQ(t.asap_level[4], 1);
  EXPECT_EQ(t.alap_level[4], 2);
}

TEST(TopologyTest, OrderIsTopological) {
  const Dag dag = Diamond();
  const TopoInfo t = AnalyzeTopology(dag);
  EXPECT_TRUE(IsTopologicalOrder(dag, t.order));
}

TEST(TopologyTest, IsTopologicalOrderRejectsBadOrders) {
  const Dag dag = Diamond();
  EXPECT_FALSE(IsTopologicalOrder(dag, {3, 2, 1, 0}));   // reversed
  EXPECT_FALSE(IsTopologicalOrder(dag, {0, 1, 2}));      // incomplete
  EXPECT_FALSE(IsTopologicalOrder(dag, {0, 0, 1, 2}));   // duplicate
}

TEST(TopologyTest, OrderPositionsInverts) {
  const std::vector<NodeId> order{2, 0, 1};
  const std::vector<int> pos = OrderPositions(order, 3);
  EXPECT_EQ(pos[2], 0);
  EXPECT_EQ(pos[0], 1);
  EXPECT_EQ(pos[1], 2);
}

TEST(TopologyTest, OrderPositionsRejectsNonPermutation) {
  EXPECT_THROW(OrderPositions({0, 0}, 2), std::invalid_argument);
  EXPECT_THROW(OrderPositions({0, 5}, 2), std::invalid_argument);
}

TEST(TopologyTest, TransitiveReachabilityDiamond) {
  const auto reach = TransitiveReachability(Diamond());
  EXPECT_EQ(reach[0], (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(reach[1], std::vector<NodeId>{3});
  EXPECT_TRUE(reach[3].empty());
}

TEST(TopologyTest, CriticalPathMacsChain) {
  Dag dag = Chain(4);
  for (NodeId v = 0; v < 4; ++v) dag.MutableAttr(v).macs = 10;
  const auto cp = CriticalPathMacs(dag);
  EXPECT_EQ(cp[0], 40);
  EXPECT_EQ(cp[3], 10);
}

// Property sweep: invariants on sampled graphs across seeds and degrees.
class TopologyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopologyPropertyTest, SampledGraphInvariants) {
  const auto [seed, degree] = GetParam();
  std::mt19937_64 rng(seed);
  SamplerConfig config;
  config.num_nodes = 30;
  config.max_in_degree = degree;
  const Dag dag = SampleDag(config, rng);
  const TopoInfo t = AnalyzeTopology(dag);

  EXPECT_TRUE(IsTopologicalOrder(dag, t.order));
  EXPECT_LE(dag.MaxInDegree(), degree);
  EXPECT_EQ(dag.Sources().size(), 1u);
  EXPECT_EQ(dag.Sinks().size(), 1u);

  // ASAP <= ALAP everywhere; depth consistent with level range.
  for (NodeId v = 0; v < dag.NodeCount(); ++v) {
    EXPECT_LE(t.asap_level[v], t.alap_level[v]);
    EXPECT_LT(t.alap_level[v], t.depth);
    EXPECT_EQ(t.mobility[v], t.alap_level[v] - t.asap_level[v]);
    for (const NodeId p : dag.Parents(v)) {
      EXPECT_LT(t.asap_level[p], t.asap_level[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TopologyPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(2, 3, 4, 5, 6)));

}  // namespace
}  // namespace respect::graph
