// Graph text-serialization round trips and error handling.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <sstream>

#include "graph/sampler.h"
#include "graph/serialize.h"
#include "models/zoo.h"

namespace respect::graph {
namespace {

void ExpectDagsEqual(const Dag& a, const Dag& b) {
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  ASSERT_EQ(a.EdgeCount(), b.EdgeCount());
  EXPECT_EQ(a.Name(), b.Name());
  for (NodeId v = 0; v < a.NodeCount(); ++v) {
    EXPECT_EQ(a.Attr(v).name, b.Attr(v).name);
    EXPECT_EQ(a.Attr(v).type, b.Attr(v).type);
    EXPECT_EQ(a.Attr(v).param_bytes, b.Attr(v).param_bytes);
    EXPECT_EQ(a.Attr(v).output_bytes, b.Attr(v).output_bytes);
    EXPECT_EQ(a.Attr(v).macs, b.Attr(v).macs);
  }
  for (int i = 0; i < a.EdgeCount(); ++i) {
    EXPECT_EQ(a.Edges()[i], b.Edges()[i]);
  }
}

TEST(SerializeTest, RoundTripsSampledGraph) {
  std::mt19937_64 rng(1);
  const Dag dag = SampleTrainingDag(30, rng);
  std::stringstream ss;
  WriteDag(dag, ss);
  ExpectDagsEqual(dag, ReadDag(ss));
}

TEST(SerializeTest, RoundTripsRealModel) {
  const Dag dag = models::BuildModel(models::ModelName::kXception);
  std::stringstream ss;
  WriteDag(dag, ss);
  ExpectDagsEqual(dag, ReadDag(ss));
}

TEST(SerializeTest, RoundTripsThroughFile) {
  const std::string path = "/tmp/respect_dag_test.txt";
  std::mt19937_64 rng(2);
  const Dag dag = SampleTrainingDag(20, rng);
  SaveDag(dag, path);
  ExpectDagsEqual(dag, LoadDag(path));
  std::filesystem::remove(path);
}

TEST(SerializeTest, PreservesNamesWithSpaces) {
  Dag dag("my model v2");
  OpAttr attr;
  attr.name = "conv 1 / branch a";
  dag.AddNode(std::move(attr));
  dag.AddNode({});
  dag.AddEdge(0, 1);
  std::stringstream ss;
  WriteDag(dag, ss);
  const Dag loaded = ReadDag(ss);
  EXPECT_EQ(loaded.Name(), "my model v2");
  EXPECT_EQ(loaded.Attr(0).name, "conv 1 / branch a");
}

TEST(SerializeTest, RejectsBadHeader) {
  std::stringstream ss("not-a-dag 1\n");
  EXPECT_THROW(ReadDag(ss), std::runtime_error);
}

TEST(SerializeTest, RejectsOutOfOrderNodeIds) {
  std::stringstream ss(
      "respect-dag 1\nname x\nnode 1 Conv2D 0 0 0 a\n");
  EXPECT_THROW(ReadDag(ss), std::runtime_error);
}

TEST(SerializeTest, RejectsUnknownRecord) {
  std::stringstream ss("respect-dag 1\nblob 1 2 3\n");
  EXPECT_THROW(ReadDag(ss), std::runtime_error);
}

TEST(SerializeTest, RejectsDanglingEdge) {
  std::stringstream ss(
      "respect-dag 1\nnode 0 Conv2D 1 1 1 a\nedge 0 7\n");
  EXPECT_THROW(ReadDag(ss), std::invalid_argument);
}

TEST(SerializeTest, RejectsCyclicInput) {
  std::stringstream ss(
      "respect-dag 1\n"
      "node 0 Conv2D 1 1 1 a\nnode 1 Conv2D 1 1 1 b\n"
      "edge 0 1\nedge 1 0\n");
  EXPECT_THROW(ReadDag(ss), std::logic_error);
}

}  // namespace
}  // namespace respect::graph
