// tpu::DeviceProfile tests — preset registry, fingerprint canonicalization
// (name-blind, trailing-repeat collapse), per-stage clamping, heterogeneous
// package costing, and DES-vs-analytic agreement on a non-uniform profile.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "deploy/package.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "sched/device_aware.h"
#include "tpu/device.h"
#include "tpu/sim.h"

namespace respect {
namespace {

using tpu::DeviceProfile;
using tpu::EdgeTpuModel;

deploy::PipelinePackage MakePackage(int stages, std::uint64_t seed = 42) {
  std::mt19937_64 rng(seed);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  const auto dp = exact::PartitionDefaultOrder(dag, stages);
  return deploy::BuildPackage(dag, dp.schedule, /*quantize=*/true);
}

TEST(DeviceProfileTest, PresetRegistryResolvesEveryListedName) {
  const std::vector<std::string_view> names = tpu::ProfileNames();
  ASSERT_GE(names.size(), 4u);
  for (const std::string_view name : names) {
    const auto profile = tpu::FindProfile(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
  }
  // The empty string is the "no profile requested" spelling of the default.
  const auto unnamed = tpu::FindProfile("");
  ASSERT_TRUE(unnamed.has_value());
  EXPECT_TRUE(unnamed->IsDefault());
  EXPECT_FALSE(tpu::FindProfile("no-such-fleet").has_value());
}

TEST(DeviceProfileTest, FingerprintIgnoresTheNameAndSeparatesHardware) {
  DeviceProfile renamed = tpu::DefaultProfile();
  renamed.name = "my-lab-corals";
  EXPECT_EQ(renamed.Fingerprint(), tpu::DefaultProfile().Fingerprint());
  EXPECT_TRUE(renamed.IsDefault());

  // Every built-in preset describes distinct hardware.
  const std::vector<std::string_view> names = tpu::ProfileNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(tpu::FindProfile(names[i])->Fingerprint(),
                tpu::FindProfile(names[j])->Fingerprint())
          << names[i] << " vs " << names[j];
    }
  }
}

TEST(DeviceProfileTest, TrailingRepeatStagesCollapseToTheSameFingerprint) {
  // Under the clamping rule {stock, stock, stock} behaves exactly like an
  // empty pattern at every stage count, so they must fingerprint equal.
  DeviceProfile padded;
  padded.stages = {EdgeTpuModel{}, EdgeTpuModel{}, EdgeTpuModel{}};
  EXPECT_EQ(padded.Fingerprint(), tpu::DefaultProfile().Fingerprint());
  EXPECT_TRUE(padded.IsDefault());
  EXPECT_TRUE(padded.IsUniform());

  // A fast stage 0 padded with stock tails likewise collapses.
  const DeviceProfile x2fast = *tpu::FindProfile("coral-x2fast");
  DeviceProfile x2fast_padded = x2fast;
  x2fast_padded.stages.push_back(EdgeTpuModel{});
  EXPECT_EQ(x2fast_padded.Fingerprint(), x2fast.Fingerprint());
  EXPECT_FALSE(x2fast.IsUniform());
  EXPECT_FALSE(x2fast.IsDefault());
}

TEST(DeviceProfileTest, DeviceAtClampsToThePatternEnds) {
  const DeviceProfile x2fast = *tpu::FindProfile("coral-x2fast");
  const EdgeTpuModel& fast = x2fast.DeviceAt(0);
  EXPECT_GT(fast.macs_per_us, EdgeTpuModel{}.macs_per_us);
  EXPECT_EQ(x2fast.DeviceAt(1), EdgeTpuModel{});
  EXPECT_EQ(x2fast.DeviceAt(7), EdgeTpuModel{});   // clamps high
  EXPECT_EQ(x2fast.DeviceAt(-3), fast);            // clamps low
  // An empty pattern is stock everywhere.
  EXPECT_EQ(DeviceProfile{}.DeviceAt(2), EdgeTpuModel{});
}

TEST(DeviceProfileTest, ProfilePackageMatchesHomogeneousOnDefault) {
  const auto package = MakePackage(4);
  const auto homogeneous = tpu::ProfilePackage(package);
  const auto via_profile = tpu::ProfilePackage(package, tpu::DefaultProfile());
  ASSERT_EQ(homogeneous.size(), via_profile.size());
  for (std::size_t k = 0; k < homogeneous.size(); ++k) {
    EXPECT_DOUBLE_EQ(homogeneous[k].TotalUs(), via_profile[k].TotalUs()) << k;
  }
}

TEST(DeviceProfileTest, HeterogeneousCostingSpeedsUpExactlyTheFastStage) {
  const auto package = MakePackage(4);
  const auto stock = tpu::ProfilePackage(package);
  const auto hetero =
      tpu::ProfilePackage(package, *tpu::FindProfile("coral-x2fast"));
  ASSERT_EQ(stock.size(), hetero.size());
  // Stage 0 computes at 2x the rate (and never slower overall); the other
  // stages are untouched.
  EXPECT_LT(hetero[0].compute_us, stock[0].compute_us);
  for (std::size_t k = 1; k < stock.size(); ++k) {
    EXPECT_DOUBLE_EQ(hetero[k].TotalUs(), stock[k].TotalUs()) << k;
  }
}

TEST(DeviceProfileTest, SimAgreesWithAnalyticOnANonUniformProfile) {
  const auto package = MakePackage(4);
  const DeviceProfile profile = *tpu::FindProfile("coral-x2fast");
  constexpr int kInferences = 500;
  const auto sim = tpu::SimulatePipeline(package, profile, kInferences);
  const double analytic = tpu::AnalyticPipelineUs(
      tpu::ProfilePackage(package, profile), kInferences);
  // The recurrence is exact for a linear pipeline; the DES must agree to
  // numerical noise even when stages run on different devices.
  EXPECT_NEAR(sim.total_us, analytic, 1e-6 * analytic);
}

TEST(DeviceProfileTest, RebalanceForProfileImprovesTheEstimatedBottleneck) {
  std::mt19937_64 rng(7);
  const graph::Dag dag = graph::SampleTrainingDag(40, rng);
  const auto dp = exact::PartitionDefaultOrder(dag, 4);

  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;
  constraints.profile = *tpu::FindProfile("coral-x2fast");

  sched::Schedule rebalanced = dp.schedule;
  const double before = sched::EstimateBottleneckUs(dag, dp.schedule,
                                                    constraints.profile);
  const bool changed =
      sched::RebalanceForProfile(dag, constraints, rebalanced);
  const double after =
      sched::EstimateBottleneckUs(dag, rebalanced, constraints.profile);
  EXPECT_TRUE(sched::ValidateSchedule(dag, rebalanced, constraints).ok);
  EXPECT_LE(after, before);
  if (changed) EXPECT_LT(after, before);

  // The default profile is a guaranteed no-op: legacy behavior is
  // bit-identical when nobody asks for heterogeneous hardware.
  sched::PipelineConstraints default_constraints;
  default_constraints.num_stages = 4;
  sched::Schedule untouched = dp.schedule;
  EXPECT_FALSE(sched::RebalanceForProfile(dag, default_constraints, untouched));
  EXPECT_EQ(untouched.stage, dp.schedule.stage);
}

}  // namespace
}  // namespace respect
