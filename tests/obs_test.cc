// Tests for the observability layer: the tracer's per-thread rings and span
// nesting, trace-id propagation, the metrics registry (idempotent
// registration, Prometheus rendering, histogram quantiles), and the
// chrometrace exporter (JSON shape, fragment merging, sim timelines).
//
// The tracer is process-global, so every test that arms it first drains any
// leftovers from an earlier test and stops it before returning — the same
// discipline serve_cli uses around a traced run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrometrace.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tpu/device.h"
#include "tpu/sim.h"

namespace {

using namespace respect;

/// Arms the tracer on construction (after clearing stale events) and stops +
/// drains on destruction, so tests cannot leak armed state into each other.
class ScopedTracing {
 public:
  ScopedTracing() {
    (void)obs::Tracer::Global().Drain();
    obs::Tracer::Global().Start();
  }
  ~ScopedTracing() {
    obs::Tracer::Global().Stop();
    (void)obs::Tracer::Global().Drain();
  }
};

TEST(ObsTrace, DisarmedEmitsNothing) {
  (void)obs::Tracer::Global().Drain();
  obs::Tracer::Global().Stop();
  {
    OBS_SPAN("test.disarmed");
  }
  obs::RecordInstant("test.disarmed_instant");
  EXPECT_TRUE(obs::Tracer::Global().Drain().empty());
}

// The RAII-span tests need the OBS_SPAN macro compiled in (the default); a
// -DRESPECT_OBS=OFF build drops them — everything else goes through the
// always-compiled RecordSpan/RecordInstant API so ring, registry, and
// exporter coverage survives the compiled-away configuration.
#if defined(RESPECT_OBS) && RESPECT_OBS
TEST(ObsTrace, SpansRecordNameDepthAndNesting) {
  ScopedTracing tracing;
  {
    OBS_SPAN("test.outer");
    {
      OBS_SPAN("test.inner");
    }
  }
  EXPECT_EQ(obs::Tracer::ThreadSpanDepth(), 0u);

  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  // RAII closes inner first, so it drains first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The outer interval contains the inner one.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
  EXPECT_GE(events[0].dur_us, 0);
}
#endif  // RESPECT_OBS

TEST(ObsTrace, ScopedTraceIdNestsAndRestores) {
  ScopedTracing tracing;
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  {
    obs::ScopedTraceId outer(7);
    EXPECT_EQ(obs::CurrentTraceId(), 7u);
    {
      obs::ScopedTraceId inner(9);
      EXPECT_EQ(obs::CurrentTraceId(), 9u);
      obs::RecordInstant("test.tagged");
    }
    EXPECT_EQ(obs::CurrentTraceId(), 7u);
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);

  const auto events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 9u);
}

TEST(ObsTrace, MintTraceIdIsNonzeroAndUnique) {
  auto& tracer = obs::Tracer::Global();
  const std::uint64_t a = tracer.MintTraceId();
  const std::uint64_t b = tracer.MintTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(ObsTrace, ExplicitSpansAndInstants) {
  ScopedTracing tracing;
  obs::RecordSpan("test.cross_thread", /*start_us=*/100, /*end_us=*/250,
                  /*trace_id=*/42);
  obs::RecordInstant("test.marker");

  const auto events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.cross_thread");
  EXPECT_EQ(events[0].start_us, 100);
  EXPECT_EQ(events[0].dur_us, 150);
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_STREQ(events[1].name, "test.marker");
  EXPECT_LT(events[1].dur_us, 0);  // instant marker
}

TEST(ObsTrace, FullRingDropsNewestAndCounts) {
  ScopedTracing tracing;
  const std::uint64_t dropped_before = obs::Tracer::Global().Dropped();
  const std::size_t emitted = obs::Tracer::kRingCapacity + 100;
  for (std::size_t i = 0; i < emitted; ++i) {
    obs::RecordInstant("test.flood");
  }
  const auto events = obs::Tracer::Global().Drain();
  EXPECT_EQ(events.size(), obs::Tracer::kRingCapacity);
  EXPECT_EQ(obs::Tracer::Global().Dropped() - dropped_before,
            emitted - obs::Tracer::kRingCapacity);
}

/// Many emitters racing one drainer: every ring is SPSC so this must be
/// data-race-free (the TSan CI leg runs this test) and no event may tear —
/// every drained name is one of the emitted literals.
TEST(ObsTrace, ConcurrentEmissionIsCleanUnderDrain) {
  ScopedTracing tracing;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 2000;
  std::atomic<bool> stop{false};
  std::vector<obs::TraceEvent> drained;

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto batch = obs::Tracer::Global().Drain();
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
  });
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::RecordInstant("test.concurrent");
        obs::RecordInstant("test.concurrent_inner");
      }
    });
  }
  for (auto& thread : emitters) thread.join();
  stop.store(true, std::memory_order_release);
  drainer.join();

  auto tail = obs::Tracer::Global().Drain();
  drained.insert(drained.end(), tail.begin(), tail.end());
  const std::uint64_t total_seen =
      drained.size() + obs::Tracer::Global().Dropped();
  EXPECT_GE(total_seen,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread * 2);
  for (const auto& event : drained) {
    const std::string name = event.name;
    EXPECT_TRUE(name == "test.concurrent" || name == "test.concurrent_inner")
        << name;
  }
}

TEST(ObsRegistry, GetCounterIsIdempotent) {
  obs::Registry registry;
  obs::Counter& a = registry.GetCounter("respect_test_total", "first help");
  obs::Counter& b = registry.GetCounter("respect_test_total", "second help");
  EXPECT_EQ(&a, &b);
  a.fetch_add(3);
  ++b;
  EXPECT_EQ(a.load(), 4u);
}

TEST(ObsRegistry, HistogramQuantilesInterpolate) {
  obs::Registry registry;
  obs::Histogram& hist = registry.GetHistogram(
      "respect_test_seconds", "", std::vector<double>{1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) hist.Observe(0.5);   // first bucket
  for (int i = 0; i < 100; ++i) hist.Observe(3.0);   // (2, 4] bucket
  EXPECT_EQ(hist.Count(), 200u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 100 * 0.5 + 100 * 3.0);
  EXPECT_LE(hist.Quantile(0.25), 1.0);
  const double p75 = hist.Quantile(0.75);
  EXPECT_GT(p75, 2.0);
  EXPECT_LE(p75, 4.0);
  // Overflow observations report the largest finite bound.
  hist.Observe(100.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 4.0);
}

TEST(ObsRegistry, RenderPrometheusExposition) {
  obs::Registry registry;
  registry.GetCounter("respect_test_hits_total", "Test hits").fetch_add(5);
  registry.GetGauge("respect_test_depth", "Test depth").Set(2.5);
  obs::Histogram& hist =
      registry.GetHistogram("respect_test_wait_seconds", "Test waits",
                            std::vector<double>{0.1, 1.0});
  hist.Observe(0.05);
  hist.Observe(0.5);

  std::ostringstream os;
  registry.RenderPrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP respect_test_hits_total Test hits"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE respect_test_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("respect_test_hits_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE respect_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE respect_test_wait_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: the le="1" bucket includes the le="0.1" count.
  EXPECT_NE(text.find("respect_test_wait_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("respect_test_wait_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("respect_test_wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("respect_test_wait_seconds_count 2"), std::string::npos);
}

TEST(ObsChrometrace, WriteChromeTraceShape) {
  ScopedTracing tracing;
  obs::RecordSpan("test.export", obs::NowMicros(), obs::NowMicros() + 5,
                  /*trace_id=*/11);
  obs::RecordInstant("test.mark");

  std::ostringstream os;
  obs::WriteChromeTrace(os, obs::Tracer::Global().Drain(), /*pid=*/3);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant marker
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":11"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(ObsChrometrace, FragmentsMergeIntoOneArray) {
  ScopedTracing tracing;
  obs::RecordInstant("test.shard_a");
  std::string fragment_a;
  obs::AppendChromeTraceEvents(fragment_a, obs::Tracer::Global().Drain(),
                               /*pid=*/1);
  obs::RecordInstant("test.shard_b");
  std::string fragment_b;
  obs::AppendChromeTraceEvents(fragment_b, obs::Tracer::Global().Drain(),
                               /*pid=*/2);
  ASSERT_FALSE(fragment_a.empty());
  ASSERT_FALSE(fragment_b.empty());
  EXPECT_NE(fragment_a.front(), '[');  // fragments carry no brackets

  std::ostringstream os;
  obs::WriteChromeTraceFragments(os, {fragment_a, std::string(), fragment_b});
  const std::string json = os.str();
  EXPECT_NE(json.find("test.shard_a"), std::string::npos);
  EXPECT_NE(json.find("test.shard_b"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // One well-formed object: both fragments inside a single traceEvents array.
  EXPECT_EQ(json.find("traceEvents"), json.rfind("traceEvents"));
}

TEST(ObsChrometrace, SimTimelineExportsStageTracks) {
  std::vector<tpu::SimTimelineEntry> timeline = {
      {.inference = 0, .stage = 0, .start_us = 0.0, .finish_us = 10.0},
      {.inference = 0, .stage = 1, .start_us = 10.0, .finish_us = 30.0},
      {.inference = 1, .stage = 0, .start_us = 10.0, .finish_us = 20.0},
  };
  tpu::StageCost cost0;
  cost0.compute_us = 8.0;
  cost0.input_xfer_us = 1.0;
  cost0.output_xfer_us = 1.0;
  tpu::StageCost cost1;
  cost1.compute_us = 20.0;

  std::ostringstream os;
  obs::WriteSimChromeTrace(os, timeline, {cost0, cost1});
  const std::string json = os.str();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  // One tid track per stage, and cost sub-events visible next to compute.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("compute"), std::string::npos);
}

TEST(ObsChrometrace, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::JsonEscape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

}  // namespace
