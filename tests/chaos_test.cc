// Failure-domain hardening, end to end: cooperative cancellation must unwind
// every polling engine with CancelledError (never a truncated schedule), a
// blown solve budget must walk the configured fallback chain and come back
// degraded — cached under the fallback engine's own key, never the preferred
// one's — circuit breakers must open on consecutive failures, short-circuit
// the sick engine, and recover through a half-open probe, bounded lanes must
// shed with the typed Overloaded instead of queueing doomed work, and the
// failpoint framework must inject faults at every registered site (engine
// solve, queue pop, store read/write/rename, writeback) without a single
// silent drop or stranded waiter.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/failpoint.h"
#include "core/respect.h"
#include "core/thread_pool.h"
#include "engines/engine.h"
#include "engines/registry.h"
#include "graph/canonical_hash.h"
#include "graph/sampler.h"
#include "net/fleet_client.h"
#include "net/fleet_server.h"
#include "net/socket.h"
#include "serve/circuit_breaker.h"
#include "serve/compile_service.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "obs/trace.h"
#include "serve/store/disk_store.h"
#include "tpu/device_profile.h"

namespace respect {
namespace {

namespace fs = std::filesystem;

using core::CancelledError;
using core::CancelToken;
using core::failpoint::FailpointError;
using core::failpoint::ScopedFailpoint;
using serve::CachePolicy;
using serve::CacheOutcome;
using serve::CompileRequest;
using serve::CompileResponse;
using serve::DeadlineExceeded;
using serve::Overloaded;
using serve::Priority;
using serve::RequestQueue;
using serve::ResultPtr;
using serve::store::DiskStore;
using serve::store::DiskStoreOptions;
using serve::store::SpillMeta;

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 12;
  options.exact_max_expansions = 200'000;
  options.exact_time_limit_seconds = 0.0;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

graph::Dag SampleDag(int nodes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return graph::SampleTrainingDag(nodes, rng);
}

CompileResponse Ask(serve::CompileService& service, const graph::Dag& dag,
                    int num_stages, serve::EngineRef engine,
                    CachePolicy policy = CachePolicy::kUse) {
  return service.Compile(CompileRequest{.dag = dag,
                                        .num_stages = num_stages,
                                        .engine = std::move(engine),
                                        .cache_policy = policy});
}

/// Fresh directory under the test temp root, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// True when `dir` holds any leftover temp file (failed writes must not
/// litter).
bool HasTempLitter(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return true;
  }
  return false;
}

/// Engine that takes ~150ms, polling its CancelToken between 2ms strides —
/// the stand-in for a slow solver that honors cooperative cancellation.
class StallPollEngine : public engines::SchedulerEngine {
 public:
  static std::atomic<int>& Solves() {
    static std::atomic<int> solves{0};
    return solves;
  }

  [[nodiscard]] std::string_view Name() const override { return "StallPoll"; }

  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget& budget) const override {
    for (int i = 0; i < 75; ++i) {
      budget.cancel.ThrowIfCancelled("stall-poll");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    Solves().fetch_add(1);
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

/// Engine whose health is a test-controlled switch; unhealthy solves throw.
class FlakyEngine : public engines::SchedulerEngine {
 public:
  static std::atomic<bool>& Healthy() {
    static std::atomic<bool> healthy{true};
    return healthy;
  }
  static std::atomic<int>& Attempts() {
    static std::atomic<int> attempts{0};
    return attempts;
  }

  [[nodiscard]] std::string_view Name() const override { return "Flaky"; }

  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget&) const override {
    Attempts().fetch_add(1);
    if (!Healthy().load()) {
      throw std::runtime_error("flaky: injected backend failure");
    }
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

void EnsureChaosEngines() {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("StallPoll")) {
    registry.Register({"StallPoll", "", "test-only cancellable slow engine",
                       {}, [](const engines::EngineContext&) {
                         return std::make_unique<StallPollEngine>();
                       }});
  }
  if (!registry.Contains("Flaky")) {
    registry.Register({"Flaky", "", "test-only switchable failing engine", {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<FlakyEngine>();
                       }});
  }
  StallPollEngine::Solves().store(0);
  FlakyEngine::Healthy().store(true);
  FlakyEngine::Attempts().store(0);
}

// ── CancelToken ──────────────────────────────────────────────────────────

TEST(CancelTokenTest, EmptyTokenNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.Cancellable());
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();  // no-op on an empty token
  EXPECT_FALSE(token.Cancelled());
  EXPECT_NO_THROW(token.ThrowIfCancelled("nowhere"));
}

TEST(CancelTokenTest, ManualTokenFiresOnCancel) {
  const CancelToken token = CancelToken::Manual();
  EXPECT_TRUE(token.Cancellable());
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_THROW(token.ThrowIfCancelled("manual"), CancelledError);
}

TEST(CancelTokenTest, BudgetTokenFiresAfterItsDeadline) {
  const CancelToken token = CancelToken::WithBudget(0.02);
  EXPECT_FALSE(token.Cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(token.Cancelled());
  // A later poll stays cancelled (the deadline latches).
  EXPECT_TRUE(token.Cancelled());
}

TEST(EngineCancelTest, FiredTokenUnwindsEveryPollingEngine) {
  const PipelineCompiler compiler(FastOptions());
  const graph::Dag dag = SampleDag(32, 11);
  CancelToken fired = CancelToken::Manual();
  fired.Cancel();
  for (const std::string_view engine : {"anneal", "exact", "respect"}) {
    EXPECT_THROW(
        (void)compiler.Compile(dag, 4, engine, tpu::DefaultProfile(), fired),
        CancelledError)
        << engine;
  }
}

TEST(EngineCancelTest, EmptyTokenCompilesIdenticallyToThePlainOverload) {
  const PipelineCompiler compiler(FastOptions());
  const graph::Dag dag = SampleDag(24, 12);
  const CompileResult plain = compiler.Compile(dag, 4, "list");
  const CompileResult tokened =
      compiler.Compile(dag, 4, "list", tpu::DefaultProfile(), CancelToken());
  EXPECT_EQ(plain.schedule.stage, tokened.schedule.stage);
  EXPECT_EQ(plain.schedule.num_stages, tokened.schedule.num_stages);
}

// ── Failpoint framework ──────────────────────────────────────────────────
// Everything below the CancelToken suites needs failpoints compiled in
// (the default); a -DRESPECT_FAILPOINTS=OFF build drops these tests.
#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS

TEST(FailpointTest, DisarmedSitesAreInvisible) {
  core::failpoint::ClearAll();
  EXPECT_FALSE(core::failpoint::Armed());
  // A bare macro visit with nothing configured is a no-op.
  RESPECT_FAILPOINT("chaos.test.unconfigured");
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.unconfigured"), 0u);
}

TEST(FailpointTest, ErrorActionThrowsAndCountsVisits) {
  const ScopedFailpoint fp("chaos.test.err", "error(boom)");
  EXPECT_TRUE(core::failpoint::Armed());
  EXPECT_THROW(RESPECT_FAILPOINT("chaos.test.err"), FailpointError);
  EXPECT_THROW(RESPECT_FAILPOINT("chaos.test.err"), FailpointError);
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.err"), 2u);
  // Unconfigured sites stay silent while another site is armed.
  RESPECT_FAILPOINT("chaos.test.other");
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.other"), 0u);
}

TEST(FailpointTest, CountLimitedActionsFireThenOnlyCount) {
  const ScopedFailpoint fp("chaos.test.once", "error", /*count=*/1);
  EXPECT_THROW(RESPECT_FAILPOINT("chaos.test.once"), FailpointError);
  EXPECT_NO_THROW(RESPECT_FAILPOINT("chaos.test.once"));
  EXPECT_NO_THROW(RESPECT_FAILPOINT("chaos.test.once"));
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.once"), 3u);
}

TEST(FailpointTest, OffActionCountsWithoutInjecting) {
  const ScopedFailpoint fp("chaos.test.off", "off");
  EXPECT_NO_THROW(RESPECT_FAILPOINT("chaos.test.off"));
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.off"), 1u);
}

TEST(FailpointTest, DelayActionStallsTheCaller) {
  const ScopedFailpoint fp("chaos.test.delay", "delay(30)");
  const auto start = std::chrono::steady_clock::now();
  RESPECT_FAILPOINT("chaos.test.delay");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.025);
}

TEST(FailpointTest, BadActionsAndSpecsAreRejected) {
  EXPECT_THROW(core::failpoint::Configure("chaos.test.bad", "explode"),
               std::invalid_argument);
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.bad"), 0u);

  EXPECT_TRUE(core::failpoint::ConfigureFromSpec(
      "chaos.test.spec1=off;chaos.test.spec2=delay(1)"));
  RESPECT_FAILPOINT("chaos.test.spec1");
  EXPECT_EQ(core::failpoint::HitCount("chaos.test.spec1"), 1u);
  core::failpoint::Clear("chaos.test.spec1");
  core::failpoint::Clear("chaos.test.spec2");

  EXPECT_FALSE(core::failpoint::ConfigureFromSpec("not-a-clause"));
  EXPECT_FALSE(core::failpoint::ConfigureFromSpec("chaos.test.x=explode"));
  core::failpoint::ClearAll();
  EXPECT_FALSE(core::failpoint::Armed());
}

TEST(FailpointTest, EngineSolveSiteIsTaggedPerEngine) {
  const PipelineCompiler compiler(FastOptions());
  const graph::Dag dag = SampleDag(24, 13);
  const ScopedFailpoint fp("engine.solve.ListScheduling", "error");
  EXPECT_THROW((void)compiler.Compile(dag, 4, "list"), FailpointError);
  // Other engines pass the untagged site untouched.
  EXPECT_NO_THROW((void)compiler.Compile(dag, 4, "greedy"));
  EXPECT_GE(core::failpoint::HitCount("engine.solve.ListScheduling"), 1u);
}

// ── Solve budgets, fallback chains, degraded caching ─────────────────────

TEST(ChaosServiceTest, BlownBudgetFallsBackDegradedAndCachesUnderFallbackKey) {
  EnsureChaosEngines();
  serve::ServiceOptions svc;
  svc.fallback_chain = {"list"};
  serve::CompileService service(FastOptions(), svc);
  const graph::Dag dag = SampleDag(24, 21);

  const CompileResponse degraded =
      service.Compile(CompileRequest{.dag = dag,
                                     .num_stages = 4,
                                     .engine = "StallPoll",
                                     .solve_budget_seconds = 0.05});
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.outcome, CacheOutcome::kMiss);
  EXPECT_EQ(degraded.engine_name, "ListScheduling");
  EXPECT_EQ(degraded.requested_engine, "StallPoll");
  ASSERT_NE(degraded.result, nullptr);
  EXPECT_EQ(degraded.result->schedule.num_stages, 4);
  EXPECT_EQ(StallPollEngine::Solves().load(), 0);  // cancelled, never finished

  auto metrics = service.Metrics();
  EXPECT_EQ(metrics.budget_blown, 1u);
  EXPECT_EQ(metrics.degraded_served, 1u);
  EXPECT_EQ(metrics.fallback_exhausted, 0u);
  ASSERT_TRUE(metrics.breakers.count("StallPoll"));
  EXPECT_EQ(metrics.breakers.at("StallPoll").consecutive_failures, 1);

  // The degraded result lives under the fallback engine's own key: asking
  // for ListScheduling outright is a hit on the same shared result...
  const CompileResponse direct = Ask(service, dag, 4, "list");
  EXPECT_EQ(direct.outcome, CacheOutcome::kHit);
  EXPECT_FALSE(direct.degraded);
  EXPECT_EQ(direct.result, degraded.result);

  // ...while the preferred engine's key was never populated: the same
  // request misses again (and degrades again).
  const CompileResponse again =
      service.Compile(CompileRequest{.dag = dag,
                                     .num_stages = 4,
                                     .engine = "StallPoll",
                                     .solve_budget_seconds = 0.05});
  EXPECT_EQ(again.outcome, CacheOutcome::kMiss);
  EXPECT_TRUE(again.degraded);
  EXPECT_EQ(service.Metrics().budget_blown, 2u);
}

TEST(ChaosServiceTest, BlownBudgetWithoutFallbackIsDeadlineExceeded) {
  EnsureChaosEngines();
  serve::ServiceOptions svc;
  svc.default_solve_budget_seconds = 0.05;
  serve::CompileService service(FastOptions(), svc);
  const graph::Dag dag = SampleDag(24, 22);

  EXPECT_THROW((void)Ask(service, dag, 4, "StallPoll"), DeadlineExceeded);
  const auto metrics = service.Metrics();
  EXPECT_EQ(metrics.budget_blown, 1u);
  EXPECT_EQ(metrics.fallback_exhausted, 1u);
  EXPECT_EQ(metrics.failures, 1u);
  EXPECT_EQ(metrics.deadline_expired, 1u);
  EXPECT_EQ(metrics.degraded_served, 0u);
}

TEST(ChaosServiceTest, InjectedEngineErrorWalksTheFallbackChain) {
  EnsureChaosEngines();
  serve::ServiceOptions svc;
  svc.fallback_chain = {"greedy"};
  serve::CompileService service(FastOptions(), svc);
  const graph::Dag dag = SampleDag(24, 23);

  const ScopedFailpoint fp("engine.solve.ListScheduling", "error");
  const CompileResponse response = Ask(service, dag, 4, "list");
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.engine_name, "GreedyBalance");
  EXPECT_EQ(response.requested_engine, "ListScheduling");
  ASSERT_NE(response.result, nullptr);
  EXPECT_EQ(service.Metrics().degraded_served, 1u);
}

TEST(ChaosServiceTest, UnknownFallbackEngineFailsAtConstruction) {
  serve::ServiceOptions svc;
  svc.fallback_chain = {"no-such-engine"};
  EXPECT_THROW(serve::CompileService(FastOptions(), svc),
               std::invalid_argument);
}

// ── Circuit breakers ─────────────────────────────────────────────────────

TEST(ChaosServiceTest, BreakerOpensShortCircuitsAndRecoversViaProbe) {
  EnsureChaosEngines();
  FlakyEngine::Healthy().store(false);

  auto fake_now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  serve::ServiceOptions svc;
  svc.fallback_chain = {"list"};
  svc.breaker_failure_threshold = 2;
  svc.breaker_open_seconds = 10.0;
  svc.breaker_clock = [fake_now] { return *fake_now; };
  serve::CompileService service(FastOptions(), svc);

  // Two consecutive failures open the breaker; both requests still come
  // back valid (degraded) off the fallback.
  const CompileResponse r1 = Ask(service, SampleDag(24, 31), 4, "Flaky");
  EXPECT_TRUE(r1.degraded);
  EXPECT_EQ(FlakyEngine::Attempts().load(), 1);
  EXPECT_EQ(service.Metrics().breakers.at("Flaky").state, "closed");

  const CompileResponse r2 = Ask(service, SampleDag(24, 32), 4, "Flaky");
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(FlakyEngine::Attempts().load(), 2);
  EXPECT_EQ(service.Metrics().breakers.at("Flaky").state, "open");
  EXPECT_EQ(service.Metrics().breakers.at("Flaky").opened, 1u);

  // While open the sick engine is skipped entirely — no third attempt —
  // and the fallback answers alone.
  const CompileResponse r3 = Ask(service, SampleDag(24, 33), 4, "Flaky");
  EXPECT_TRUE(r3.degraded);
  EXPECT_EQ(FlakyEngine::Attempts().load(), 2);
  EXPECT_GE(service.Metrics().breakers.at("Flaky").short_circuits, 1u);

  // After the open window a half-open probe reaches the (now healed)
  // engine; its success closes the breaker and the response is undegraded.
  FlakyEngine::Healthy().store(true);
  *fake_now += std::chrono::seconds(11);
  const CompileResponse r4 = Ask(service, SampleDag(24, 34), 4, "Flaky");
  EXPECT_FALSE(r4.degraded);
  EXPECT_EQ(r4.engine_name, "Flaky");
  EXPECT_EQ(FlakyEngine::Attempts().load(), 3);
  const auto snapshot = service.Metrics().breakers.at("Flaky");
  EXPECT_EQ(snapshot.state, "closed");
  EXPECT_EQ(snapshot.consecutive_failures, 0);
}

TEST(ChaosServiceTest, LastCandidateIsAttemptedEvenWithAnOpenBreaker) {
  EnsureChaosEngines();
  FlakyEngine::Healthy().store(false);
  serve::ServiceOptions svc;
  svc.breaker_failure_threshold = 1;  // opens on the first failure
  svc.breaker_open_seconds = 1000.0;
  serve::CompileService service(FastOptions(), svc);

  // No fallback chain: the open breaker must not turn "sick engine" into
  // "no attempt at all" — the only candidate is always tried.
  EXPECT_THROW((void)Ask(service, SampleDag(24, 35), 4, "Flaky"),
               std::runtime_error);
  EXPECT_EQ(service.Metrics().breakers.at("Flaky").state, "open");
  const int after_open = FlakyEngine::Attempts().load();
  EXPECT_THROW((void)Ask(service, SampleDag(24, 36), 4, "Flaky"),
               std::runtime_error);
  EXPECT_EQ(FlakyEngine::Attempts().load(), after_open + 1);
}

// ── Load shedding ────────────────────────────────────────────────────────

TEST(ChaosServiceTest, FullLaneShedsWithTypedOverloaded) {
  EnsureChaosEngines();
  serve::ServiceOptions svc;
  svc.num_threads = 1;
  svc.max_lane_depth = 1;
  serve::CompileService service(FastOptions(), svc);

  std::vector<serve::CompileService::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(service.Submit(CompileRequest{
        .dag = SampleDag(24, 41 + static_cast<std::uint64_t>(i)),
        .num_stages = 4,
        .engine = "StallPoll"}));
  }

  int served = 0;
  int overloaded = 0;
  for (const auto& ticket : tickets) {
    try {
      const CompileResponse& response = ticket.WaitResponse();
      ASSERT_NE(response.result, nullptr);
      ++served;
    } catch (const Overloaded&) {
      ++overloaded;
    }
  }
  // Every ticket settled with a result or the typed rejection, and with one
  // worker and a one-deep lane most of the burst was refused up front.
  EXPECT_EQ(served + overloaded, 6);
  EXPECT_GE(served, 1);
  EXPECT_GE(overloaded, 1);

  const auto metrics = service.Metrics();
  EXPECT_EQ(metrics.shed, static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(metrics.lanes[static_cast<std::size_t>(Priority::kNormal)].shed,
            static_cast<std::uint64_t>(overloaded));
}

TEST(ChaosServiceTest, DeadlineAdmissionShedsHopelessRequests) {
  EnsureChaosEngines();
  serve::ServiceOptions svc;
  svc.num_threads = 1;
  svc.deadline_admission = true;
  serve::CompileService service(FastOptions(), svc);

  // Prime the solve-cost EWMA with one real StallPoll solve (~150ms).
  (void)Ask(service, SampleDag(24, 51), 4, "StallPoll");

  // Occupy the worker and build a backlog of unconstrained requests...
  std::vector<serve::CompileService::Ticket> backlog;
  for (int i = 0; i < 3; ++i) {
    backlog.push_back(service.Submit(CompileRequest{
        .dag = SampleDag(24, 52 + static_cast<std::uint64_t>(i)),
        .num_stages = 4,
        .engine = "StallPoll"}));
  }

  // ...then a request whose deadline the queue wait alone already blows.
  auto doomed = service.Submit(
      CompileRequest{.dag = SampleDag(24, 60),
                     .num_stages = 4,
                     .engine = "StallPoll",
                     .deadline = serve::DeadlineIn(0.005)});
  EXPECT_THROW((void)doomed.WaitResponse(), Overloaded);
  EXPECT_GE(service.Metrics().shed, 1u);

  for (const auto& ticket : backlog) (void)ticket.Wait();
}

// ── Writeback and disk-store fault injection ─────────────────────────────

TEST(ChaosServiceTest, WritebackFailureIsCountedNotSilent) {
  EnsureChaosEngines();
  const TempDir dir("respect-chaos-writeback");
  serve::ServiceOptions svc;
  svc.cache_dir = dir.str();
  serve::CompileService service(FastOptions(), svc);

  const ScopedFailpoint fp("serve.writeback", "error");
  const CompileResponse response = Ask(service, SampleDag(24, 61), 4, "list");
  EXPECT_EQ(response.outcome, CacheOutcome::kMiss);
  service.FlushStore();

  const auto metrics = service.Metrics();
  EXPECT_GE(metrics.writeback_errors, 1u);
  EXPECT_EQ(metrics.store.writes, 0u);
}

ResultPtr SolveOnce(const graph::Dag& dag) {
  static PipelineCompiler* compiler = new PipelineCompiler(FastOptions());
  return std::make_shared<const CompileResult>(
      compiler->Compile(dag, 4, "list"));
}

TEST(DiskStoreChaosTest, PutRetriesTransientWriteFailure) {
  const TempDir dir("respect-chaos-put-retry");
  DiskStore store(DiskStoreOptions{.directory = dir.str(),
                                   .write_retries = 2,
                                   .write_retry_backoff_ms = 1});
  SpillMeta meta;
  meta.key = graph::CanonicalHash{0xc0de, 0xf00d};
  meta.engine_name = "ListScheduling";

  const ScopedFailpoint fp("store.write", "error(transient EIO)", 1);
  store.Put(meta, SolveOnce(SampleDag(24, 71)));

  const auto metrics = store.Metrics();
  EXPECT_EQ(metrics.writes, 1u);
  EXPECT_EQ(metrics.write_retries, 1u);
  EXPECT_EQ(metrics.write_failures, 0u);
  EXPECT_FALSE(HasTempLitter(dir.path()));
  EXPECT_NE(store.Probe(meta.key), nullptr);
}

TEST(DiskStoreChaosTest, PutRetriesRenameFailureToo) {
  const TempDir dir("respect-chaos-rename-retry");
  DiskStore store(DiskStoreOptions{.directory = dir.str(),
                                   .write_retries = 1,
                                   .write_retry_backoff_ms = 1});
  SpillMeta meta;
  meta.key = graph::CanonicalHash{0xabad, 0x1dea};
  meta.engine_name = "ListScheduling";

  const ScopedFailpoint fp("store.rename", "error", 1);
  store.Put(meta, SolveOnce(SampleDag(24, 72)));

  const auto metrics = store.Metrics();
  EXPECT_EQ(metrics.writes, 1u);
  EXPECT_EQ(metrics.write_retries, 1u);
  EXPECT_EQ(metrics.write_failures, 0u);
  EXPECT_FALSE(HasTempLitter(dir.path()));
}

TEST(DiskStoreChaosTest, ExhaustedRetriesCountOneFailureWithoutLitter) {
  const TempDir dir("respect-chaos-put-exhaust");
  DiskStore store(DiskStoreOptions{.directory = dir.str(),
                                   .write_retries = 1,
                                   .write_retry_backoff_ms = 1});
  SpillMeta meta;
  meta.key = graph::CanonicalHash{0xdead, 0xbeef};
  meta.engine_name = "ListScheduling";

  const ScopedFailpoint fp("store.write", "error");  // every attempt fails
  store.Put(meta, SolveOnce(SampleDag(24, 73)));     // must not throw

  const auto metrics = store.Metrics();
  EXPECT_EQ(metrics.writes, 0u);
  EXPECT_EQ(metrics.write_retries, 1u);
  EXPECT_EQ(metrics.write_failures, 1u);
  EXPECT_FALSE(HasTempLitter(dir.path()));
  EXPECT_EQ(store.Probe(meta.key), nullptr);
  EXPECT_FALSE(fs::exists(store.PathFor(meta.key)));
}

TEST(DiskStoreChaosTest, ReadFailureQuarantinesTheFileAndMisses) {
  const TempDir dir("respect-chaos-read");
  DiskStore store(DiskStoreOptions{.directory = dir.str()});
  SpillMeta meta;
  meta.key = graph::CanonicalHash{0x5eed, 0x511};
  meta.engine_name = "ListScheduling";
  store.Put(meta, SolveOnce(SampleDag(24, 74)));
  ASSERT_TRUE(fs::exists(store.PathFor(meta.key)));

  {
    const ScopedFailpoint fp("store.read", "error(injected EIO)", 1);
    EXPECT_EQ(store.Probe(meta.key), nullptr);
  }
  // The unreadable file was quarantined, so even a healthy re-probe is a
  // clean (index-only) miss.
  EXPECT_FALSE(fs::exists(store.PathFor(meta.key)));
  EXPECT_EQ(store.Probe(meta.key), nullptr);

  const auto metrics = store.Metrics();
  EXPECT_EQ(metrics.corrupt_dropped, 1u);
  EXPECT_EQ(metrics.hits, 0u);
  EXPECT_EQ(metrics.misses, 2u);
}

// ── Queue and pool fault injection ───────────────────────────────────────

TEST(RequestQueueChaosTest, QueuePopFailpointFiresOnTheWorkerSide) {
  RequestQueue queue;
  bool ran = false;
  core::ThreadPool::TaskAttrs attrs;
  attrs.lane = static_cast<int>(Priority::kNormal);
  queue.Push([&ran] { ran = true; }, attrs);

  const ScopedFailpoint fp("queue.pop", "error");
  core::ThreadPool::Task task = queue.Pop();
  ASSERT_TRUE(static_cast<bool>(task));
  // Pop itself must not throw (it runs under the pool mutex); the injected
  // error fires when the worker executes the task.
  EXPECT_THROW(task(), FailpointError);
  EXPECT_FALSE(ran);
  EXPECT_EQ(queue.Size(), 0u);
}

// ── Fleet network fault injection ────────────────────────────────────────

TEST(NetChaosTest, InjectedWriteFailureIsTypedAndTheLinkRecovers) {
  EnsureChaosEngines();
  serve::CompileService service(FastOptions());
  net::FleetServer server(service);
  net::FleetClient client(server.Address());

  {
    // Fires on the client's send — nothing reaches the wire, so the same
    // connection keeps working once the fault clears.
    const ScopedFailpoint fp("net.write", "error(cable pulled)", 1);
    EXPECT_THROW(client.Ping(), net::NetError);
  }
  client.Ping();  // the link is intact
  server.Stop();
}

TEST(NetChaosTest, InjectedReadFailureClosesCleanAndServerSurvives) {
  EnsureChaosEngines();
  serve::CompileService service(FastOptions());
  net::FleetServer server(service);
  net::FleetClient client(server.Address());
  client.Ping();

  {
    // Unbounded: both ends of the exchange hit the fault.  The client sees
    // a typed NetError; the server handler treats it as a dead connection
    // and returns its worker to the pool.
    const ScopedFailpoint fp("net.read", "error(reset by chaos)");
    EXPECT_THROW(client.Ping(), net::NetError);
  }
  // A fresh connection proves the server outlived the fault.
  net::FleetClient fresh(server.Address());
  fresh.Ping();
  server.Stop();
}

TEST(NetChaosTest, InjectedAcceptFailuresKeepTheListenerAlive) {
  EnsureChaosEngines();
  serve::CompileService service(FastOptions());
  net::FleetServer server(service);

  // A few accept-loop iterations fail; the loop must stay listening and
  // accept this connection once the fault budget is spent.
  const ScopedFailpoint fp("net.accept", "error(EMFILE)", 2);
  net::FleetClient client(server.Address());
  client.Ping();
  const CompileResponse response =
      client.Compile(CompileRequest{.dag = SampleDag(16, 91),
                                    .num_stages = 4,
                                    .engine = "list"});
  ASSERT_NE(response.result, nullptr);
  server.Stop();
}

TEST(NetChaosTest, DroppedPeerDegradesToLocalSolve) {
  EnsureChaosEngines();
  // Shard A holds the warm spills; shard B (forwarding off, peer warm on)
  // would normally answer from A's envelopes.
  const TempDir dir_a("respect-chaos-peer-a");
  const TempDir dir_b("respect-chaos-peer-b");
  serve::ServiceOptions svc_a;
  svc_a.cache_dir = dir_a.str();
  serve::ServiceOptions svc_b;
  svc_b.cache_dir = dir_b.str();
  serve::CompileService service_a(FastOptions(), svc_a);
  serve::CompileService service_b(FastOptions(), svc_b);

  net::FleetServer server_a(service_a);
  net::FleetServerOptions options_b;
  options_b.forward_to_owner = false;
  net::FleetServer server_b(service_b, options_b);
  server_b.SetMembers({server_a.Address(), server_b.Address()},
                      server_b.Address());

  const graph::Dag first = SampleDag(20, 92);
  const graph::Dag second = SampleDag(20, 93);
  net::FleetClient client_a(server_a.Address());
  (void)client_a.Compile(CompileRequest{.dag = first, .num_stages = 4,
                                        .engine = "list"});
  (void)client_a.Compile(CompileRequest{.dag = second, .num_stages = 4,
                                        .engine = "list"});
  client_a.Flush();

  net::FleetClient client_b(server_b.Address());
  {
    // The peer link is down: the cold miss must degrade to a local solve —
    // valid result, failure counted, request never fails.
    const ScopedFailpoint fp("net.peer_fetch", "error(peer dropped)");
    const CompileResponse degraded = client_b.Compile(
        CompileRequest{.dag = first, .num_stages = 4, .engine = "list"});
    ASSERT_NE(degraded.result, nullptr);
    EXPECT_EQ(degraded.outcome, CacheOutcome::kMiss);
  }
  const auto during = service_b.Metrics();
  EXPECT_GE(during.peer_fetch_failures, 1u);
  EXPECT_EQ(during.peer_hits, 0u);

  // Fault cleared: the next cold key warms from the peer again.
  const CompileResponse warmed = client_b.Compile(
      CompileRequest{.dag = second, .num_stages = 4, .engine = "list"});
  EXPECT_EQ(warmed.outcome, CacheOutcome::kPeerHit);
  EXPECT_GE(service_b.Metrics().peer_hits, 1u);
  server_b.Stop();
  server_a.Stop();
}

#endif  // RESPECT_FAILPOINTS

TEST(RequestQueueChaosTest, ShutdownSettlesEveryResidentEntryExactlyOnce) {
  RequestQueue queue;
  std::atomic<int> expired_a{0};
  std::atomic<int> expired_b{0};
  core::ThreadPool::TaskAttrs attrs;
  attrs.lane = static_cast<int>(Priority::kInteractive);
  attrs.on_expired = [&expired_a] { expired_a.fetch_add(1); };
  queue.Push([] { FAIL() << "never popped"; }, attrs);

  attrs.lane = static_cast<int>(Priority::kBatch);
  attrs.on_expired = [&expired_b] { expired_b.fetch_add(1); };
  queue.Push([] { FAIL() << "never popped"; }, attrs);

  attrs.on_expired = nullptr;  // settled by dropping
  queue.Push([] { FAIL() << "never popped"; }, attrs);

  ASSERT_EQ(queue.Size(), 3u);
  queue.Shutdown();
  EXPECT_EQ(expired_a.load(), 1);
  EXPECT_EQ(expired_b.load(), 1);
  EXPECT_EQ(queue.ShutdownDrained(), 3u);
  EXPECT_EQ(queue.Size(), 0u);
  EXPECT_EQ(queue.Depth(Priority::kInteractive), 0u);
  EXPECT_EQ(queue.Depth(Priority::kBatch), 0u);
}

TEST(ThreadPoolChaosTest, PoolDestructionSettlesEveryTaskExactlyOnce) {
  constexpr int kTasks = 6;
  std::array<std::atomic<int>, kTasks> settled{};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  {
    RequestQueue::Options options;
    options.max_batch_inflight = 1;  // hides the batch backlog from Size()
    core::ThreadPool pool(2, std::make_unique<RequestQueue>(options));
    for (int i = 0; i < kTasks; ++i) {
      core::ThreadPool::TaskAttrs attrs;
      attrs.lane = static_cast<int>(Priority::kBatch);
      attrs.on_expired = [&settled, i] { settled[i].fetch_add(1); };
      pool.Submit(
          [&settled, gate, i] {
            gate.wait();
            settled[i].fetch_add(1);
          },
          std::move(attrs));
    }
    release.set_value();
    // ~ThreadPool: workers drain what Size() shows, then Shutdown settles
    // anything the inflight cap still hides.
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(settled[i].load(), 1) << "task " << i;
  }
}

// ── Trace span trees under failure ───────────────────────────────────────
// The failure paths above must stay legible in a trace: a blown budget
// shows the failed attempt next to the fallback attempt, an open breaker
// leaves an instant marker instead of an attempt span, and a dead-peer
// forward shows the failed hop and the local degrade under one trace id.

/// Arms the global tracer for one test (clearing stale events both ways).
class ScopedTracing {
 public:
  ScopedTracing() {
    (void)obs::Tracer::Global().Drain();
    obs::Tracer::Global().Start();
  }
  ~ScopedTracing() {
    obs::Tracer::Global().Stop();
    (void)obs::Tracer::Global().Drain();
  }
};

std::string Detail(const obs::TraceEvent& event) {
  return event.detail == nullptr ? std::string()
                                 : std::string(event.detail, event.detail_len);
}

const obs::TraceEvent* FindSpan(const std::vector<obs::TraceEvent>& events,
                                const std::string& name,
                                const std::string& detail = "") {
  for (const obs::TraceEvent& event : events) {
    if (event.name == name && (detail.empty() || Detail(event) == detail)) {
      return &event;
    }
  }
  return nullptr;
}

TEST(ChaosTraceTest, BlownBudgetFallbackWalkEmitsSpanTree) {
  EnsureChaosEngines();
  ScopedTracing tracing;
  serve::ServiceOptions svc;
  svc.fallback_chain = {"list"};
  serve::CompileService service(FastOptions(), svc);

  const CompileResponse response =
      service.Compile(CompileRequest{.dag = SampleDag(24, 61),
                                     .num_stages = 4,
                                     .engine = "StallPoll",
                                     .solve_budget_seconds = 0.05});
  EXPECT_TRUE(response.degraded);

  const auto events = obs::Tracer::Global().Drain();
  const obs::TraceEvent* compile = FindSpan(events, "serve.compile");
  const obs::TraceEvent* solve = FindSpan(events, "serve.solve");
  const obs::TraceEvent* blown = FindSpan(events, "serve.attempt", "StallPoll");
  const obs::TraceEvent* fallback =
      FindSpan(events, "serve.attempt", "ListScheduling");
  ASSERT_NE(compile, nullptr);
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(blown, nullptr);
  ASSERT_NE(fallback, nullptr);

  // One request flow: every span carries the id minted at admission.
  EXPECT_NE(compile->trace_id, 0u);
  EXPECT_EQ(solve->trace_id, compile->trace_id);
  EXPECT_EQ(blown->trace_id, compile->trace_id);
  EXPECT_EQ(fallback->trace_id, compile->trace_id);

  // Tree shape: compile is the root, attempts nest under the solve, and the
  // blown attempt ran (and ended) before the fallback attempt began.
  EXPECT_EQ(compile->depth, 0u);
  EXPECT_GT(solve->depth, compile->depth);
  EXPECT_GT(blown->depth, solve->depth);
  EXPECT_EQ(fallback->depth, blown->depth);
  EXPECT_LE(blown->start_us + blown->dur_us, fallback->start_us);
  // The blown attempt paid roughly the budget before cancellation unwound.
  EXPECT_GE(blown->dur_us, 40'000);
}

TEST(ChaosTraceTest, OpenBreakerShortCircuitEmitsInstantNotAttempt) {
  EnsureChaosEngines();
  FlakyEngine::Healthy().store(false);
  serve::ServiceOptions svc;
  svc.fallback_chain = {"list"};
  svc.breaker_failure_threshold = 1;  // opens on the first failure
  svc.breaker_open_seconds = 1000.0;
  serve::CompileService service(FastOptions(), svc);

  // First request: the failure that opens the breaker (spans discarded).
  (void)Ask(service, SampleDag(24, 62), 4, "Flaky");
  ScopedTracing tracing;

  // Second request: the open breaker skips Flaky straight to the fallback.
  const CompileResponse response = Ask(service, SampleDag(24, 63), 4, "Flaky");
  EXPECT_TRUE(response.degraded);

  const auto events = obs::Tracer::Global().Drain();
  const obs::TraceEvent* skipped = FindSpan(events, "serve.attempt", "Flaky");
  const obs::TraceEvent* marker =
      FindSpan(events, "serve.breaker_short_circuit", "Flaky");
  const obs::TraceEvent* fallback =
      FindSpan(events, "serve.attempt", "ListScheduling");
  EXPECT_EQ(skipped, nullptr);  // no attempt span for the sick engine
  ASSERT_NE(marker, nullptr);
  ASSERT_NE(fallback, nullptr);
  EXPECT_LT(marker->dur_us, 0);  // instant, not a span
  EXPECT_NE(marker->trace_id, 0u);
  EXPECT_EQ(marker->trace_id, fallback->trace_id);
}

TEST(ChaosTraceTest, DeadPeerForwardShowsFailedHopAndLocalDegrade) {
  ScopedTracing tracing;
  serve::CompileService service(FastOptions());
  net::FleetServerOptions options;
  options.io_timeout_ms = 1000;
  net::FleetServer server(service, options);
  const std::string dead = "127.0.0.1:1";
  const std::vector<std::string> members = {server.Address(), dead};
  server.SetMembers(members, server.Address());

  // A request owned by the dead peer, tagged with a client-minted trace id
  // so the hop and the local degrade stitch into one flow.
  const net::ConsistentHashRing ring(members);
  CompileRequest request = [&] {
    for (std::uint64_t seed = 100; seed < 200; ++seed) {
      CompileRequest candidate{.dag = SampleDag(16, seed),
                               .num_stages = 4,
                               .engine = "anneal"};
      if (ring.OwnerOf(service.KeyFor(candidate).lo) == dead) {
        return candidate;
      }
    }
    throw std::logic_error("no seed landed on the dead peer");
  }();
  request.trace_id = obs::Tracer::Global().MintTraceId();

  net::FleetClient client(server.Address());
  const CompileResponse response = client.Compile(request);
  ASSERT_NE(response.result, nullptr);  // valid despite the dead owner
  EXPECT_GE(server.Metrics().forward_failures, 1u);
  server.Stop();

  const auto events = obs::Tracer::Global().Drain();
  const obs::TraceEvent* handled = FindSpan(events, "net.handle_compile");
  const obs::TraceEvent* hop = FindSpan(events, "net.forward");
  const obs::TraceEvent* compile = FindSpan(events, "serve.compile");
  ASSERT_NE(handled, nullptr);
  ASSERT_NE(hop, nullptr);
  ASSERT_NE(compile, nullptr);

  // The failed hop and the local solve both belong to the client's flow.
  EXPECT_EQ(handled->trace_id, request.trace_id);
  EXPECT_EQ(hop->trace_id, request.trace_id);
  EXPECT_EQ(compile->trace_id, request.trace_id);
  // The degrade is strictly after the hop failed, nested under handling.
  EXPECT_GT(hop->depth, handled->depth);
  EXPECT_LE(hop->start_us + hop->dur_us, compile->start_us);
}

}  // namespace
}  // namespace respect
