// Tensor value-type tests: shapes, ops, error paths, Xavier statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "nn/tensor.h"

namespace respect::nn {
namespace {

Tensor Fill(int r, int c, std::initializer_list<float> values) {
  Tensor t(r, c);
  auto it = values.begin();
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) t.At(i, j) = *it++;
  }
  return t;
}

TEST(TensorTest, MatMulKnownValues) {
  const Tensor a = Fill(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Fill(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154);
}

TEST(TensorTest, MatMulShapeMismatchThrows) {
  EXPECT_THROW(MatMul(Tensor(2, 3), Tensor(2, 3)), std::invalid_argument);
}

TEST(TensorTest, AddSubMulElementwise) {
  const Tensor a = Fill(1, 3, {1, 2, 3});
  const Tensor b = Fill(1, 3, {10, 20, 30});
  EXPECT_FLOAT_EQ(Add(a, b).At(0, 2), 33);
  EXPECT_FLOAT_EQ(Sub(b, a).At(0, 1), 18);
  EXPECT_FLOAT_EQ(Mul(a, b).At(0, 0), 10);
  EXPECT_THROW(Add(a, Tensor(2, 3)), std::invalid_argument);
}

TEST(TensorTest, ActivationRanges) {
  const Tensor x = Fill(1, 3, {-100, 0, 100});
  const Tensor s = Sigmoid(x);
  EXPECT_NEAR(s.At(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.At(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(s.At(0, 2), 1.0f, 1e-6f);
  const Tensor t = Tanh(x);
  EXPECT_NEAR(t.At(0, 0), -1.0f, 1e-6f);
  EXPECT_NEAR(t.At(0, 2), 1.0f, 1e-6f);
}

TEST(TensorTest, BroadcastColumn) {
  const Tensor m = Fill(2, 2, {1, 2, 3, 4});
  const Tensor col = Fill(2, 1, {10, 20});
  const Tensor out = AddBroadcastCol(m, col);
  EXPECT_FLOAT_EQ(out.At(0, 1), 12);
  EXPECT_FLOAT_EQ(out.At(1, 0), 23);
  EXPECT_THROW(AddBroadcastCol(m, Tensor(3, 1)), std::invalid_argument);
}

TEST(TensorTest, ConcatAndSlices) {
  const Tensor a = Fill(2, 1, {1, 2});
  const Tensor b = Fill(2, 1, {3, 4});
  const Tensor cat = ConcatCols({a, b});
  EXPECT_EQ(cat.Cols(), 2);
  EXPECT_FLOAT_EQ(cat.At(1, 1), 4);
  const Tensor col = SliceCols(cat, 1, 2);
  EXPECT_FLOAT_EQ(col.At(0, 0), 3);
  const Tensor row = SliceRows(cat, 0, 1);
  EXPECT_FLOAT_EQ(row.At(0, 1), 3);
  EXPECT_THROW(SliceRows(cat, 1, 1), std::invalid_argument);
  EXPECT_THROW(ConcatCols({}), std::invalid_argument);
}

TEST(TensorTest, TransposeRoundTrip) {
  const Tensor a = Fill(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor t = Transpose(a);
  EXPECT_EQ(t.Rows(), 3);
  EXPECT_FLOAT_EQ(t.At(2, 1), 6);
  const Tensor back = Transpose(t);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(back.At(i, j), a.At(i, j));
  }
}

TEST(TensorTest, MaskedSoftmaxNormalizesOverValid) {
  const Tensor logits = Fill(1, 4, {1, 100, 1, 1});
  const std::vector<bool> valid{true, false, true, true};
  const Tensor p = MaskedSoftmax(logits, valid);
  EXPECT_FLOAT_EQ(p.At(0, 1), 0.0f);  // masked despite huge logit
  float sum = 0;
  for (int j = 0; j < 4; ++j) sum += p.At(0, j);
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_NEAR(p.At(0, 0), 1.0f / 3, 1e-6f);
}

TEST(TensorTest, MaskedSoftmaxAllMaskedThrows) {
  EXPECT_THROW(MaskedSoftmax(Tensor(1, 2), {false, false}),
               std::invalid_argument);
}

TEST(TensorTest, XavierBoundsAndSpread) {
  std::mt19937_64 rng(1);
  const Tensor t = Tensor::Xavier(50, 50, rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  float min = 1e9f, max = -1e9f;
  for (std::int64_t i = 0; i < t.Size(); ++i) {
    min = std::min(min, t.Data()[i]);
    max = std::max(max, t.Data()[i]);
  }
  EXPECT_GE(min, -bound);
  EXPECT_LE(max, bound);
  EXPECT_LT(min, 0.0f);  // actually spreads
  EXPECT_GT(max, 0.0f);
}

TEST(TensorTest, IntoVariantsMatchAllocatingOps) {
  // The destination-passing kernels must be bit-identical to their
  // allocating counterparts (the inference path depends on it).
  std::mt19937_64 rng(7);
  const Tensor a = Tensor::Xavier(5, 7, rng);
  const Tensor b = Tensor::Xavier(7, 4, rng);
  const Tensor c = Tensor::Xavier(5, 7, rng);

  Tensor mm(5, 4);
  MatMulInto(a, b, mm);
  const Tensor mm_ref = MatMul(a, b);
  for (std::int64_t i = 0; i < mm.Size(); ++i) {
    EXPECT_EQ(mm.Data()[i], mm_ref.Data()[i]);
  }

  Tensor sum(5, 7), th(5, 7), sg(5, 7);
  AddInto(a, c, sum);
  TanhInto(a, th);
  SigmoidInto(a, sg);
  const Tensor sum_ref = Add(a, c);
  const Tensor th_ref = Tanh(a);
  const Tensor sg_ref = Sigmoid(a);
  for (std::int64_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(sum.Data()[i], sum_ref.Data()[i]);
    EXPECT_EQ(th.Data()[i], th_ref.Data()[i]);
    EXPECT_EQ(sg.Data()[i], sg_ref.Data()[i]);
  }

  // The elementwise kernels allow in-place operation (out == &a).
  Tensor th_inplace = a;
  TanhInto(th_inplace, th_inplace);
  Tensor sg_inplace = a;
  SigmoidInto(sg_inplace, sg_inplace);
  for (std::int64_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(th_inplace.Data()[i], th_ref.Data()[i]);
    EXPECT_EQ(sg_inplace.Data()[i], sg_ref.Data()[i]);
  }

  // Shape mismatches throw before touching out.
  Tensor bad(4, 4);
  EXPECT_THROW(MatMulInto(a, b, bad), std::invalid_argument);
  EXPECT_THROW(AddInto(a, c, bad), std::invalid_argument);
  EXPECT_THROW(TanhInto(a, bad), std::invalid_argument);

  // AddBroadcastColInPlace matches AddBroadcastCol.
  const Tensor col = Tensor::Xavier(5, 1, rng);
  Tensor bc = a;
  AddBroadcastColInPlace(bc, col);
  const Tensor bc_ref = AddBroadcastCol(a, col);
  for (std::int64_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(bc.Data()[i], bc_ref.Data()[i]);
  }
}

TEST(TensorTest, MaskedSoftmaxIntoMatchesBoolMaskVariant) {
  const Tensor logits = Fill(1, 4, {0.5f, -1.0f, 2.0f, 0.0f});
  const std::vector<bool> mask_bool = {true, false, true, true};
  const std::vector<std::uint8_t> mask_u8 = {1, 0, 1, 1};
  const Tensor ref = MaskedSoftmax(logits, mask_bool);
  Tensor out(1, 4);
  out.Fill(9.0f);  // stale contents must not leak through
  MaskedSoftmaxInto(logits, mask_u8, out);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(out.At(0, j), ref.At(0, j));
  EXPECT_EQ(out.At(0, 1), 0.0f);

  const std::vector<std::uint8_t> none = {0, 0, 0, 0};
  EXPECT_THROW(MaskedSoftmaxInto(logits, none, out), std::invalid_argument);
}

TEST(TensorTest, ResizeReusesStorageGrowOnly) {
  Tensor t(4, 8);
  const float* data = t.Data();
  t.Resize(2, 3);  // shrink: same storage
  EXPECT_EQ(t.Rows(), 2);
  EXPECT_EQ(t.Cols(), 3);
  EXPECT_EQ(t.Data(), data);
  t.Resize(4, 8);  // back to the high-water mark: still no reallocation
  EXPECT_EQ(t.Data(), data);
}

TEST(TensorTest, AccumulateAddsInPlace) {
  Tensor a = Fill(1, 2, {1, 2});
  a.Accumulate(Fill(1, 2, {10, 20}));
  EXPECT_FLOAT_EQ(a.At(0, 1), 22);
  EXPECT_THROW(a.Accumulate(Tensor(2, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace respect::nn
