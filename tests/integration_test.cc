// End-to-end integration: the full RESPECT flow (model -> scheduler ->
// package -> simulated pipeline) through the public façade, for every
// scheduling method, plus cross-method quality orderings on real models.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include "core/respect.h"
#include "graph/sampler.h"
#include "models/zoo.h"
#include "tpu/sim.h"

namespace respect {
namespace {

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 16;
  options.exact_max_expansions = 300'000;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

// Parameterized over the engine registry: every registered engine (not a
// hard-coded Method list) must serve the full compile->simulate flow.
class AllMethodsIntegrationTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMethodsIntegrationTest, CompileSimulateXception) {
  PipelineCompiler compiler(FastOptions());
  const graph::Dag dag = models::BuildModel(models::ModelName::kXception);
  const CompileResult result = compiler.Compile(dag, 4, GetParam());

  sched::PipelineConstraints c;
  c.num_stages = 4;
  EXPECT_TRUE(ValidateSchedule(dag, result.schedule, c).ok);
  EXPECT_EQ(result.package.num_stages, 4);
  EXPECT_GT(result.peak_stage_param_bytes, 0);
  EXPECT_GT(result.solve_seconds, 0.0);

  tpu::SimConfig sim;
  sim.num_inferences = 50;
  const auto r = tpu::SimulatePipeline(result.package, sim);
  EXPECT_GT(r.per_inference_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsIntegrationTest,
    ::testing::ValuesIn(engines::EngineRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(IntegrationTest, ExactNeverWorseThanHeuristicsOnPeakMemory) {
  PipelineCompiler compiler(FastOptions());
  std::mt19937_64 rng(3);
  const graph::Dag dag = graph::SampleTrainingDag(40, rng);
  const auto exact = compiler.Compile(dag, 4, Method::kExactIlp);
  for (const Method m :
       {Method::kEdgeTpuCompiler, Method::kListScheduling, Method::kHuLevel,
        Method::kForceDirected, Method::kGreedyBalance}) {
    const auto other = compiler.Compile(dag, 4, m);
    EXPECT_GE(other.peak_stage_param_bytes, exact.peak_stage_param_bytes)
        << MethodName(m);
  }
}

TEST(IntegrationTest, QuantizedPackageShrinksParamBytes) {
  CompilerOptions quantized = FastOptions();
  CompilerOptions raw = FastOptions();
  raw.quantize = false;
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet50);
  const auto q =
      PipelineCompiler(quantized).Compile(dag, 4, Method::kGreedyBalance);
  const auto f = PipelineCompiler(raw).Compile(dag, 4, Method::kGreedyBalance);
  EXPECT_NEAR(static_cast<double>(f.peak_stage_param_bytes) /
                  static_cast<double>(q.peak_stage_param_bytes),
              4.0, 0.1);
}

TEST(IntegrationTest, TrainOrLoadCacheRoundTrip) {
  const std::string path = "/tmp/respect_cache_test.bin";
  std::filesystem::remove(path);

  rl::TrainConfig train;
  train.iterations = 2;
  train.batch_size = 2;
  train.graph_nodes = 8;

  rl::PtrNetConfig net;
  net.hidden_dim = 12;
  rl::RlScheduler first(net);
  EXPECT_TRUE(EnsureTrainedAgent(first, path, train));   // trains + saves
  rl::RlScheduler second(net);
  EXPECT_FALSE(EnsureTrainedAgent(second, path, train));  // loads

  std::mt19937_64 rng(5);
  const graph::Dag dag = graph::SampleTrainingDag(20, rng);
  EXPECT_EQ(first.Agent().DecodeGreedy(dag), second.Agent().DecodeGreedy(dag));
  std::filesystem::remove(path);
}

TEST(IntegrationTest, SixStagePipelineFasterThanSingleTpuForBigModel) {
  // Pipelining must pay off for a model whose weights dwarf one cache.
  PipelineCompiler compiler(FastOptions());
  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet152);
  const auto six = compiler.Compile(dag, 6, Method::kExactIlp);
  const auto one = compiler.Compile(dag, 1, Method::kGreedyBalance);
  tpu::SimConfig sim;
  sim.num_inferences = 200;
  EXPECT_LT(tpu::SimulatePipeline(six.package, sim).per_inference_us,
            tpu::SimulatePipeline(one.package, sim).per_inference_us);
}

}  // namespace
}  // namespace respect
