// Fleet networking correctness: the wire codec must round-trip every
// request/response field and reject every truncated or bit-flipped frame
// with a typed WireError (never UB — this file is part of the ASan leg);
// the consistent-hash ring must spread keys, stay stable across member
// order, and move only the departed member's keys; and a live
// FleetServer/FleetClient pair must preserve the service's "valid result
// or typed error" contract across the hop — including forward-to-owner
// routing, degrade-to-local on a dead owner, and peer spill fetch warming
// a cold shard without a local solve.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/respect.h"
#include "graph/canonical_hash.h"
#include "graph/sampler.h"
#include "net/consistent_hash.h"
#include "net/fleet_client.h"
#include "net/fleet_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/compile_service.h"
#include "serve/request.h"
#include "serve/store/spill_codec.h"

namespace respect {
namespace {

using net::ConsistentHashRing;
using net::FleetClient;
using net::FleetClientOptions;
using net::FleetServer;
using net::FleetServerOptions;
using net::FrameType;
using net::NetError;
using net::WireError;
using net::WireErrorKind;
using serve::CacheOutcome;
using serve::CachePolicy;
using serve::CompileRequest;
using serve::CompileResponse;
using serve::Priority;

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 12;
  options.exact_max_expansions = 200'000;
  options.exact_time_limit_seconds = 0.0;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

graph::Dag SampleDag(int nodes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return graph::SampleTrainingDag(nodes, rng);
}

std::string FreshDir(const std::string& stem) {
  static std::atomic<int> counter{0};
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (stem + "-" + std::to_string(::getpid()) + "-" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

CompileRequest AnnealRequest(const graph::Dag& dag) {
  return CompileRequest{.dag = dag, .num_stages = 4, .engine = "anneal"};
}

/// One real CompileResult for codec tests (solved once, shared).
const CompileResult& SampleResult() {
  static const CompileResult result = [] {
    serve::CompileService service(FastOptions());
    return *service.Compile(AnnealRequest(SampleDag(18, 7))).result;
  }();
  return result;
}

void ExpectSameResult(const CompileResult& a, const CompileResult& b) {
  EXPECT_EQ(a.schedule.num_stages, b.schedule.num_stages);
  EXPECT_EQ(a.schedule.stage, b.schedule.stage);
  EXPECT_EQ(a.peak_stage_param_bytes, b.peak_stage_param_bytes);
  EXPECT_EQ(a.proved_optimal, b.proved_optimal);
  ASSERT_EQ(a.package.segments.size(), b.package.segments.size());
  for (std::size_t s = 0; s < a.package.segments.size(); ++s) {
    EXPECT_EQ(a.package.segments[s].ops, b.package.segments[s].ops);
    EXPECT_EQ(a.package.segments[s].param_bytes,
              b.package.segments[s].param_bytes);
  }
}

// ── Consistent-hash ring ───────────────────────────────────────────────────

TEST(ConsistentHashRingTest, OwnerIsIndependentOfMemberOrder) {
  const std::vector<std::string> forward = {"127.0.0.1:7001", "127.0.0.1:7002",
                                            "127.0.0.1:7003"};
  std::vector<std::string> reversed(forward.rbegin(), forward.rend());
  const ConsistentHashRing a(forward);
  const ConsistentHashRing b(reversed);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t point = rng();
    EXPECT_EQ(a.OwnerOf(point), b.OwnerOf(point));
  }
}

TEST(ConsistentHashRingTest, RemovingAMemberOnlyMovesItsKeys) {
  const std::vector<std::string> full = {"127.0.0.1:7001", "127.0.0.1:7002",
                                         "127.0.0.1:7003"};
  const ConsistentHashRing before(full);
  const ConsistentHashRing after(
      std::vector<std::string>{full[0], full[1]});  // 7003 departed
  std::mt19937_64 rng(12);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t point = rng();
    const std::string& owner = before.OwnerOf(point);
    if (owner != full[2]) {
      // A surviving member's keys must not migrate — the whole point of
      // consistent hashing over modulo assignment.
      EXPECT_EQ(after.OwnerOf(point), owner);
    } else {
      EXPECT_NE(after.OwnerOf(point), full[2]);
    }
  }
}

TEST(ConsistentHashRingTest, SpreadsKeysAcrossMembers) {
  const std::vector<std::string> members = {"127.0.0.1:7001", "127.0.0.1:7002",
                                            "127.0.0.1:7003"};
  const ConsistentHashRing ring(members);
  std::map<std::string, int> owned;
  std::mt19937_64 rng(13);
  const int kPoints = 3000;
  for (int i = 0; i < kPoints; ++i) owned[ring.OwnerOf(rng())]++;
  for (const std::string& member : members) {
    // 64 virtual nodes keep every member within a loose band of its fair
    // third; 10% is far below fair share and far above pathological.
    EXPECT_GT(owned[member], kPoints / 10) << member;
  }
}

TEST(ConsistentHashRingTest, EmptyRingThrowsAndSingletonOwnsAll) {
  const ConsistentHashRing empty(std::vector<std::string>{});
  EXPECT_TRUE(empty.Empty());
  EXPECT_THROW((void)empty.OwnerOf(42), std::logic_error);
  const ConsistentHashRing solo({"127.0.0.1:7001"});
  std::mt19937_64 rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(solo.OwnerOf(rng()), "127.0.0.1:7001");
  }
}

// ── Wire codec (no sockets) ────────────────────────────────────────────────

TEST(WireCodecTest, CompileRequestRoundTripsEveryField) {
  CompileRequest request = AnnealRequest(SampleDag(20, 21));
  request.num_stages = 5;
  request.priority = Priority::kBatch;
  request.deadline = serve::DeadlineIn(2.5);
  request.cache_policy = CachePolicy::kRefresh;
  request.tenant = "tenant-a";
  request.solve_budget_seconds = 1.25;

  const std::string payload =
      net::EncodeCompileRequest(request, /*no_forward=*/true);
  const net::WireCompileRequest decoded = net::DecodeCompileRequest(payload);
  const CompileRequest& out = decoded.request;

  EXPECT_TRUE(decoded.no_forward);
  EXPECT_EQ(graph::HashDag(out.dag), graph::HashDag(request.dag));
  EXPECT_EQ(out.num_stages, 5);
  EXPECT_EQ(out.engine.Spelling(), "anneal");
  EXPECT_EQ(out.priority, Priority::kBatch);
  EXPECT_EQ(out.cache_policy, CachePolicy::kRefresh);
  EXPECT_EQ(out.profile, "");
  EXPECT_EQ(out.tenant, "tenant-a");
  EXPECT_DOUBLE_EQ(out.solve_budget_seconds, 1.25);
  // The deadline travels as remaining time and re-anchors on decode:
  // within encode/decode slop of the original 2.5 s.
  ASSERT_TRUE(out.deadline.has_value());
  const double remaining =
      std::chrono::duration<double>(*out.deadline -
                                    std::chrono::steady_clock::now())
          .count();
  EXPECT_GT(remaining, 2.0);
  EXPECT_LT(remaining, 2.6);

  // An unset engine and no deadline survive the trip as exactly that.
  CompileRequest bare;
  bare.dag = SampleDag(8, 3);
  const net::WireCompileRequest bare_out =
      net::DecodeCompileRequest(net::EncodeCompileRequest(bare, false));
  EXPECT_TRUE(bare_out.request.engine.IsEmpty());
  EXPECT_FALSE(bare_out.request.deadline.has_value());
  EXPECT_FALSE(bare_out.no_forward);
}

TEST(WireCodecTest, CompileResponseRoundTripsEveryField) {
  CompileResponse response;
  response.result = std::make_shared<const CompileResult>(SampleResult());
  response.outcome = CacheOutcome::kPeerHit;
  response.queue_wait_seconds = 0.5;
  response.solve_seconds = 1.5;
  response.engine_name = "Annealing";
  response.key_hex = "00112233445566778899aabbccddeeff";
  response.degraded = true;
  response.requested_engine = "RESPECT";

  const serve::CompileResponse out =
      net::DecodeCompileResponse(net::EncodeCompileResponse(response));
  EXPECT_EQ(out.outcome, CacheOutcome::kPeerHit);
  EXPECT_DOUBLE_EQ(out.queue_wait_seconds, 0.5);
  EXPECT_DOUBLE_EQ(out.solve_seconds, 1.5);
  EXPECT_EQ(out.engine_name, "Annealing");
  EXPECT_EQ(out.requested_engine, "RESPECT");
  EXPECT_EQ(out.key_hex, "00112233445566778899aabbccddeeff");
  EXPECT_TRUE(out.degraded);
  ASSERT_NE(out.result, nullptr);
  ExpectSameResult(*out.result, SampleResult());

  // Unknown engine names (a peer running a newer build) intern instead of
  // dangling; a null result survives as null.
  response.engine_name = "engine-from-the-future";
  response.result = nullptr;
  const serve::CompileResponse interned =
      net::DecodeCompileResponse(net::EncodeCompileResponse(response));
  EXPECT_EQ(interned.engine_name, "engine-from-the-future");
  EXPECT_EQ(interned.result, nullptr);
}

TEST(WireCodecTest, ErrorPayloadMapsToTypedExceptions) {
  using Kind = WireErrorKind;
  const auto roundtrip = [](Kind kind, const char* message) {
    const auto [out_kind, out_message] =
        net::DecodeErrorPayload(net::EncodeErrorPayload(kind, message));
    EXPECT_EQ(out_kind, kind);
    EXPECT_EQ(out_message, message);
    net::ThrowDecodedError(out_kind, out_message);
  };
  EXPECT_THROW(roundtrip(Kind::kInvalidArgument, "bad engine"),
               std::invalid_argument);
  EXPECT_THROW(roundtrip(Kind::kDeadlineExceeded, "too late"),
               serve::DeadlineExceeded);
  EXPECT_THROW(roundtrip(Kind::kOverloaded, "shed"), serve::Overloaded);
  EXPECT_THROW(roundtrip(Kind::kInternal, "boom"), net::RemoteError);
}

TEST(WireCodecTest, FleetStatsRoundTrip) {
  net::FleetStats stats;
  stats.requests = 1;
  stats.engine_solves = 2;
  stats.cache_hits = 3;
  stats.disk_hits = 4;
  stats.peer_hits = 5;
  stats.peer_fetches = 6;
  stats.forwarded = 7;
  stats.forward_failures = 8;
  stats.spill_served = 9;
  stats.spill_missed = 10;
  const net::FleetStats out =
      net::DecodeFleetStats(net::EncodeFleetStats(stats));
  EXPECT_EQ(out.requests, 1u);
  EXPECT_EQ(out.engine_solves, 2u);
  EXPECT_EQ(out.cache_hits, 3u);
  EXPECT_EQ(out.disk_hits, 4u);
  EXPECT_EQ(out.peer_hits, 5u);
  EXPECT_EQ(out.peer_fetches, 6u);
  EXPECT_EQ(out.forwarded, 7u);
  EXPECT_EQ(out.forward_failures, 8u);
  EXPECT_EQ(out.spill_served, 9u);
  EXPECT_EQ(out.spill_missed, 10u);
}

/// Decode one full frame the way a receiver would: header, payload
/// verification, then the typed payload decoder.
void DecodeFullFrame(std::string_view bytes) {
  const net::FrameHeader header = net::DecodeFrameHeader(bytes);
  if (bytes.size() < net::kFrameHeaderBytes + header.payload_size) {
    throw WireError("test: truncated payload");
  }
  const std::string_view payload =
      bytes.substr(net::kFrameHeaderBytes,
                   static_cast<std::size_t>(header.payload_size));
  net::VerifyFramePayload(header, payload);
  switch (header.type) {
    case FrameType::kCompileRequest:
      (void)net::DecodeCompileRequest(payload);
      break;
    case FrameType::kCompileResponse:
      (void)net::DecodeCompileResponse(payload);
      break;
    case FrameType::kError:
      (void)net::DecodeErrorPayload(payload);
      break;
    case FrameType::kStatsData:
      (void)net::DecodeFleetStats(payload);
      break;
    default:
      break;  // opaque payloads (spill bytes, pings)
  }
}

TEST(WireFuzzTest, EveryTruncationIsRejectedTyped) {
  const CompileRequest request = AnnealRequest(SampleDag(10, 31));
  const std::string payload = net::EncodeCompileRequest(request, false);
  std::string frame = net::EncodeFrameHeader(FrameType::kCompileRequest,
                                             payload);
  frame += payload;
  // Every proper prefix must throw WireError — and, under ASan, never read
  // out of bounds.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(DecodeFullFrame(std::string_view(frame.data(), cut)),
                 WireError)
        << "prefix length " << cut;
  }
  // The full frame decodes.
  EXPECT_NO_THROW(DecodeFullFrame(frame));
}

TEST(WireFuzzTest, EveryBitFlipIsRejectedOrConfinedToTheTypeField) {
  const CompileRequest request = AnnealRequest(SampleDag(10, 32));
  const std::string payload = net::EncodeCompileRequest(request, false);
  std::string frame = net::EncodeFrameHeader(FrameType::kCompileRequest,
                                             payload);
  frame += payload;
  int rejected = 0;
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      try {
        const net::FrameHeader header = net::DecodeFrameHeader(corrupt);
        net::VerifyFramePayload(
            header,
            std::string_view(corrupt).substr(
                net::kFrameHeaderBytes,
                static_cast<std::size_t>(header.payload_size)));
        // The payload checksum covers every payload byte, so the only
        // undetected single-bit flip lives in the header's own type field
        // (which framing validates as a known type but cannot checksum).
        EXPECT_NE(header.type, FrameType::kCompileRequest)
            << "byte " << byte << " bit " << bit;
        EXPECT_GE(byte, 4u);  // within the type field's bytes
        EXPECT_LT(byte, 8u);
      } catch (const WireError&) {
        ++rejected;  // the expected outcome for nearly every flip
      }
    }
  }
  EXPECT_GT(rejected, static_cast<int>(frame.size() * 8 - 32));
}

TEST(WireFuzzTest, TrailingBytesFromNewerWritersAreTolerated) {
  const CompileRequest request = AnnealRequest(SampleDag(12, 33));
  std::string payload = net::EncodeCompileRequest(request, true);
  payload += "fields-from-v2-this-reader-does-not-know";
  const net::WireCompileRequest decoded = net::DecodeCompileRequest(payload);
  EXPECT_EQ(graph::HashDag(decoded.request.dag), graph::HashDag(request.dag));
  EXPECT_TRUE(decoded.no_forward);
}

TEST(WireFuzzTest, GarbageBytesNeverDecode) {
  std::mt19937_64 rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk(1 + static_cast<std::size_t>(rng() % 96), '\0');
    for (char& c : junk) c = static_cast<char>(rng());
    EXPECT_THROW((void)net::DecodeCompileRequest(junk), WireError);
    EXPECT_THROW((void)net::DecodeCompileResponse(junk), WireError);
    EXPECT_THROW((void)net::DecodeErrorPayload(junk), WireError);
    // DecodeFleetStats is deliberately absent: it is all fixed-width
    // counters with no internal structure to validate, so random bytes of
    // sufficient length parse as (meaningless) numbers — the frame
    // checksum is what guards it, and that is exercised above.
  }
}

// ── Sockets and addresses ──────────────────────────────────────────────────

TEST(SocketTest, SplitHostPortParsesAndRejects) {
  const auto [host, port] = net::SplitHostPort("127.0.0.1:7430");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7430);
  EXPECT_THROW((void)net::SplitHostPort("no-colon"), NetError);
  EXPECT_THROW((void)net::SplitHostPort(":7430"), NetError);
  EXPECT_THROW((void)net::SplitHostPort("127.0.0.1:"), NetError);
  EXPECT_THROW((void)net::SplitHostPort("127.0.0.1:notaport"), NetError);
  EXPECT_THROW((void)net::SplitHostPort("127.0.0.1:99999"), NetError);
}

TEST(SocketTest, ConnectToClosedPortIsTypedFailure) {
  // Port 1 is privileged and unbound in the test environment: the connect
  // must fail with NetError, quickly, never hang or crash.
  EXPECT_THROW((void)net::Socket::Connect("127.0.0.1", 1, 500), NetError);
}

// ── Live server/client ─────────────────────────────────────────────────────

TEST(FleetServerTest, PingStatsAndFlushRoundTrip) {
  serve::CompileService service(FastOptions());
  FleetServer server(service);
  ASSERT_GT(server.Port(), 0);

  FleetClient client(server.Address());
  client.Ping();
  client.Flush();
  const net::FleetStats stats = client.Stats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.engine_solves, 0u);
  server.Stop();
}

TEST(FleetServerTest, CompileOverWireColdThenWarm) {
  serve::CompileService service(FastOptions());
  FleetServer server(service);
  FleetClient client(server.Address());

  const CompileRequest request = AnnealRequest(SampleDag(22, 51));
  const CompileResponse cold = client.Compile(request);
  EXPECT_EQ(cold.outcome, CacheOutcome::kMiss);
  ASSERT_NE(cold.result, nullptr);
  EXPECT_EQ(cold.engine_name, "Annealing");
  EXPECT_EQ(cold.key_hex.size(), 32u);

  const CompileResponse warm = client.Compile(request);
  EXPECT_EQ(warm.outcome, CacheOutcome::kHit);
  EXPECT_EQ(warm.key_hex, cold.key_hex);
  ASSERT_NE(warm.result, nullptr);
  // The remote warm answer is bit-identical to the remote cold solve.
  ExpectSameResult(*warm.result, *cold.result);

  const net::FleetStats stats = client.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.engine_solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  server.Stop();
}

TEST(FleetServerTest, TypedErrorsSurviveTheHop) {
  serve::CompileService service(FastOptions());
  FleetServer server(service);
  FleetClient client(server.Address());

  CompileRequest unknown_engine = AnnealRequest(SampleDag(10, 52));
  unknown_engine.engine = serve::EngineRef("no-such-engine");
  EXPECT_THROW((void)client.Compile(unknown_engine), std::invalid_argument);

  CompileRequest expired = AnnealRequest(SampleDag(10, 53));
  expired.deadline = serve::DeadlineIn(-0.5);
  EXPECT_THROW((void)client.Compile(expired), serve::DeadlineExceeded);

  // The connection survives typed failures: a good request still works.
  const CompileResponse ok = client.Compile(AnnealRequest(SampleDag(10, 54)));
  ASSERT_NE(ok.result, nullptr);
  server.Stop();
}

TEST(FleetServerTest, MalformedFramesGetTypedErrorAndClose) {
  serve::CompileService service(FastOptions());
  FleetServer server(service);

  const auto [host, port] = net::SplitHostPort(server.Address());
  net::Socket raw = net::Socket::Connect(host, port);
  raw.SetIoTimeout(2000);
  std::string garbage(64, '\x5a');  // wrong magic, wrong everything
  raw.SendAll(garbage);
  auto frame = net::RecvFrame(raw);
  EXPECT_EQ(frame.first, FrameType::kError);
  const auto [kind, message] = net::DecodeErrorPayload(frame.second);
  EXPECT_EQ(kind, WireErrorKind::kInvalidArgument);
  // The server closed the stream after the protocol error.
  EXPECT_THROW((void)net::RecvFrame(raw), NetError);
  EXPECT_GE(server.Metrics().protocol_errors, 1u);
  server.Stop();
}

TEST(FleetServerTest, SpillFetchByHexServesVerifiedEnvelopes) {
  const std::string dir = FreshDir("net-spill");
  serve::ServiceOptions options;
  options.cache_dir = dir;
  serve::CompileService service(FastOptions(), options);
  FleetServer server(service);
  FleetClient client(server.Address());

  const CompileRequest request = AnnealRequest(SampleDag(20, 61));
  const CompileResponse solved = client.Compile(request);
  client.Flush();  // spill writeback is async; the frame blocks until done

  const graph::CanonicalHash key = service.KeyFor(request);
  const std::optional<std::string> bytes = client.FetchSpill(key);
  ASSERT_TRUE(bytes.has_value());
  const auto envelope = serve::store::TryDecodeSpillEnvelope(*bytes);
  ASSERT_TRUE(envelope.has_value());
  EXPECT_EQ(envelope->meta.key, key);
  ExpectSameResult(*envelope->result, *solved.result);

  // Unknown key: a typed miss, not an error, not bytes.
  graph::CanonicalHash absent = key;
  absent.lo ^= 0x1;
  EXPECT_FALSE(client.FetchSpill(absent).has_value());
  const auto metrics = server.Metrics();
  EXPECT_EQ(metrics.spill_served, 1u);
  EXPECT_EQ(metrics.spill_missed, 1u);
  server.Stop();
}

TEST(FleetServerTest, ExportImportRawEdgeCases) {
  const std::string dir = FreshDir("net-import");
  serve::ServiceOptions options;
  options.cache_dir = dir;
  serve::CompileService service(FastOptions(), options);

  const CompileRequest request = AnnealRequest(SampleDag(18, 62));
  (void)service.Compile(request);
  service.FlushStore();
  const graph::CanonicalHash key = service.KeyFor(request);

  const std::optional<std::string> bytes = service.ExportSpill(key);
  ASSERT_TRUE(bytes.has_value());

  // Re-import of valid bytes under the right key: accepted.
  EXPECT_TRUE(service.ImportSpill(key, *bytes));
  // Same bytes under a different key: refused (a lying peer cannot poison
  // the store).
  graph::CanonicalHash wrong = key;
  wrong.hi ^= 0xdead;
  EXPECT_FALSE(service.ImportSpill(wrong, *bytes));
  // Corrupt bytes: refused.
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] ^= 0x10;
  EXPECT_FALSE(service.ImportSpill(key, corrupt));
  // Unknown key exports nothing.
  EXPECT_FALSE(service.ExportSpill(wrong).has_value());
}

/// Finds a dag whose request key lands on `want_owner` under `ring`.
CompileRequest RequestOwnedBy(const serve::CompileService& service,
                              const ConsistentHashRing& ring,
                              const std::string& want_owner) {
  for (std::uint64_t seed = 100; seed < 200; ++seed) {
    CompileRequest request = AnnealRequest(SampleDag(16, seed));
    if (ring.OwnerOf(service.KeyFor(request).lo) == want_owner) {
      return request;
    }
  }
  throw std::logic_error("no seed landed on the wanted owner");
}

TEST(FleetServerTest, ForwardToOwnerSolvesOnceFleetWide) {
  serve::CompileService service_a(FastOptions());
  serve::CompileService service_b(FastOptions());
  FleetServer server_a(service_a);
  FleetServer server_b(service_b);
  const std::vector<std::string> members = {server_a.Address(),
                                            server_b.Address()};
  server_a.SetMembers(members, server_a.Address());
  server_b.SetMembers(members, server_b.Address());

  // A request owned by A, sent to B: B relays, A solves, and the second
  // ask through B comes back warm from A — one solve fleet-wide.
  const ConsistentHashRing ring(members);
  const CompileRequest request =
      RequestOwnedBy(service_b, ring, server_a.Address());

  FleetClient client(server_b.Address());
  const CompileResponse first = client.Compile(request);
  ASSERT_NE(first.result, nullptr);
  EXPECT_EQ(first.outcome, CacheOutcome::kMiss);

  const CompileResponse second = client.Compile(request);
  EXPECT_EQ(second.outcome, CacheOutcome::kHit);
  ExpectSameResult(*second.result, *first.result);

  FleetClient client_a(server_a.Address());
  const net::FleetStats stats_a = client_a.Stats();
  const net::FleetStats stats_b = client.Stats();
  EXPECT_EQ(stats_a.engine_solves + stats_b.engine_solves, 1u);
  EXPECT_EQ(stats_a.engine_solves, 1u);  // the owner paid the solve
  EXPECT_GE(server_b.Metrics().forwarded, 2u);
  server_b.Stop();
  server_a.Stop();
}

TEST(FleetServerTest, DeadOwnerDegradesToLocalSolve) {
  serve::CompileService service(FastOptions());
  FleetServerOptions options;
  options.io_timeout_ms = 1000;
  FleetServer server(service, options);
  // Port 1 is dead: forwarding there must fail fast and degrade.
  const std::string dead = "127.0.0.1:1";
  const std::vector<std::string> members = {server.Address(), dead};
  server.SetMembers(members, server.Address());

  const ConsistentHashRing ring(members);
  const CompileRequest request = RequestOwnedBy(service, ring, dead);

  FleetClient client(server.Address());
  const CompileResponse response = client.Compile(request);
  ASSERT_NE(response.result, nullptr);  // valid despite the dead owner
  EXPECT_EQ(response.outcome, CacheOutcome::kMiss);
  EXPECT_GE(server.Metrics().forward_failures, 1u);
  EXPECT_EQ(server.Metrics().forwarded, 0u);
  server.Stop();
}

TEST(FleetServerTest, PeerWarmFetchServesWithoutLocalSolve) {
  // Shard A solves and spills; a fresh shard B then answers the same
  // request by fetching A's envelope — zero local engine solves on B.
  const std::string dir_a = FreshDir("net-warm-a");
  const std::string dir_b = FreshDir("net-warm-b");
  serve::ServiceOptions store_a;
  store_a.cache_dir = dir_a;
  serve::ServiceOptions store_b;
  store_b.cache_dir = dir_b;
  serve::CompileService service_a(FastOptions(), store_a);
  serve::CompileService service_b(FastOptions(), store_b);

  // A stays standalone (it would otherwise forward the seeding solve to B
  // and defeat the scenario); B gets the membership with forwarding off to
  // force the peer-warm path.
  FleetServer server_a(service_a);
  FleetServerOptions options_b;
  options_b.forward_to_owner = false;
  FleetServer server_b(service_b, options_b);
  const std::vector<std::string> members = {server_a.Address(),
                                            server_b.Address()};
  server_b.SetMembers(members, server_b.Address());

  const CompileRequest request = AnnealRequest(SampleDag(20, 71));
  FleetClient client_a(server_a.Address());
  const CompileResponse solved = client_a.Compile(request);
  client_a.Flush();

  FleetClient client_b(server_b.Address());
  const CompileResponse warmed = client_b.Compile(request);
  EXPECT_EQ(warmed.outcome, CacheOutcome::kPeerHit);
  ASSERT_NE(warmed.result, nullptr);
  ExpectSameResult(*warmed.result, *solved.result);

  const net::FleetStats stats_b = client_b.Stats();
  EXPECT_EQ(stats_b.engine_solves, 0u);
  EXPECT_EQ(stats_b.peer_hits, 1u);
  EXPECT_GE(stats_b.peer_fetches, 1u);

  // The imported envelope is durable: B now serves it from its own tiers.
  const CompileResponse resident = client_b.Compile(request);
  EXPECT_EQ(resident.outcome, CacheOutcome::kHit);
  server_b.Stop();
  server_a.Stop();
}

TEST(FleetServerTest, PeerMissFallsThroughToLocalSolve) {
  // Peers are up but cold: the fetch misses cleanly and the shard pays its
  // own solve — peer warmth is an optimization, never a dependency.
  serve::CompileService service_a(FastOptions());
  serve::CompileService service_b(FastOptions());
  FleetServer server_a(service_a);
  FleetServerOptions options_b;
  options_b.forward_to_owner = false;
  FleetServer server_b(service_b, options_b);
  const std::vector<std::string> members = {server_a.Address(),
                                            server_b.Address()};
  server_b.SetMembers(members, server_b.Address());

  FleetClient client(server_b.Address());
  const CompileResponse response =
      client.Compile(AnnealRequest(SampleDag(16, 81)));
  ASSERT_NE(response.result, nullptr);
  EXPECT_EQ(response.outcome, CacheOutcome::kMiss);
  const net::FleetStats stats = client.Stats();
  EXPECT_EQ(stats.engine_solves, 1u);
  EXPECT_GE(stats.peer_fetches, 1u);
  EXPECT_EQ(stats.peer_hits, 0u);
  server_b.Stop();
  server_a.Stop();
}

}  // namespace
}  // namespace respect
