// The SchedulerEngine registry and the batch compilation path: every
// registered engine must produce valid schedules across the paper's graph
// complexity sweep (deg(V) ∈ {2..6}), CompileBatch must match the sequential
// path bit-for-bit, and the registry must behave as the single source of
// truth for names, aliases and Method values.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/respect.h"
#include "core/thread_pool.h"
#include "engines/registry.h"
#include "graph/sampler.h"
#include "sched/device_aware.h"

namespace respect {
namespace {

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 12;
  options.exact_max_expansions = 200'000;
  // Expansion-capped only: a live wall-clock limit would make exact solves
  // depend on CPU contention, flaking the batch==sequential assertions.
  options.exact_time_limit_seconds = 0.0;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

TEST(EngineRegistryTest, ServesEveryBuiltinMethod) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  EXPECT_GE(registry.Registrations().size(), kAllMethods.size());
  for (const Method method : kAllMethods) {
    const engines::EngineRegistration* registration = registry.Find(method);
    ASSERT_NE(registration, nullptr);
    EXPECT_EQ(registration->method, method);
    EXPECT_EQ(registration->name, MethodName(method));

    // Name, alias and enum all resolve to the same entry.
    EXPECT_EQ(registry.Find(registration->name), registration);
    EXPECT_EQ(registry.Find(registration->alias), registration);
    EXPECT_EQ(MethodFromName(registration->name), method);
    EXPECT_EQ(MethodFromName(registration->alias), method);
  }
}

TEST(EngineRegistryTest, CreateReturnsEngineWithMatchingName) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  const engines::EngineContext context;  // null RL snapshot is allowed
  for (const Method method : kAllMethods) {
    const auto engine = registry.Create(method, context);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->Name(), MethodName(method));
  }
}

TEST(EngineRegistryTest, UnknownLookupsFail) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  EXPECT_FALSE(registry.Contains("NoSuchEngine"));
  EXPECT_EQ(registry.Find("NoSuchEngine"), nullptr);
  EXPECT_EQ(MethodFromName("NoSuchEngine"), std::nullopt);
  EXPECT_THROW((void)registry.Create("NoSuchEngine", {}),
               std::invalid_argument);
}

TEST(EngineRegistryTest, RejectsCollidingRegistrations) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  const auto dummy = [](const engines::EngineContext&)
      -> std::unique_ptr<engines::SchedulerEngine> { return nullptr; };
  // Canonical-name, alias, cross (name vs alias) and enum collisions.
  EXPECT_THROW(registry.Register({"RESPECT", "x1", "", {}, dummy}),
               std::invalid_argument);
  EXPECT_THROW(registry.Register({"X1", "respect", "", {}, dummy}),
               std::invalid_argument);
  EXPECT_THROW(registry.Register({"respect", "x2", "", {}, dummy}),
               std::invalid_argument);
  EXPECT_THROW(
      registry.Register({"X2", "x3", "", Method::kRespectRl, dummy}),
      std::invalid_argument);
  EXPECT_THROW(registry.Register({"", "x4", "", {}, dummy}),
               std::invalid_argument);
  EXPECT_THROW(registry.Register({"X5", "x5", "", {}, nullptr}),
               std::invalid_argument);
}

// A runtime-registered engine (no Method enum value) is served through the
// name-based Compile path like any built-in.
class EverythingStageZeroEngine : public engines::SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override { return "StageZero"; }
  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget&) const override {
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

TEST(EngineRegistryTest, RuntimeRegisteredEngineCompiles) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("StageZero")) {
    registry.Register({"StageZero", "zero", "test-only plug-in engine", {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<EverythingStageZeroEngine>();
                       }});
  }
  EXPECT_EQ(MethodFromName("StageZero"), std::nullopt);

  PipelineCompiler compiler(FastOptions());
  std::mt19937_64 rng(11);
  const graph::Dag dag = graph::SampleTrainingDag(24, rng);
  // The façade post-processes the raw all-zeros assignment into a deployable
  // schedule, exactly as for built-in engines.
  const CompileResult result = compiler.Compile(dag, 4, "StageZero");
  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;
  EXPECT_TRUE(ValidateSchedule(dag, result.schedule, constraints).ok);
}

TEST(EngineRegistryTest, EmptyQueryNeverMatchesAliaslessEngines) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("NoAlias")) {
    registry.Register({"NoAlias", "", "engine registered without an alias",
                       {}, [](const engines::EngineContext&) {
                         return std::make_unique<EverythingStageZeroEngine>();
                       }});
  }
  ASSERT_NE(registry.Find("NoAlias"), nullptr);
  // An empty alias means "no alias"; an empty query must stay unknown.
  EXPECT_FALSE(registry.Contains(""));
  EXPECT_THROW((void)registry.Create("", {}), std::invalid_argument);
}

TEST(EngineRegistryTest, LookupResultsStayValidAcrossRegistrations) {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  const engines::EngineRegistration* before = registry.Find("RESPECT");
  const std::string_view name_before = MethodName(Method::kRespectRl);
  ASSERT_NE(before, nullptr);

  // Enough registrations to force reallocation in a contiguous container.
  for (int i = 0; i < 32; ++i) {
    const std::string name = "Stability" + std::to_string(i);
    if (registry.Contains(name)) continue;
    registry.Register({name, "", "registration-stability filler", {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<EverythingStageZeroEngine>();
                       }});
  }

  // Pointers and string_views captured before the registrations must still
  // be valid and resolve to the same entry.
  EXPECT_EQ(registry.Find("RESPECT"), before);
  EXPECT_EQ(before->name, "RESPECT");
  EXPECT_EQ(name_before, "RESPECT");
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotBlockEachOther) {
  // Two callers sharing one pool: each ParallelFor must return once its own
  // tasks finish, even while the other keeps the pool busy.
  core::ThreadPool pool(2);
  std::atomic<int> total{0};
  std::thread other([&] {
    for (int round = 0; round < 4; ++round) {
      core::ParallelFor(pool, 16, [&](std::size_t) { total.fetch_add(1); });
    }
  });
  for (int round = 0; round < 4; ++round) {
    core::ParallelFor(pool, 16, [&](std::size_t) { total.fetch_add(1); });
  }
  other.join();
  EXPECT_EQ(total.load(), 2 * 4 * 16);
}

// Every registered engine must schedule the paper's full complexity sweep.
class AllEnginesValidationTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllEnginesValidationTest, ValidSchedulesAcrossDegreeSweep) {
  PipelineCompiler compiler(FastOptions());
  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;

  std::mt19937_64 rng(42);
  for (int degree = 2; degree <= 6; ++degree) {
    graph::SamplerConfig config;
    config.num_nodes = 30;
    config.max_in_degree = degree;
    const graph::Dag dag = graph::SampleDag(config, rng);
    const CompileResult result = compiler.Compile(dag, 4, GetParam());
    const auto validation =
        ValidateSchedule(dag, result.schedule, constraints);
    EXPECT_TRUE(validation.ok)
        << GetParam() << " deg=" << degree << ": " << validation.reason;
    EXPECT_GT(result.peak_stage_param_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, AllEnginesValidationTest,
    ::testing::ValuesIn(engines::EngineRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ── Heterogeneous device profiles across every engine ────────────────────

/// Every built-in engine, compiled with an explicit heterogeneous profile,
/// must stay valid and never end up with a worse estimated service-time
/// bottleneck than its own profile-blind schedule replayed on that
/// hardware.  (For engines that ignore the profile, the façade's
/// RebalanceForProfile post-pass provides the adaptation; the annealer
/// additionally swaps to the device-aware objective.)
class HeterogeneousProfileTest : public ::testing::TestWithParam<Method> {};

TEST_P(HeterogeneousProfileTest, ProfileAwareCompileNeverLosesToUniform) {
  PipelineCompiler compiler(FastOptions());
  const tpu::DeviceProfile profile = *tpu::FindProfile("coral-x2fast");
  const std::string_view engine = MethodName(GetParam());
  // The façade quantizes packages (uint8 from float32), so schedule-level
  // service estimates scale graph bytes by the same 1/4.
  constexpr double kBytesScale = 0.25;

  std::mt19937_64 rng(17);
  const graph::Dag dag = graph::SampleTrainingDag(28, rng);
  const CompileResult uniform = compiler.Compile(dag, 4, engine);
  const CompileResult adapted = compiler.Compile(dag, 4, engine, profile);

  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;
  const auto validation = ValidateSchedule(dag, adapted.schedule, constraints);
  EXPECT_TRUE(validation.ok) << engine << ": " << validation.reason;

  const double uniform_us = sched::EstimateBottleneckUs(
      dag, uniform.schedule, profile, kBytesScale);
  const double adapted_us = sched::EstimateBottleneckUs(
      dag, adapted.schedule, profile, kBytesScale);
  EXPECT_LE(adapted_us, uniform_us + 1e-9) << engine;

  // The default profile must be byte-identical to the profile-less path —
  // heterogeneity support cannot perturb the paper's pipeline.
  const CompileResult via_default =
      compiler.Compile(dag, 4, engine, tpu::DefaultProfile());
  EXPECT_EQ(via_default.schedule.stage, uniform.schedule.stage) << engine;
}

INSTANTIATE_TEST_SUITE_P(Engines, HeterogeneousProfileTest,
                         ::testing::ValuesIn(kAllMethods),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return std::string(MethodName(info.param));
                         });

TEST(HeterogeneousProfileTest, FasterFrontStageAttractsMoreWork) {
  // A chain of identical compute-heavy ops on a 2-stage pipeline whose
  // stage 0 runs twice as fast: the byte objective splits the chain evenly,
  // but the device-aware adaptation must push strictly more MACs onto the
  // fast device.
  graph::Dag dag;
  for (int i = 0; i < 12; ++i) {
    graph::OpAttr attr;
    attr.macs = 2'000'000;
    attr.param_bytes = 1024;
    attr.output_bytes = 256;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }

  PipelineCompiler compiler(FastOptions());
  const tpu::DeviceProfile profile = *tpu::FindProfile("coral-x2fast");
  const std::string_view engine = MethodName(Method::kGreedyBalance);
  const CompileResult uniform = compiler.Compile(dag, 2, engine);
  const CompileResult adapted = compiler.Compile(dag, 2, engine, profile);

  const auto stage_macs = [&](const sched::Schedule& schedule, int stage) {
    double macs = 0.0;
    for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
      if (schedule.StageOf(v) == stage) macs += dag.Attr(v).macs;
    }
    return macs;
  };
  EXPECT_GT(stage_macs(adapted.schedule, 0), stage_macs(uniform.schedule, 0));
}

TEST(PipelineCompilerTest, ReplaceRlSwapsSnapshotCopyOnWrite) {
  PipelineCompiler compiler(FastOptions());
  const auto before = compiler.MakeEngineContext().rl;
  ASSERT_NE(before, nullptr);

  auto fresh = std::make_shared<rl::RlScheduler>(FastOptions().net);
  compiler.ReplaceRl(fresh);
  // New compiles snapshot the fresh scheduler; the old snapshot (held by
  // any in-flight engine) stays alive and untouched.
  EXPECT_EQ(compiler.MakeEngineContext().rl, fresh);
  EXPECT_NE(compiler.MakeEngineContext().rl, before);
  EXPECT_NE(before, nullptr);

  std::mt19937_64 rng(29);
  const graph::Dag dag = graph::SampleTrainingDag(20, rng);
  const CompileResult result = compiler.Compile(dag, 4, Method::kRespectRl);
  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;
  EXPECT_TRUE(ValidateSchedule(dag, result.schedule, constraints).ok);
}

std::vector<graph::Dag> SampleBatch(int count, std::uint64_t seed) {
  std::vector<graph::Dag> dags;
  std::mt19937_64 rng(seed);
  dags.reserve(count);
  for (int i = 0; i < count; ++i) {
    dags.push_back(graph::SampleTrainingDag(30, rng));
  }
  return dags;
}

std::vector<const graph::Dag*> Pointers(const std::vector<graph::Dag>& dags) {
  std::vector<const graph::Dag*> pointers;
  pointers.reserve(dags.size());
  for (const graph::Dag& dag : dags) pointers.push_back(&dag);
  return pointers;
}

// Acceptance criterion: CompileBatch over >= 8 sampled DAGs with 4 threads
// produces schedules identical to the sequential path.
TEST(CompileBatchTest, ParallelMatchesSequential) {
  PipelineCompiler compiler(FastOptions());
  const std::vector<graph::Dag> dags = SampleBatch(10, 7);
  const std::vector<const graph::Dag*> pointers = Pointers(dags);

  for (const Method method :
       {Method::kRespectRl, Method::kExactIlp, Method::kListScheduling,
        Method::kAnnealing, Method::kGreedyBalance}) {
    const std::vector<CompileResult> parallel =
        compiler.CompileBatch(pointers, 4, method, /*num_threads=*/4);
    ASSERT_EQ(parallel.size(), dags.size()) << MethodName(method);
    for (std::size_t i = 0; i < dags.size(); ++i) {
      const CompileResult sequential = compiler.Compile(dags[i], 4, method);
      EXPECT_EQ(parallel[i].schedule.stage, sequential.schedule.stage)
          << MethodName(method) << " dag " << i;
      EXPECT_EQ(parallel[i].peak_stage_param_bytes,
                sequential.peak_stage_param_bytes)
          << MethodName(method) << " dag " << i;
    }
  }
}

TEST(CompileBatchTest, RepeatedParallelRunsAreDeterministic) {
  PipelineCompiler compiler(FastOptions());
  const std::vector<graph::Dag> dags = SampleBatch(8, 13);
  const std::vector<const graph::Dag*> pointers = Pointers(dags);

  const auto first = compiler.CompileBatch(pointers, 4, Method::kAnnealing, 4);
  const auto second = compiler.CompileBatch(pointers, 4, "anneal", 3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].schedule.stage, second[i].schedule.stage) << i;
  }
}

TEST(CompileBatchTest, CallerOwnedPoolMatchesPerCallPool) {
  PipelineCompiler compiler(FastOptions());
  const std::vector<graph::Dag> dags = SampleBatch(8, 23);
  const std::vector<const graph::Dag*> pointers = Pointers(dags);

  core::ThreadPool pool(4);
  const auto reused =
      compiler.CompileBatch(pointers, 4, Method::kListScheduling, pool);
  // Back-to-back batches on the same pool (the serving-loop shape).
  const auto reused_again =
      compiler.CompileBatch(pointers, 4, "list", pool);
  const auto per_call =
      compiler.CompileBatch(pointers, 4, Method::kListScheduling, 4);
  ASSERT_EQ(reused.size(), per_call.size());
  for (std::size_t i = 0; i < reused.size(); ++i) {
    EXPECT_EQ(reused[i].schedule.stage, per_call[i].schedule.stage) << i;
    EXPECT_EQ(reused_again[i].schedule.stage, per_call[i].schedule.stage) << i;
  }
}

TEST(CompileBatchTest, WorkerExceptionsReachTheCaller) {
  PipelineCompiler compiler(FastOptions());
  const std::vector<graph::Dag> dags = SampleBatch(2, 17);
  // 30-node graphs cannot fill 64 stages; the failure must not be swallowed
  // by the pool.
  const std::vector<const graph::Dag*> pointers = Pointers(dags);
  EXPECT_THROW(
      (void)compiler.CompileBatch(pointers, 64, Method::kGreedyBalance, 2),
      std::exception);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  core::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  core::ParallelFor(pool, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, TasksOverlapAcrossWorkers) {
  // Structural overlap check (no wall-clock bound, so immune to CI runner
  // jitter): with 8 sleeping tasks on 4 workers, at least two tasks must be
  // observed in flight at once — a serializing pool would peak at 1.  Sleep
  // overlap holds even on single-core machines.
  core::ThreadPool pool(4);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  core::ParallelFor(pool, 8, [&](std::size_t) {
    const int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    active.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A 1-thread pool makes blocking nested use a guaranteed deadlock; the
  // nested call must degrade to inline execution.
  core::ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  core::ParallelFor(pool, 3, [&](std::size_t) {
    core::ParallelFor(pool, 4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPoolTest, ThrowingSubmitTaskDoesNotWedgeThePool) {
  core::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("dropped"); });
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait();  // must return despite the throwing task
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ClampsThreadCount) {
  core::ThreadPool pool(-3);
  EXPECT_EQ(pool.NumThreads(), 1);
  EXPECT_GE(core::ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace respect
