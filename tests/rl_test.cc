// RL stack tests: embedding columns, PtrNet decoding invariants, rewards,
// a short REINFORCE training run (reward must improve), and the scheduler
// front end.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>

#include "graph/sampler.h"
#include "graph/topology.h"
#include "rl/embedding.h"
#include "rl/ptrnet.h"
#include "rl/reward.h"
#include "rl/scheduler.h"
#include "rl/trainer.h"

namespace respect::rl {
namespace {

TEST(EmbeddingTest, ShapeAndSourceConventions) {
  std::mt19937_64 rng(1);
  const graph::Dag dag = graph::SampleTrainingDag(20, rng);
  const nn::Tensor emb = EmbedGraph(dag, EmbeddingConfig{});
  EXPECT_EQ(emb.Rows(), kFeatureDim);
  EXPECT_EQ(emb.Cols(), 20);
  // Source node: level 0, parent level 0, parent id -1 (paper convention).
  EXPECT_FLOAT_EQ(emb.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(emb.At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(emb.At(4, 0), -1.0f);
}

TEST(EmbeddingTest, AblationZeroesGroups) {
  std::mt19937_64 rng(2);
  const graph::Dag dag = graph::SampleTrainingDag(15, rng);
  EmbeddingConfig no_ids;
  no_ids.include_ids = false;
  const nn::Tensor emb = EmbedGraph(dag, no_ids);
  for (int v = 0; v < 15; ++v) {
    EXPECT_FLOAT_EQ(emb.At(3, v), 0.0f);
    EXPECT_FLOAT_EQ(emb.At(4, v), 0.0f);
  }
  EmbeddingConfig no_mem;
  no_mem.include_memory = false;
  const nn::Tensor emb2 = EmbedGraph(dag, no_mem);
  for (int v = 0; v < 15; ++v) {
    EXPECT_FLOAT_EQ(emb2.At(6, v), 0.0f);
    EXPECT_FLOAT_EQ(emb2.At(7, v), 0.0f);
  }
}

TEST(EmbeddingTest, MemoryColumnsNormalized) {
  std::mt19937_64 rng(3);
  const graph::Dag dag = graph::SampleTrainingDag(25, rng);
  const nn::Tensor emb = EmbedGraph(dag, EmbeddingConfig{});
  for (int v = 0; v < 25; ++v) {
    EXPECT_GE(emb.At(6, v), 0.0f);
    EXPECT_LE(emb.At(6, v), 1.0f);
    EXPECT_GE(emb.At(7, v), 0.0f);
    EXPECT_LE(emb.At(7, v), 1.0f);
  }
}

PtrNetConfig SmallNet() {
  PtrNetConfig config;
  config.hidden_dim = 16;
  return config;
}

TEST(PtrNetTest, GreedyDecodeIsPermutation) {
  std::mt19937_64 rng(4);
  const graph::Dag dag = graph::SampleTrainingDag(20, rng);
  PtrNetAgent agent(SmallNet());
  const auto seq = agent.DecodeGreedy(dag);
  ASSERT_EQ(seq.size(), 20u);
  std::vector<bool> seen(20, false);
  for (const graph::NodeId v : seq) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 20);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(PtrNetTest, GreedyDecodeDeterministic) {
  std::mt19937_64 rng(5);
  const graph::Dag dag = graph::SampleTrainingDag(18, rng);
  PtrNetAgent agent(SmallNet());
  EXPECT_EQ(agent.DecodeGreedy(dag), agent.DecodeGreedy(dag));
}

TEST(PtrNetTest, ReadySetMaskingYieldsTopologicalSequences) {
  std::mt19937_64 rng(6);
  PtrNetConfig config = SmallNet();
  config.masking = MaskingMode::kReadySet;
  PtrNetAgent agent(config);
  for (int trial = 0; trial < 5; ++trial) {
    const graph::Dag dag = graph::SampleTrainingDag(25, rng);
    const auto seq = agent.DecodeGreedy(dag);
    EXPECT_TRUE(graph::IsTopologicalOrder(dag, seq));
  }
}

TEST(PtrNetTest, VisitedOnlyMaskingStillPermutes) {
  std::mt19937_64 rng(7);
  PtrNetConfig config = SmallNet();
  config.masking = MaskingMode::kVisitedOnly;
  PtrNetAgent agent(config);
  const graph::Dag dag = graph::SampleTrainingDag(22, rng);
  const auto seq = agent.DecodeGreedy(dag);
  std::vector<graph::NodeId> sorted = seq;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 22; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PtrNetTest, SampleWithTapeLogProbMatchesDistribution) {
  // The tape's summed log-prob must equal the log of the product of the
  // per-step probabilities the inference path would assign to that sequence.
  std::mt19937_64 rng(8);
  const graph::Dag dag = graph::SampleTrainingDag(10, rng);
  PtrNetAgent agent(SmallNet());
  nn::Tape tape;
  std::mt19937_64 sample_rng(99);
  const auto sample = agent.SampleWithTape(dag, tape, sample_rng);
  const float logp = tape.Value(sample.log_prob_sum).At(0, 0);
  EXPECT_LE(logp, 0.0f);       // log of a probability
  EXPECT_GT(logp, -60.0f);     // not degenerate for 10 nodes
  EXPECT_EQ(sample.sequence.size(), 10u);
}

TEST(PtrNetTest, GeneralizesAcrossSizesWithoutRetraining) {
  // Train-size 16, decode 60-node graphs: the architecture is size-free.
  std::mt19937_64 rng(9);
  PtrNetAgent agent(SmallNet());
  const graph::Dag small = graph::SampleTrainingDag(16, rng);
  const graph::Dag large = graph::SampleTrainingDag(60, rng);
  EXPECT_EQ(agent.DecodeGreedy(small).size(), 16u);
  EXPECT_EQ(agent.DecodeGreedy(large).size(), 60u);
}

TEST(PtrNetTest, SaveLoadPreservesPolicy) {
  const std::string path = "/tmp/respect_ptrnet_test.bin";
  std::mt19937_64 rng(10);
  const graph::Dag dag = graph::SampleTrainingDag(15, rng);
  PtrNetAgent a(SmallNet());
  a.Save(path);
  PtrNetConfig other = SmallNet();
  other.init_seed = 999;  // different init...
  PtrNetAgent b(other);
  b.Load(path);            // ...replaced by the saved weights
  EXPECT_EQ(a.DecodeGreedy(dag), b.DecodeGreedy(dag));
  std::filesystem::remove(path);
}

TEST(RewardTest, PerfectImitationScoresOne) {
  std::mt19937_64 rng(11);
  const graph::Dag dag = graph::SampleTrainingDag(16, rng);
  const ImitationTarget target = ComputeTarget(dag, 3);
  const double r = ComputeReward(dag, target, target.gamma, 3,
                                 RewardForm::kStageCosine);
  EXPECT_GT(r, 0.98);  // packing γ reproduces S up to packing granularity
}

TEST(RewardTest, StageCosineWithinUnitInterval) {
  std::mt19937_64 rng(12);
  const graph::Dag dag = graph::SampleTrainingDag(16, rng);
  const ImitationTarget target = ComputeTarget(dag, 4);
  std::vector<graph::NodeId> perm(16);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    const double r =
        ComputeReward(dag, target, perm, 4, RewardForm::kStageCosine);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST(RewardTest, SequenceFormDistinguishesOrders) {
  std::mt19937_64 rng(13);
  const graph::Dag dag = graph::SampleTrainingDag(12, rng);
  const ImitationTarget target = ComputeTarget(dag, 3);
  const double match = ComputeReward(dag, target, target.gamma, 3,
                                     RewardForm::kSequenceCosine);
  std::vector<graph::NodeId> reversed(target.gamma.rbegin(),
                                      target.gamma.rend());
  const double mismatch =
      ComputeReward(dag, target, reversed, 3, RewardForm::kSequenceCosine);
  EXPECT_NEAR(match, 1.0, 1e-9);
  EXPECT_LT(mismatch, match);
}

TEST(TrainerTest, RewardImprovesOverShortRun) {
  // Use the paper's visited-only masking: there the policy must genuinely
  // learn ordering (with ready-set masking the packer already saturates the
  // reward on chain-like graphs and improvement is lost in noise).
  PtrNetConfig net;
  net.hidden_dim = 24;
  net.masking = MaskingMode::kVisitedOnly;
  PtrNetAgent agent(net);

  TrainConfig config;
  config.iterations = 24;
  config.batch_size = 8;
  config.graph_nodes = 16;
  config.adam.learning_rate = 3e-3f;
  const TrainStats stats = Train(agent, config);

  ASSERT_EQ(stats.mean_reward.size(), 24u);
  const double early = (stats.mean_reward[0] + stats.mean_reward[1] +
                        stats.mean_reward[2]) / 3.0;
  const double late =
      (stats.mean_reward[21] + stats.mean_reward[22] + stats.mean_reward[23]) /
      3.0;
  EXPECT_GT(late, early);
  EXPECT_GE(stats.baseline_refreshes, 1);
}

TEST(TrainerTest, DeterministicForFixedSeed) {
  TrainConfig config;
  config.iterations = 3;
  config.batch_size = 4;
  config.graph_nodes = 10;

  PtrNetConfig net;
  net.hidden_dim = 12;
  PtrNetAgent a(net), b(net);
  const TrainStats sa = Train(a, config);
  const TrainStats sb = Train(b, config);
  EXPECT_EQ(sa.mean_reward, sb.mean_reward);
}

TEST(RlSchedulerTest, ProducesDeployableSchedules) {
  PtrNetConfig net;
  net.hidden_dim = 16;
  RlScheduler scheduler(net);
  std::mt19937_64 rng(14);
  for (const int stages : {2, 4, 6}) {
    const graph::Dag dag = graph::SampleTrainingDag(30, rng);
    sched::PipelineConstraints c;
    c.num_stages = stages;
    const auto result = scheduler.Schedule(dag, c);
    EXPECT_TRUE(ValidateSchedule(dag, result.schedule, c).ok);
    EXPECT_GT(result.solve_seconds, 0.0);
    EXPECT_EQ(result.sequence.size(), static_cast<std::size_t>(30));
  }
}

}  // namespace
}  // namespace respect::rl
