// Numerical-gradient verification of every autodiff op and of composite
// networks (LSTM step, glimpse+pointer attention).  The REINFORCE trainer is
// only as correct as these adjoints.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>

#include "nn/attention.h"
#include "nn/lstm.h"
#include "nn/tape.h"
#include "nn/tensor.h"

namespace respect::nn {
namespace {

/// Checks d(scalar f)/d(param) against central differences at every entry.
void CheckGradient(
    const std::function<float(Tape&, Ref)>& f, Tensor param,
    float tolerance = 2e-2f, float epsilon = 1e-3f) {
  Tensor grad_sink = Tensor::Zeros(param.Rows(), param.Cols());
  Tape tape;
  const Ref p = tape.Param(param, &grad_sink);
  const float base = f(tape, p);
  (void)base;

  for (int i = 0; i < param.Rows(); ++i) {
    for (int j = 0; j < param.Cols(); ++j) {
      Tensor plus = param;
      plus.At(i, j) += epsilon;
      Tensor minus = param;
      minus.At(i, j) -= epsilon;

      Tape tp, tm;
      const float fp = f(tp, tp.Constant(plus));
      const float fm = f(tm, tm.Constant(minus));
      const float numeric = (fp - fm) / (2 * epsilon);
      const float analytic = grad_sink.At(i, j);
      EXPECT_NEAR(analytic, numeric,
                  tolerance * std::max(1.0f, std::abs(numeric)))
          << "entry (" << i << "," << j << ")";
    }
  }
}

/// Runs forward f and backward once, returning the scalar.
float RunScalar(Tape& tape, Ref out) {
  const float v = tape.Value(out).At(0, 0);
  tape.Backward(out);
  return v;
}

Tensor RandomTensor(int r, int c, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return Tensor::Xavier(r, c, rng);
}

TEST(AutogradTest, MatMulGradient) {
  const Tensor b = RandomTensor(3, 2, 7);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(t, t.Sum(t.MatMul(p, t.Constant(b))));
      },
      RandomTensor(4, 3, 1));
}

TEST(AutogradTest, MatMulRightGradient) {
  const Tensor a = RandomTensor(4, 3, 9);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(t, t.Sum(t.MatMul(t.Constant(a), p)));
      },
      RandomTensor(3, 2, 2));
}

TEST(AutogradTest, AddGradient) {
  const Tensor b = RandomTensor(3, 3, 11);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(t, t.Sum(t.Add(p, t.Constant(b))));
      },
      RandomTensor(3, 3, 3));
}

TEST(AutogradTest, MulGradient) {
  const Tensor b = RandomTensor(3, 3, 13);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(t, t.Sum(t.Mul(p, t.Constant(b))));
      },
      RandomTensor(3, 3, 4));
}

TEST(AutogradTest, ScaleGradient) {
  CheckGradient(
      [&](Tape& t, Ref p) { return RunScalar(t, t.Sum(t.Scale(p, -2.5f))); },
      RandomTensor(2, 5, 5));
}

TEST(AutogradTest, TanhGradient) {
  CheckGradient(
      [&](Tape& t, Ref p) { return RunScalar(t, t.Sum(t.Tanh(p))); },
      RandomTensor(3, 4, 6));
}

TEST(AutogradTest, SigmoidGradient) {
  CheckGradient(
      [&](Tape& t, Ref p) { return RunScalar(t, t.Sum(t.Sigmoid(p))); },
      RandomTensor(3, 4, 8));
}

TEST(AutogradTest, AddBroadcastColGradientOnColumn) {
  const Tensor m = RandomTensor(3, 5, 15);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(
            t, t.Sum(t.Tanh(t.AddBroadcastCol(t.Constant(m), p))));
      },
      RandomTensor(3, 1, 10));
}

TEST(AutogradTest, AddBroadcastColGradientOnMatrix) {
  const Tensor col = RandomTensor(3, 1, 17);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(
            t, t.Sum(t.Tanh(t.AddBroadcastCol(p, t.Constant(col)))));
      },
      RandomTensor(3, 5, 12));
}

TEST(AutogradTest, SliceAndConcatGradient) {
  CheckGradient(
      [&](Tape& t, Ref p) {
        const Ref a = t.SliceRows(p, 0, 2);
        const Ref b = t.SliceRows(p, 2, 4);
        return RunScalar(t, t.Sum(t.Mul(a, b)));
      },
      RandomTensor(4, 3, 14));
}

TEST(AutogradTest, SliceColsGradient) {
  CheckGradient(
      [&](Tape& t, Ref p) {
        const Ref a = t.SliceCols(p, 0, 2);
        const Ref b = t.SliceCols(p, 2, 4);
        return RunScalar(t, t.Sum(t.Mul(a, t.Tanh(b))));
      },
      RandomTensor(3, 4, 16));
}

TEST(AutogradTest, TransposeGradient) {
  const Tensor b = RandomTensor(2, 3, 19);
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(t, t.Sum(t.MatMul(t.Transpose(p), t.Constant(b))));
      },
      RandomTensor(2, 4, 18));
}

TEST(AutogradTest, MaskedSoftmaxGradient) {
  const std::vector<bool> valid{true, false, true, true, false};
  const Tensor w = RandomTensor(1, 5, 21);
  CheckGradient(
      [&](Tape& t, Ref p) {
        const Ref soft = t.MaskedSoftmax(p, valid);
        return RunScalar(t, t.Sum(t.Mul(soft, t.Constant(w))));
      },
      RandomTensor(1, 5, 20));
}

TEST(AutogradTest, PickLogSoftmaxGradient) {
  const std::vector<bool> valid{true, true, false, true};
  CheckGradient(
      [&](Tape& t, Ref p) {
        return RunScalar(t, t.PickLogSoftmax(p, valid, 1));
      },
      RandomTensor(1, 4, 22));
}

TEST(AutogradTest, LstmStepGradientThroughAllWeights) {
  std::mt19937_64 rng(23);
  ParamStore store;
  LstmCell cell(store, "cell", 3, 4, rng);
  const Tensor x = RandomTensor(3, 1, 24);

  // Numerically check d(sum h)/d(Wx) entry by entry.
  Tensor& wx = store.Value("cell.Wx");
  const auto forward = [&]() {
    Tape tape;
    auto s0 = cell.InitialState(tape);
    auto s1 = cell.Step(tape, tape.Constant(x), s0);
    auto s2 = cell.Step(tape, tape.Constant(x), s1);  // two steps: BPTT
    return std::pair<Tape, Ref>(std::move(tape), s2.h);
  };

  {
    auto [tape, h] = forward();
    const Ref loss = tape.Sum(h);
    tape.Backward(loss);
  }
  const Tensor analytic = store.Grad("cell.Wx");

  const float eps = 1e-3f;
  for (int i = 0; i < std::min(4, wx.Rows()); ++i) {
    for (int j = 0; j < wx.Cols(); ++j) {
      const float saved = wx.At(i, j);
      wx.At(i, j) = saved + eps;
      auto [tp, hp] = forward();
      float fp = tp.Value(tp.Sum(hp)).At(0, 0);
      wx.At(i, j) = saved - eps;
      auto [tm, hm] = forward();
      float fm = tm.Value(tm.Sum(hm)).At(0, 0);
      wx.At(i, j) = saved;
      const float numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(analytic.At(i, j), numeric,
                  2e-2f * std::max(1.0f, std::abs(numeric)))
          << "Wx(" << i << "," << j << ")";
    }
  }
}

TEST(AutogradTest, AttentionLogitsMatchInferencePath) {
  // The tape path and the value-only path must produce identical logits.
  std::mt19937_64 rng(25);
  ParamStore store;
  PointerAttention attention(store, "attn", 4, rng);
  const Tensor C = RandomTensor(4, 6, 26);
  const Tensor h = RandomTensor(4, 1, 27);
  const std::vector<bool> valid{true, true, true, false, true, true};

  const auto refs = attention.Precompute(C);
  const Tensor logits_value = attention.PointerLogits(C, refs, h, valid);

  Tape tape;
  const Ref c_ref = tape.Constant(C);
  auto tape_refs = attention.Precompute(tape, c_ref);
  const Ref logits_tape =
      attention.PointerLogits(tape, tape_refs, tape.Constant(h), valid);

  for (int j = 0; j < 6; ++j) {
    EXPECT_NEAR(logits_value.At(0, j), tape.Value(logits_tape).At(0, j), 1e-5f);
  }
}

TEST(AutogradTest, BackwardTwiceThrows) {
  Tape tape;
  const Ref c = tape.Constant(Tensor(1, 1, 2.0f));
  const Ref s = tape.Sum(c);
  tape.Backward(s);
  EXPECT_THROW(tape.Backward(s), std::logic_error);
}

TEST(AutogradTest, BackwardRequiresScalar) {
  Tape tape;
  const Ref c = tape.Constant(Tensor(2, 2, 1.0f));
  EXPECT_THROW(tape.Backward(c), std::invalid_argument);
}

}  // namespace
}  // namespace respect::nn
