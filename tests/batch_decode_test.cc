// Guards for the batched multi-graph decode path and the opt-in SIMD
// activation path:
//  * DecodeGreedyBatch on the scalar path is bit-identical to sequential
//    single-graph decodes (deg 2-6, both MaskingModes, mixed batch sizes
//    including B=1), and the same workspace survives different
//    (nodes, batch, hidden) shapes;
//  * the compiler-level batch path (CompileBatch size-grouping, CompileGroup)
//    returns element-wise the same schedules as sequential Compile() calls,
//    and SolveStats reports the batch/single split correctly — stragglers
//    fall back to the single-graph path;
//  * a steady-state batched decode on a warm BatchDecodeWorkspace performs
//    ZERO heap allocations (counted via a replaced global operator new);
//  * nn::simd is OFF by default, cannot be enabled unless compiled in, and
//    when enabled keeps FastTanh/FastSigmoid within tolerance of libm while
//    batch and single decodes stay mutually consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "core/respect.h"
#include "engines/engine.h"
#include "graph/sampler.h"
#include "nn/simd.h"
#include "rl/batch_decode_workspace.h"
#include "rl/decode_workspace.h"
#include "rl/ptrnet.h"
#include "rl/reference_decode.h"
#include "rl/scheduler.h"

// ---- Global allocation counter (same funnel as decode_parity_test). ----

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace respect {
namespace {

rl::PtrNetConfig NetConfig(rl::MaskingMode masking) {
  rl::PtrNetConfig config;
  config.hidden_dim = 24;
  config.masking = masking;
  return config;
}

std::vector<graph::Dag> SampleSameSizeDags(int count, int nodes, int deg,
                                           std::mt19937_64& rng) {
  graph::SamplerConfig sampler;
  sampler.max_in_degree = deg;
  sampler.num_nodes = nodes;
  std::vector<graph::Dag> dags;
  dags.reserve(count);
  for (int i = 0; i < count; ++i) dags.push_back(graph::SampleDag(sampler, rng));
  return dags;
}

std::vector<const graph::Dag*> Pointers(const std::vector<graph::Dag>& dags) {
  std::vector<const graph::Dag*> ptrs;
  ptrs.reserve(dags.size());
  for (const graph::Dag& dag : dags) ptrs.push_back(&dag);
  return ptrs;
}

TEST(BatchDecodeTest, BatchMatchesSequentialAcrossComplexities) {
  for (const rl::MaskingMode masking :
       {rl::MaskingMode::kReadySet, rl::MaskingMode::kVisitedOnly}) {
    const rl::PtrNetAgent agent(NetConfig(masking));
    rl::BatchDecodeWorkspace batch_ws;
    rl::DecodeWorkspace single_ws;
    std::mt19937_64 rng(101);
    for (int deg = 2; deg <= 6; ++deg) {
      for (const int batch : {1, 3, 8}) {
        const auto dags = SampleSameSizeDags(batch, 30, deg, rng);
        const auto ptrs = Pointers(dags);
        const auto& sequences = agent.DecodeGreedyBatch(
            std::span<const graph::Dag* const>(ptrs), batch_ws);
        for (int g = 0; g < batch; ++g) {
          EXPECT_EQ(sequences[g], agent.DecodeGreedy(dags[g], single_ws))
              << "deg=" << deg << " batch=" << batch << " g=" << g;
        }
      }
    }
  }
}

TEST(BatchDecodeTest, BatchMatchesReferenceAcrossSizes) {
  // Against the frozen pre-optimization reference, across node counts and
  // shrinking/growing workspace reuse (60 -> 12 -> 45).
  const rl::PtrNetAgent agent(NetConfig(rl::MaskingMode::kReadySet));
  rl::BatchDecodeWorkspace ws;
  std::mt19937_64 rng(131);
  for (const int nodes : {60, 12, 45}) {
    const auto dags = SampleSameSizeDags(4, nodes, 3, rng);
    const auto ptrs = Pointers(dags);
    const auto& sequences =
        agent.DecodeGreedyBatch(std::span<const graph::Dag* const>(ptrs), ws);
    for (int g = 0; g < 4; ++g) {
      EXPECT_EQ(sequences[g], rl::ReferenceDecodeGreedy(agent, dags[g]))
          << "nodes=" << nodes << " g=" << g;
    }
  }
}

TEST(BatchDecodeTest, WorkspaceServesDifferentHiddenSizes) {
  rl::PtrNetConfig big = NetConfig(rl::MaskingMode::kReadySet);
  big.hidden_dim = 32;
  rl::PtrNetConfig small = NetConfig(rl::MaskingMode::kReadySet);
  small.hidden_dim = 16;
  const rl::PtrNetAgent agent_big(big);
  const rl::PtrNetAgent agent_small(small);
  std::mt19937_64 rng(141);
  const auto dags = SampleSameSizeDags(3, 25, 4, rng);
  const auto ptrs = Pointers(dags);

  rl::BatchDecodeWorkspace ws;
  for (const rl::PtrNetAgent* agent : {&agent_big, &agent_small, &agent_big}) {
    const auto& sequences =
        agent->DecodeGreedyBatch(std::span<const graph::Dag* const>(ptrs), ws);
    for (int g = 0; g < 3; ++g) {
      EXPECT_EQ(sequences[g], agent->DecodeGreedy(dags[g]));
    }
  }
}

TEST(BatchDecodeTest, RejectsMixedNodeCounts) {
  const rl::PtrNetAgent agent(NetConfig(rl::MaskingMode::kReadySet));
  std::mt19937_64 rng(151);
  const graph::Dag a = graph::SampleTrainingDag(20, rng);
  const graph::Dag b = graph::SampleTrainingDag(30, rng);
  const std::vector<const graph::Dag*> ptrs = {&a, &b};
  rl::BatchDecodeWorkspace ws;
  EXPECT_THROW(
      (void)agent.DecodeGreedyBatch(std::span<const graph::Dag* const>(ptrs),
                                    ws),
      std::invalid_argument);
}

TEST(BatchDecodeTest, SteadyStateBatchDecodeIsAllocationFree) {
  const rl::PtrNetAgent agent(NetConfig(rl::MaskingMode::kReadySet));
  std::mt19937_64 rng(161);
  const auto dags = SampleSameSizeDags(8, 50, 3, rng);
  const auto ptrs = Pointers(dags);

  rl::BatchDecodeWorkspace ws;
  const auto cold = agent.DecodeGreedyBatch(
      std::span<const graph::Dag* const>(ptrs), ws);  // warms every buffer
  ASSERT_EQ(cold.size(), 8u);

  const std::uint64_t before = g_alloc_count.load();
  const auto& warm =
      agent.DecodeGreedyBatch(std::span<const graph::Dag* const>(ptrs), ws);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state batch decode allocated " << (after - before)
      << " times";
  for (int g = 0; g < 8; ++g) EXPECT_EQ(warm[g], cold[g]);

  // Still allocation-free after a smaller batch of smaller graphs (buffers
  // shrink logically but keep their capacity).
  const auto small = SampleSameSizeDags(3, 20, 3, rng);
  const auto small_ptrs = Pointers(small);
  (void)agent.DecodeGreedyBatch(std::span<const graph::Dag* const>(ptrs), ws);
  const std::uint64_t before2 = g_alloc_count.load();
  (void)agent.DecodeGreedyBatch(
      std::span<const graph::Dag* const>(small_ptrs), ws);
  (void)agent.DecodeGreedyBatch(std::span<const graph::Dag* const>(ptrs), ws);
  const std::uint64_t after2 = g_alloc_count.load();
  EXPECT_EQ(after2 - before2, 0u);
}

TEST(BatchScheduleTest, ScheduleRawBatchMatchesSequential) {
  const rl::RlScheduler scheduler(NetConfig(rl::MaskingMode::kReadySet));
  std::mt19937_64 rng(171);
  const auto dags = SampleSameSizeDags(5, 35, 4, rng);
  const auto ptrs = Pointers(dags);
  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;

  rl::BatchDecodeWorkspace ws;
  const auto batched = scheduler.ScheduleRawBatch(
      std::span<const graph::Dag* const>(ptrs), constraints, ws);
  ASSERT_EQ(batched.size(), 5u);
  for (int g = 0; g < 5; ++g) {
    const auto single = scheduler.ScheduleRaw(dags[g], constraints);
    EXPECT_EQ(batched[g].sequence, single.sequence) << "g=" << g;
    EXPECT_EQ(batched[g].schedule.stage, single.schedule.stage) << "g=" << g;
  }
}

TEST(BatchCompileTest, CompileBatchGroupsBySizeAndMatchesSequential) {
  CompilerOptions options;
  options.net.hidden_dim = 16;
  const PipelineCompiler compiler(options);

  // Mixed node counts: 4x40, 3x25, 1x33 (straggler) interleaved.
  std::mt19937_64 rng(181);
  std::vector<graph::Dag> dags;
  for (const int nodes : {40, 25, 40, 33, 25, 40, 25, 40}) {
    dags.push_back(graph::SampleTrainingDag(nodes, rng));
  }
  const auto ptrs = Pointers(dags);

  engines::SolveStats stats;
  const auto batched = compiler.CompileBatch(
      std::span<const graph::Dag* const>(ptrs), 4, Method::kRespectRl,
      /*num_threads=*/3, &stats);
  ASSERT_EQ(batched.size(), dags.size());
  for (std::size_t i = 0; i < dags.size(); ++i) {
    const auto single = compiler.Compile(dags[i], 4, Method::kRespectRl);
    EXPECT_EQ(batched[i].schedule.stage, single.schedule.stage) << "i=" << i;
  }
  // 4x40 and 3x25 batch-solve; the lone 33-node graph is a straggler.
  EXPECT_EQ(stats.batch_solved, 7u);
  EXPECT_EQ(stats.single_solved, 1u);
  EXPECT_EQ(stats.batch_groups, 2u);
  EXPECT_NEAR(stats.BatchUtilization(), 7.0 / 8.0, 1e-12);
}

TEST(BatchCompileTest, CompileGroupRunsInlineAndMatchesSequential) {
  CompilerOptions options;
  options.net.hidden_dim = 16;
  const PipelineCompiler compiler(options);
  std::mt19937_64 rng(191);
  const auto dags = SampleSameSizeDags(4, 30, 3, rng);
  const auto ptrs = Pointers(dags);

  engines::SolveStats stats;
  const auto grouped = compiler.CompileGroup(
      std::span<const graph::Dag* const>(ptrs), 4, "respect", &stats);
  ASSERT_EQ(grouped.size(), 4u);
  for (int g = 0; g < 4; ++g) {
    const auto single = compiler.Compile(dags[g], 4, Method::kRespectRl);
    EXPECT_EQ(grouped[g].schedule.stage, single.schedule.stage);
  }
  EXPECT_EQ(stats.batch_solved, 4u);
  EXPECT_EQ(stats.single_solved, 0u);
  EXPECT_EQ(stats.batch_groups, 1u);
}

TEST(BatchCompileTest, NonBatchEnginesFallBackToSingleSolves) {
  const PipelineCompiler compiler;
  std::mt19937_64 rng(201);
  const auto dags = SampleSameSizeDags(3, 15, 3, rng);
  const auto ptrs = Pointers(dags);

  engines::SolveStats stats;
  const auto results = compiler.CompileBatch(
      std::span<const graph::Dag* const>(ptrs), 4, Method::kHuLevel,
      /*num_threads=*/2, &stats);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(stats.batch_solved, 0u);
  EXPECT_EQ(stats.single_solved, 3u);
  EXPECT_EQ(stats.batch_groups, 0u);
}

// ---- Opt-in SIMD activation path. ----

TEST(SimdPathTest, DisabledByDefaultAndGatedOnCompile) {
  EXPECT_FALSE(nn::simd::Enabled());
  const bool effective = nn::simd::SetEnabled(true);
  EXPECT_EQ(effective, nn::simd::Compiled());
  EXPECT_EQ(nn::simd::Enabled(), nn::simd::Compiled());
  EXPECT_FALSE(nn::simd::SetEnabled(false));
  EXPECT_FALSE(nn::simd::Enabled());
}

TEST(SimdPathTest, FastActivationsWithinTolerance) {
  // The tolerance contract backing the SIMD parity claim: the polynomial
  // activations track libm within ~1e-6 absolute over the whole range the
  // decode kernels feed them (logits are clipped to ±10, pre-activations
  // rarely exceed ±20).
  for (float x = -20.0f; x <= 20.0f; x += 0.0103f) {
    EXPECT_NEAR(nn::simd::FastTanh(x), std::tanh(x), 2e-6f) << "x=" << x;
    EXPECT_NEAR(nn::simd::FastSigmoid(x), 1.0f / (1.0f + std::exp(-x)), 2e-6f)
        << "x=" << x;
  }
  // Saturation tails.
  EXPECT_NEAR(nn::simd::FastTanh(50.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(nn::simd::FastTanh(-50.0f), -1.0f, 1e-6f);
}

TEST(SimdPathTest, SimdDecodeParityWithReference) {
  if (!nn::simd::Compiled()) {
    GTEST_SKIP() << "RESPECT_SIMD not compiled in";
  }
  // With the fast path enabled, batch and single decodes must stay
  // mutually bit-identical (they share the same kernels and accumulation
  // order), every decoded sequence must still be a valid permutation, and
  // on these graphs the ~1e-6 activation error must not flip any greedy
  // decision vs the frozen reference decode.
  const rl::PtrNetAgent agent(NetConfig(rl::MaskingMode::kReadySet));
  std::mt19937_64 rng(211);
  const auto dags = SampleSameSizeDags(6, 30, 4, rng);
  const auto ptrs = Pointers(dags);

  ASSERT_TRUE(nn::simd::SetEnabled(true));
  rl::BatchDecodeWorkspace batch_ws;
  rl::DecodeWorkspace single_ws;
  const auto batched = agent.DecodeGreedyBatch(
      std::span<const graph::Dag* const>(ptrs), batch_ws);
  int agree = 0;
  for (int g = 0; g < 6; ++g) {
    const auto single = agent.DecodeGreedy(dags[g], single_ws);
    EXPECT_EQ(batched[g], single) << "batch/single SIMD divergence, g=" << g;
    auto sorted = batched[g];
    std::sort(sorted.begin(), sorted.end());
    for (int v = 0; v < 30; ++v) EXPECT_EQ(sorted[v], v);
    if (batched[g] == rl::ReferenceDecodeGreedy(agent, dags[g])) ++agree;
  }
  nn::simd::SetEnabled(false);
  // Tolerance contract vs the reference: identical decisions except where
  // numerically marginal.  On this fixed seed no decision is marginal.
  EXPECT_EQ(agree, 6);
}

}  // namespace
}  // namespace respect
