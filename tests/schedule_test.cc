// Schedule types: validation, metrics, objective ordering, stage vectors,
// cosine similarity.
#include <gtest/gtest.h>

#include "sched/schedule.h"

namespace respect::sched {
namespace {

graph::Dag Diamond() {
  graph::Dag dag("diamond");
  for (int i = 0; i < 4; ++i) {
    graph::OpAttr attr;
    attr.name = "n" + std::to_string(i);
    attr.param_bytes = 100 * (i + 1);
    attr.output_bytes = 10 * (i + 1);
    dag.AddNode(std::move(attr));
  }
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 3);
  dag.AddEdge(2, 3);
  return dag;
}

PipelineConstraints TwoStages() {
  PipelineConstraints c;
  c.num_stages = 2;
  return c;
}

TEST(ValidateScheduleTest, AcceptsFeasibleSchedule) {
  const graph::Dag dag = Diamond();
  const Schedule s{2, {0, 0, 1, 1}};
  EXPECT_TRUE(ValidateSchedule(dag, s, TwoStages()).ok);
}

TEST(ValidateScheduleTest, RejectsDependencyViolation) {
  const graph::Dag dag = Diamond();
  const Schedule s{2, {1, 0, 1, 1}};  // parent on stage 1, child on 0
  const ValidationResult r = ValidateSchedule(dag, s, TwoStages());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("dependency"), std::string::npos);
}

TEST(ValidateScheduleTest, RejectsOutOfRangeStage) {
  const graph::Dag dag = Diamond();
  const Schedule s{2, {0, 0, 1, 2}};
  EXPECT_FALSE(ValidateSchedule(dag, s, TwoStages()).ok);
}

TEST(ValidateScheduleTest, RejectsWrongCoverage) {
  const graph::Dag dag = Diamond();
  const Schedule s{2, {0, 0, 1}};  // one node missing
  EXPECT_FALSE(ValidateSchedule(dag, s, TwoStages()).ok);
}

TEST(ValidateScheduleTest, RejectsEmptyStageByDefault) {
  const graph::Dag dag = Diamond();
  const Schedule s{2, {0, 0, 0, 0}};
  EXPECT_FALSE(ValidateSchedule(dag, s, TwoStages()).ok);
  PipelineConstraints relaxed = TwoStages();
  relaxed.allow_empty_stages = true;
  EXPECT_TRUE(ValidateSchedule(dag, s, relaxed).ok);
}

TEST(ValidateScheduleTest, RejectsStageCountMismatch) {
  const graph::Dag dag = Diamond();
  const Schedule s{3, {0, 1, 1, 2}};
  EXPECT_FALSE(ValidateSchedule(dag, s, TwoStages()).ok);
}

TEST(ValidateScheduleTest, CochildrenConstraint) {
  const graph::Dag dag = Diamond();
  PipelineConstraints c = TwoStages();
  c.require_cochildren = true;
  // Children of node 0 are {1,2}: same stage required.
  EXPECT_TRUE(ValidateSchedule(dag, Schedule{2, {0, 0, 0, 1}}, c).ok);
  EXPECT_FALSE(ValidateSchedule(dag, Schedule{2, {0, 0, 1, 1}}, c).ok);
}

TEST(MetricsTest, StageLoadsAndPeak) {
  const graph::Dag dag = Diamond();
  const ScheduleMetrics m = ComputeMetrics(dag, Schedule{2, {0, 0, 1, 1}});
  EXPECT_EQ(m.stage_param_bytes[0], 300);  // nodes 0,1
  EXPECT_EQ(m.stage_param_bytes[1], 700);  // nodes 2,3
  EXPECT_EQ(m.peak_stage_param_bytes, 700);
}

TEST(MetricsTest, CommunicationHopWeighted) {
  const graph::Dag dag = Diamond();
  // Stage: 0->s0, 1->s0, 2->s1, 3->s1.
  // Node 0 output (10B) consumed at stage 1 (node 2): 1 hop.
  // Node 1 output (20B) consumed at stage 1 (node 3): 1 hop.
  const ScheduleMetrics m = ComputeMetrics(dag, Schedule{2, {0, 0, 1, 1}});
  EXPECT_EQ(m.comm_bytes, 10 + 20);
  EXPECT_EQ(m.cut_tensor_count, 2);
}

TEST(MetricsTest, MultiHopTensorChargedPerHop) {
  graph::Dag dag("chain");
  for (int i = 0; i < 3; ++i) {
    graph::OpAttr attr;
    attr.output_bytes = 100;
    dag.AddNode(std::move(attr));
  }
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);  // node 0 tensor needed at stage 2
  dag.AddEdge(1, 2);
  const ScheduleMetrics m =
      ComputeMetrics(dag, Schedule{3, {0, 1, 2}});
  // Node 0 -> last consumer stage 2: 2 hops; node 1 -> 1 hop.
  EXPECT_EQ(m.comm_bytes, 200 + 100);
}

TEST(ObjectiveTest, LexicographicOrdering) {
  EXPECT_LT((ObjectiveValue{100, 999}), (ObjectiveValue{101, 0}));
  EXPECT_LT((ObjectiveValue{100, 5}), (ObjectiveValue{100, 6}));
  EXPECT_EQ((ObjectiveValue{1, 2}), (ObjectiveValue{1, 2}));
}

TEST(StageVectorTest, OneBasedLabels) {
  const std::vector<double> v = StageVector(Schedule{3, {0, 2, 1}});
  EXPECT_EQ(v, (std::vector<double>{1.0, 3.0, 2.0}));
}

TEST(CosineTest, IdenticalVectorsScoreOne) {
  const std::vector<double> a{1, 2, 3};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(CosineTest, ScaledVectorsScoreOne) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalVectorsScoreZero) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
}

TEST(CosineTest, ZeroVectorGuardedByEpsilon) {
  EXPECT_EQ(CosineSimilarity({0, 0}, {0, 0}), 0.0);
}

}  // namespace
}  // namespace respect::sched
