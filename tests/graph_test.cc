// Unit tests for the Dag substrate: construction, validation, degrees,
// sources/sinks, hashing, DOT export.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/dag.h"

namespace respect::graph {
namespace {

Dag Diamond() {
  // 0 -> {1,2} -> 3
  Dag dag("diamond");
  for (int i = 0; i < 4; ++i) {
    dag.AddNode(OpAttr{"n" + std::to_string(i), OpType::kGeneric, 100, 10, 5});
  }
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 3);
  dag.AddEdge(2, 3);
  return dag;
}

TEST(DagTest, AddNodeAssignsDenseIds) {
  Dag dag;
  EXPECT_EQ(dag.AddNode({}), 0);
  EXPECT_EQ(dag.AddNode({}), 1);
  EXPECT_EQ(dag.AddNode({}), 2);
  EXPECT_EQ(dag.NodeCount(), 3);
}

TEST(DagTest, EdgesUpdateAdjacency) {
  const Dag dag = Diamond();
  EXPECT_EQ(dag.EdgeCount(), 4);
  ASSERT_EQ(dag.Children(0).size(), 2u);
  EXPECT_EQ(dag.Children(0)[0], 1);
  EXPECT_EQ(dag.Children(0)[1], 2);
  ASSERT_EQ(dag.Parents(3).size(), 2u);
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(1, 0));
}

TEST(DagTest, RejectsSelfEdge) {
  Dag dag;
  dag.AddNode({});
  EXPECT_THROW(dag.AddEdge(0, 0), std::invalid_argument);
}

TEST(DagTest, RejectsDuplicateEdge) {
  Dag dag;
  dag.AddNode({});
  dag.AddNode({});
  dag.AddEdge(0, 1);
  EXPECT_THROW(dag.AddEdge(0, 1), std::invalid_argument);
}

TEST(DagTest, RejectsOutOfRangeEndpoints) {
  Dag dag;
  dag.AddNode({});
  EXPECT_THROW(dag.AddEdge(0, 5), std::invalid_argument);
  EXPECT_THROW(dag.AddEdge(-1, 0), std::invalid_argument);
}

TEST(DagTest, RejectsNegativeAttributes) {
  Dag dag;
  OpAttr attr;
  attr.param_bytes = -1;
  EXPECT_THROW(dag.AddNode(attr), std::invalid_argument);
}

TEST(DagTest, DetectsCycle) {
  Dag dag;
  for (int i = 0; i < 3; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  EXPECT_TRUE(dag.IsAcyclic());
  dag.AddEdge(2, 0);
  EXPECT_FALSE(dag.IsAcyclic());
  EXPECT_THROW(dag.Validate(), std::logic_error);
}

TEST(DagTest, ValidateRejectsEmptyGraph) {
  const Dag dag;
  EXPECT_THROW(dag.Validate(), std::logic_error);
}

TEST(DagTest, MaxInDegree) {
  const Dag dag = Diamond();
  EXPECT_EQ(dag.MaxInDegree(), 2);
}

TEST(DagTest, SourcesAndSinks) {
  const Dag dag = Diamond();
  EXPECT_EQ(dag.Sources(), std::vector<NodeId>{0});
  EXPECT_EQ(dag.Sinks(), std::vector<NodeId>{3});
}

TEST(DagTest, TotalsAccumulate) {
  const Dag dag = Diamond();
  EXPECT_EQ(dag.TotalParamBytes(), 400);
  EXPECT_EQ(dag.TotalMacs(), 20);
}

TEST(DagTest, HashOperatorNameIsStableAndSpreads) {
  EXPECT_EQ(HashOperatorName("conv1"), HashOperatorName("conv1"));
  EXPECT_NE(HashOperatorName("conv1"), HashOperatorName("conv2"));
  EXPECT_NE(HashOperatorName(""), HashOperatorName("a"));
}

TEST(DagTest, DotExportContainsNodesAndEdges) {
  const std::string dot = ToDot(Diamond());
  EXPECT_NE(dot.find("digraph \"diamond\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(DagTest, OpTypeNamesAreUnique) {
  const OpType all[] = {OpType::kInput,    OpType::kConv2D,
                        OpType::kDepthwiseConv2D, OpType::kSeparableConv2D,
                        OpType::kDense,    OpType::kBatchNorm,
                        OpType::kRelu,     OpType::kAdd,
                        OpType::kConcat,   OpType::kMaxPool,
                        OpType::kAvgPool,  OpType::kGlobalPool,
                        OpType::kSoftmax,  OpType::kPad,
                        OpType::kGeneric};
  for (const OpType a : all) {
    for (const OpType b : all) {
      if (a != b) EXPECT_NE(OpTypeName(a), OpTypeName(b));
    }
  }
}

}  // namespace
}  // namespace respect::graph
