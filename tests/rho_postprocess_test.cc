// ρ (sequence packing), schedule<->sequence conversions and the
// post-inference repair passes.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <random>
#include <string>

#include "graph/sampler.h"
#include "graph/topology.h"
#include "sched/postprocess.h"
#include "sched/rho.h"

namespace respect::sched {
namespace {

graph::Dag UniformChain(int n, std::int64_t bytes = 100) {
  graph::Dag dag("chain");
  for (int i = 0; i < n; ++i) {
    graph::OpAttr attr;
    attr.name = "c" + std::to_string(i);
    attr.param_bytes = bytes;
    attr.output_bytes = 10;
    dag.AddNode(std::move(attr));
  }
  for (int i = 0; i + 1 < n; ++i) dag.AddEdge(i, i + 1);
  return dag;
}

TEST(PackSequenceTest, UniformChainPacksEvenly) {
  const graph::Dag dag = UniformChain(8);
  std::vector<graph::NodeId> seq(8);
  std::iota(seq.begin(), seq.end(), 0);
  const Schedule s = PackSequence(dag, seq, 4);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s.stage[i], i / 2);
}

TEST(PackSequenceTest, EveryStageNonEmptyEvenWithSkewedMass) {
  // One huge node up front must not starve the remaining stages.
  graph::Dag dag("skew");
  for (int i = 0; i < 6; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = (i == 0) ? 1'000'000 : 1;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  std::vector<graph::NodeId> seq(6);
  std::iota(seq.begin(), seq.end(), 0);
  const Schedule s = PackSequence(dag, seq, 3);
  std::vector<int> count(3, 0);
  for (const int st : s.stage) ++count[st];
  for (const int c : count) EXPECT_GT(c, 0);
}

TEST(PackSequenceTest, MonotoneOnTopologicalOrder) {
  std::mt19937_64 rng(13);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  const auto topo = graph::AnalyzeTopology(dag);
  const Schedule s = PackSequence(dag, topo.order, 4);
  PipelineConstraints c;
  c.num_stages = 4;
  EXPECT_TRUE(ValidateSchedule(dag, s, c).ok);
}

TEST(PackSequenceTest, RejectsBadInputs) {
  const graph::Dag dag = UniformChain(4);
  EXPECT_THROW(PackSequence(dag, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(PackSequence(dag, {0, 1, 2, 3}, 0), std::invalid_argument);
}

TEST(MinBottleneckBoundTest, DistinguishesItsErrorPaths) {
  // Each invalid input names its actual problem — an empty weight vector
  // must not be blamed for a bad segment count and vice versa.
  try {
    (void)MinBottleneckBound({}, 2);
    FAIL() << "empty weights accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty weights"), std::string::npos)
        << e.what();
  }
  try {
    (void)MinBottleneckBound({1, 2, 3}, 0);
    FAIL() << "num_segments = 0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("num_segments"), std::string::npos)
        << e.what();
  }
  try {
    (void)MinBottleneckBound({1, -2, 3}, 2);
    FAIL() << "negative weight accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("negative weight"),
              std::string::npos)
        << e.what();
  }
}

TEST(MinBottleneckBoundTest, SurvivesWeightsNearInt64Max) {
  // Three ~5e18 weights sum past int64 max; the greedy fill and the search
  // interval must saturate instead of overflowing (UB before this guard).
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2 + 7;
  EXPECT_EQ(MinBottleneckBound({big, big}, 2), big);
  EXPECT_EQ(MinBottleneckBound({big, big, big}, 3), big);
  // Two segments for three huge weights: one segment must take two weights,
  // whose exact sum exceeds int64 max, so the bound saturates at max.
  EXPECT_EQ(MinBottleneckBound({big, big, big}, 2),
            std::numeric_limits<std::int64_t>::max());
}

TEST(MinBottleneckBoundTest, ExactBoundsOnSmallInputs) {
  EXPECT_EQ(MinBottleneckBound({1, 2, 3, 4}, 1), 10);
  EXPECT_EQ(MinBottleneckBound({1, 2, 3, 4}, 2), 6);  // best cut: {1,2,3}|{4}
  EXPECT_EQ(MinBottleneckBound({1, 2, 3, 4}, 4), 4);
  EXPECT_EQ(MinBottleneckBound({0, 0, 0}, 2), 0);
}

TEST(ScheduleToSequenceTest, SortsByStageThenTopo) {
  const graph::Dag dag = UniformChain(4);
  const Schedule s{2, {0, 0, 1, 1}};
  EXPECT_EQ(ScheduleToSequence(dag, s),
            (std::vector<graph::NodeId>{0, 1, 2, 3}));
  const Schedule rev{2, {1, 1, 1, 1}};  // all stage 1 -> pure topo order
  EXPECT_EQ(ScheduleToSequence(dag, rev),
            (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(RepairDependenciesTest, PushesChildrenForward) {
  const graph::Dag dag = UniformChain(3);
  Schedule s{3, {2, 0, 1}};
  const int moved = RepairDependencies(dag, s);
  EXPECT_EQ(moved, 2);
  EXPECT_EQ(s.stage, (std::vector<int>{2, 2, 2}));
}

TEST(RepairDependenciesTest, NoopOnFeasible) {
  const graph::Dag dag = UniformChain(3);
  Schedule s{3, {0, 1, 2}};
  EXPECT_EQ(RepairDependencies(dag, s), 0);
}

TEST(EnforceCochildrenTest, GroupsSiblingsAtEarliestStage) {
  // 0 -> {1, 2}; 1 -> 3; 2 -> 3.
  graph::Dag dag;
  for (int i = 0; i < 4; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(0, 2);
  dag.AddEdge(1, 3);
  dag.AddEdge(2, 3);
  Schedule s{4, {0, 1, 3, 3}};
  EnforceCochildren(dag, s);
  // Children of 0 are {1,2}: earliest predicted stage is 1.
  EXPECT_EQ(s.stage[1], 1);
  EXPECT_EQ(s.stage[2], 1);
  // Dependencies still hold.
  EXPECT_LE(s.stage[1], s.stage[3]);
}

TEST(EnforceCochildrenTest, ResultSatisfiesCochildValidation) {
  std::mt19937_64 rng(21);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);
  Schedule s = PackSequence(dag, graph::AnalyzeTopology(dag).order, 4);
  EnforceCochildren(dag, s);
  PipelineConstraints c;
  c.num_stages = 4;
  c.require_cochildren = true;
  c.allow_empty_stages = true;  // grouping may empty stages
  EXPECT_TRUE(ValidateSchedule(dag, s, c).ok) << ValidateSchedule(dag, s, c).reason;
}

TEST(FillEmptyStagesTest, RepopulatesEmptyStages) {
  const graph::Dag dag = UniformChain(6);
  Schedule s{3, {0, 0, 0, 0, 0, 0}};
  FillEmptyStages(dag, s);
  PipelineConstraints c;
  c.num_stages = 3;
  EXPECT_TRUE(ValidateSchedule(dag, s, c).ok);
}

TEST(FillEmptyStagesTest, ThrowsWhenImpossible) {
  const graph::Dag dag = UniformChain(2);
  Schedule s{3, {0, 0}};
  EXPECT_THROW(FillEmptyStages(dag, s), std::logic_error);
}

TEST(PostProcessTest, ArbitraryPermutationBecomesDeployable) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Dag dag = graph::SampleTrainingDag(30, rng);
    std::vector<graph::NodeId> perm(dag.NodeCount());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);

    Schedule s = PackSequence(dag, perm, 5);
    PipelineConstraints c;
    c.num_stages = 5;
    PostProcess(dag, c, s);
    EXPECT_TRUE(ValidateSchedule(dag, s, c).ok);
  }
}

TEST(PostProcessTest, HonoursCochildConstraintWhenRequested) {
  std::mt19937_64 rng(37);
  const graph::Dag dag = graph::SampleTrainingDag(24, rng);
  Schedule s = PackSequence(dag, graph::AnalyzeTopology(dag).order, 3);
  PipelineConstraints c;
  c.num_stages = 3;
  c.require_cochildren = true;
  c.allow_empty_stages = true;
  PostProcess(dag, c, s);
  EXPECT_TRUE(ValidateSchedule(dag, s, c).ok);
}

}  // namespace
}  // namespace respect::sched
