// Persistent schedule-cache store (serve/store) correctness: DiskStore
// spill files must round-trip CompileResults byte-faithfully, every
// corruption mode (truncation, zero-byte, bit flips, bad magic, wrong
// format version) must be a clean miss that quarantines the file — never a
// crash or a wrong answer — TinyLFU admission must keep one-hit-wonder
// scans from flushing hot entries while sketch halving keeps admitting
// after long runs, TTLs must lazily expire both tiers, and a restarted
// CompileService pointed at a populated cache directory must answer a
// previously-solved request with CacheOutcome::kDiskHit and ZERO engine
// solves.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "core/respect.h"
#include "deploy/package.h"
#include "deploy/pod_io.h"
#include "engines/registry.h"
#include "graph/canonical_hash.h"
#include "graph/sampler.h"
#include "serve/compile_service.h"
#include "serve/request.h"
#include "serve/store/disk_store.h"
#include "serve/store/tinylfu.h"

namespace respect {
namespace {

namespace fs = std::filesystem;

using serve::CachePolicy;
using serve::CacheOutcome;
using serve::CompileRequest;
using serve::CompileResponse;
using serve::ResultPtr;
using serve::store::DiskStore;
using serve::store::DiskStoreOptions;
using serve::store::SpillMeta;
using serve::store::TinyLfuAdmission;

CompilerOptions FastOptions() {
  CompilerOptions options;
  options.net.hidden_dim = 12;
  options.exact_max_expansions = 200'000;
  options.exact_time_limit_seconds = 0.0;
  options.compiler.refinement_rounds = 2;
  options.compiler.compile_passes = 1;
  return options;
}

graph::Dag SampleDag(int nodes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return graph::SampleTrainingDag(nodes, rng);
}

CompileResponse Ask(serve::CompileService& service, const graph::Dag& dag,
                    int num_stages, serve::EngineRef engine,
                    CachePolicy policy = CachePolicy::kUse) {
  return service.Compile(CompileRequest{.dag = dag,
                                        .num_stages = num_stages,
                                        .engine = std::move(engine),
                                        .cache_policy = policy});
}

/// Fresh directory under the test temp root, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// Deterministic fast engine that counts its solves, so restart tests can
/// assert an answer came from disk and not from any engine work.
class StoreCountingEngine : public engines::SchedulerEngine {
 public:
  static std::atomic<int>& Solves() {
    static std::atomic<int> solves{0};
    return solves;
  }

  [[nodiscard]] std::string_view Name() const override {
    return "StoreCounting";
  }

  [[nodiscard]] engines::EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const engines::EngineBudget&) const override {
    Solves().fetch_add(1);
    engines::EngineResult result;
    result.schedule.num_stages = constraints.num_stages;
    result.schedule.stage.assign(dag.NodeCount(), 0);
    return result;
  }
};

void EnsureStoreCountingEngine() {
  engines::EngineRegistry& registry = engines::EngineRegistry::Global();
  if (!registry.Contains("StoreCounting")) {
    registry.Register({"StoreCounting", "", "test-only counting engine", {},
                       [](const engines::EngineContext&) {
                         return std::make_unique<StoreCountingEngine>();
                       }});
  }
  StoreCountingEngine::Solves().store(0);
}

/// Everything deterministic about a CompileResult.
void ExpectSameResult(const CompileResult& a, const CompileResult& b) {
  EXPECT_EQ(a.schedule.num_stages, b.schedule.num_stages);
  EXPECT_EQ(a.schedule.stage, b.schedule.stage);
  EXPECT_EQ(a.peak_stage_param_bytes, b.peak_stage_param_bytes);
  EXPECT_EQ(a.proved_optimal, b.proved_optimal);
  EXPECT_EQ(a.package.model_name, b.package.model_name);
  EXPECT_EQ(a.package.num_stages, b.package.num_stages);
  EXPECT_EQ(a.package.quantized, b.package.quantized);
  EXPECT_EQ(a.package.host_input_bytes, b.package.host_input_bytes);
  EXPECT_EQ(a.package.host_output_bytes, b.package.host_output_bytes);
  ASSERT_EQ(a.package.segments.size(), b.package.segments.size());
  for (std::size_t s = 0; s < a.package.segments.size(); ++s) {
    EXPECT_EQ(a.package.segments[s].ops, b.package.segments[s].ops);
    EXPECT_EQ(a.package.segments[s].param_bytes,
              b.package.segments[s].param_bytes);
    EXPECT_EQ(a.package.segments[s].macs, b.package.segments[s].macs);
    EXPECT_EQ(a.package.segments[s].inputs.size(),
              b.package.segments[s].inputs.size());
    EXPECT_EQ(a.package.segments[s].outputs.size(),
              b.package.segments[s].outputs.size());
  }
}

// ── CanonicalHash::FromHex ───────────────────────────────────────────────

TEST(CanonicalHashFromHexTest, RoundTripsAndRejectsGarbage) {
  const graph::CanonicalHash h = graph::HashDag(SampleDag(20, 3));
  const auto parsed = graph::CanonicalHash::FromHex(h.ToHex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);

  const auto upper = graph::CanonicalHash::FromHex(
      "00000000000000FF00000000000000aa");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(upper->hi, 0xffu);
  EXPECT_EQ(upper->lo, 0xaau);

  EXPECT_FALSE(graph::CanonicalHash::FromHex("").has_value());
  EXPECT_FALSE(graph::CanonicalHash::FromHex("deadbeef").has_value());
  EXPECT_FALSE(graph::CanonicalHash::FromHex(std::string(31, 'a')).has_value());
  EXPECT_FALSE(graph::CanonicalHash::FromHex(std::string(33, 'a')).has_value());
  EXPECT_FALSE(
      graph::CanonicalHash::FromHex(std::string(31, 'a') + "g").has_value());
}

// ── TinyLFU sketch semantics ─────────────────────────────────────────────

TEST(TinyLfuTest, EstimatesSaturateAndGateAdmission) {
  TinyLfuAdmission lfu(TinyLfuAdmission::Options{
      .counters = 64, .sample_period = 1'000'000});  // no halving here
  const graph::CanonicalHash hot{0x1111, 0x2222};
  const graph::CanonicalHash cold{0x9999, 0x8888};

  EXPECT_EQ(lfu.Estimate(hot), 0u);
  for (int i = 0; i < 40; ++i) lfu.RecordAccess(hot);
  EXPECT_EQ(lfu.Estimate(hot), 15u);  // 4-bit counters saturate
  EXPECT_EQ(lfu.Estimate(cold), 0u);

  EXPECT_TRUE(lfu.Admit(hot, cold));    // hot displaces cold
  EXPECT_FALSE(lfu.Admit(cold, hot));   // one-hit wonder bounces off
  EXPECT_TRUE(lfu.Admit(cold, cold));   // ties admit (LRU behavior when cold)
}

TEST(TinyLfuTest, HalvingDecaysOldTrafficAndKeepsAdmitting) {
  TinyLfuAdmission lfu(
      TinyLfuAdmission::Options{.counters = 64, .sample_period = 256});
  const graph::CanonicalHash old_hot{0x1111, 0x2222};
  for (int i = 0; i < 15; ++i) lfu.RecordAccess(old_hot);
  EXPECT_EQ(lfu.Estimate(old_hot), 15u);

  // A long run of fresh traffic crosses the sample period: counters halve,
  // the stale entry decays, and the sketch still admits new hot keys.
  for (std::uint64_t i = 0; i < 600; ++i) {
    lfu.RecordAccess(graph::CanonicalHash{i * 3 + 101, i * 7 + 13});
  }
  EXPECT_GE(lfu.Halvings(), 2u);
  EXPECT_LT(lfu.Estimate(old_hot), 15u);

  const graph::CanonicalHash fresh_hot{0xabcd, 0xef01};
  for (int i = 0; i < 20; ++i) lfu.RecordAccess(fresh_hot);
  EXPECT_TRUE(lfu.Admit(fresh_hot, old_hot));
}

// ── DiskStore ────────────────────────────────────────────────────────────

ResultPtr SolveOnce(const graph::Dag& dag) {
  static PipelineCompiler* compiler = new PipelineCompiler(FastOptions());
  return std::make_shared<const CompileResult>(
      compiler->Compile(dag, 4, "list"));
}

TEST(DiskStoreTest, PutProbeRoundTripsTheResult) {
  const TempDir dir("respect-store-roundtrip");
  DiskStore store(DiskStoreOptions{.directory = dir.str()});
  const graph::Dag dag = SampleDag(24, 5);
  const ResultPtr result = SolveOnce(dag);

  SpillMeta meta;
  meta.key = graph::CanonicalHash{0x1234, 0x5678};
  meta.engine_name = "ListScheduling";
  store.Put(meta, result);
  EXPECT_EQ(store.Metrics().writes, 1u);
  EXPECT_EQ(store.Metrics().resident, 1u);
  EXPECT_TRUE(fs::exists(store.PathFor(meta.key)));

  const ResultPtr loaded = store.Probe(meta.key);
  ASSERT_NE(loaded, nullptr);
  ExpectSameResult(*loaded, *result);
  EXPECT_EQ(loaded->solve_seconds, result->solve_seconds);

  EXPECT_EQ(store.Probe(graph::CanonicalHash{1, 2}), nullptr);  // absent
  const auto metrics = store.Metrics();
  EXPECT_EQ(metrics.probes, 2u);
  EXPECT_EQ(metrics.hits, 1u);
  EXPECT_EQ(metrics.misses, 1u);
}

#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS
// Regression (failure-domain hardening PR): a transient write failure must
// retry to success, count the retry, and never leave a temp file behind; an
// exhausted retry budget is one counted write failure, still litter-free.
TEST(DiskStoreTest, TransientWriteFailureRetriesWithoutTempLitter) {
  const TempDir dir("respect-store-write-retry");
  DiskStore store(DiskStoreOptions{.directory = dir.str(),
                                   .write_retries = 2,
                                   .write_retry_backoff_ms = 1});
  const ResultPtr result = SolveOnce(SampleDag(24, 6));
  SpillMeta meta;
  meta.key = graph::CanonicalHash{0x7e57, 0x1};
  meta.engine_name = "ListScheduling";
  {
    const core::failpoint::ScopedFailpoint fp("store.write", "error", 1);
    store.Put(meta, result);
  }
  auto metrics = store.Metrics();
  EXPECT_EQ(metrics.writes, 1u);
  EXPECT_EQ(metrics.write_retries, 1u);
  EXPECT_EQ(metrics.write_failures, 0u);
  EXPECT_NE(store.Probe(meta.key), nullptr);

  SpillMeta doomed = meta;
  doomed.key = graph::CanonicalHash{0x7e57, 0x2};
  {
    const core::failpoint::ScopedFailpoint fp("store.write", "error");
    store.Put(doomed, result);  // Put must not throw even when every
                                // attempt fails
  }
  metrics = store.Metrics();
  EXPECT_EQ(metrics.writes, 1u);
  EXPECT_EQ(metrics.write_failures, 1u);
  EXPECT_EQ(store.Probe(doomed.key), nullptr);

  for (const auto& entry : fs::directory_iterator(dir.path())) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}
#endif  // RESPECT_FAILPOINTS

TEST(DiskStoreTest, ScanWarmStartsAndIgnoresForeignFiles) {
  const TempDir dir("respect-store-scan");
  const graph::Dag dag = SampleDag(24, 7);
  const ResultPtr result = SolveOnce(dag);
  SpillMeta meta;
  meta.key = graph::HashDag(dag);
  meta.engine_name = "ListScheduling";
  {
    DiskStore writer(DiskStoreOptions{.directory = dir.str()});
    writer.Put(meta, result);
  }
  // Clutter the directory: a foreign file, a badly named spill, an
  // uppercase-named copy (unreachable through PathFor's canonical lowercase
  // spelling, so it must not be indexed), and a leftover temp file from a
  // "crashed" writer.
  std::ofstream(dir.path() / "README.txt") << "not a spill";
  std::ofstream(dir.path() / "deadbeef.spill") << "name too short";
  std::string upper_hex = meta.key.ToHex();
  for (char& c : upper_hex) c = static_cast<char>(std::toupper(c));
  std::ofstream(dir.path() / (upper_hex + ".spill")) << "wrong case";
  const fs::path stale_temp = dir.path() / (meta.key.ToHex() + ".spill.9.tmp");
  std::ofstream(stale_temp) << "partial write";

  DiskStore reader(DiskStoreOptions{.directory = dir.str()});
  EXPECT_EQ(reader.Metrics().resident, 1u);   // only the real spill indexed
  EXPECT_FALSE(fs::exists(stale_temp));       // swept on construction
  const ResultPtr loaded = reader.Probe(meta.key);
  ASSERT_NE(loaded, nullptr);
  ExpectSameResult(*loaded, *result);
}

class DiskStoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("respect-store-corruption");
    const graph::Dag dag = SampleDag(24, 9);
    meta_.key = graph::HashDag(dag);
    meta_.engine_name = "ListScheduling";
    DiskStore writer(DiskStoreOptions{.directory = dir_->str()});
    writer.Put(meta_, SolveOnce(dag));
    path_ = writer.PathFor(meta_.key);
    std::ifstream is(path_, std::ios::binary);
    pristine_.assign(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(pristine_.size(), 64u);
  }

  /// Rewrites the spill with `bytes`, probes through a fresh store, and
  /// asserts the clean-miss contract: null result, file quarantined,
  /// counted once, and never indexed again.
  void ExpectCleanMiss(const std::string& bytes, const char* label) {
    {
      std::ofstream os(path_, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    DiskStore store(DiskStoreOptions{.directory = dir_->str()});
    EXPECT_EQ(store.Probe(meta_.key), nullptr) << label;
    const auto metrics = store.Metrics();
    EXPECT_EQ(metrics.corrupt_dropped, 1u) << label;
    EXPECT_EQ(metrics.hits, 0u) << label;
    EXPECT_EQ(metrics.resident, 0u) << label;
    EXPECT_FALSE(fs::exists(path_)) << label;            // quarantined
    EXPECT_EQ(store.Probe(meta_.key), nullptr) << label;  // cheap re-miss
    EXPECT_EQ(store.Metrics().corrupt_dropped, 1u) << label;
  }

  std::unique_ptr<TempDir> dir_;
  SpillMeta meta_;
  fs::path path_;
  std::string pristine_;
};

TEST_F(DiskStoreCorruptionTest, TruncatedFileIsACleanMiss) {
  ExpectCleanMiss(pristine_.substr(0, pristine_.size() / 2), "truncated");
}

TEST_F(DiskStoreCorruptionTest, ZeroByteFileIsACleanMiss) {
  ExpectCleanMiss(std::string(), "zero-byte");
}

TEST_F(DiskStoreCorruptionTest, BadMagicIsACleanMiss) {
  std::string bytes = pristine_;
  bytes[0] = static_cast<char>(bytes[0] ^ 0x7f);
  ExpectCleanMiss(bytes, "bad magic");
}

TEST_F(DiskStoreCorruptionTest, WrongFormatVersionIsACleanMiss) {
  std::string bytes = pristine_;
  bytes[4] = 99;  // format version field
  ExpectCleanMiss(bytes, "wrong version");
}

TEST_F(DiskStoreCorruptionTest, PayloadBitFlipIsACleanMissNeverAWrongAnswer) {
  // Flip one bit in every region of the payload (a schedule byte, a package
  // byte, ...): the checksum must catch each one.
  for (const std::size_t offset :
       {std::size_t{40}, pristine_.size() / 2, pristine_.size() - 3}) {
    std::string bytes = pristine_;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x01);
    ExpectCleanMiss(bytes, ("bit flip at " + std::to_string(offset)).c_str());
  }
}

TEST_F(DiskStoreCorruptionTest, TrailingGarbageIsACleanMiss) {
  ExpectCleanMiss(pristine_ + "extra", "trailing garbage");
}

TEST(DiskStoreTest, RenamedSpillNeverAnswersTheWrongKey) {
  // A spill copied to another key's file name must not be served under the
  // new name: the envelope's embedded key disagrees.
  const TempDir dir("respect-store-renamed");
  const graph::Dag dag = SampleDag(24, 11);
  SpillMeta meta;
  meta.key = graph::HashDag(dag);
  meta.engine_name = "ListScheduling";
  const graph::CanonicalHash other_key{0xfeed, 0xbeef};
  {
    DiskStore writer(DiskStoreOptions{.directory = dir.str()});
    writer.Put(meta, SolveOnce(dag));
    fs::copy_file(writer.PathFor(meta.key), writer.PathFor(other_key));
  }
  DiskStore store(DiskStoreOptions{.directory = dir.str()});
  EXPECT_EQ(store.Metrics().resident, 2u);
  EXPECT_EQ(store.Probe(other_key), nullptr);
  EXPECT_EQ(store.Metrics().corrupt_dropped, 1u);
  EXPECT_NE(store.Probe(meta.key), nullptr);  // the honest copy still serves
}

TEST(DiskStoreTest, Version1SpillsReadBackAsTheDefaultProfile) {
  // Forward migration: a spill written by a pre-profile (v1) build must
  // warm-start a v2 store as the default profile — byte-craft the v1
  // envelope exactly as the old writer laid it out.
  const TempDir dir("respect-store-v1-migration");
  const graph::Dag dag = SampleDag(24, 41);
  const graph::CanonicalHash key = graph::HashDag(dag);
  const ResultPtr result = SolveOnce(dag);

  std::ostringstream payload_os(std::ios::binary);
  deploy::WritePod(payload_os, key.hi);
  deploy::WritePod(payload_os, key.lo);
  deploy::WritePod(payload_os, std::uint8_t{0});  // rl_dependent
  deploy::WritePod(payload_os, std::uint64_t{0});  // rl_version
  const std::string engine = "ListScheduling";
  deploy::WritePod(payload_os, static_cast<std::uint32_t>(engine.size()));
  payload_os.write(engine.data(),
                   static_cast<std::streamsize>(engine.size()));
  // v1 stops here: no profile name, no fingerprint.
  deploy::WritePod(payload_os, std::int64_t{0});  // expires_at: never
  deploy::WritePod(payload_os, result->solve_seconds);
  deploy::WritePod(payload_os, result->peak_stage_param_bytes);
  deploy::WritePod(payload_os, std::uint8_t{result->proved_optimal});
  deploy::WritePod(payload_os, result->schedule.num_stages);
  deploy::WritePod(payload_os,
                   static_cast<std::uint64_t>(result->schedule.stage.size()));
  for (const int stage : result->schedule.stage) {
    deploy::WritePod(payload_os, stage);
  }
  deploy::WritePackage(result->package, payload_os);
  const std::string payload = std::move(payload_os).str();

  graph::CanonicalHasher hasher;
  hasher.Update(std::string_view(payload));
  const graph::CanonicalHash checksum = hasher.Finish();

  DiskStore store(DiskStoreOptions{.directory = dir.str()});
  const fs::path path = store.PathFor(key);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    deploy::WritePod(os, std::uint32_t{0x4c505352});  // "RSPL"
    deploy::WritePod(os, std::uint32_t{1});           // format version 1
    deploy::WritePod(os, static_cast<std::uint64_t>(payload.size()));
    deploy::WritePod(os, checksum.hi);
    deploy::WritePod(os, checksum.lo);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }

  // A fresh store indexes and serves the v1 file as a normal hit.
  DiskStore reader(DiskStoreOptions{.directory = dir.str()});
  EXPECT_EQ(reader.Metrics().resident, 1u);
  const ResultPtr loaded = reader.Probe(key);
  ASSERT_NE(loaded, nullptr);
  ExpectSameResult(*loaded, *result);
  EXPECT_EQ(reader.Metrics().corrupt_dropped, 0u);

  // Compact reads the v1 prefix fine too (nothing to reclaim).
  EXPECT_EQ(reader.Compact(/*live_rl_version=*/0), 0u);
  EXPECT_TRUE(fs::exists(path));

  // Rewriting the entry migrates the file to the current format version.
  SpillMeta meta;
  meta.key = key;
  meta.engine_name = engine;
  reader.Put(meta, loaded);
  std::ifstream is(path, std::ios::binary);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  deploy::ReadPod(is, magic);
  deploy::ReadPod(is, version);
  EXPECT_EQ(magic, 0x4c505352u);
  EXPECT_EQ(version, 2u);
}

TEST(DiskStoreTest, TtlExpiredEntriesAreDroppedOnProbe) {
  const TempDir dir("respect-store-ttl");
  auto fake_now = std::chrono::system_clock::now();
  DiskStoreOptions options;
  options.directory = dir.str();
  options.ttl_seconds = 100.0;
  options.clock = [&fake_now] { return fake_now; };
  DiskStore store(options);

  const graph::Dag dag = SampleDag(24, 13);
  SpillMeta meta;
  meta.key = graph::HashDag(dag);
  meta.engine_name = "ListScheduling";
  store.Put(meta, SolveOnce(dag));

  EXPECT_NE(store.Probe(meta.key), nullptr);  // young: serves
  fake_now += std::chrono::seconds(200);      // past the 100 s TTL
  EXPECT_EQ(store.Probe(meta.key), nullptr);
  const auto metrics = store.Metrics();
  EXPECT_EQ(metrics.expired_dropped, 1u);
  EXPECT_EQ(metrics.resident, 0u);
  EXPECT_FALSE(fs::exists(store.PathFor(meta.key)));
}

TEST(DiskStoreTest, CompactDeletesStaleRlAndExpiredEntries) {
  const TempDir dir("respect-store-compact");
  auto fake_now = std::chrono::system_clock::now();
  DiskStoreOptions options;
  options.directory = dir.str();
  options.ttl_seconds = 1000.0;
  options.clock = [&fake_now] { return fake_now; };
  DiskStore store(options);
  const ResultPtr result = SolveOnce(SampleDag(24, 15));

  SpillMeta stale_rl{.key = {1, 10}, .rl_dependent = true, .rl_version = 0,
                     .engine_name = "RespectRL"};
  SpillMeta live_rl{.key = {2, 20}, .rl_dependent = true, .rl_version = 3,
                    .engine_name = "RespectRL"};
  SpillMeta deterministic{.key = {3, 30}, .engine_name = "ListScheduling"};
  store.Put(stale_rl, result);
  store.Put(live_rl, result);
  store.Put(deterministic, result);
  EXPECT_EQ(store.Metrics().resident, 3u);

  // Live version 3: only the version-0 RL spill is unreachable.
  EXPECT_EQ(store.Compact(/*live_rl_version=*/3), 1u);
  EXPECT_EQ(store.Metrics().compacted, 1u);
  EXPECT_EQ(store.Metrics().resident, 2u);
  EXPECT_EQ(store.Probe(stale_rl.key), nullptr);
  EXPECT_NE(store.Probe(live_rl.key), nullptr);
  EXPECT_NE(store.Probe(deterministic.key), nullptr);

  // Everything ages past the TTL: the next compaction empties the store.
  fake_now += std::chrono::seconds(2000);
  EXPECT_EQ(store.Compact(/*live_rl_version=*/3), 2u);
  EXPECT_EQ(store.Metrics().resident, 0u);
}

// ── CompileService + persistent tier, end to end ─────────────────────────

TEST(CompileServiceStoreTest, RestartWarmStartServesFromDiskWithZeroSolves) {
  EnsureStoreCountingEngine();
  const TempDir dir("respect-service-warmstart");
  serve::ServiceOptions service_options;
  service_options.cache_dir = dir.str();
  const graph::Dag dag = SampleDag(24, 17);

  ResultPtr first_result;
  {
    serve::CompileService service(FastOptions(), service_options);
    const CompileResponse cold = Ask(service, dag, 4, "StoreCounting");
    EXPECT_EQ(cold.outcome, CacheOutcome::kMiss);
    EXPECT_EQ(StoreCountingEngine::Solves().load(), 1);
    first_result = cold.result;
    service.FlushStore();
    const auto metrics = service.Metrics();
    EXPECT_EQ(metrics.store.writes, 1u);
    EXPECT_EQ(metrics.store.write_failures, 0u);
  }

  // "Restart": a fresh service over the same directory.  The request must
  // be answered from disk without invoking any engine.
  serve::CompileService restarted(FastOptions(), service_options);
  const CompileResponse warm = Ask(restarted, dag, 4, "StoreCounting");
  EXPECT_EQ(warm.outcome, CacheOutcome::kDiskHit);
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 1);  // zero new solves
  ASSERT_NE(warm.result, nullptr);
  ExpectSameResult(*warm.result, *first_result);

  const auto metrics = restarted.Metrics();
  EXPECT_EQ(metrics.disk_hits, 1u);
  EXPECT_EQ(metrics.misses, 0u);
  EXPECT_EQ(metrics.store.hits, 1u);
  EXPECT_EQ(metrics.cache_size, 1u);  // promoted into memory ...

  const CompileResponse memory_hit = Ask(restarted, dag, 4, "StoreCounting");
  EXPECT_EQ(memory_hit.outcome, CacheOutcome::kHit);  // ... and hit there
  EXPECT_EQ(memory_hit.result, warm.result);
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 1);
}

TEST(CompileServiceStoreTest, ClearCacheFallsBackToTheDiskTier) {
  EnsureStoreCountingEngine();
  const TempDir dir("respect-service-clearcache");
  serve::ServiceOptions service_options;
  service_options.cache_dir = dir.str();
  serve::CompileService service(FastOptions(), service_options);
  const graph::Dag dag = SampleDag(24, 19);

  (void)Ask(service, dag, 4, "StoreCounting");
  service.FlushStore();
  service.ClearCache();  // memory gone, disk intact — the restart shape
  const CompileResponse after = Ask(service, dag, 4, "StoreCounting");
  EXPECT_EQ(after.outcome, CacheOutcome::kDiskHit);
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 1);
}

TEST(CompileServiceStoreTest, CorruptSpillIsACleanMissAtTheServiceLevel) {
  EnsureStoreCountingEngine();
  const TempDir dir("respect-service-corrupt");
  serve::ServiceOptions service_options;
  service_options.cache_dir = dir.str();
  const graph::Dag dag = SampleDag(24, 21);
  {
    serve::CompileService service(FastOptions(), service_options);
    (void)Ask(service, dag, 4, "StoreCounting");
    service.FlushStore();
  }
  // Bit-flip the one spill file in the directory.
  fs::path spill;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().extension() == ".spill") spill = entry.path();
  }
  ASSERT_FALSE(spill.empty());
  {
    std::fstream f(spill, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);  // guaranteed different
    f.seekp(64);
    f.write(&byte, 1);
  }

  serve::CompileService restarted(FastOptions(), service_options);
  const CompileResponse response = Ask(restarted, dag, 4, "StoreCounting");
  EXPECT_EQ(response.outcome, CacheOutcome::kMiss);  // re-solved cleanly
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 2);
  const auto metrics = restarted.Metrics();
  EXPECT_EQ(metrics.store.corrupt_dropped, 1u);
  EXPECT_EQ(metrics.disk_hits, 0u);
  ASSERT_NE(response.result, nullptr);
}

TEST(CompileServiceStoreTest, TtlExpiredEntriesMissAndAreResolved) {
  EnsureStoreCountingEngine();
  serve::ServiceOptions service_options;
  service_options.cache_ttl_seconds = 0.05;  // memory tier only
  serve::CompileService service(FastOptions(), service_options);
  const graph::Dag dag = SampleDag(24, 23);

  EXPECT_EQ(Ask(service, dag, 4, "StoreCounting").outcome,
            CacheOutcome::kMiss);
  EXPECT_EQ(Ask(service, dag, 4, "StoreCounting").outcome,
            CacheOutcome::kHit);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(Ask(service, dag, 4, "StoreCounting").outcome,
            CacheOutcome::kMiss);  // expired lazily on probe, re-solved
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 2);
  const auto metrics = service.Metrics();
  EXPECT_EQ(metrics.ttl_expired, 1u);
  EXPECT_EQ(metrics.misses, 2u);
}

TEST(CompileServiceStoreTest, PromotedDiskHitKeepsTheOriginalExpiry) {
  // A disk hit promoted into memory must die at the spill's absolute
  // expiry, not get a freshly re-armed TTL (which would stretch the age
  // bound to ~2x cache_ttl_seconds across a restart).
  EnsureStoreCountingEngine();
  const TempDir dir("respect-service-promote-ttl");
  serve::ServiceOptions service_options;
  service_options.cache_dir = dir.str();
  service_options.cache_ttl_seconds = 0.4;
  serve::CompileService service(FastOptions(), service_options);
  const graph::Dag dag = SampleDag(24, 39);

  (void)Ask(service, dag, 4, "StoreCounting");  // T0: solve + spill
  service.FlushStore();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  service.ClearCache();
  // T0+0.25: still within the 0.4 s TTL — promoted from disk with ~0.15 s
  // of life left, not a fresh 0.4 s.
  EXPECT_EQ(Ask(service, dag, 4, "StoreCounting").outcome,
            CacheOutcome::kDiskHit);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  // T0+0.5: past the original expiry.  The promoted memory entry and the
  // disk copy must both be gone — a re-armed TTL would answer kHit here.
  EXPECT_EQ(Ask(service, dag, 4, "StoreCounting").outcome,
            CacheOutcome::kMiss);
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 2);
}

TEST(CompileServiceStoreTest, OneHitWonderScanCannotFlushAHotEntry) {
  serve::ServiceOptions service_options;
  service_options.cache_capacity = 2;
  service_options.cache_shards = 1;
  serve::CompileService service(FastOptions(), service_options);

  const graph::Dag hot = SampleDag(20, 25);
  (void)Ask(service, hot, 4, "list");  // cold solve
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(Ask(service, hot, 4, "list").outcome, CacheOutcome::kHit);
  }

  // A scan of one-hit wonders: under plain LRU the second scan entry would
  // evict `hot` (the LRU tail once scan-0 is inserted).  TinyLFU bounces
  // the scans off instead: frequency 1 does not displace frequency 5.
  for (std::uint64_t seed = 27; seed < 33; seed += 2) {
    const CompileResponse scan = Ask(service, SampleDag(20, seed), 4, "list");
    EXPECT_EQ(scan.outcome, CacheOutcome::kMiss);
    ASSERT_NE(scan.result, nullptr);  // rejected from cache, still served
  }

  EXPECT_EQ(Ask(service, hot, 4, "list").outcome, CacheOutcome::kHit);
  const auto metrics = service.Metrics();
  EXPECT_EQ(metrics.evictions, 0u);
  EXPECT_EQ(metrics.admission_rejected, 2u);  // scans 2 and 3 bounced
  EXPECT_EQ(metrics.cache_size, 2u);
}

TEST(CompileServiceStoreTest, ReplaceRlStrandsOldSpillsAndCompactReclaims) {
  const TempDir dir("respect-service-compact");
  serve::ServiceOptions service_options;
  service_options.cache_dir = dir.str();
  serve::CompileService service(FastOptions(), service_options);
  const graph::Dag dag = SampleDag(24, 35);

  (void)Ask(service, dag, 4, Method::kRespectRl);       // RL, version 0
  (void)Ask(service, dag, 4, Method::kListScheduling);  // deterministic
  service.FlushStore();
  EXPECT_EQ(service.Metrics().store.resident, 2u);

  service.ReplaceRl(std::make_shared<rl::RlScheduler>(FastOptions().net));

  // The version-0 spill is unreachable (the new key embeds version 1), so
  // the RL request re-solves; the deterministic entry still disk-hits
  // after a memory wipe.
  const CompileResponse rl_after = Ask(service, dag, 4, Method::kRespectRl);
  EXPECT_EQ(rl_after.outcome, CacheOutcome::kMiss);
  service.FlushStore();
  EXPECT_EQ(service.Metrics().store.resident, 3u);

  EXPECT_EQ(service.CompactStore(), 1u);  // exactly the stranded v0 spill
  EXPECT_EQ(service.Metrics().store.resident, 2u);

  service.ClearCache();
  EXPECT_EQ(Ask(service, dag, 4, Method::kListScheduling).outcome,
            CacheOutcome::kDiskHit);
  EXPECT_EQ(Ask(service, dag, 4, Method::kRespectRl).outcome,
            CacheOutcome::kDiskHit);  // the v1 spill — still reachable
}

TEST(CompileServiceStoreTest, BypassNeverTouchesTheDiskTier) {
  EnsureStoreCountingEngine();
  const TempDir dir("respect-service-bypass");
  serve::ServiceOptions service_options;
  service_options.cache_dir = dir.str();
  serve::CompileService service(FastOptions(), service_options);
  const graph::Dag dag = SampleDag(24, 37);

  (void)Ask(service, dag, 4, "StoreCounting");
  service.FlushStore();
  const auto probes_before = service.Metrics().store.probes;
  const CompileResponse bypass =
      Ask(service, dag, 4, "StoreCounting", CachePolicy::kBypass);
  EXPECT_EQ(bypass.outcome, CacheOutcome::kBypass);
  EXPECT_EQ(StoreCountingEngine::Solves().load(), 2);  // really solved
  EXPECT_EQ(service.Metrics().store.probes, probes_before);
}

}  // namespace
}  // namespace respect
