// serve::RequestQueue unit tests — ordering policy (strict priority,
// in-lane FIFO, batch-starvation aging) and deadline expiry, driven with an
// injected clock so every scenario is deterministic; plus one integration
// test proving the queue plugs into core::ThreadPool as its TaskQueue.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace respect {
namespace {

using core::ThreadPool;
using serve::Priority;
using serve::RequestQueue;

using TimePoint = std::chrono::steady_clock::time_point;

/// Manually advanced clock injected through RequestQueue::Options.
struct FakeClock {
  TimePoint now{};

  void Advance(double seconds) {
    now += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
  }
};

class RequestQueueTest : public ::testing::Test {
 protected:
  RequestQueue MakeQueue(double aging_seconds, int max_batch_inflight = 0) {
    RequestQueue::Options options;
    options.aging_seconds = aging_seconds;
    options.max_batch_inflight = max_batch_inflight;
    options.clock = [this] { return clock_.now; };
    return RequestQueue(options);
  }

  /// Pushes an entry that appends `label` to ran_ when run and
  /// `label + "!expired"` when expired.
  void Push(RequestQueue& queue, const std::string& label, Priority lane,
            double deadline_in_seconds = -1.0) {
    ThreadPool::TaskAttrs attrs;
    attrs.lane = static_cast<int>(lane);
    if (deadline_in_seconds >= 0.0) {
      attrs.has_deadline = true;
      attrs.deadline = clock_.now +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(deadline_in_seconds));
    }
    attrs.on_expired = [this, label] { ran_.push_back(label + "!expired"); };
    queue.Push([this, label] { ran_.push_back(label); }, std::move(attrs));
  }

  /// Pops one entry and runs whatever came back (task or expiry callback).
  void PopAndRun(RequestQueue& queue) {
    ThreadPool::Task task = queue.Pop();
    ASSERT_TRUE(static_cast<bool>(task));
    task();
  }

  /// Same, tagging the entry with a tenant flow.
  void PushFlow(RequestQueue& queue, const std::string& label, Priority lane,
                const std::string& flow, double deadline_in_seconds = -1.0) {
    ThreadPool::TaskAttrs attrs;
    attrs.lane = static_cast<int>(lane);
    attrs.flow = flow;
    if (deadline_in_seconds >= 0.0) {
      attrs.has_deadline = true;
      attrs.deadline = clock_.now +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(deadline_in_seconds));
    }
    attrs.on_expired = [this, label] { ran_.push_back(label + "!expired"); };
    queue.Push([this, label] { ran_.push_back(label); }, std::move(attrs));
  }

  FakeClock clock_;
  std::vector<std::string> ran_;
};

TEST_F(RequestQueueTest, StrictPriorityAcrossLanesFifoWithin) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  Push(queue, "batch-0", Priority::kBatch);
  Push(queue, "normal-0", Priority::kNormal);
  Push(queue, "interactive-0", Priority::kInteractive);
  Push(queue, "interactive-1", Priority::kInteractive);
  Push(queue, "batch-1", Priority::kBatch);
  EXPECT_EQ(queue.Size(), 5u);
  EXPECT_EQ(queue.Depth(Priority::kInteractive), 2u);
  EXPECT_EQ(queue.Depth(Priority::kBatch), 2u);

  for (int i = 0; i < 5; ++i) PopAndRun(queue);
  EXPECT_EQ(ran_,
            (std::vector<std::string>{"interactive-0", "interactive-1",
                                      "normal-0", "batch-0", "batch-1"}));
  EXPECT_EQ(queue.Size(), 0u);
  EXPECT_EQ(queue.Depth(Priority::kBatch), 0u);
}

TEST_F(RequestQueueTest, AgedBatchWorkOvertakesFreshInteractive) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/1.0);
  Push(queue, "batch-old", Priority::kBatch);

  // Young batch loses to fresh interactive (strict-priority regime)...
  clock_.Advance(0.5);
  Push(queue, "interactive-young", Priority::kInteractive);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "interactive-young");

  // ...but once the batch head has waited past 2 * aging_seconds longer,
  // its score beats a fresh interactive arrival: no starvation.
  clock_.Advance(2.0);  // batch-old has now waited 2.5s vs lane handicap 2.0
  Push(queue, "interactive-late", Priority::kInteractive);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "batch-old");
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "interactive-late");
}

TEST_F(RequestQueueTest, ZeroAgingMeansPureStrictPriority) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/0.0);
  Push(queue, "batch", Priority::kBatch);
  clock_.Advance(3600.0);  // a starved hour changes nothing
  Push(queue, "interactive", Priority::kInteractive);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "interactive");
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "batch");
}

TEST_F(RequestQueueTest, ExpiredHeadsDrainBeforeLiveWork) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  Push(queue, "batch-doomed", Priority::kBatch, /*deadline_in_seconds=*/0.5);
  Push(queue, "interactive-live", Priority::kInteractive);
  clock_.Advance(1.0);  // the batch head's deadline lapses

  // The expired batch head drains first (as its expiry callback), then the
  // live interactive entry runs.
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "batch-doomed!expired");
  EXPECT_EQ(queue.Expired(Priority::kBatch), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "interactive-live");
  EXPECT_EQ(queue.Expired(Priority::kInteractive), 0u);
}

TEST_F(RequestQueueTest, LiveEntriesMeetTheirDeadlinesUnexpired) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  Push(queue, "in-time", Priority::kNormal, /*deadline_in_seconds=*/10.0);
  clock_.Advance(1.0);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "in-time");
  EXPECT_EQ(queue.Expired(Priority::kNormal), 0u);
}

TEST_F(RequestQueueTest, MissingExpiryCallbackDropsSilently) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  ThreadPool::TaskAttrs attrs;
  attrs.lane = static_cast<int>(Priority::kNormal);
  attrs.has_deadline = true;
  attrs.deadline = clock_.now;  // expires on the next tick
  queue.Push([this] { ran_.push_back("never"); }, std::move(attrs));
  clock_.Advance(1.0);
  PopAndRun(queue);  // returns the no-op stand-in, not the task
  EXPECT_TRUE(ran_.empty());
  EXPECT_EQ(queue.Expired(Priority::kNormal), 1u);
  EXPECT_EQ(queue.Size(), 0u);
}

TEST_F(RequestQueueTest, OutOfRangeLaneHintsClampToTheNearestLane) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  ThreadPool::TaskAttrs low;
  low.lane = -5;
  queue.Push([this] { ran_.push_back("clamped-low"); }, std::move(low));
  ThreadPool::TaskAttrs high;
  high.lane = 99;
  queue.Push([this] { ran_.push_back("clamped-high"); }, std::move(high));
  EXPECT_EQ(queue.Depth(Priority::kInteractive), 1u);
  EXPECT_EQ(queue.Depth(Priority::kBatch), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "clamped-low");
}

// ── Batch concurrency cap ────────────────────────────────────────────────

TEST_F(RequestQueueTest, BatchCapHidesTheBacklogWhileASlotIsHeld) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0,
                                 /*max_batch_inflight=*/1);
  Push(queue, "batch-0", Priority::kBatch);
  Push(queue, "batch-1", Priority::kBatch);
  EXPECT_EQ(queue.Size(), 2u);  // nothing running yet: both poppable

  // Popping batch-0 claims the one slot; until the returned task finishes,
  // the rest of the batch backlog is invisible (workers sleep on it) and
  // BatchRunning reports the held slot.
  ThreadPool::Task first = queue.Pop();
  EXPECT_EQ(queue.BatchRunning(), 1);
  EXPECT_EQ(queue.Size(), 0u);
  EXPECT_EQ(queue.Depth(Priority::kBatch), 1u);  // still queued, just hidden

  // Other lanes are unaffected by the batch cap.
  Push(queue, "interactive", Priority::kInteractive);
  EXPECT_EQ(queue.Size(), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "interactive");

  // Finishing the batch task releases the slot; the backlog reappears.
  first();
  EXPECT_EQ(ran_.back(), "batch-0");
  EXPECT_EQ(queue.BatchRunning(), 0);
  EXPECT_EQ(queue.Size(), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "batch-1");
}

TEST_F(RequestQueueTest, BatchCapAllowsUpToNConcurrentSlots) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0,
                                 /*max_batch_inflight=*/2);
  Push(queue, "batch-0", Priority::kBatch);
  Push(queue, "batch-1", Priority::kBatch);
  Push(queue, "batch-2", Priority::kBatch);
  ThreadPool::Task a = queue.Pop();
  ThreadPool::Task b = queue.Pop();
  EXPECT_EQ(queue.BatchRunning(), 2);
  EXPECT_EQ(queue.Size(), 0u);  // third entry hidden at the cap
  b();
  EXPECT_EQ(queue.BatchRunning(), 1);
  EXPECT_EQ(queue.Size(), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "batch-2");
  a();
  EXPECT_EQ(queue.BatchRunning(), 0);
}

TEST_F(RequestQueueTest, ExpiredCappedBatchHeadStillFailsFast) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0,
                                 /*max_batch_inflight=*/1);
  Push(queue, "batch-running", Priority::kBatch);
  ThreadPool::Task running = queue.Pop();  // holds the only slot
  Push(queue, "batch-doomed", Priority::kBatch, /*deadline_in_seconds=*/0.5);
  EXPECT_EQ(queue.Size(), 0u);  // capped and unexpired: hidden
  clock_.Advance(1.0);
  // Once its deadline lapses the head surfaces despite the cap — expiring
  // costs no batch slot, so a worker can fail it fast immediately.
  EXPECT_EQ(queue.Size(), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "batch-doomed!expired");
  EXPECT_EQ(queue.Expired(Priority::kBatch), 1u);
  EXPECT_EQ(queue.BatchRunning(), 1);  // the running task still holds its slot
  running();
  EXPECT_EQ(queue.BatchRunning(), 0);
}

// ── Per-tenant weighted-fair queueing ────────────────────────────────────

TEST_F(RequestQueueTest, EqualWeightTenantsInterleaveUnderAFlood) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  // Tenant "a" floods 6 entries before "b" submits 2: fair queueing still
  // alternates them while both are backlogged — the flood only deepens a's
  // own sub-queue.
  for (int i = 0; i < 6; ++i) {
    PushFlow(queue, "a-" + std::to_string(i), Priority::kNormal, "a");
  }
  for (int i = 0; i < 2; ++i) {
    PushFlow(queue, "b-" + std::to_string(i), Priority::kNormal, "b");
  }
  for (int i = 0; i < 8; ++i) PopAndRun(queue);
  EXPECT_EQ(ran_, (std::vector<std::string>{"a-0", "b-0", "a-1", "b-1", "a-2",
                                            "a-3", "a-4", "a-5"}));
}

TEST_F(RequestQueueTest, WeightTwoTenantReceivesTwiceTheService) {
  RequestQueue::Options options;
  options.aging_seconds = 100.0;
  options.clock = [this] { return clock_.now; };
  options.tenant_weights["big"] = 2.0;
  RequestQueue queue(options);
  for (int i = 0; i < 6; ++i) {
    PushFlow(queue, "big", Priority::kNormal, "big");
  }
  for (int i = 0; i < 3; ++i) {
    PushFlow(queue, "small", Priority::kNormal, "small");
  }
  // Over the first 6 pops (both tenants backlogged throughout), the
  // weight-2 tenant gets exactly twice the weight-1 tenant's share.
  int big = 0;
  for (int i = 0; i < 6; ++i) {
    PopAndRun(queue);
    if (ran_.back() == "big") ++big;
  }
  EXPECT_EQ(big, 4);
  for (int i = 0; i < 3; ++i) PopAndRun(queue);  // the rest drains
  EXPECT_EQ(queue.Size(), 0u);
}

TEST_F(RequestQueueTest, SingleTenantKeepsExactFifoOrder) {
  RequestQueue queue = MakeQueue(/*aging_seconds=*/100.0);
  for (int i = 0; i < 4; ++i) {
    PushFlow(queue, "x-" + std::to_string(i), Priority::kNormal, "x");
  }
  for (int i = 0; i < 4; ++i) PopAndRun(queue);
  EXPECT_EQ(ran_, (std::vector<std::string>{"x-0", "x-1", "x-2", "x-3"}));
}

TEST_F(RequestQueueTest, TenantQuotaHidesBacklogAcrossAllLanes) {
  RequestQueue::Options options;
  options.aging_seconds = 100.0;
  options.clock = [this] { return clock_.now; };
  options.tenant_quotas["t"] = 1;
  RequestQueue queue(options);

  PushFlow(queue, "t-0", Priority::kInteractive, "t");
  PushFlow(queue, "t-1", Priority::kInteractive, "t");
  EXPECT_EQ(queue.Size(), 2u);

  // Popping t-0 claims t's one slot; the rest of t's backlog — in every
  // lane — is invisible until the task finishes.
  ThreadPool::Task running = queue.Pop();
  EXPECT_EQ(queue.TenantRunning("t"), 1);
  EXPECT_EQ(queue.Size(), 0u);
  PushFlow(queue, "t-2", Priority::kNormal, "t");  // another lane: still hidden
  EXPECT_EQ(queue.Size(), 0u);

  // Other tenants are unaffected.
  PushFlow(queue, "u-0", Priority::kNormal, "u");
  EXPECT_EQ(queue.Size(), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "u-0");

  // Finishing t's task releases the slot and resurfaces the backlog.
  running();
  EXPECT_EQ(ran_.back(), "t-0");
  EXPECT_EQ(queue.TenantRunning("t"), 0);
  EXPECT_EQ(queue.Size(), 2u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "t-1");  // interactive lane first
}

TEST_F(RequestQueueTest, ExpiredQuotaBlockedHeadStillFailsFast) {
  RequestQueue::Options options;
  options.aging_seconds = 100.0;
  options.clock = [this] { return clock_.now; };
  options.tenant_quotas["t"] = 1;
  RequestQueue queue(options);

  PushFlow(queue, "t-running", Priority::kNormal, "t");
  ThreadPool::Task running = queue.Pop();  // holds t's only slot
  PushFlow(queue, "t-doomed", Priority::kNormal, "t",
           /*deadline_in_seconds=*/0.5);
  EXPECT_EQ(queue.Size(), 0u);  // blocked and unexpired: hidden
  clock_.Advance(1.0);
  // The lapsed head surfaces despite the quota — expiry costs no slot.
  EXPECT_EQ(queue.Size(), 1u);
  PopAndRun(queue);
  EXPECT_EQ(ran_.back(), "t-doomed!expired");
  EXPECT_EQ(queue.TenantRunning("t"), 1);  // running task still holds the slot
  running();
  EXPECT_EQ(queue.TenantRunning("t"), 0);
}

// ── Depth bounds and load shedding ───────────────────────────────────────

TEST_F(RequestQueueTest, DepthBoundShedsOnlySheddableEntries) {
  RequestQueue::Options options;
  options.aging_seconds = 100.0;
  options.max_lane_depth = 2;
  options.clock = [this] { return clock_.now; };
  RequestQueue queue(options);

  const auto push = [&](const std::string& label, bool sheddable) {
    ThreadPool::TaskAttrs attrs;
    attrs.lane = static_cast<int>(Priority::kNormal);
    attrs.sheddable = sheddable;
    queue.Push([this, label] { ran_.push_back(label); }, std::move(attrs));
  };

  push("n-0", /*sheddable=*/true);
  push("n-1", /*sheddable=*/true);
  EXPECT_THROW(push("n-2", /*sheddable=*/true), serve::Overloaded);
  EXPECT_EQ(queue.Shed(Priority::kNormal), 1u);
  EXPECT_EQ(queue.Depth(Priority::kNormal), 2u);

  // Bookkeeping (unsheddable) entries always enqueue, even over the bound,
  // and other lanes are unaffected by this lane's pressure.
  push("n-keep", /*sheddable=*/false);
  EXPECT_EQ(queue.Depth(Priority::kNormal), 3u);
  Push(queue, "i-0", Priority::kInteractive);
  EXPECT_EQ(queue.Depth(Priority::kInteractive), 1u);

  // Unsheddable residency still counts against the bound: the lane stays
  // full for sheddable traffic until something drains.
  EXPECT_THROW(push("n-3", /*sheddable=*/true), serve::Overloaded);
  EXPECT_EQ(queue.Shed(Priority::kNormal), 2u);

  for (int i = 0; i < 4; ++i) PopAndRun(queue);
  EXPECT_EQ(ran_, (std::vector<std::string>{"i-0", "n-0", "n-1", "n-keep"}));
  push("n-4", /*sheddable=*/true);  // drained lane admits again
  EXPECT_EQ(queue.Depth(Priority::kNormal), 1u);
}

TEST_F(RequestQueueTest, DepthBoundComposesWithBatchCapAndQuota) {
  RequestQueue::Options options;
  options.aging_seconds = 100.0;
  options.max_lane_depth = 2;
  options.max_batch_inflight = 1;
  options.tenant_quotas["t"] = 1;
  options.clock = [this] { return clock_.now; };
  RequestQueue queue(options);

  const auto push = [&](const std::string& label, Priority lane,
                        const std::string& flow) {
    ThreadPool::TaskAttrs attrs;
    attrs.lane = static_cast<int>(lane);
    attrs.flow = flow;
    attrs.sheddable = true;
    queue.Push([this, label] { ran_.push_back(label); }, std::move(attrs));
  };

  // Fill the batch lane to its depth bound, then start one batch task: the
  // inflight cap hides the remaining entry from Size(), but it still holds
  // its depth slot — the bound tracks residency, not visibility.
  push("b-0", Priority::kBatch, "t");
  push("b-1", Priority::kBatch, "t");
  EXPECT_THROW(push("b-2", Priority::kBatch, "t"), serve::Overloaded);
  ThreadPool::Task running_batch = queue.Pop();
  EXPECT_EQ(queue.Size(), 0u);  // capped: b-1 hidden
  EXPECT_EQ(queue.Depth(Priority::kBatch), 1u);
  push("b-3", Priority::kBatch, "t");  // depth 1 < 2: admitted while hidden
  EXPECT_THROW(push("b-4", Priority::kBatch, "t"), serve::Overloaded);
  EXPECT_EQ(queue.Shed(Priority::kBatch), 2u);

  // Tenant t's quota slot is held by the running batch task, so t's normal-
  // lane work is hidden too — yet its depth slots still bound admission.
  push("n-0", Priority::kNormal, "t");
  push("n-1", Priority::kNormal, "t");
  EXPECT_THROW(push("n-2", Priority::kNormal, "t"), serve::Overloaded);
  EXPECT_EQ(queue.Size(), 0u);  // everything blocked behind cap + quota
  EXPECT_EQ(queue.Shed(Priority::kNormal), 1u);

  // Finishing the batch task releases both the batch slot and the quota
  // slot; everything queued drains in lane order.
  running_batch();
  EXPECT_EQ(ran_.back(), "b-0");
  EXPECT_EQ(queue.Size(), 4u);
  for (int i = 0; i < 4; ++i) PopAndRun(queue);
  EXPECT_EQ(ran_, (std::vector<std::string>{"b-0", "n-0", "n-1", "b-1",
                                            "b-3"}));
}

// Weighted-fair service under overload: one tenant floods a depth-bounded
// lane; sheds happen (the backlog cannot absorb the flood), yet the service
// received by the three backlogged tenants stays near-equal — Jain fairness
// over served counts >= 0.9.
TEST_F(RequestQueueTest, ServiceStaysFairUnderSheddingFlood) {
  RequestQueue::Options options;
  options.aging_seconds = 100.0;
  options.max_lane_depth = 6;
  options.clock = [this] { return clock_.now; };
  RequestQueue queue(options);

  std::map<std::string, int> served;
  std::uint64_t shed_pushes = 0;
  const auto push = [&](const std::string& tenant) {
    ThreadPool::TaskAttrs attrs;
    attrs.lane = static_cast<int>(Priority::kNormal);
    attrs.flow = tenant;
    attrs.sheddable = true;
    try {
      queue.Push([&served, tenant] { ++served[tenant]; }, std::move(attrs));
    } catch (const serve::Overloaded&) {
      ++shed_pushes;
    }
  };

  for (int round = 0; round < 150; ++round) {
    // Interleaved arrivals: every tenant offers work each round, tenant
    // "a" offers 3x as much.  The lane serves 3 per round, so the flood
    // keeps the lane at its bound and pushes beyond it are shed.
    push("a");
    push("b");
    push("c");
    push("a");
    push("a");
    clock_.Advance(0.001);
    for (int i = 0; i < 3 && queue.Size() > 0; ++i) PopAndRun(queue);
  }
  while (queue.Size() > 0) PopAndRun(queue);

  EXPECT_GT(shed_pushes, 0u);
  EXPECT_EQ(queue.Shed(Priority::kNormal), shed_pushes);
  ASSERT_EQ(served.size(), 3u);

  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [tenant, count] : served) {
    sum += count;
    sum_sq += static_cast<double>(count) * count;
  }
  const double jain = (sum * sum) / (3.0 * sum_sq);
  EXPECT_GE(jain, 0.9) << "served: a=" << served["a"] << " b=" << served["b"]
                       << " c=" << served["c"];
}

// The queue as a live ThreadPool policy: every submitted task runs exactly
// once and Wait() drains cleanly — the pool's in-flight accounting and the
// queue's one-entry-per-pop contract line up.
TEST(RequestQueuePoolTest, DrivesAThreadPoolToCompletion) {
  auto queue = std::make_unique<RequestQueue>();
  ThreadPool pool(2, std::move(queue));
  std::mutex mutex;
  int ran = 0;
  for (int i = 0; i < 32; ++i) {
    ThreadPool::TaskAttrs attrs;
    attrs.lane = i % 3;
    pool.Submit(
        [&] {
          const std::lock_guard<std::mutex> lock(mutex);
          ++ran;
        },
        std::move(attrs));
  }
  pool.Wait();
  EXPECT_EQ(ran, 32);
}

}  // namespace
}  // namespace respect
