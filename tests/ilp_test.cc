// Mini-ILP tests: model construction, LP export, generic branch-and-bound on
// knapsack-style programs, and agreement between the generic engine and the
// structure-aware scheduler on small scheduling instances.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "graph/sampler.h"
#include "ilp/model.h"
#include "ilp/scheduling_ilp.h"
#include "ilp/solver.h"

namespace respect::ilp {
namespace {

TEST(ModelTest, VariableAndConstraintBookkeeping) {
  Model m;
  const VarId x = m.AddBinaryVar("x");
  const VarId y = m.AddIntegerVar("y", 0, 5);
  m.AddConstraint("c0", {{x, 1.0}, {y, 2.0}}, Sense::kLe, 7.0);
  m.SetObjective({{y, -1.0}}, /*minimize=*/true);
  EXPECT_EQ(m.NumVars(), 2);
  EXPECT_EQ(m.NumConstraints(), 1);
  EXPECT_TRUE(m.Var(x).IsBinary());
  EXPECT_FALSE(m.Var(y).IsBinary());
}

TEST(ModelTest, RejectsUnknownVariables) {
  Model m;
  EXPECT_THROW(m.AddConstraint("bad", {{3, 1.0}}, Sense::kLe, 0.0),
               std::invalid_argument);
  EXPECT_THROW(m.SetObjective({{0, 1.0}}, true), std::invalid_argument);
}

TEST(ModelTest, RejectsInvertedBounds) {
  Model m;
  EXPECT_THROW(m.AddIntegerVar("y", 3, 1), std::invalid_argument);
}

TEST(ModelTest, LpExportRoundTripsStructure) {
  Model m;
  const VarId x = m.AddBinaryVar("x0");
  const VarId z = m.AddIntegerVar("z", 0, 9);
  m.AddConstraint("cap", {{x, 2.0}, {z, -1.0}}, Sense::kLe, 0.0);
  m.SetObjective({{z, 1.0}}, true);
  std::ostringstream os;
  m.WriteLp(os);
  const std::string lp = os.str();
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("cap:"), std::string::npos);
  EXPECT_NE(lp.find("Binaries"), std::string::npos);
  EXPECT_NE(lp.find("x0"), std::string::npos);
  EXPECT_NE(lp.find("0 <= z <= 9"), std::string::npos);
}

TEST(SolverTest, SolvesKnapsack) {
  // max 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 8  -> a + c (value 14).
  Model m;
  const VarId a = m.AddBinaryVar("a");
  const VarId b = m.AddBinaryVar("b");
  const VarId c = m.AddBinaryVar("c");
  m.AddConstraint("w", {{a, 5}, {b, 4}, {c, 3}}, Sense::kLe, 8);
  m.SetObjective({{a, 10}, {b, 6}, {c, 4}}, /*minimize=*/false);
  const Solution s = SolveBranchAndBound(m);
  ASSERT_TRUE(s.feasible);
  EXPECT_TRUE(s.proved_optimal);
  EXPECT_DOUBLE_EQ(s.objective, 14.0);
  EXPECT_EQ(s.values[a], 1);
  EXPECT_EQ(s.values[b], 0);
  EXPECT_EQ(s.values[c], 1);
}

TEST(SolverTest, DetectsInfeasibility) {
  Model m;
  const VarId a = m.AddBinaryVar("a");
  m.AddConstraint("lo", {{a, 1}}, Sense::kGe, 2);  // impossible for binary
  const Solution s = SolveBranchAndBound(m);
  EXPECT_FALSE(s.feasible);
}

TEST(SolverTest, HandlesEqualityConstraints) {
  Model m;
  const VarId a = m.AddBinaryVar("a");
  const VarId b = m.AddBinaryVar("b");
  m.AddConstraint("pick_one", {{a, 1}, {b, 1}}, Sense::kEq, 1);
  m.SetObjective({{a, 3}, {b, 1}}, /*minimize=*/true);
  const Solution s = SolveBranchAndBound(m);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.values[a], 0);
  EXPECT_EQ(s.values[b], 1);
}

TEST(SolverTest, IntegerDomains) {
  // min y s.t. y >= 3.5 (integer) -> 4.
  Model m;
  const VarId y = m.AddIntegerVar("y", 0, 10);
  m.AddConstraint("lb", {{y, 1}}, Sense::kGe, 3.5);
  m.SetObjective({{y, 1}}, true);
  const Solution s = SolveBranchAndBound(m);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.values[y], 4);
}

TEST(SolverTest, IsFeasibleChecksFullAssignment) {
  Model m;
  const VarId a = m.AddBinaryVar("a");
  m.AddConstraint("c", {{a, 1}}, Sense::kLe, 0);
  EXPECT_TRUE(IsFeasible(m, {0}));
  EXPECT_FALSE(IsFeasible(m, {1}));
  EXPECT_FALSE(IsFeasible(m, {}));
}

TEST(SchedulingIlpTest, FormulationShape) {
  std::mt19937_64 rng(2);
  graph::SamplerConfig config;
  config.num_nodes = 6;
  const graph::Dag dag = graph::SampleDag(config, rng);
  Model model;
  const SchedulingVars vars = BuildSchedulingModel(dag, 3, model);
  // x vars + z.
  EXPECT_EQ(model.NumVars(), 6 * 3 + 1);
  // assignment + precedence + peak + nonempty.
  EXPECT_EQ(model.NumConstraints(), 6 + dag.EdgeCount() + 3 + 3);
  EXPECT_EQ(vars.num_stages, 3);
}

TEST(SchedulingIlpTest, GenericEngineSolvesTinyInstanceOptimally) {
  std::mt19937_64 rng(3);
  graph::SamplerConfig config;
  config.num_nodes = 6;
  const graph::Dag dag = graph::SampleDag(config, rng);

  IlpScheduleConfig ilp_config;
  ilp_config.num_stages = 2;
  ilp_config.generic_engine_var_limit = 1000;  // force generic engine
  const IlpScheduleResult generic = SolveSchedulingIlp(dag, ilp_config);
  EXPECT_TRUE(generic.used_generic_engine);
  EXPECT_TRUE(generic.proved_optimal);

  ilp_config.generic_engine_var_limit = 0;  // force specialized engine
  const IlpScheduleResult specialized = SolveSchedulingIlp(dag, ilp_config);
  EXPECT_FALSE(specialized.used_generic_engine);

  // Both engines minimize peak memory; the generic model has no comm
  // tie-break, so compare the primary objective only.
  EXPECT_EQ(generic.objective.peak_param_bytes,
            specialized.objective.peak_param_bytes);
}

class EngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineAgreementTest, GenericAndSpecializedAgreeOnPeak) {
  std::mt19937_64 rng(GetParam() * 31);
  graph::SamplerConfig config;
  config.num_nodes = 7;
  config.max_in_degree = 2 + GetParam() % 3;
  const graph::Dag dag = graph::SampleDag(config, rng);

  IlpScheduleConfig generic_cfg;
  generic_cfg.num_stages = 2;
  generic_cfg.generic_engine_var_limit = 1000;
  IlpScheduleConfig special_cfg = generic_cfg;
  special_cfg.generic_engine_var_limit = 0;

  const auto a = SolveSchedulingIlp(dag, generic_cfg);
  const auto b = SolveSchedulingIlp(dag, special_cfg);
  EXPECT_EQ(a.objective.peak_param_bytes, b.objective.peak_param_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace respect::ilp
