// Exactness proofs for the solvers: DP partitioner vs exhaustive cut
// enumeration, and branch-and-bound vs brute force over all monotone
// assignments on random small graphs.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "exact/bnb_scheduler.h"
#include "exact/dp_partitioner.h"
#include "graph/sampler.h"
#include "graph/topology.h"

namespace respect::exact {
namespace {

using sched::ObjectiveValue;
using sched::Schedule;

/// Brute force over every monotone assignment (exponential; tiny graphs
/// only).  Returns the lexicographically best (peak, comm).
ObjectiveValue BruteForceBest(const graph::Dag& dag, int stages,
                              bool require_nonempty) {
  const int n = dag.NodeCount();
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  std::vector<int> assign(n, 0);
  ObjectiveValue best{std::numeric_limits<std::int64_t>::max(), 0};

  const std::function<void(int)> recurse = [&](int idx) {
    if (idx == n) {
      Schedule s{stages, assign};
      if (require_nonempty) {
        std::vector<bool> used(stages, false);
        for (const int k : assign) used[k] = true;
        for (const bool u : used) {
          if (!u) return;
        }
      }
      const ObjectiveValue value = Evaluate(dag, s);
      if (value < best) best = value;
      return;
    }
    const graph::NodeId v = topo.order[idx];
    int lo = 0;
    for (const graph::NodeId p : dag.Parents(v)) {
      lo = std::max(lo, assign[p]);
    }
    for (int k = lo; k < stages; ++k) {
      assign[v] = k;
      recurse(idx + 1);
    }
    assign[v] = 0;
  };
  recurse(0);
  return best;
}

TEST(MinBottleneckTest, KnownInstances) {
  EXPECT_EQ(MinBottleneck({1, 1, 1, 1}, 2), 2);
  EXPECT_EQ(MinBottleneck({5, 1, 1, 1}, 2), 5);
  EXPECT_EQ(MinBottleneck({3, 3, 3}, 3), 3);
  EXPECT_EQ(MinBottleneck({10}, 1), 10);
  EXPECT_EQ(MinBottleneck({2, 2, 2, 2, 2, 2}, 3), 4);
}

TEST(MinBottleneckTest, SingleStageIsTotal) {
  EXPECT_EQ(MinBottleneck({4, 7, 2}, 1), 13);
}

TEST(MinBottleneckTest, RejectsEmpty) {
  EXPECT_THROW(MinBottleneck({}, 2), std::invalid_argument);
}

TEST(DpPartitionerTest, ChainExactness) {
  graph::Dag dag("chain");
  const std::int64_t weights[] = {5, 3, 8, 2, 4, 6};
  for (int i = 0; i < 6; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = weights[i];
    attr.output_bytes = 1;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  const DpResult r = PartitionDefaultOrder(dag, 3);
  // Optimal split of [5,3,8,2,4,6] into 3: e.g. [5,3]=8 | [8,2]=10 | [4,6]=10.
  EXPECT_EQ(r.objective.peak_param_bytes, 10);
  sched::PipelineConstraints c;
  c.num_stages = 3;
  EXPECT_TRUE(ValidateSchedule(dag, r.schedule, c).ok);
}

TEST(DpPartitionerTest, RejectsTooFewNodes) {
  graph::Dag dag;
  dag.AddNode({});
  dag.AddNode({});
  dag.AddEdge(0, 1);
  const auto topo = graph::AnalyzeTopology(dag);
  EXPECT_THROW(PartitionTopoOrder(dag, topo.order, 3), std::invalid_argument);
}

TEST(DpPartitionerTest, RejectsNonTopologicalOrder) {
  graph::Dag dag;
  for (int i = 0; i < 3; ++i) dag.AddNode({});
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  EXPECT_THROW(PartitionTopoOrder(dag, {2, 1, 0}, 2), std::invalid_argument);
}

class DpMatchesExhaustiveCutsTest : public ::testing::TestWithParam<int> {};

TEST_P(DpMatchesExhaustiveCutsTest, OnRandomChains) {
  // For chains, every monotone assignment is a contiguous partition, so the
  // DP on the unique topological order must equal the brute force optimum.
  std::mt19937_64 rng(GetParam());
  graph::Dag dag("chain");
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    graph::OpAttr attr;
    attr.param_bytes = 1 + static_cast<std::int64_t>(rng() % 1000);
    attr.output_bytes = 1 + static_cast<std::int64_t>(rng() % 100);
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  const DpResult dp = PartitionDefaultOrder(dag, 3);
  const ObjectiveValue brute = BruteForceBest(dag, 3, true);
  EXPECT_EQ(dp.objective, brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpMatchesExhaustiveCutsTest,
                         ::testing::Range(1, 13));

class BnbMatchesBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbMatchesBruteForceTest, OnRandomSmallDags) {
  std::mt19937_64 rng(GetParam() * 977);
  graph::SamplerConfig config;
  config.num_nodes = 9;
  config.max_in_degree = 2 + static_cast<int>(rng() % 3);
  const graph::Dag dag = graph::SampleDag(config, rng);

  BnbConfig bnb;
  bnb.num_stages = 3;
  bnb.max_expansions = 0;  // unlimited: prove optimality
  const BnbResult result = SolveExact(dag, bnb);
  EXPECT_TRUE(result.proved_optimal);

  const ObjectiveValue brute = BruteForceBest(dag, 3, true);
  EXPECT_EQ(result.objective, brute);

  sched::PipelineConstraints c;
  c.num_stages = 3;
  EXPECT_TRUE(ValidateSchedule(dag, result.schedule, c).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbMatchesBruteForceTest,
                         ::testing::Range(1, 16));

TEST(BnbSchedulerTest, BeatsOrMatchesContiguousDp) {
  // The full search space includes all contiguous partitions, so B&B can
  // never be worse than the DP seed.
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    const graph::Dag dag = graph::SampleTrainingDag(16, rng);
    const DpResult dp = PartitionDefaultOrder(dag, 4);
    BnbConfig bnb;
    bnb.num_stages = 4;
    bnb.max_expansions = 500'000;
    const BnbResult result = SolveExact(dag, bnb);
    EXPECT_LE(result.objective, dp.objective);
  }
}

TEST(BnbSchedulerTest, BudgetReturnsFeasibleIncumbent) {
  std::mt19937_64 rng(5);
  const graph::Dag dag = graph::SampleTrainingDag(40, rng);
  BnbConfig bnb;
  bnb.num_stages = 5;
  bnb.max_expansions = 100;  // absurdly small
  const BnbResult result = SolveExact(dag, bnb);
  sched::PipelineConstraints c;
  c.num_stages = 5;
  EXPECT_TRUE(ValidateSchedule(dag, result.schedule, c).ok);
}

TEST(BnbSchedulerTest, RejectsTooManyStages) {
  graph::Dag dag;
  dag.AddNode({});
  dag.AddNode({});
  dag.AddEdge(0, 1);
  BnbConfig bnb;
  bnb.num_stages = 4;
  EXPECT_THROW(SolveExact(dag, bnb), std::invalid_argument);
}

TEST(BnbSchedulerTest, SingleStageTrivial) {
  std::mt19937_64 rng(6);
  const graph::Dag dag = graph::SampleTrainingDag(12, rng);
  BnbConfig bnb;
  bnb.num_stages = 1;
  const BnbResult result = SolveExact(dag, bnb);
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_EQ(result.objective.peak_param_bytes, dag.TotalParamBytes());
  EXPECT_EQ(result.objective.comm_bytes, 0);
}

}  // namespace
}  // namespace respect::exact
