// Guards for the fused zero-allocation inference path:
//  * the optimized DecodeGreedy/DecodeSampled produce bit-identical
//    sequences to the frozen pre-optimization reference implementation
//    (rl/reference_decode.h) across sampled graph complexities (deg 2-6)
//    and both MaskingModes;
//  * a steady-state decode on a warm DecodeWorkspace performs ZERO heap
//    allocations (counted via a replaced global operator new);
//  * repair runs exactly once on both the standalone-scheduler path and the
//    engine/façade path, and both paths agree.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "core/respect.h"
#include "graph/sampler.h"
#include "rl/decode_workspace.h"
#include "rl/ptrnet.h"
#include "rl/reference_decode.h"
#include "rl/scheduler.h"
#include "sched/postprocess.h"

// ---- Global allocation counter.  Every operator new in this binary funnels
// through malloc with a counter bump, so the zero-allocation guard below can
// measure exactly what one decode call allocates. ----

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace respect {
namespace {

rl::PtrNetConfig NetConfig(rl::MaskingMode masking) {
  rl::PtrNetConfig config;
  config.hidden_dim = 24;
  config.masking = masking;
  return config;
}

TEST(DecodeParityTest, GreedyMatchesReferenceAcrossComplexities) {
  for (const rl::MaskingMode masking :
       {rl::MaskingMode::kReadySet, rl::MaskingMode::kVisitedOnly}) {
    const rl::PtrNetAgent agent(NetConfig(masking));
    rl::DecodeWorkspace ws;
    std::mt19937_64 rng(17);
    for (int deg = 2; deg <= 6; ++deg) {
      graph::SamplerConfig sampler;
      sampler.max_in_degree = deg;
      for (const int nodes : {12, 30, 60}) {
        sampler.num_nodes = nodes;
        const graph::Dag dag = graph::SampleDag(sampler, rng);
        const auto expected = rl::ReferenceDecodeGreedy(agent, dag);
        EXPECT_EQ(agent.DecodeGreedy(dag), expected)
            << "deg=" << deg << " nodes=" << nodes;
        // The workspace overload must agree too, including when the
        // workspace is warm from a previous (different-sized) graph.
        EXPECT_EQ(agent.DecodeGreedy(dag, ws), expected)
            << "workspace deg=" << deg << " nodes=" << nodes;
      }
    }
  }
}

TEST(DecodeParityTest, SampledMatchesReferenceRngStream) {
  // Same seed on both paths: sequences only match if every probability is
  // bit-identical AND the rng is consumed identically.
  for (const rl::MaskingMode masking :
       {rl::MaskingMode::kReadySet, rl::MaskingMode::kVisitedOnly}) {
    const rl::PtrNetAgent agent(NetConfig(masking));
    rl::DecodeWorkspace ws;
    std::mt19937_64 graph_rng(23);
    for (int deg = 2; deg <= 6; ++deg) {
      graph::SamplerConfig sampler;
      sampler.max_in_degree = deg;
      sampler.num_nodes = 25;
      const graph::Dag dag = graph::SampleDag(sampler, graph_rng);
      std::mt19937_64 rng_ref(1000 + deg), rng_new(1000 + deg),
          rng_ws(1000 + deg);
      const auto expected = rl::ReferenceDecodeSampled(agent, dag, rng_ref);
      EXPECT_EQ(agent.DecodeSampled(dag, rng_new), expected) << "deg=" << deg;
      EXPECT_EQ(agent.DecodeSampled(dag, rng_ws, ws), expected)
          << "workspace deg=" << deg;
      // Identical rng consumption: the generators must end in lock-step.
      EXPECT_EQ(rng_ref(), rng_new());
    }
  }
}

TEST(DecodeParityTest, SteadyStateDecodeIsAllocationFree) {
  const rl::PtrNetAgent agent(NetConfig(rl::MaskingMode::kReadySet));
  std::mt19937_64 rng(31);
  const graph::Dag dag = graph::SampleTrainingDag(100, rng);

  rl::DecodeWorkspace ws;
  const auto cold = agent.DecodeGreedy(dag, ws);  // warms every buffer
  ASSERT_EQ(cold.size(), 100u);

  const std::uint64_t before = g_alloc_count.load();
  const auto& seq = agent.DecodeGreedy(dag, ws);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state decode allocated " << (after - before) << " times";
  EXPECT_EQ(seq, cold);

  // Still allocation-free for the stochastic decode and after a smaller
  // graph (buffers shrink logically but keep their capacity).
  const graph::Dag small = graph::SampleTrainingDag(40, rng);
  (void)agent.DecodeGreedy(dag, ws);
  const std::uint64_t before2 = g_alloc_count.load();
  std::mt19937_64 sample_rng(7);
  (void)agent.DecodeSampled(small, sample_rng, ws);
  (void)agent.DecodeGreedy(dag, ws);
  const std::uint64_t after2 = g_alloc_count.load();
  EXPECT_EQ(after2 - before2, 0u);
}

TEST(DecodeParityTest, WorkspaceServesDifferentHiddenSizes) {
  // One (thread_local-style) workspace must survive agents of different
  // hidden_dim — the serving path swaps RL snapshots under live traffic.
  rl::PtrNetConfig big = NetConfig(rl::MaskingMode::kReadySet);
  big.hidden_dim = 32;
  rl::PtrNetConfig small = NetConfig(rl::MaskingMode::kReadySet);
  small.hidden_dim = 16;
  const rl::PtrNetAgent agent_big(big);
  const rl::PtrNetAgent agent_small(small);
  std::mt19937_64 rng(41);
  const graph::Dag dag = graph::SampleTrainingDag(30, rng);

  rl::DecodeWorkspace ws;
  EXPECT_EQ(agent_big.DecodeGreedy(dag, ws), agent_big.DecodeGreedy(dag));
  EXPECT_EQ(agent_small.DecodeGreedy(dag, ws), agent_small.DecodeGreedy(dag));
  EXPECT_EQ(agent_big.DecodeGreedy(dag, ws), agent_big.DecodeGreedy(dag));
}

TEST(RepairOnceTest, SchedulerAndEnginePathsAgree) {
  // Same configured weights on both paths (deterministic Xavier init).
  CompilerOptions options;
  options.net.hidden_dim = 16;
  const PipelineCompiler compiler(options);
  const rl::RlScheduler scheduler(options.net);

  std::mt19937_64 rng(53);
  for (const int stages : {2, 4}) {
    const graph::Dag dag = graph::SampleTrainingDag(30, rng);
    sched::PipelineConstraints constraints;
    constraints.num_stages = stages;

    // Standalone path: Schedule repairs internally, exactly once.
    const auto standalone = scheduler.Schedule(dag, constraints);
    EXPECT_TRUE(sched::ValidateSchedule(dag, standalone.schedule, constraints).ok);

    // ScheduleRaw + one façade-style repair must reproduce Schedule —
    // i.e. Schedule is ScheduleRaw plus exactly one PostProcess.
    auto raw = scheduler.ScheduleRaw(dag, constraints);
    sched::PostProcess(dag, constraints, raw.schedule);
    EXPECT_EQ(raw.schedule.stage, standalone.schedule.stage);

    // Engine/façade path (repairs once in the façade) agrees with the
    // standalone scheduler path.
    const auto compiled = compiler.Compile(dag, stages, Method::kRespectRl);
    EXPECT_EQ(compiled.schedule.stage, standalone.schedule.stage);
  }
}

TEST(RepairOnceTest, RepairIsIdempotentOnRlSchedules) {
  // Double-repair was the old façade bug: even if it happens, it must not
  // change the schedule — but the structural guarantee above is that it no
  // longer happens at all.
  const rl::RlScheduler scheduler(NetConfig(rl::MaskingMode::kReadySet));
  std::mt19937_64 rng(59);
  const graph::Dag dag = graph::SampleTrainingDag(25, rng);
  sched::PipelineConstraints constraints;
  constraints.num_stages = 4;
  auto result = scheduler.Schedule(dag, constraints);
  auto repaired_again = result.schedule;
  sched::PostProcess(dag, constraints, repaired_again);
  EXPECT_EQ(repaired_again.stage, result.schedule.stage);
}

}  // namespace
}  // namespace respect
