#!/usr/bin/env python3
"""Benchmark regression gate over google-benchmark JSON output.

Compares the current BENCH_micro.json against a baseline artifact (the
previous run's upload) and fails when a watched throughput metric regresses
by more than --max-regression (a fraction; 0.15 = 15%).

Watched by default:
  * BM_DecodeGreedyWorkspace/100    — fused decode throughput (items/s),
  * BM_BatchedDecode/16             — batched multi-graph decode throughput,
  * BM_MissStormRefill              — grouped cold-miss refill throughput,
  * BM_CompileServiceWarmCache      — warm-cache serving throughput,
  * BM_CompileServiceDiskWarmStart  — persistent-tier (disk) hit throughput,
  * BM_TenantFairness               — weighted-fair queue throughput under an
                                      adversarial tenant mix (its jain /
                                      tenant_wait_p99_ms counters ride along
                                      in the JSON for inspection),
  * BM_DegradedFallbackLatency      — degraded requests/s through the
                                      budget-blown-attempt -> fallback-solve
                                      path (the graceful-degradation tax),
  * BM_FleetWarmFetch               — peer spill fetches/s over the loopback
                                      wire protocol (the restart-warm-start
                                      tax of a fleet shard),
  * BM_TraceOverheadDisarmed        — the warm-cache path with every OBS_SPAN
                                      site compiled in but the tracer stopped;
                                      must track BM_CompileServiceWarmCache
                                      (disarmed tracing is one relaxed load
                                      per span site).

Benchmarks present in only one of the two files are reported and skipped
(renames and newly added benchmarks must not hard-fail the gate); a missing
baseline file passes with a notice (the first run on a branch has no
artifact to compare against); a regression in any watched metric exits
non-zero.  Unwatched benchmarks shared by both files are reported as INFO
deltas so a passing run still shows the whole perf surface at a glance.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json \
      [--max-regression 0.15] [--watch NAME ...]
"""

import argparse
import json
import sys

DEFAULT_WATCH = [
    "BM_DecodeGreedyWorkspace/100",
    "BM_BatchedDecode/16",
    "BM_MissStormRefill",
    "BM_CompileServiceWarmCache",
    "BM_CompileServiceDiskWarmStart",
    "BM_TenantFairness",
    "BM_DegradedFallbackLatency",
    "BM_FleetWarmFetch",
    "BM_TraceOverheadDisarmed",
]


def load_items_per_second(path):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    metrics = {}
    for bench in data.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) carry the same name with a
        # suffix; plain runs are what CI produces.
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate is not None:
            metrics[bench["name"]] = float(rate)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="allowed fractional drop (default 0.15)")
    parser.add_argument("--watch", nargs="*", default=DEFAULT_WATCH,
                        help="benchmark names to gate on")
    args = parser.parse_args()

    try:
        baseline = load_items_per_second(args.baseline)
    except FileNotFoundError:
        print(f"no baseline yet ({args.baseline} does not exist); "
              "nothing to gate against — passing")
        return 0
    current = load_items_per_second(args.current)

    failures = []
    for name in args.watch:
        old = baseline.get(name)
        new = current.get(name)
        if old is None or new is None:
            where = "baseline" if old is None else "current run"
            print(f"SKIP  {name}: not present in {where}")
            continue
        change = (new - old) / old
        floor = old * (1.0 - args.max_regression)
        verdict = "FAIL" if new < floor else "ok"
        print(f"{verdict:4}  {name}: {old:,.1f} -> {new:,.1f} items/s "
              f"({change:+.1%}, floor {floor:,.1f})")
        if new < floor:
            failures.append(name)

    if failures:
        print(f"\nregression gate failed for: {', '.join(failures)} "
              f"(allowed drop: {args.max_regression:.0%})")
        return 1

    # Informational deltas for everything both runs measured but the gate
    # does not watch — the whole perf surface at a glance on a green run.
    unwatched = sorted(name for name in baseline
                       if name in current and name not in args.watch)
    for name in unwatched:
        old, new = baseline[name], current[name]
        change = (new - old) / old if old else 0.0
        print(f"INFO  {name}: {old:,.1f} -> {new:,.1f} items/s ({change:+.1%})")

    print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
