#!/usr/bin/env python3
"""Structural validator for merged fleet chrometrace files.

CI runs `serve_cli ... --fleet=3 --trace-out=trace.json` and feeds the result
here.  The checks are the invariants the exporter and the wire-merge promise:

  1. The file parses as a Trace Event Format JSON object with a non-empty
     "traceEvents" array.
  2. Every event carries the required keys (name/ph/ts/pid/tid) with sane
     types; "X" complete events also carry a non-negative "dur".
  3. Per (pid, tid) track, "X" spans nest: sorted by start time, a span
     either follows the previous span or sits fully inside it — the RAII
     LIFO discipline means sibling spans never partially overlap.  Two
     carve-outs: explicitly-timed cross-thread intervals (serve.queue_wait
     is a wall interval stitched onto the popping thread's track, so two
     waits can legitimately overlap) are skipped, and comparisons carry a
     small epsilon for the sim exporter's millisecond rounding.
  4. At least one trace id appears on two or more pid tracks: a request was
     forwarded between shards and its spans still stitch into one flow
     (the cross-shard coherence the wire's trace_id field exists for).
     Skipped under --allow-single-pid, for single-process traces where
     every event legitimately lands on one track.

Usage:  validate_chrometrace.py TRACE.json [--min-events N]
        [--allow-single-pid]
Exits non-zero with a diagnostic on the first violated invariant.
"""

import argparse
import collections
import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")

# Spans recorded as explicit wall intervals across threads (RecordSpan), not
# RAII scopes on the emitting thread — the LIFO nesting invariant does not
# apply to them.  Names are matched before the ':detail' suffix.
CROSS_THREAD_SPANS = {"serve.queue_wait"}

# Slack for the sim exporter's %.3f timestamp rounding (microseconds).
EPSILON = 0.01


def fail(message):
    print(f"FAIL  {message}")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=10,
                        help="minimum traceEvents entries (default 10)")
    parser.add_argument("--allow-single-pid", action="store_true",
                        help="skip the cross-shard trace-id requirement "
                             "(single-process traces)")
    args = parser.parse_args()

    with open(args.trace, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as err:
            return fail(f"{args.trace} is not valid JSON: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("top-level object has no traceEvents array")
    if len(events) < args.min_events:
        return fail(f"only {len(events)} events (need >= {args.min_events})")

    tracks = collections.defaultdict(list)
    trace_pids = collections.defaultdict(set)
    for i, event in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in event:
                return fail(f"event {i} is missing '{key}': {event}")
        if not isinstance(event["ts"], (int, float)):
            return fail(f"event {i} has non-numeric ts: {event}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"event {i} ('X') has bad dur: {event}")
            if event["name"].split(":", 1)[0] not in CROSS_THREAD_SPANS:
                tracks[(event["pid"], event["tid"])].append(
                    (event["ts"], event["ts"] + dur, event["name"]))
        elif event["ph"] != "i":
            return fail(f"event {i} has unexpected ph {event['ph']!r}")
        trace_id = event.get("args", {}).get("trace_id", 0)
        if trace_id:
            trace_pids[trace_id].add(event["pid"])

    # Nesting: within a track, spans sorted by (start, -end) form a valid
    # bracket sequence — each span closes no later than every open ancestor.
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1] - EPSILON:
                stack.pop()
            if stack and end > stack[-1][1] + EPSILON:
                return fail(
                    f"pid {pid} tid {tid}: span '{name}' [{start}, {end}] "
                    f"partially overlaps '{stack[-1][2]}' "
                    f"[{stack[-1][0]}, {stack[-1][1]}]")
            stack.append((start, end, name))

    cross = {t: sorted(p) for t, p in trace_pids.items() if len(p) > 1}
    if not cross and not args.allow_single_pid:
        return fail("no trace id spans more than one pid track — "
                    "no request crossed a forward hop with a coherent id")

    pids = sorted({e["pid"] for e in events})
    print(f"ok    {len(events)} events across pid tracks {pids}")
    print(f"ok    {len(trace_pids)} request flows, {len(cross)} cross-shard")
    if cross:
        sample = next(iter(sorted(cross)))
        print(f"ok    e.g. trace {sample} spans pids {cross[sample]}")
    print("chrometrace valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
