// Small helpers shared by the example CLIs.
#pragma once

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>

#include "serve/compile_service.h"

namespace respect::examples {

/// Deepest pipeline the example CLIs accept (the paper's hardware tops out
/// well below this; it also keeps every sampled/zoo graph packable).
inline constexpr int kMaxStages = 16;

/// Strict integer parse: the whole argument must be a base-10 integer in
/// [lo, hi].  std::atoi would silently yield 0 for "foo" (and accept
/// trailing junk like "4x"), turning typos into nonsense pipelines.
inline bool ParseIntInRange(const char* text, int lo, int hi, int& out) {
  const auto [ptr, ec] =
      std::from_chars(text, text + std::strlen(text), out);
  return ec == std::errc{} && *ptr == '\0' && out >= lo && out <= hi;
}

/// The shared end-of-run metrics dump: every serve_cli mode prints the same
/// snapshot shape, so runs are comparable across modes.  Quiet sections
/// (stores never probed, breakers never tripped) are skipped.
inline void PrintServiceMetrics(const serve::CompileService& service) {
  const serve::ServiceMetrics m = service.Metrics();
  std::printf("  hits %llu  disk-hits %llu  misses %llu  "
              "single-flight waits %llu  bypasses %llu\n",
              static_cast<unsigned long long>(m.hits),
              static_cast<unsigned long long>(m.disk_hits),
              static_cast<unsigned long long>(m.misses),
              static_cast<unsigned long long>(m.single_flight_waits),
              static_cast<unsigned long long>(m.bypasses));
  std::printf("  evictions %llu  invalidations %llu  failures %llu  "
              "deadline-expired %llu  resident %zu\n",
              static_cast<unsigned long long>(m.evictions),
              static_cast<unsigned long long>(m.invalidations),
              static_cast<unsigned long long>(m.failures),
              static_cast<unsigned long long>(m.deadline_expired),
              m.cache_size);
  if (m.ttl_expired + m.admission_rejected > 0) {
    std::printf("  ttl-expired %llu  admission-rejected %llu\n",
                static_cast<unsigned long long>(m.ttl_expired),
                static_cast<unsigned long long>(m.admission_rejected));
  }
  if (m.store.probes + m.store.writes > 0) {
    std::printf("  store: probes %llu  hits %llu  writes %llu  "
                "corrupt %llu  expired %llu  resident %zu\n",
                static_cast<unsigned long long>(m.store.probes),
                static_cast<unsigned long long>(m.store.hits),
                static_cast<unsigned long long>(m.store.writes),
                static_cast<unsigned long long>(m.store.corrupt_dropped),
                static_cast<unsigned long long>(m.store.expired_dropped),
                m.store.resident);
  }
  if (m.peer_fetches + m.peer_hits + m.peer_fetch_failures > 0) {
    std::printf("  peer: fetches %llu  hits %llu  failures %llu  "
                "exports %llu  imports %llu\n",
                static_cast<unsigned long long>(m.peer_fetches),
                static_cast<unsigned long long>(m.peer_hits),
                static_cast<unsigned long long>(m.peer_fetch_failures),
                static_cast<unsigned long long>(m.store.exports),
                static_cast<unsigned long long>(m.store.imports));
  }
  if (m.budget_blown + m.degraded_served + m.fallback_exhausted + m.shed +
          m.writeback_errors >
      0) {
    std::printf("  budget-blown %llu  degraded %llu  fallback-exhausted "
                "%llu  shed %llu  writeback-errors %llu\n",
                static_cast<unsigned long long>(m.budget_blown),
                static_cast<unsigned long long>(m.degraded_served),
                static_cast<unsigned long long>(m.fallback_exhausted),
                static_cast<unsigned long long>(m.shed),
                static_cast<unsigned long long>(m.writeback_errors));
  }
  for (const auto& [name, breaker] : m.breakers) {
    if (breaker.opened + breaker.short_circuits == 0 &&
        breaker.consecutive_failures == 0) {
      continue;  // healthy and never tripped: not worth a line
    }
    std::printf("  breaker %-16s %-9s failures %d  opened %llu  "
                "short-circuits %llu\n",
                name.c_str(), breaker.state.c_str(),
                breaker.consecutive_failures,
                static_cast<unsigned long long>(breaker.opened),
                static_cast<unsigned long long>(breaker.short_circuits));
  }
  std::printf("  cold-solve latency p50 %.2f ms  p99 %.2f ms\n",
              m.solve_p50_seconds * 1e3, m.solve_p99_seconds * 1e3);
  for (const auto& [tenant, tm] : m.tenants) {
    std::printf("  tenant %-10s enqueued %llu  started %llu  expired %llu\n",
                tenant.c_str(),
                static_cast<unsigned long long>(tm.enqueued),
                static_cast<unsigned long long>(tm.started),
                static_cast<unsigned long long>(tm.expired));
  }
  for (std::size_t lane = 0; lane < serve::kNumPriorityLanes; ++lane) {
    const serve::LaneMetrics& lm = m.lanes[lane];
    if (lm.enqueued == 0) continue;
    std::printf("  lane %-11s enqueued %llu  started %llu  expired %llu  "
                "wait p50 %.2f ms  p99 %.2f ms\n",
                std::string(
                    PriorityName(static_cast<serve::Priority>(lane)))
                    .c_str(),
                static_cast<unsigned long long>(lm.enqueued),
                static_cast<unsigned long long>(lm.started),
                static_cast<unsigned long long>(lm.expired),
                lm.wait_p50_seconds * 1e3, lm.wait_p99_seconds * 1e3);
  }
}

/// Writes the service's whole metrics registry (service + store + fleet
/// counters, histograms with cumulative buckets) as Prometheus exposition
/// text.  "-" writes to stdout.  Returns false (with a message on stderr)
/// when the file cannot be written.
inline bool WritePrometheusMetrics(serve::CompileService& service,
                                   const std::string& path) {
  std::ostringstream text;
  service.MetricsRegistry().RenderPrometheus(text);
  if (path == "-") {
    const std::string rendered = std::move(text).str();
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  out << text.str();
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace respect::examples
