// Small helpers shared by the example CLIs.
#pragma once

#include <charconv>
#include <cstring>
#include <system_error>

namespace respect::examples {

/// Deepest pipeline the example CLIs accept (the paper's hardware tops out
/// well below this; it also keeps every sampled/zoo graph packable).
inline constexpr int kMaxStages = 16;

/// Strict integer parse: the whole argument must be a base-10 integer in
/// [lo, hi].  std::atoi would silently yield 0 for "foo" (and accept
/// trailing junk like "4x"), turning typos into nonsense pipelines.
inline bool ParseIntInRange(const char* text, int lo, int hi, int& out) {
  const auto [ptr, ec] =
      std::from_chars(text, text + std::strlen(text), out);
  return ec == std::errc{} && *ptr == '\0' && out >= lo && out <= hi;
}

}  // namespace respect::examples
