// Domain example 2: train a RESPECT agent from scratch on the paper's
// synthetic curriculum and watch it imitate the exact scheduler.
//
// Reproduces §III-B's training loop (REINFORCE with rollout baseline,
// cosine-similarity reward against exact schedules of random |V|=30 DAGs
// with deg ∈ {2..6}) at laptop scale, then evaluates generalization to the
// real ImageNet graphs — the paper's central generalizability claim.
//
//   $ ./build/examples/train_scheduler [iterations] [weights_out]
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/respect.h"
#include "models/zoo.h"
#include "rl/reward.h"
#include "rl/trainer.h"

int main(int argc, char** argv) {
  using namespace respect;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::string weights_out =
      argc > 2 ? argv[2] : "respect_trained.bin";

  rl::PtrNetConfig net;
  net.hidden_dim = 48;
  net.masking = rl::MaskingMode::kVisitedOnly;  // the paper's formulation
  rl::PtrNetAgent agent(net);
  std::printf("LSTM-PtrNet with %lld trainable scalars\n",
              static_cast<long long>(agent.Params().ScalarCount()));

  rl::TrainConfig config;
  config.iterations = iterations;
  config.batch_size = 16;
  config.graph_nodes = 30;
  config.adam.learning_rate = 1e-3f;
  config.on_iteration = [](int iter, double reward) {
    if (iter % 5 == 0) {
      std::printf("iter %4d   mean imitation reward %.4f\n", iter, reward);
    }
  };

  std::printf("training on synthetic graphs (|V|=30, deg 2..6)...\n");
  const rl::TrainStats stats = rl::Train(agent, config);
  std::printf("best mean reward: %.4f (%d baseline refreshes)\n",
              stats.best_mean_reward, stats.baseline_refreshes);

  agent.Save(weights_out);
  std::printf("saved weights to %s\n\n", weights_out.c_str());

  // Generalizability: evaluate the synthetic-trained policy on real models.
  std::printf("zero-shot evaluation on real ImageNet graphs (4 stages):\n");
  for (const models::ModelName name :
       {models::ModelName::kXception, models::ModelName::kResNet50,
        models::ModelName::kDenseNet121}) {
    const graph::Dag dag = models::BuildModel(name);
    const rl::ImitationTarget target = rl::ComputeTarget(dag, 4, 500'000);
    const double reward = rl::ComputeReward(
        dag, target, agent.DecodeGreedy(dag), 4,
        rl::RewardForm::kStageCosine);
    std::printf("  %-14s |V|=%4d   Eq.3 similarity to exact: %.4f\n",
                std::string(models::ModelNameString(name)).c_str(),
                dag.NodeCount(), reward);
  }
  return 0;
}
