// Domain example 1: deploy ResNet-101 on a 4-stage pipelined Edge TPU
// system end to end — the paper's headline workload.
//
// Flow (Fig. 1a): build the computational graph, schedule with RESPECT,
// quantize + extract per-device sub-models, save the deployment package,
// and measure simulated inference throughput against the Edge TPU compiler
// baseline.
//
//   $ ./build/examples/pipeline_resnet [num_stages]
#include <cstdio>
#include <cstdlib>

#include "core/respect.h"
#include "models/zoo.h"
#include "tpu/sim.h"

int main(int argc, char** argv) {
  using namespace respect;
  const int stages = argc > 1 ? std::atoi(argv[1]) : 4;
  if (stages < 1 || stages > 16) {
    std::fprintf(stderr, "usage: %s [num_stages in 1..16]\n", argv[0]);
    return 1;
  }

  const graph::Dag dag = models::BuildModel(models::ModelName::kResNet101);
  std::printf("ResNet101: |V|=%d, %.1f M parameters, %.2f GMACs\n",
              dag.NodeCount(), dag.TotalParamBytes() / 4.0 / 1e6,
              dag.TotalMacs() / 1e9);

  CompilerOptions options;
  options.compiler.refinement_rounds = 12;  // keep the demo snappy
  PipelineCompiler compiler(options);

  const CompileResult respect_result =
      compiler.Compile(dag, stages, Method::kRespectRl);
  const CompileResult baseline =
      compiler.Compile(dag, stages, Method::kEdgeTpuCompiler);

  // Persist the deployable artifact (the stand-in for n .tflite files).
  const std::string package_path = "resnet101_pipeline.bin";
  deploy::SavePackage(respect_result.package, package_path);
  std::printf("wrote deployment package to %s\n\n", package_path.c_str());

  std::printf("per-stage parameter memory (quantized):\n");
  std::printf("%8s %16s %16s\n", "stage", "RESPECT (MB)", "compiler (MB)");
  for (int k = 0; k < stages; ++k) {
    std::printf("%8d %16.2f %16.2f\n", k,
                respect_result.package.segments[k].param_bytes / 1048576.0,
                baseline.package.segments[k].param_bytes / 1048576.0);
  }

  tpu::SimConfig sim;
  sim.num_inferences = 1000;
  const auto rl_run = tpu::SimulatePipeline(respect_result.package, sim);
  const auto base_run = tpu::SimulatePipeline(baseline.package, sim);

  std::printf("\n1000-inference simulation on the %d-stage pipeline:\n",
              stages);
  std::printf("  RESPECT : %9.1f us/inference (bottleneck stage %d)\n",
              rl_run.per_inference_us, rl_run.bottleneck_stage);
  std::printf("  compiler: %9.1f us/inference (bottleneck stage %d)\n",
              base_run.per_inference_us, base_run.bottleneck_stage);
  std::printf("  speedup : %.2fx\n",
              base_run.per_inference_us / rl_run.per_inference_us);
  return 0;
}
