// Quickstart: build a small computational graph by hand, schedule it onto a
// 3-stage Edge TPU pipeline with every registered engine, and simulate the
// deployment.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/respect.h"
#include "tpu/sim.h"

int main() {
  using namespace respect;

  // A toy residual network: input -> conv -> (branch conv / identity) ->
  // add -> dense head.
  graph::Dag dag("toy-resnet");
  const auto input = dag.AddNode(
      {"input", graph::OpType::kInput, 0, 150'528, 0});  // 224x224x3
  const auto conv1 = dag.AddNode(
      {"conv1", graph::OpType::kConv2D, 9'408 * 4, 802'816, 118'013'952});
  const auto conv2 = dag.AddNode(
      {"conv2", graph::OpType::kConv2D, 36'864 * 4, 802'816, 462'422'016});
  const auto conv3 = dag.AddNode(
      {"conv3", graph::OpType::kConv2D, 36'864 * 4, 802'816, 462'422'016});
  const auto add = dag.AddNode(
      {"add", graph::OpType::kAdd, 0, 802'816, 802'816});
  const auto pool = dag.AddNode(
      {"pool", graph::OpType::kGlobalPool, 0, 256, 802'816});
  const auto fc = dag.AddNode(
      {"fc", graph::OpType::kDense, 257'000 * 4, 4'000, 256'000});
  dag.AddEdge(input, conv1);
  dag.AddEdge(conv1, conv2);
  dag.AddEdge(conv2, conv3);
  dag.AddEdge(conv1, add);  // residual
  dag.AddEdge(conv3, add);
  dag.AddEdge(add, pool);
  dag.AddEdge(pool, fc);

  PipelineCompiler compiler;  // fresh (untrained) RESPECT agent is fine here
  std::printf("scheduling '%s' (|V|=%d) onto a 3-stage pipeline\n\n",
              dag.Name().c_str(), dag.NodeCount());
  std::printf("%-16s %8s %14s %14s\n", "method", "solve ms", "peak stage KB",
              "per-inference us");

  for (const engines::EngineRegistration& engine :
       engines::EngineRegistry::Global().Registrations()) {
    const CompileResult result = compiler.Compile(dag, 3, engine.name);
    const auto sim = tpu::SimulatePipeline(result.package);
    std::printf("%-16s %8.2f %14.1f %14.1f\n", engine.name.c_str(),
                result.solve_seconds * 1e3,
                result.peak_stage_param_bytes / 1024.0,
                sim.per_inference_us);
  }

  // Show the RESPECT stage assignment in detail.
  const CompileResult respect_result =
      compiler.Compile(dag, 3, Method::kRespectRl);
  std::printf("\nRESPECT stage assignment:\n");
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    std::printf("  %-8s -> Edge TPU %d\n", dag.Attr(v).name.c_str(),
                respect_result.schedule.stage[v]);
  }
  return 0;
}
