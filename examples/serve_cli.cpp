// Domain example 5: `serve_cli` — CompileService under a synthetic request
// stream, the serving shape of the ROADMAP's north star.
//
//   $ ./build/examples/serve_cli [requests] [models] [stages] [engine]
//
// Samples `models` distinct synthetic DAGs, then fires `requests` async
// requests with a skewed popularity distribution (hot graphs repeat, as
// model-serving traffic does).  Three of every four requests go to `engine`;
// the rest exercise the RL engine, and halfway through the stream the RL
// weights are swapped with ReplaceRl — so the final metrics show cache hits,
// single-flight collapses, and the RL-only invalidation sweep in one run.
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cli_util.h"
#include "engines/registry.h"
#include "graph/sampler.h"
#include "serve/compile_service.h"

namespace {

using namespace respect;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [requests=200] [models=6] [stages=4 (1..%d)] "
               "[engine=anneal]\n",
               argv0, examples::kMaxStages);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 200;
  int num_models = 6;
  int stages = 4;
  std::string engine = "anneal";
  constexpr int kMaxInt = std::numeric_limits<int>::max();
  if (argc > 1 && !examples::ParseIntInRange(argv[1], 1, kMaxInt, requests)) {
    return Usage(argv[0]);
  }
  if (argc > 2 &&
      !examples::ParseIntInRange(argv[2], 1, kMaxInt, num_models)) {
    return Usage(argv[0]);
  }
  // The sampled DAGs have 40 nodes; the stage cap keeps every request
  // satisfiable (a stage count beyond kMaxStages would fail to pack).
  if (argc > 3 &&
      !examples::ParseIntInRange(argv[3], 1, examples::kMaxStages, stages)) {
    return Usage(argv[0]);
  }
  if (argc > 4) engine = argv[4];
  if (!engines::EngineRegistry::Global().Contains(engine)) {
    std::fprintf(stderr, "error: unknown engine '%s' (see compiler_cli "
                 "--help for the registry)\n",
                 engine.c_str());
    return Usage(argv[0]);
  }

  std::mt19937_64 rng(97);
  std::vector<graph::Dag> zoo;
  zoo.reserve(num_models);
  for (int i = 0; i < num_models; ++i) {
    zoo.push_back(graph::SampleTrainingDag(40, rng));
    zoo.back().SetName("model-" + std::to_string(i));
  }

  CompilerOptions options;
  options.net.hidden_dim = 32;
  options.exact_max_expansions = 50'000;
  options.exact_time_limit_seconds = 0.2;
  serve::CompileService service(options);

  std::printf("serving %d requests over %d models, %d stages, engine %s "
              "(1 in 4 requests uses the RL engine)\n",
              requests, num_models, stages, engine.c_str());

  const auto start = std::chrono::steady_clock::now();
  std::vector<serve::CompileService::Ticket> tickets;
  tickets.reserve(requests);
  try {
    for (int r = 0; r < requests; ++r) {
      if (r == requests / 2) {
        // Mid-stream weight rollout: RL-engine entries invalidate, every
        // deterministic-engine entry stays warm.
        for (auto& ticket : tickets) (void)ticket.Wait();
        service.ReplaceRl(std::make_shared<rl::RlScheduler>(options.net));
        std::printf("  ... ReplaceRl at request %d (invalidations so far: "
                    "%llu)\n",
                    r,
                    static_cast<unsigned long long>(
                        service.Metrics().invalidations));
      }
      // Skewed popularity: the minimum of two uniform draws favours the
      // first (hot) models, approximating serving traffic.
      const std::size_t pick =
          std::min(rng() % zoo.size(), rng() % zoo.size());
      const std::string& target = (r % 4 == 3) ? "respect" : engine;
      tickets.push_back(service.Submit(zoo[pick], stages, target));
    }
    for (auto& ticket : tickets) (void)ticket.Wait();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: compile request failed: %s\n", e.what());
    return 1;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const serve::ServiceMetrics m = service.Metrics();
  std::printf("done in %.3f s (%.0f requests/s)\n", seconds,
              requests / seconds);
  std::printf("  hits %llu  misses %llu  single-flight waits %llu\n",
              static_cast<unsigned long long>(m.hits),
              static_cast<unsigned long long>(m.misses),
              static_cast<unsigned long long>(m.single_flight_waits));
  std::printf("  evictions %llu  invalidations %llu  failures %llu  "
              "resident %zu\n",
              static_cast<unsigned long long>(m.evictions),
              static_cast<unsigned long long>(m.invalidations),
              static_cast<unsigned long long>(m.failures), m.cache_size);
  std::printf("  cold-solve latency p50 %.2f ms  p99 %.2f ms\n",
              m.solve_p50_seconds * 1e3, m.solve_p99_seconds * 1e3);
  return 0;
}
