// Domain example 5: `serve_cli` — CompileService under a synthetic request
// stream, the serving shape of the ROADMAP's north star.
//
//   $ ./build/examples/serve_cli [requests] [models] [stages] [engine] \
//       [--priority=interactive|normal|batch] [--deadline-ms=N] \
//       [--threads=N] [--mixed] [--max-batch-inflight=N] \
//       [--cache-dir=DIR] [--cache-ttl-s=N] [--restart-demo]
//
// Default mode samples `models` distinct synthetic DAGs, then fires
// `requests` async CompileRequests with a skewed popularity distribution
// (hot graphs repeat, as model-serving traffic does) on the chosen priority
// lane, with an optional per-request deadline.  Three of every four
// requests go to `engine`; the rest exercise the RL engine, and halfway
// through the stream the RL weights are swapped with ReplaceRl — so the
// final metrics show cache hits, single-flight collapses, and the RL-only
// invalidation sweep in one run.
//
// --mixed instead drives the priority queue the way real serving mixes
// traffic: a batch flood (3 of 4 requests, batch lane, cache bypass so
// every one solves) with interactive requests interleaved (1 of 4,
// interactive lane, the --deadline-ms budget if given), then prints
// per-lane queue-wait and completion-latency p50/p99 — the number that
// shows interactive requests overtaking the flood.
// --max-batch-inflight=N additionally caps concurrent batch solves, so the
// flood can never hold every worker.
//
// --cache-dir=DIR plugs in the persistent schedule store (spill files under
// DIR, --cache-ttl-s bounds their age).  --restart-demo (requires
// --cache-dir) shows what the store buys: it compiles a skewed stream
// against an empty cache, tears the service down, builds a fresh one on the
// same directory — the restart — and replays the exact stream, reporting
// the disk-warm-start hit rate and latency against the cold run.
//
// --miss-storm shows what the grouped batch decode buys: a skewed stream of
// RL-engine requests fills the cache, ReplaceRl invalidates every entry —
// the miss storm — and the same stream refills through CompileBatch twice,
// once with grouped lock-stepped decodes and once with batch_decode off,
// comparing per-worker refill throughput.  Exits non-zero if the batched
// variant never took the batch path.  --no-batch-decode disables grouped
// miss solving in the other modes (A/B escape hatch).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli_util.h"
#include "core/failpoint.h"
#include "deploy/pod_io.h"
#include "engines/registry.h"
#include "graph/canonical_hash.h"
#include "graph/sampler.h"
#include "net/consistent_hash.h"
#include "net/fleet_client.h"
#include "net/fleet_server.h"
#include "net/socket.h"
#include "obs/chrometrace.h"
#include "obs/trace.h"
#include "serve/compile_service.h"
#include "serve/request.h"
#include "tpu/device_profile.h"
#include "tpu/sim.h"

namespace {

using namespace respect;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [requests=200] [models=6] [stages=4 (1..%d)] "
      "[engine=anneal]\n"
      "          [--priority=interactive|normal|batch] [--deadline-ms=N]\n"
      "          [--threads=N] [--mixed] [--max-batch-inflight=N]\n"
      "          [--cache-dir=DIR] [--cache-ttl-s=N] [--restart-demo]\n"
      "          [--miss-storm] [--no-batch-decode]\n"
      "          [--profile=NAME] [--tenant=NAME] [--fleet-demo]\n"
      "          [--fleet[=N]] [--chaos-demo] "
      "[--failpoint=SITE=ACTION;...] [--budget-ms=N]\n"
      "          [--trace-out=FILE] [--metrics-out=FILE|-] "
      "[--sim-trace-out=FILE]\n"
      "  --profile targets a named device profile (",
      argv0, examples::kMaxStages);
  bool first = true;
  for (const std::string_view name : tpu::ProfileNames()) {
    std::fprintf(stderr, "%s%.*s", first ? "" : ", ",
                 static_cast<int>(name.size()), name.data());
    first = false;
  }
  std::fprintf(stderr,
               ")\n  --tenant tags requests for weighted-fair queueing; "
               "--fleet-demo runs one\n  service over several profiles and "
               "tenants and checks the fairness and\n  cache-separation "
               "invariants\n  --fleet[=N] spawns N loopback shard processes "
               "(default 3) behind the wire\n  protocol and checks the "
               "routing-dedup, kill-survival, and peer-warm-restart\n  "
               "invariants\n  --chaos-demo serves a stream under injected "
               "faults and exits non-zero\n  unless every request settles "
               "valid-or-typed-error; --failpoint arms extra\n  fault sites "
               "(any mode); --budget-ms bounds each engine solve attempt\n"
               "  --trace-out arms per-request span tracing and writes a "
               "chrometrace JSON\n  (in --fleet mode: one merged trace, one "
               "pid track per shard); --metrics-out\n  writes the unified "
               "registry as Prometheus text ('-' = stdout);\n  "
               "--sim-trace-out writes a served schedule's simulated "
               "per-stage timeline\n");
  return 2;
}

using serve::Percentile;

struct LaneSamples {
  std::vector<double> wait_seconds;
  std::vector<double> total_seconds;  // queue wait + own solve
  int completed = 0;
  int expired = 0;
};

void PrintLane(const char* label, const LaneSamples& lane) {
  std::printf(
      "  %-11s %4d done  %3d expired  wait p50 %7.2f ms  p99 %7.2f ms  "
      "latency p50 %7.2f ms  p99 %7.2f ms\n",
      label, lane.completed, lane.expired,
      Percentile(lane.wait_seconds, 0.50) * 1e3,
      Percentile(lane.wait_seconds, 0.99) * 1e3,
      Percentile(lane.total_seconds, 0.50) * 1e3,
      Percentile(lane.total_seconds, 0.99) * 1e3);
}

using examples::PrintServiceMetrics;  // the shared dump in cli_util.h

/// One synchronous pass over a fixed request stream; the measurable unit of
/// the restart demo.
struct StreamReport {
  std::vector<double> latency_seconds;
  int hits = 0;       // memory hits
  int disk_hits = 0;  // persistent-tier hits
  int misses = 0;     // engine solves
  double wall_seconds = 0.0;
};

StreamReport ReplayStream(serve::CompileService& service,
                          const std::vector<graph::Dag>& zoo,
                          const std::vector<std::size_t>& picks, int stages,
                          const std::string& engine) {
  StreamReport report;
  report.latency_seconds.reserve(picks.size());
  const auto start = std::chrono::steady_clock::now();
  for (const std::size_t pick : picks) {
    const auto request_start = std::chrono::steady_clock::now();
    const serve::CompileResponse response =
        service.Compile(serve::CompileRequest{
            .dag = zoo[pick], .num_stages = stages, .engine = engine});
    report.latency_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      request_start)
            .count());
    switch (response.outcome) {
      case serve::CacheOutcome::kHit: ++report.hits; break;
      case serve::CacheOutcome::kDiskHit: ++report.disk_hits; break;
      default: ++report.misses; break;
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

void PrintStreamReport(const char* label, const StreamReport& report) {
  const auto n = static_cast<double>(report.latency_seconds.size());
  std::printf(
      "  %-18s %5.3f s (%.0f req/s)  mem-hits %d  disk-hits %d  solves %d\n"
      "  %-18s latency p50 %.3f ms  p99 %.3f ms\n",
      label, report.wall_seconds, n / report.wall_seconds, report.hits,
      report.disk_hits, report.misses, "",
      Percentile(report.latency_seconds, 0.50) * 1e3,
      Percentile(report.latency_seconds, 0.99) * 1e3);
}

/// --restart-demo: cold stream -> service teardown -> fresh service on the
/// same cache directory -> identical stream, answered from disk.
int RunRestartDemo(const CompilerOptions& options,
                   serve::ServiceOptions service_options,
                   const std::vector<graph::Dag>& zoo, int requests,
                   int stages, const std::string& engine,
                   std::mt19937_64& rng) {
  service_options.num_threads = 1;  // sync streams; keep the pool small
  std::vector<std::size_t> picks(requests);
  for (std::size_t& pick : picks) {
    // Same skewed popularity as the async stream: min of two draws.
    pick = std::min(rng() % zoo.size(), rng() % zoo.size());
  }

  std::printf("restart demo: %d requests over %zu models, %d stages, "
              "engine %s, cache dir %s\n",
              requests, zoo.size(), stages, engine.c_str(),
              service_options.cache_dir.c_str());
  StreamReport cold;
  {
    serve::CompileService service(options, service_options);
    cold = ReplayStream(service, zoo, picks, stages, engine);
    PrintStreamReport("cold process:", cold);
    service.FlushStore();  // every solve is on disk before the "crash"
    std::printf("  spilled %llu entries to disk\n",
                static_cast<unsigned long long>(
                    service.Metrics().store.writes));
  }  // service destroyed: the restart

  serve::CompileService restarted(options, service_options);
  const StreamReport warm = ReplayStream(restarted, zoo, picks, stages,
                                         engine);
  PrintStreamReport("restarted process:", warm);

  const auto n = static_cast<double>(picks.size());
  std::printf(
      "  disk warm-start: %d/%d requests served without an engine solve "
      "(%.0f%% — %d straight from disk), %.1fx the cold wall clock\n",
      warm.hits + warm.disk_hits, static_cast<int>(picks.size()),
      100.0 * (warm.hits + warm.disk_hits) / n, warm.disk_hits,
      cold.wall_seconds / warm.wall_seconds);
  PrintServiceMetrics(restarted);
  return warm.misses == 0 ? 0 : 1;  // a restarted stream must not re-solve
}

/// --miss-storm: the cold-refill path after a weight rollout.  Fill the
/// cache through CompileBatch, invalidate every RL entry with ReplaceRl —
/// the storm — then refill the identical stream and time it, once with
/// grouped lock-stepped decodes and once with batch_decode off.  Thread
/// count defaults to 1 so the comparison isolates per-worker decode
/// throughput (GEMM across the group vs one GEMV decode at a time) rather
/// than pool parallelism; pass --threads to compare loaded pools.
int RunMissStorm(const CompilerOptions& options,
                 serve::ServiceOptions service_options,
                 const std::vector<graph::Dag>& zoo, int requests, int stages,
                 int threads) {
  service_options.num_threads = threads > 0 ? threads : 1;
  std::mt19937_64 rng(131);
  std::vector<serve::CompileRequest> stream;
  stream.reserve(requests);
  std::vector<bool> seen(zoo.size(), false);
  int unique_models = 0;
  for (int r = 0; r < requests; ++r) {
    // The usual skewed popularity: hot models repeat, so the storm mixes
    // duplicate keys (collapsed in-flight) with unique cold solves.
    const std::size_t pick = std::min(rng() % zoo.size(), rng() % zoo.size());
    if (!seen[pick]) {
      seen[pick] = true;
      ++unique_models;
    }
    stream.push_back(serve::CompileRequest{
        .dag = zoo[pick], .num_stages = stages, .engine = "respect"});
  }

  struct Refill {
    double wall_seconds = 0.0;
    serve::ServiceMetrics metrics;
  };
  const auto run = [&](bool batch_decode) {
    serve::ServiceOptions variant = service_options;
    variant.batch_decode = batch_decode;
    serve::CompileService service(options, variant);
    (void)service.CompileBatch(stream);  // cold fill
    // The rollout: every RL-dependent entry (here: all of them) drops.
    service.ReplaceRl(std::make_shared<rl::RlScheduler>(options.net));
    const auto start = std::chrono::steady_clock::now();
    (void)service.CompileBatch(stream);  // the measured refill
    Refill refill;
    refill.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    refill.metrics = service.Metrics();
    return refill;
  };

  std::printf("miss storm: %d requests over %zu models, %d stages, engine "
              "respect, %d worker(s)\n",
              requests, zoo.size(), stages, service_options.num_threads);
  const Refill batched = run(/*batch_decode=*/true);
  const Refill plain = run(/*batch_decode=*/false);

  // Each run solves every unique picked model twice (fill + refill); the
  // refill half is what the wall clock above measures.
  const double solves = static_cast<double>(unique_models);
  std::printf(
      "  batched refill:   %7.3f s (%6.0f solves/s, %6.0f req/s)  "
      "batch-solved %llu of %llu cold solves in %llu group(s)\n",
      batched.wall_seconds, solves / batched.wall_seconds,
      requests / batched.wall_seconds,
      static_cast<unsigned long long>(batched.metrics.batch_solved),
      static_cast<unsigned long long>(batched.metrics.misses),
      static_cast<unsigned long long>(batched.metrics.batch_groups));
  std::printf(
      "  unbatched refill: %7.3f s (%6.0f solves/s, %6.0f req/s)\n",
      plain.wall_seconds, solves / plain.wall_seconds,
      requests / plain.wall_seconds);
  std::printf("  grouped batch decode refilled at %.1fx the per-worker "
              "unbatched throughput\n",
              plain.wall_seconds / batched.wall_seconds);
  if (batched.metrics.batch_solved == 0) {
    std::fprintf(stderr,
                 "error: the batched variant never took the batch path\n");
    return 1;
  }
  return 0;
}

/// Jain's fairness index over per-tenant (weight-normalized) service rates:
/// 1.0 = perfectly proportional, 1/n = one tenant starves the rest.
double JainIndex(const std::vector<double>& rates) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double rate : rates) {
    sum += rate;
    sum_sq += rate * rate;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

/// A chain of identical compute-heavy ops: the shape where a faster front
/// stage visibly attracts more work (no DAG parallelism to hide behind).
graph::Dag ChainDag(int nodes) {
  graph::Dag dag;
  dag.SetName("fleet-chain");
  for (int i = 0; i < nodes; ++i) {
    graph::OpAttr attr;
    attr.macs = 2'000'000;
    attr.param_bytes = 1024;
    attr.output_bytes = 256;
    dag.AddNode(std::move(attr));
    if (i > 0) dag.AddEdge(i - 1, i);
  }
  return dag;
}

/// Rewrites a v2 spill file as the v1 (pre-profile) format in place —
/// strips the profile fields from the payload, recomputes the checksum, and
/// stamps format version 1.  This is how the fleet demo proves a
/// default-profile service warm-starts from spills written before profiles
/// existed.
bool DowngradeSpillToV1(const std::filesystem::path& path) {
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) return false;
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  const auto read_u32 = [&](std::size_t offset) {
    std::uint32_t value = 0;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
  };
  if (bytes.size() < 64 || read_u32(0) != 0x4c505352u || read_u32(4) != 2u) {
    return false;
  }
  std::string payload = bytes.substr(32);
  // Payload prefix: key (16) + rl_dependent (1) + rl_version (8) = 25, then
  // the engine name (u32 length + bytes), then the v2 profile fields.
  const std::uint32_t engine_len = read_u32(32 + 25);
  const std::size_t profile_offset = 25 + 4 + engine_len;
  if (payload.size() < profile_offset + 4) return false;
  const std::uint32_t profile_len = read_u32(32 + profile_offset);
  if (payload.size() < profile_offset + 4 + profile_len + 16) return false;
  payload.erase(profile_offset, 4 + static_cast<std::size_t>(profile_len) + 16);

  graph::CanonicalHasher hasher;
  hasher.Update(std::string_view(payload));
  const graph::CanonicalHash checksum = hasher.Finish();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  deploy::WritePod(os, std::uint32_t{0x4c505352});
  deploy::WritePod(os, std::uint32_t{1});
  deploy::WritePod(os, static_cast<std::uint64_t>(payload.size()));
  deploy::WritePod(os, checksum.hi);
  deploy::WritePod(os, checksum.lo);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return static_cast<bool>(os);
}

/// --fleet-demo: one service, several device profiles, several tenants.
/// Checks, in one run, every serving-layer invariant the heterogeneity
/// refactor added:
///   1. the same DAG compiled for different fleets gets different cache
///      keys (and "" == the default preset's name);
///   2. the profile-adapted schedule beats the uniform-profile schedule
///      when both are replayed on the heterogeneous simulator;
///   3. under an adversarial arrival mix (one tenant floods first) the
///      weighted-fair queue holds Jain's index >= 0.9;
///   4. a default-profile restart warm-starts from v1 (pre-profile) spills.
int RunFleetDemo(const CompilerOptions& options,
                 serve::ServiceOptions service_options,
                 const std::vector<graph::Dag>& zoo, int requests, int stages,
                 const std::string& engine) {
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  if (service_options.cache_dir.empty()) {
    service_options.cache_dir =
        (std::filesystem::temp_directory_path() / "respect-fleet-cache")
            .string();
    std::filesystem::remove_all(service_options.cache_dir);
  }
  service_options.num_threads = 1;  // serialize solves: fairness is visible
  service_options.tenant_weights = {{"alice", 2.0}};  // bob/mallory default 1
  const std::vector<std::string> tenants = {"mallory", "alice", "bob"};
  const std::vector<std::string> tenant_profiles = {"coral-usb2",
                                                    "coral-x2fast", "coral"};
  const std::map<std::string, double> weights = {
      {"alice", 2.0}, {"bob", 1.0}, {"mallory", 1.0}};

  std::printf("fleet demo: engine %s, %d stages, profiles "
              "{coral, coral-x2fast, coral-usb2}, tenants {alice w=2, bob, "
              "mallory}, cache dir %s\n",
              engine.c_str(), stages, service_options.cache_dir.c_str());

  std::string default_key_hex;
  {
    serve::CompileService service(options, service_options);

    // Leg 1: per-profile cache keys for the same DAG never collide.
    const auto key_for = [&](const std::string& profile) {
      return service
          .Compile(serve::CompileRequest{.dag = zoo[0],
                                         .num_stages = stages,
                                         .engine = engine,
                                         .profile = profile})
          .key_hex;
    };
    default_key_hex = key_for("");
    const std::string named_default = key_for("coral");
    const std::string fast_key = key_for("coral-x2fast");
    const std::string usb2_key = key_for("coral-usb2");
    std::printf("  keys for %s: default %s  coral-x2fast %s  coral-usb2 "
                "%s\n",
                zoo[0].Name().c_str(), default_key_hex.c_str(),
                fast_key.c_str(), usb2_key.c_str());
    check(default_key_hex == named_default,
          "\"\" and \"coral\" share one cache entry");
    check(fast_key != default_key_hex && usb2_key != default_key_hex &&
              fast_key != usb2_key,
          "each non-default profile has its own cache key");

    // Leg 2: the adapted schedule wins on the heterogeneous simulator.
    const graph::Dag chain = ChainDag(6 * stages);
    const tpu::DeviceProfile hetero = *tpu::FindProfile("coral-x2fast");
    const auto uniform =
        service.Compile(serve::CompileRequest{.dag = chain,
                                              .num_stages = stages,
                                              .engine = engine});
    const auto adapted =
        service.Compile(serve::CompileRequest{.dag = chain,
                                              .num_stages = stages,
                                              .engine = engine,
                                              .profile = "coral-x2fast"});
    const double uniform_us =
        tpu::SimulatePipeline(uniform.result->package, hetero).total_us;
    const double adapted_us =
        tpu::SimulatePipeline(adapted.result->package, hetero).total_us;
    std::printf("  chain-%d on coral-x2fast: uniform schedule %.0f us, "
                "adapted %.0f us (%.2fx)\n",
                chain.NodeCount(), uniform_us, adapted_us,
                uniform_us / adapted_us);
    check(adapted_us < uniform_us,
          "profile-adapted schedule beats the uniform one on the hetero sim");

    // Leg 3: adversarial arrival mix.  mallory floods the queue first, then
    // alice and bob arrive — FIFO would drain mallory before serving either.
    // Every request bypasses the cache so each one occupies the worker, and
    // each tenant targets its own fleet (three profiles in flight at once).
    const int per_tenant = std::max(12, requests / 12);
    struct Pending {
      std::size_t tenant;
      serve::CompileService::Ticket ticket;
    };
    std::vector<Pending> pending;
    pending.reserve(static_cast<std::size_t>(per_tenant) * tenants.size());
    std::mt19937_64 mix_rng(7);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      for (int r = 0; r < per_tenant; ++r) {
        const std::size_t pick =
            std::min(mix_rng() % zoo.size(), mix_rng() % zoo.size());
        pending.push_back(
            {t, service.Submit(serve::CompileRequest{
                    .dag = zoo[pick],
                    .num_stages = stages,
                    .engine = engine,
                    .cache_policy = serve::CachePolicy::kBypass,
                    .profile = tenant_profiles[t],
                    .tenant = tenants[t]})});
      }
    }
    std::vector<double> wait_sum(tenants.size(), 0.0);
    for (auto& [tenant, ticket] : pending) {
      wait_sum[tenant] += ticket.WaitResponse().queue_wait_seconds;
    }
    std::vector<double> rates;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const double mean_wait = wait_sum[t] / per_tenant;
      // Weight-normalized service rate: completions per second of queue
      // wait, divided by the tenant's configured share.
      rates.push_back(per_tenant / (mean_wait * weights.at(tenants[t])));
      std::printf("  tenant %-8s mean wait %7.2f ms (weight %.0f)\n",
                  tenants[t].c_str(), mean_wait * 1e3,
                  weights.at(tenants[t]));
    }
    const double jain = JainIndex(rates);
    std::printf("  Jain's fairness index (weight-normalized): %.3f\n", jain);
    check(jain >= 0.9, "weighted-fair queue holds Jain's index >= 0.9");

    service.FlushStore();
    PrintServiceMetrics(service);
  }  // service destroyed: the restart

  // Leg 4: rewrite the default-profile spill as the v1 (pre-profile)
  // format, then prove a fresh default-profile service still warm-starts
  // from it.
  const std::filesystem::path spill =
      std::filesystem::path(service_options.cache_dir) /
      (default_key_hex + ".spill");
  if (!DowngradeSpillToV1(spill)) {
    std::printf("  [FAIL] could not rewrite %s as a v1 spill\n",
                spill.string().c_str());
    return failures + 1;
  }
  serve::CompileService restarted(options, service_options);
  const auto warm =
      restarted.Compile(serve::CompileRequest{.dag = zoo[0],
                                              .num_stages = stages,
                                              .engine = engine});
  check(warm.outcome == serve::CacheOutcome::kDiskHit &&
            restarted.Metrics().misses == 0,
        "default-profile restart warm-starts from a v1 (old-format) spill");

  std::printf("fleet demo: %s\n", failures == 0 ? "all checks passed"
                                                : "CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}

/// --chaos-demo: the failure-domain hardening contract, live.  Arms a mix
/// of failpoints (engine faults on the preferred engine, transient store
/// write failures, writeback failures, queue-pop stalls), serves a mixed
/// async stream through a fallback chain with solve budgets, circuit
/// breakers, and a bounded queue — then verifies the one invariant that
/// matters under faults: EVERY request settles with a valid schedule or a
/// typed error (DeadlineExceeded / Overloaded).  Any untyped failure, or an
/// injected fault leaking to a caller, exits non-zero.
int RunChaosDemo(const CompilerOptions& options,
                 serve::ServiceOptions service_options,
                 const std::vector<graph::Dag>& zoo, int requests, int stages,
                 const std::string& engine, int deadline_ms) {
  const std::string canonical(
      engines::EngineRegistry::Global().Resolve(serve::EngineRef(engine))
          .name);
  if (service_options.num_threads <= 0) service_options.num_threads = 2;
  service_options.fallback_chain = {"list", "greedy"};
  if (service_options.default_solve_budget_seconds <= 0.0) {
    service_options.default_solve_budget_seconds = 1.0;
  }
  service_options.breaker_failure_threshold = 3;
  service_options.breaker_open_seconds = 0.5;
  service_options.max_lane_depth = 8;

#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS
  // The default fault mix; a --failpoint=SPEC on the command line adds to
  // (or, for the same sites, overrides) these.  The engine fault count
  // matches the breaker threshold exactly: the first wave absorbs the whole
  // burst (opening the breaker), so the second wave's half-open probe runs
  // against a healthy engine and demonstrates recovery.
  const auto injected =
      static_cast<std::uint64_t>(service_options.breaker_failure_threshold);
  core::failpoint::Configure("engine.solve." + canonical, "error(chaos)",
                             injected);
  core::failpoint::Configure("store.write", "error(chaos ENOSPC)", 4);
  core::failpoint::Configure("serve.writeback", "error(chaos)", 2);
  core::failpoint::Configure("queue.pop", "delay(1)", 16);
  std::printf("chaos demo: %d requests over %zu models, %d stages, "
              "preferred engine %s -> fallback {list, greedy}\n"
              "  armed: engine.solve.%s=error(x%llu) store.write=error(x4) "
              "serve.writeback=error(x2) queue.pop=delay(1ms,x16)\n",
              requests, zoo.size(), stages, canonical.c_str(),
              canonical.c_str(), static_cast<unsigned long long>(injected));
#else
  std::printf("chaos demo: built with RESPECT_FAILPOINTS=OFF — nothing to "
              "arm; running the stream fault-free\n");
#endif

  serve::CompileService service(options, service_options);
  std::mt19937_64 rng(53);
  const double deadline_s = deadline_ms > 0 ? deadline_ms * 1e-3 : 0.25;

  int valid = 0;
  int degraded = 0;
  int deadline_failed = 0;
  int overloaded = 0;
  int untyped = 0;
  std::string first_untyped;
  const auto settle = [&](const serve::CompileService::Ticket& ticket) {
    try {
      const serve::CompileResponse& response = ticket.WaitResponse();
      if (response.result != nullptr) {
        ++valid;
        if (response.degraded) ++degraded;
      } else {
        ++untyped;
        if (first_untyped.empty()) first_untyped = "null result";
      }
    } catch (const serve::DeadlineExceeded&) {
      ++deadline_failed;
    } catch (const serve::Overloaded&) {
      ++overloaded;
    } catch (const std::exception& e) {
      ++untyped;
      if (first_untyped.empty()) first_untyped = e.what();
    }
  };

  // Two waves.  The first rides out the injected fault burst (fallbacks,
  // breaker opening, shedding at the depth bound); the pause lets the open
  // breaker's window lapse, so the second wave demonstrates the recovery
  // half of the contract — the half-open probe re-admitting the engine.
  int wave_number = 0;
  for (const int wave : {requests - requests / 2, requests / 2}) {
    std::vector<serve::CompileService::Ticket> tickets;
    tickets.reserve(wave);
    for (int r = 0; r < wave; ++r) {
      const bool interactive = r % 4 == 3;
      const std::size_t pick =
          std::min(rng() % zoo.size(), rng() % zoo.size());
      tickets.push_back(service.Submit(serve::CompileRequest{
          .dag = zoo[pick],
          .num_stages = stages,
          .engine = engine,
          .priority = interactive ? serve::Priority::kInteractive
                                  : serve::Priority::kBatch,
          .deadline = interactive
                          ? std::optional(serve::DeadlineIn(deadline_s))
                          : std::nullopt,
          // Half of each wave bypasses the cache so faults keep hitting
          // live solves instead of being absorbed by warm entries.
          .cache_policy = (r % 2 == 0) ? serve::CachePolicy::kBypass
                                       : serve::CachePolicy::kUse}));
      if (r % 8 == 7) {
        // A paced stream, not one instantaneous burst: the queue both
        // sheds (early, while solves back up behind the faults) and
        // serves (once fallbacks land and the cache warms).
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    for (const auto& ticket : tickets) settle(ticket);
    if (wave_number++ == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    }
  }
#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS
  core::failpoint::ClearAll();
#endif

  std::printf("  settled %d/%d: %d valid (%d degraded), %d deadline, "
              "%d overloaded, %d UNTYPED\n",
              valid + deadline_failed + overloaded + untyped, requests, valid,
              degraded, deadline_failed, overloaded, untyped);
  PrintServiceMetrics(service);
  if (untyped > 0) {
    std::fprintf(stderr,
                 "error: %d request(s) failed without a typed error "
                 "(first: %s)\n",
                 untyped, first_untyped.c_str());
    return 1;
  }
  if (valid == 0) {
    std::fprintf(stderr, "error: no request produced a valid schedule\n");
    return 1;
  }
  std::printf("chaos demo: every request settled valid-or-typed under "
              "injected faults\n");
  return 0;
}

// ── Fleet mode: N serve_cli processes behind net::FleetServer ──────────────

/// Atomic small-file write (tmp + rename): readers polling for the file
/// never observe a partial write.
void WriteFileAtomic(const std::filesystem::path& path,
                     const std::string& contents) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << contents;
  }
  std::filesystem::rename(tmp, path);
}

bool WaitForFile(const std::filesystem::path& path, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    if (std::filesystem::exists(path)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return std::filesystem::exists(path);
}

/// Child process body behind the hidden --fleet-serve flag: one
/// CompileService + FleetServer shard.  Publishes its bound address as
/// addr-<id>.e<epoch>, joins the ring once members.txt appears, serves
/// until the parent drops the stop file (or the shard is orphaned), then
/// flushes its spills and exits.  The cache directory is per (shard,
/// epoch) so a restarted shard comes up cold on purpose — its warmth must
/// come from peer spill fetch.
int RunFleetShard(const CompilerOptions& options,
                  serve::ServiceOptions service_options,
                  const std::string& fleet_dir, int shard_id, int epoch,
                  int port, bool trace_arm) {
  namespace fs = std::filesystem;
  const fs::path dir(fleet_dir);
  const fs::path cache_dir = dir / ("shard-" + std::to_string(shard_id)) /
                             ("cache-e" + std::to_string(epoch));
  fs::create_directories(cache_dir);
  service_options.cache_dir = cache_dir.string();
  // Arm span tracing before any request arrives; the parent drains the
  // ring over the wire (kTraceDump) before teardown.
  if (trace_arm) obs::Tracer::Global().Start();
  serve::CompileService service(options, service_options);
  net::FleetServerOptions server_options;
  server_options.port = port;
  // pid 0 is the parent's track in the merged chrometrace; shards are 1..N.
  server_options.shard_id = static_cast<std::uint32_t>(shard_id) + 1;
  net::FleetServer server(service, server_options);

  WriteFileAtomic(dir / ("addr-" + std::to_string(shard_id) + ".e" +
                         std::to_string(epoch)),
                  server.Address() + "\n");

  const fs::path members_path = dir / "members.txt";
  if (!WaitForFile(members_path, 20000)) {
    std::fprintf(stderr, "[shard %d] members.txt never appeared\n", shard_id);
    return 1;
  }
  std::vector<std::string> members;
  {
    std::ifstream in(members_path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) members.push_back(line);
    }
  }
  server.SetMembers(members, server.Address());
  // Readiness ack: the parent must not drive traffic until every shard has
  // installed the ring — a pre-ring request is always served locally, which
  // silently defeats the forward-to-owner dedup the fleet phase asserts.
  WriteFileAtomic(dir / ("ready-" + std::to_string(shard_id) + ".e" +
                         std::to_string(epoch)),
                  "ready\n");

  const fs::path stop_path = dir / "stop";
  while (!fs::exists(stop_path) && ::getppid() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  service.FlushStore();
  return 0;
}

pid_t SpawnShard(const std::string& fleet_dir, int shard_id, int epoch,
                 int port, bool trace_arm) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<std::string> args = {
      "/proc/self/exe",
      "--fleet-serve",
      "--fleet-dir=" + fleet_dir,
      "--fleet-id=" + std::to_string(shard_id),
      "--fleet-epoch=" + std::to_string(epoch),
  };
  if (port > 0) args.push_back("--fleet-port=" + std::to_string(port));
  if (trace_arm) args.push_back("--fleet-trace");
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv("/proc/self/exe", argv.data());
  std::perror("execv");
  ::_exit(127);
}

/// One compile against the fleet with transport failover: start at
/// `start`, walk the membership on NetError/WireError (reconnecting lazily
/// through `clients`).  Typed service errors propagate to the caller —
/// they are settled outcomes, not transport failures.
serve::CompileResponse FleetCompile(
    std::vector<std::unique_ptr<net::FleetClient>>& clients,
    const std::vector<std::string>& members, int start,
    const serve::CompileRequest& request) {
  net::FleetClientOptions client_options;
  client_options.connect_timeout_ms = 1000;
  client_options.io_timeout_ms = 30000;
  const int n = static_cast<int>(members.size());
  for (int attempt = 0; attempt < n; ++attempt) {
    const int shard = (start + attempt) % n;
    try {
      if (clients[shard] == nullptr) {
        clients[shard] =
            std::make_unique<net::FleetClient>(members[shard], client_options);
      }
      return clients[shard]->Compile(request);
    } catch (const net::NetError&) {
      clients[shard].reset();  // dead shard: fail over to the next member
    } catch (const net::WireError&) {
      clients[shard].reset();
    }
  }
  throw net::NetError("fleet compile: no shard reachable");
}

/// Parent orchestrator behind --fleet=N.  Three phases:
///   1. Healthy: a skewed stream round-robined across N shards; asserts
///      fleet-wide engine-solves-per-unique-graph <= 1.1 (forward-to-owner
///      dedups the fleet like one cache).
///   2. Kill: SIGKILL the shard owning the most unique keys mid-replay;
///      every request must still settle valid-or-typed (transport failover
///      + degrade-to-local at the surviving shards).
///   3. Restart: bring the shard back on the same port with a FRESH cache
///      directory and drive the stream through it; asserts it warm-starts
///      entirely via peer spill fetch — zero local engine solves.
/// Exits non-zero when any phase's invariant fails.
int RunFleet(const CompilerOptions& options,
             const serve::ServiceOptions& service_options,
             const std::vector<graph::Dag>& zoo, int requests, int stages,
             const std::string& engine, int fleet_n,
             const std::string& cache_dir, const std::string& trace_out) {
  const bool tracing = !trace_out.empty();
  namespace fs = std::filesystem;
  const fs::path dir =
      cache_dir.empty()
          ? fs::temp_directory_path() /
                ("respect-fleet-" + std::to_string(::getpid()))
          : fs::path(cache_dir);
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::printf("fleet: %d shards, workspace %s\n", fleet_n,
              dir.string().c_str());

  std::vector<pid_t> pids(fleet_n, -1);
  const auto kill_all = [&] {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  };

  for (int i = 0; i < fleet_n; ++i) {
    pids[i] = SpawnShard(dir.string(), i, /*epoch=*/1, /*port=*/0, tracing);
  }

  std::vector<std::string> members(fleet_n);
  std::vector<int> ports(fleet_n, 0);
  for (int i = 0; i < fleet_n; ++i) {
    const fs::path addr_path = dir / ("addr-" + std::to_string(i) + ".e1");
    if (!WaitForFile(addr_path, 15000)) {
      std::fprintf(stderr, "error: shard %d never published its address\n",
                   i);
      kill_all();
      return 1;
    }
    std::ifstream in(addr_path);
    std::getline(in, members[i]);
    ports[i] = net::SplitHostPort(members[i]).second;
  }
  {
    std::string roster;
    for (const std::string& member : members) roster += member + "\n";
    WriteFileAtomic(dir / "members.txt", roster);
  }
  for (int i = 0; i < fleet_n; ++i) {
    if (!WaitForFile(dir / ("ready-" + std::to_string(i) + ".e1"), 15000)) {
      std::fprintf(stderr, "error: shard %d never joined the ring\n", i);
      kill_all();
      return 1;
    }
  }

  // The parent computes keys and ownership with the same code the shards
  // run: a throwaway local service for MakeKey, and the same ring.
  serve::CompileService key_service(options);
  const net::ConsistentHashRing ring(members);

  // Skewed popularity (min of two draws): hot models repeat, as serving
  // traffic does.
  std::mt19937_64 stream_rng(271828);
  std::vector<int> stream;
  stream.reserve(requests);
  for (int r = 0; r < requests; ++r) {
    const int a = static_cast<int>(stream_rng() % zoo.size());
    const int b = static_cast<int>(stream_rng() % zoo.size());
    stream.push_back(std::min(a, b));
  }
  const auto make_request = [&](int model) {
    return serve::CompileRequest{.dag = zoo[model],
                                 .num_stages = stages,
                                 .engine = engine};
  };
  std::map<std::string, int> owner_uniques;  // member -> unique keys owned
  std::vector<int> unique_models;            // first-seen order
  {
    std::map<int, bool> seen;
    for (const int model : stream) {
      if (seen.emplace(model, true).second) {
        unique_models.push_back(model);
        owner_uniques[ring.OwnerOf(
            key_service.KeyFor(make_request(model)).lo)]++;
      }
    }
  }
  const std::size_t unique_keys = unique_models.size();

  std::vector<std::unique_ptr<net::FleetClient>> clients(fleet_n);
  int valid = 0;
  int typed = 0;
  int untyped = 0;
  const auto send_one = [&](int start, int model) {
    try {
      serve::CompileRequest request = make_request(model);
      // Mint the trace id client-side: every hop this request takes —
      // entry shard, forward to owner, peer fetch — shares it, which is
      // what makes the merged fleet trace coherent across pid tracks.
      if (obs::Armed()) {
        request.trace_id = obs::Tracer::Global().MintTraceId();
      }
      const obs::ScopedTraceId trace_scope(request.trace_id);
      const serve::CompileResponse response =
          FleetCompile(clients, members, start, request);
      if (response.result != nullptr) {
        ++valid;
      } else {
        ++untyped;
      }
    } catch (const serve::DeadlineExceeded&) {
      ++typed;
    } catch (const serve::Overloaded&) {
      ++typed;
    } catch (const std::invalid_argument&) {
      ++typed;
    } catch (const net::RemoteError&) {
      ++typed;
    } catch (const std::exception& e) {
      ++untyped;
      std::fprintf(stderr, "untyped failure: %s\n", e.what());
    }
  };
  const auto drive = [&](int at_shard_or_rr, bool round_robin,
                         int kill_at_index, int victim) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (kill_at_index >= 0 && static_cast<int>(i) == kill_at_index) {
        std::printf("fleet: SIGKILL shard %d (%s) mid-stream\n", victim,
                    members[victim].c_str());
        ::kill(pids[victim], SIGKILL);
        ::waitpid(pids[victim], nullptr, 0);
        pids[victim] = -1;
      }
      const int start = round_robin ? static_cast<int>(i) % fleet_n
                                    : at_shard_or_rr;
      send_one(start, stream[i]);
    }
  };
  const auto flush_all = [&] {
    for (int i = 0; i < fleet_n; ++i) {
      if (pids[i] <= 0) continue;
      try {
        if (clients[i] == nullptr) {
          clients[i] = std::make_unique<net::FleetClient>(members[i]);
        }
        clients[i]->Flush();
      } catch (const std::exception&) {
        clients[i].reset();
      }
    }
  };
  const auto stats_of = [&](int shard) {
    if (clients[shard] == nullptr) {
      clients[shard] = std::make_unique<net::FleetClient>(members[shard]);
    }
    return clients[shard]->Stats();
  };

  int exit_code = 0;

  // Phase 1 — healthy fleet.
  std::printf("fleet phase 1: %zu requests (%zu unique) round-robin over "
              "%d shards\n",
              stream.size(), unique_keys, fleet_n);
  drive(0, /*round_robin=*/true, /*kill_at_index=*/-1, -1);
  flush_all();
  std::uint64_t total_solves = 0;
  for (int i = 0; i < fleet_n; ++i) {
    try {
      const net::FleetStats stats = stats_of(i);
      std::printf("  shard %d: requests %llu  solves %llu  hits %llu  "
                  "forwarded %llu\n",
                  i, static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.engine_solves),
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.forwarded));
      total_solves += stats.engine_solves;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: stats from shard %d failed: %s\n", i,
                   e.what());
      kill_all();
      return 1;
    }
  }
  const double solves_per_unique =
      unique_keys == 0 ? 0.0
                       : static_cast<double>(total_solves) /
                             static_cast<double>(unique_keys);
  std::printf("fleet phase 1: %llu engine solves / %zu unique graphs = "
              "%.3f solves-per-unique\n",
              static_cast<unsigned long long>(total_solves), unique_keys,
              solves_per_unique);
  if (solves_per_unique > 1.1) {
    std::fprintf(stderr, "error: fleet solved duplicates (%.3f > 1.1) — "
                 "forward-to-owner dedup is broken\n",
                 solves_per_unique);
    exit_code = 1;
  }

  // Phase 2 — kill the busiest owner mid-stream.
  int victim = 0;
  for (int i = 1; i < fleet_n; ++i) {
    if (owner_uniques[members[i]] > owner_uniques[members[victim]]) {
      victim = i;
    }
  }
  std::printf("fleet phase 2: replay with shard %d (owner of %d unique "
              "keys) killed mid-stream\n",
              victim, owner_uniques[members[victim]]);
  const int before_valid = valid;
  const int before_typed = typed;
  drive(0, /*round_robin=*/true,
        /*kill_at_index=*/static_cast<int>(stream.size()) / 3, victim);
  clients[victim].reset();
  // Settle pass: with the victim down, touch every unique key once more so
  // a surviving shard solves-and-spills any key only the victim had served
  // before the kill.  Without this, a victim-owned key whose stream
  // occurrences all landed pre-kill would exist in no survivor's store —
  // and phase 3's peer warm-up would have nowhere to fetch it from.
  for (std::size_t u = 0; u < unique_models.size(); ++u) {
    send_one(static_cast<int>(u) % fleet_n, unique_models[u]);
  }
  flush_all();
  std::printf("fleet phase 2: %d valid, %d typed, %d untyped after the "
              "kill\n",
              valid - before_valid, typed - before_typed, untyped);
  if (untyped > 0) {
    std::fprintf(stderr, "error: %d request(s) failed without a typed "
                 "error during the kill\n",
                 untyped);
    exit_code = 1;
  }

  // Phase 3 — restart the victim on its old port with a fresh cache dir.
  std::printf("fleet phase 3: restart shard %d on port %d with an empty "
              "cache (epoch 2)\n",
              victim, ports[victim]);
  pids[victim] = SpawnShard(dir.string(), victim, /*epoch=*/2,
                            ports[victim], tracing);
  const fs::path addr2 =
      dir / ("addr-" + std::to_string(victim) + ".e2");
  if (!WaitForFile(addr2, 15000) ||
      !WaitForFile(dir / ("ready-" + std::to_string(victim) + ".e2"),
                   15000)) {
    std::fprintf(stderr, "error: restarted shard %d never came back\n",
                 victim);
    kill_all();
    return 1;
  }
  drive(victim, /*round_robin=*/false, /*kill_at_index=*/-1, -1);
  try {
    const net::FleetStats stats = stats_of(victim);
    std::printf("fleet phase 3: restarted shard solves %llu  peer-hits "
                "%llu  peer-fetches %llu\n",
                static_cast<unsigned long long>(stats.engine_solves),
                static_cast<unsigned long long>(stats.peer_hits),
                static_cast<unsigned long long>(stats.peer_fetches));
    if (stats.engine_solves != 0) {
      std::fprintf(stderr, "error: restarted shard re-solved %llu already-"
                   "solved graphs instead of peer-warming\n",
                   static_cast<unsigned long long>(stats.engine_solves));
      exit_code = 1;
    }
    if (stats.peer_hits == 0) {
      std::fprintf(stderr,
                   "error: restarted shard never peer-warm fetched\n");
      exit_code = 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: stats from restarted shard failed: %s\n",
                 e.what());
    exit_code = 1;
  }
  if (untyped > 0) exit_code = 1;

  // Drain every live shard's trace ring over the wire and merge the
  // fragments (plus the parent's own client-side spans) into one trace
  // file — one pid track per shard, pid 0 for the parent.
  if (tracing) {
    std::vector<std::string> fragments;
    fragments.emplace_back();
    obs::AppendChromeTraceEvents(fragments.back(),
                                 obs::Tracer::Global().Drain(), /*pid=*/0);
    for (int i = 0; i < fleet_n; ++i) {
      if (pids[i] <= 0) continue;
      try {
        if (clients[i] == nullptr) {
          clients[i] = std::make_unique<net::FleetClient>(members[i]);
        }
        fragments.push_back(clients[i]->TraceDumpFetch().events_json);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: trace dump from shard %d failed: %s\n",
                     i, e.what());
        clients[i].reset();
      }
    }
    std::ofstream trace_file(trace_out, std::ios::trunc);
    obs::WriteChromeTraceFragments(trace_file, fragments);
    if (trace_file) {
      std::printf("fleet: merged chrometrace written to %s\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_out.c_str());
      exit_code = 1;
    }
  }

  // Orderly teardown: stop file, bounded wait, SIGKILL stragglers.
  WriteFileAtomic(dir / "stop", "stop\n");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  for (int i = 0; i < fleet_n; ++i) {
    if (pids[i] <= 0) continue;
    while (std::chrono::steady_clock::now() < deadline) {
      if (::waitpid(pids[i], nullptr, WNOHANG) != 0) {
        pids[i] = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  kill_all();
  if (exit_code == 0) {
    std::printf("fleet: all invariants held (dedup <= 1.1, valid-or-typed "
                "under kill, peer warm restart)\n");
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 200;
  int num_models = 6;
  int stages = 4;
  std::string engine = "anneal";
  serve::Priority priority = serve::Priority::kNormal;
  int deadline_ms = 0;  // 0 = no deadline
  int threads = 0;      // 0 = ThreadPool::DefaultThreadCount
  bool mixed = false;
  int max_batch_inflight = 0;  // 0 = uncapped
  std::string cache_dir;       // empty = no persistent tier
  int cache_ttl_s = 0;         // 0 = no expiry
  bool restart_demo = false;
  bool miss_storm = false;
  bool batch_decode = true;
  bool fleet_demo = false;
  bool chaos_demo = false;
  int fleet_n = 0;          // > 0: parent of a --fleet multi-process run
  bool fleet_serve = false;  // hidden: this process is a fleet shard
  std::string fleet_dir;
  int fleet_id = 0;
  int fleet_epoch = 1;
  int fleet_port = 0;
  int budget_ms = 0;        // 0 = no per-attempt solve budget
  std::string failpoints;   // "site=action;..." spec, armed before serving
  std::string profile;  // empty = the default device profile
  std::string tenant;   // empty = the shared default tenant
  std::string trace_out;      // empty = tracing disarmed
  std::string metrics_out;    // Prometheus text; "-" = stdout
  std::string sim_trace_out;  // simulated timeline chrometrace
  bool fleet_trace = false;   // hidden: arm tracing in a fleet shard
  constexpr int kMaxInt = std::numeric_limits<int>::max();

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--priority=", 11) == 0) {
      const auto parsed = serve::ParsePriority(arg + 11);
      if (!parsed) {
        std::fprintf(stderr, "error: bad --priority '%s'\n", arg + 11);
        return Usage(argv[0]);
      }
      priority = *parsed;
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      if (!examples::ParseIntInRange(arg + 14, 1, kMaxInt, deadline_ms)) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!examples::ParseIntInRange(arg + 10, 1, 1024, threads)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--mixed") == 0) {
      mixed = true;
    } else if (std::strncmp(arg, "--max-batch-inflight=", 21) == 0) {
      if (!examples::ParseIntInRange(arg + 21, 1, 1024,
                                     max_batch_inflight)) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      cache_dir = arg + 12;
      if (cache_dir.empty()) {
        std::fprintf(stderr, "error: --cache-dir needs a path\n");
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--cache-ttl-s=", 14) == 0) {
      if (!examples::ParseIntInRange(arg + 14, 1, kMaxInt, cache_ttl_s)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--restart-demo") == 0) {
      restart_demo = true;
    } else if (std::strncmp(arg, "--profile=", 10) == 0) {
      profile = arg + 10;
      if (!tpu::FindProfile(profile)) {
        std::fprintf(stderr, "error: unknown device profile '%s'\n",
                     profile.c_str());
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--tenant=", 9) == 0) {
      tenant = arg + 9;
    } else if (std::strcmp(arg, "--fleet-demo") == 0) {
      fleet_demo = true;
    } else if (std::strcmp(arg, "--fleet") == 0) {
      fleet_n = 3;
    } else if (std::strncmp(arg, "--fleet=", 8) == 0) {
      if (!examples::ParseIntInRange(arg + 8, 2, 8, fleet_n)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--fleet-serve") == 0) {
      fleet_serve = true;
    } else if (std::strncmp(arg, "--fleet-dir=", 12) == 0) {
      fleet_dir = arg + 12;
    } else if (std::strncmp(arg, "--fleet-id=", 11) == 0) {
      if (!examples::ParseIntInRange(arg + 11, 0, 255, fleet_id)) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--fleet-epoch=", 14) == 0) {
      if (!examples::ParseIntInRange(arg + 14, 1, kMaxInt, fleet_epoch)) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--fleet-port=", 13) == 0) {
      if (!examples::ParseIntInRange(arg + 13, 1, 65535, fleet_port)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--chaos-demo") == 0) {
      chaos_demo = true;
    } else if (std::strncmp(arg, "--failpoint=", 12) == 0) {
      failpoints = arg + 12;
      if (failpoints.empty()) {
        std::fprintf(stderr, "error: --failpoint needs a site=action spec\n");
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--budget-ms=", 12) == 0) {
      if (!examples::ParseIntInRange(arg + 12, 1, kMaxInt, budget_ms)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--miss-storm") == 0) {
      miss_storm = true;
    } else if (std::strcmp(arg, "--no-batch-decode") == 0) {
      batch_decode = false;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
      if (trace_out.empty()) {
        std::fprintf(stderr, "error: --trace-out needs a path\n");
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
      if (metrics_out.empty()) {
        std::fprintf(stderr, "error: --metrics-out needs a path or '-'\n");
        return Usage(argv[0]);
      }
    } else if (std::strncmp(arg, "--sim-trace-out=", 16) == 0) {
      sim_trace_out = arg + 16;
      if (sim_trace_out.empty()) {
        std::fprintf(stderr, "error: --sim-trace-out needs a path\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--fleet-trace") == 0) {
      fleet_trace = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    } else {
      switch (positional++) {
        case 0:
          if (!examples::ParseIntInRange(arg, 1, kMaxInt, requests)) {
            return Usage(argv[0]);
          }
          break;
        case 1:
          if (!examples::ParseIntInRange(arg, 1, kMaxInt, num_models)) {
            return Usage(argv[0]);
          }
          break;
        case 2:
          // The sampled DAGs have 40 nodes; the stage cap keeps every
          // request satisfiable (beyond kMaxStages it would fail to pack).
          if (!examples::ParseIntInRange(arg, 1, examples::kMaxStages,
                                         stages)) {
            return Usage(argv[0]);
          }
          break;
        case 3:
          engine = arg;
          break;
        default:
          return Usage(argv[0]);
      }
    }
  }
  if (!engines::EngineRegistry::Global().Contains(engine)) {
    std::fprintf(stderr, "error: unknown engine '%s' (see compiler_cli "
                 "--help for the registry)\n",
                 engine.c_str());
    return Usage(argv[0]);
  }

  std::mt19937_64 rng(97);
  std::vector<graph::Dag> zoo;
  zoo.reserve(num_models);
  for (int i = 0; i < num_models; ++i) {
    zoo.push_back(graph::SampleTrainingDag(40, rng));
    zoo.back().SetName("model-" + std::to_string(i));
  }

  CompilerOptions options;
  options.net.hidden_dim = 32;
  options.exact_max_expansions = 50'000;
  options.exact_time_limit_seconds = 0.2;
  serve::ServiceOptions service_options;
  service_options.num_threads = threads;
  service_options.max_batch_inflight = max_batch_inflight;
  service_options.cache_dir = cache_dir;
  service_options.cache_ttl_seconds = cache_ttl_s;
  service_options.batch_decode = batch_decode;
  service_options.default_solve_budget_seconds = budget_ms * 1e-3;

  if (fleet_serve) {
    // Hidden shard mode, exec'd by the --fleet parent.  It runs the exact
    // same option/zoo construction as the parent above, so cache keys and
    // ring placement agree across all processes.
    if (fleet_dir.empty()) {
      std::fprintf(stderr, "error: --fleet-serve requires --fleet-dir\n");
      return 2;
    }
    try {
      return RunFleetShard(options, service_options, fleet_dir, fleet_id,
                           fleet_epoch, fleet_port, fleet_trace);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[shard %d] fatal: %s\n", fleet_id, e.what());
      return 1;
    }
  }

  if (!failpoints.empty()) {
#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS
    if (!respect::core::failpoint::ConfigureFromSpec(failpoints)) {
      std::fprintf(stderr, "error: malformed --failpoint spec '%s'\n",
                   failpoints.c_str());
      return Usage(argv[0]);
    }
    std::printf("failpoints armed: %s\n", failpoints.c_str());
#else
    std::fprintf(stderr, "error: --failpoint requires a build with "
                 "RESPECT_FAILPOINTS=ON\n");
    return 1;
#endif
  }

  // Arm the tracer before any service exists so admission mints trace ids
  // from the very first request.  (Fleet shards arm their own rings via the
  // hidden --fleet-trace flag; the parent's ring records the client side.)
  if (!trace_out.empty()) obs::Tracer::Global().Start();

  if (fleet_n > 0) {
    try {
      return RunFleet(options, service_options, zoo, requests, stages,
                      engine, fleet_n, cache_dir, trace_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: fleet run failed: %s\n", e.what());
      return 1;
    }
  }

  if (chaos_demo) {
    try {
      return RunChaosDemo(options, service_options, zoo, requests, stages,
                          engine, deadline_ms);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: chaos demo failed: %s\n", e.what());
      return 1;
    }
  }

  if (fleet_demo) {
    try {
      return RunFleetDemo(options, service_options, zoo, requests, stages,
                          engine);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: fleet demo failed: %s\n", e.what());
      return 1;
    }
  }

  if (miss_storm) {
    try {
      return RunMissStorm(options, service_options, zoo, requests, stages,
                          threads);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: miss-storm demo failed: %s\n", e.what());
      return 1;
    }
  }

  if (restart_demo) {
    if (cache_dir.empty()) {
      std::fprintf(stderr, "error: --restart-demo requires --cache-dir\n");
      return Usage(argv[0]);
    }
    try {
      return RunRestartDemo(options, service_options, zoo, requests, stages,
                            engine, rng);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: restart demo failed: %s\n", e.what());
      return 1;
    }
  }

  // Construction can fail when --cache-dir is unusable (DiskStore throws).
  std::unique_ptr<serve::CompileService> service_holder;
  try {
    service_holder =
        std::make_unique<serve::CompileService>(options, service_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: cannot start service: %s\n", e.what());
    return 1;
  }
  serve::CompileService& service = *service_holder;

  const auto deadline_for = [&](bool apply) {
    return apply && deadline_ms > 0
               ? std::optional<std::chrono::steady_clock::time_point>(
                     serve::DeadlineIn(deadline_ms * 1e-3))
               : std::nullopt;
  };

  std::vector<std::pair<serve::Priority, serve::CompileService::Ticket>>
      tickets;
  tickets.reserve(requests);
  std::vector<LaneSamples> lanes(serve::kNumPriorityLanes);
  const auto start = std::chrono::steady_clock::now();

  const auto submit_mixed = [&] {
    // Batch flood + interactive trickle.  The flood bypasses the cache so
    // every batch request really occupies a worker — the interactive lane
    // has a backlog to overtake.
    std::printf("mixed traffic: %d requests over %d models, %d stages, "
                "engine %s (3:1 batch:interactive%s)\n",
                requests, num_models, stages, engine.c_str(),
                deadline_ms > 0 ? ", interactive deadline applied" : "");
    for (int r = 0; r < requests; ++r) {
      const bool interactive = r % 4 == 3;
      const std::size_t pick =
          std::min(rng() % zoo.size(), rng() % zoo.size());
      serve::CompileRequest request{
          .dag = zoo[pick],
          .num_stages = stages,
          .engine = engine,
          .priority = interactive ? serve::Priority::kInteractive
                                  : serve::Priority::kBatch,
          .deadline = deadline_for(interactive),
          .cache_policy = interactive ? serve::CachePolicy::kUse
                                      : serve::CachePolicy::kBypass,
          .profile = profile,
          .tenant = tenant};
      tickets.emplace_back(request.priority,
                           service.Submit(std::move(request)));
    }
  };

  const auto submit_stream = [&] {
    std::printf("serving %d requests over %d models, %d stages, engine %s, "
                "%s lane (1 in 4 requests uses the RL engine)\n",
                requests, num_models, stages, engine.c_str(),
                std::string(PriorityName(priority)).c_str());
    for (int r = 0; r < requests; ++r) {
      if (r == requests / 2) {
        // Mid-stream weight rollout: RL-engine entries invalidate, every
        // deterministic-engine entry stays warm.
        for (auto& [lane, ticket] : tickets) {
          try {
            (void)ticket.Wait();
          } catch (const serve::DeadlineExceeded&) {
          }
        }
        service.ReplaceRl(std::make_shared<rl::RlScheduler>(options.net));
        std::printf("  ... ReplaceRl at request %d (invalidations so far: "
                    "%llu)\n",
                    r,
                    static_cast<unsigned long long>(
                        service.Metrics().invalidations));
      }
      // Skewed popularity: the minimum of two uniform draws favours the
      // first (hot) models, approximating serving traffic.
      const std::size_t pick =
          std::min(rng() % zoo.size(), rng() % zoo.size());
      serve::CompileRequest request{
          .dag = zoo[pick],
          .num_stages = stages,
          .engine = (r % 4 == 3) ? serve::EngineRef("respect")
                                 : serve::EngineRef(engine),
          .priority = priority,
          .deadline = deadline_for(true),
          .profile = profile,
          .tenant = tenant};
      tickets.emplace_back(request.priority,
                           service.Submit(std::move(request)));
    }
  };

  // One try around submission and draining: a non-deadline failure anywhere
  // in the stream (solve failure mid-rollout, unsatisfiable request) reports
  // and exits instead of escaping main.
  try {
    if (mixed) {
      submit_mixed();
    } else {
      submit_stream();
    }
    for (auto& [lane, ticket] : tickets) {
      LaneSamples& samples = lanes[static_cast<std::size_t>(lane)];
      try {
        const serve::CompileResponse& response = ticket.WaitResponse();
        samples.wait_seconds.push_back(response.queue_wait_seconds);
        samples.total_seconds.push_back(response.queue_wait_seconds +
                                        response.solve_seconds);
        ++samples.completed;
      } catch (const serve::DeadlineExceeded&) {
        ++samples.expired;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: compile request failed: %s\n", e.what());
    return 1;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("done in %.3f s (%.0f requests/s)\n", seconds,
              requests / seconds);
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    if (lanes[lane].completed == 0 && lanes[lane].expired == 0) continue;
    PrintLane(
        std::string(PriorityName(static_cast<serve::Priority>(lane))).c_str(),
        lanes[lane]);
  }
  PrintServiceMetrics(service);

  if (!trace_out.empty()) {
    std::ofstream trace_file(trace_out, std::ios::trunc);
    obs::WriteChromeTrace(trace_file, obs::Tracer::Global().Drain(),
                          /*pid=*/0);
    if (!trace_file) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("chrometrace written to %s (dropped events: %llu)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(
                    obs::Tracer::Global().Dropped()));
  }
  if (!metrics_out.empty() &&
      !examples::WritePrometheusMetrics(service, metrics_out)) {
    return 1;
  }
  if (!sim_trace_out.empty()) {
    // A schedule this run actually served (warm by now), simulated with the
    // per-(inference, stage) timeline recorded, exported as its own trace:
    // one tid track per pipeline stage, transfer/compute sub-events nested.
    try {
      const serve::CompileResponse sampled = service.Compile(
          serve::CompileRequest{.dag = zoo[0],
                                .num_stages = stages,
                                .engine = engine});
      tpu::SimConfig sim_config;
      sim_config.num_inferences = 64;
      sim_config.record_timeline = true;
      const tpu::SimResult sim =
          tpu::SimulatePipeline(sampled.result->package, sim_config);
      const std::vector<tpu::StageCost> costs = tpu::ProfilePackage(
          sampled.result->package, sim_config.device, sim_config.link);
      std::ofstream sim_file(sim_trace_out, std::ios::trunc);
      obs::WriteSimChromeTrace(sim_file, sim.timeline, costs);
      if (!sim_file) {
        std::fprintf(stderr, "error: cannot write sim trace to %s\n",
                     sim_trace_out.c_str());
        return 1;
      }
      std::printf("sim chrometrace written to %s (%zu intervals, "
                  "%.0f us total)\n",
                  sim_trace_out.c_str(), sim.timeline.size(), sim.total_us);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: sim trace export failed: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
