// Domain example 3: `respect-compile` — a command-line pipeline compiler in
// the style of the vendor's edgetpu_compiler, driving the whole library.
//
//   $ ./build/examples/compiler_cli <model> <num_stages> [method] [out.bin]
//
//   model:  Xception | ResNet50 | ResNet101 | ResNet152 | DenseNet121 |
//           ResNet101v2 | ResNet152v2 | DenseNet169 | DenseNet201 |
//           InceptionResNetv2 | ResNet50v2 | InceptionV3
//   method: any engine name or alias from the registry (see --help);
//           defaults to respect
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "cli_util.h"
#include "core/respect.h"
#include "models/zoo.h"
#include "tpu/sim.h"

namespace {

using namespace respect;

std::optional<models::ModelName> ParseModel(const std::string& name) {
  for (const models::ModelName m : models::Fig5Models()) {
    if (name == models::ModelNameString(m)) return m;
  }
  return std::nullopt;
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s <model> <num_stages> [method] [out.bin]\n"
               "  e.g. %s ResNet101 4 respect resnet101_4.bin\n"
               "\nregistered scheduling engines (alias | name):\n",
               argv0, argv0);
  for (const engines::EngineRegistration& registration :
       engines::EngineRegistry::Global().Registrations()) {
    std::fprintf(out, "  %-10s %-18s %s\n", registration.alias.c_str(),
                 registration.name.c_str(), registration.description.c_str());
  }
}

int Usage(const char* argv0) {
  PrintUsage(stderr, argv0);
  return 2;
}

std::optional<int> ParseStages(const char* text) {
  int stages = 0;
  if (!examples::ParseIntInRange(text, 1, examples::kMaxStages, stages)) {
    return std::nullopt;
  }
  return stages;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    PrintUsage(stdout, argv[0]);  // requested help is a success
    return 0;
  }
  if (argc < 3) return Usage(argv[0]);
  const auto model = ParseModel(argv[1]);
  const auto stages = ParseStages(argv[2]);
  const std::string method = argc > 3 ? argv[3] : "respect";
  const std::string out_path = argc > 4 ? argv[4] : "";

  // The registry is the single source of truth for method spellings.
  const engines::EngineRegistration* engine =
      engines::EngineRegistry::Global().Find(method);
  if (!model) {
    std::fprintf(stderr, "error: unknown model '%s'\n", argv[1]);
    return Usage(argv[0]);
  }
  if (!stages) {
    std::fprintf(stderr,
                 "error: invalid <num_stages> '%s' (expected an integer in "
                 "1..%d)\n",
                 argv[2], examples::kMaxStages);
    return Usage(argv[0]);
  }
  if (engine == nullptr) {
    std::fprintf(stderr, "error: unknown engine '%s'\n", method.c_str());
    return Usage(argv[0]);
  }

  const graph::Dag dag = models::BuildModel(*model);
  std::printf("model %s: |V|=%d deg=%d, %.1f MB parameters (quantized)\n",
              argv[1], dag.NodeCount(), dag.MaxInDegree(),
              dag.TotalParamBytes() / 4.0 / 1048576.0);

  PipelineCompiler compiler;
  const CompileResult result = compiler.Compile(dag, *stages, engine->name);

  std::printf("method %s solved in %.1f ms%s\n", engine->name.c_str(),
              result.solve_seconds * 1e3,
              result.proved_optimal ? " (proved optimal)" : "");
  std::printf("%8s %10s %10s %8s %9s\n", "stage", "ops", "params MB",
              "cached", "GMACs");
  tpu::EdgeTpuModel device;
  for (const deploy::Segment& seg : result.package.segments) {
    std::printf("%8d %10zu %10.2f %8s %9.2f\n", seg.stage, seg.ops.size(),
                seg.param_bytes / 1048576.0,
                seg.param_bytes <= device.cache_bytes ? "yes" : "NO",
                seg.macs / 1e9);
  }

  const auto sim = tpu::SimulatePipeline(result.package);
  std::printf("simulated: %.1f us/inference over 1000 inferences "
              "(first-inference latency %.1f us)\n",
              sim.per_inference_us, sim.first_latency_us);

  if (!out_path.empty()) {
    deploy::SavePackage(result.package, out_path);
    std::printf("wrote deployment package to %s\n", out_path.c_str());
  }
  return 0;
}
