// Fleet wire protocol — length-prefixed, checksummed frames carrying POD
// serializations of the serving request/response types.
//
// Frame layout (host-native bytes via deploy/pod_io.h; the fleet is
// homogeneous loopback/LAN processes, matching the spill format's
// convention):
//
//   header   u32 magic 'RNWF'     u32 frame type      u64 payload bytes
//            u64 checksum.hi      u64 checksum.lo     (checksum = the
//            graph::CanonicalHasher digest of the payload bytes)
//   payload  type-specific, starting with a u32 payload version
//
// Versioned envelopes, unknown-field tolerant: every payload opens with a
// version, fields are append-only, and decoders read the fields they know
// and ignore trailing bytes — a v1 reader accepts a v2 writer's frames.
// The checksum still covers every byte, so tolerance never means trusting
// corruption.
//
// Every malformed byte sequence — short header, bad magic, implausible
// size, checksum mismatch, out-of-range enum — throws WireError, never UB;
// tests/net_test.cc drives truncated and bit-flipped frames through the
// decoders under ASan to hold that line.
//
// Frame conversation (client speaks first on every exchange):
//
//   kCompileRequest  -> kCompileResponse | kError
//   kSpillGet        -> kSpillData       | kSpillMiss | kError
//   kStatsGet        -> kStatsData
//   kFlush           -> kFlushOk
//   kPing            -> kPong
//   kTraceDump       -> kTraceData
//
// kError carries a WireErrorKind so the service's typed failures
// (DeadlineExceeded, Overloaded, std::invalid_argument) survive the hop
// and rethrow as the same types on the client.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "graph/canonical_hash.h"
#include "serve/request.h"

namespace respect::net {

class Socket;

/// The bytes arrived but are not a valid frame (framing, checksum, or
/// payload structure).  Distinct from NetError (transport failure).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Relayed remote failure with no more specific typed form (the peer's
/// kInternal errors).
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x46574e52;  // "RNWF"
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 8 + 8;
inline constexpr std::uint64_t kMaxFramePayloadBytes = 1ull << 30;
inline constexpr std::uint32_t kWireVersion = 1;
inline constexpr std::uint64_t kMaxWireStringBytes = 1ull << 20;
inline constexpr std::uint64_t kMaxWireDagBytes = 1ull << 26;

enum class FrameType : std::uint32_t {
  kCompileRequest = 1,
  kCompileResponse = 2,
  kError = 3,
  kSpillGet = 4,
  kSpillData = 5,
  kSpillMiss = 6,
  kStatsGet = 7,
  kStatsData = 8,
  kFlush = 9,
  kFlushOk = 10,
  kPing = 11,
  kPong = 12,
  kTraceDump = 13,
  kTraceData = 14,
};

[[nodiscard]] std::string_view FrameTypeName(FrameType type);

struct FrameHeader {
  FrameType type = FrameType::kPing;
  std::uint64_t payload_size = 0;
  graph::CanonicalHash checksum;
};

/// Serializes the 32-byte header for `payload` (computes its checksum).
[[nodiscard]] std::string EncodeFrameHeader(FrameType type,
                                            std::string_view payload);

/// Parses and range-checks a header.  Throws WireError on anything but a
/// well-formed header of a known frame type within the payload bound.
[[nodiscard]] FrameHeader DecodeFrameHeader(std::string_view bytes);

/// Throws WireError unless `payload` matches the header's size and
/// checksum.
void VerifyFramePayload(const FrameHeader& header, std::string_view payload);

/// Writes one frame (header + payload) to the socket.
void SendFrame(Socket& socket, FrameType type, std::string_view payload);

/// Reads one verified frame.  NetError for transport failures, WireError
/// for malformed bytes.
[[nodiscard]] std::pair<FrameType, std::string> RecvFrame(Socket& socket);

// ── Compile request / response payloads ────────────────────────────────────

struct WireCompileRequest {
  serve::CompileRequest request;

  /// Routing loop prevention: set on owner-forwarded requests so the owner
  /// answers locally instead of re-consulting the ring.
  bool no_forward = false;
};

/// Serializes every CompileRequest field.  The deadline travels as
/// remaining time (steady_clock points do not cross processes) and is
/// re-anchored to the receiver's clock on decode.
[[nodiscard]] std::string EncodeCompileRequest(
    const serve::CompileRequest& request, bool no_forward);

[[nodiscard]] WireCompileRequest DecodeCompileRequest(
    std::string_view payload);

/// Serializes every CompileResponse field, including the result body when
/// present (shared byte layout with the spill codec's WriteResultBody).
[[nodiscard]] std::string EncodeCompileResponse(
    const serve::CompileResponse& response);

/// Engine names decode into process-lifetime string_views: known names
/// resolve to the registry's canonical storage, unknown ones land in an
/// interning pool (never a dangling view).
[[nodiscard]] serve::CompileResponse DecodeCompileResponse(
    std::string_view payload);

// ── Typed error payload ────────────────────────────────────────────────────

enum class WireErrorKind : std::uint8_t {
  kInvalidArgument = 0,
  kDeadlineExceeded = 1,
  kOverloaded = 2,
  kInternal = 3,
};

[[nodiscard]] std::string EncodeErrorPayload(WireErrorKind kind,
                                             std::string_view message);

[[nodiscard]] std::pair<WireErrorKind, std::string> DecodeErrorPayload(
    std::string_view payload);

/// Rethrows a decoded error payload as the matching typed exception:
/// std::invalid_argument, serve::DeadlineExceeded, serve::Overloaded, or
/// RemoteError.
[[noreturn]] void ThrowDecodedError(WireErrorKind kind,
                                    const std::string& message);

// ── Fleet statistics payload ───────────────────────────────────────────────

/// Fleet-visible counters one shard reports (kStatsGet): enough for the
/// fleet demo to compute solves-per-unique-graph and to prove a restarted
/// shard warm-started from its peers.
struct FleetStats {
  std::uint64_t requests = 0;          // compile frames handled
  std::uint64_t engine_solves = 0;     // local cold solves paid
  std::uint64_t cache_hits = 0;        // memory-tier answers
  std::uint64_t disk_hits = 0;         // persistent-tier answers
  std::uint64_t peer_hits = 0;         // peer-envelope answers
  std::uint64_t peer_fetches = 0;      // peer warm attempts
  std::uint64_t forwarded = 0;         // requests relayed to their owner
  std::uint64_t forward_failures = 0;  // relays that degraded to local
  std::uint64_t spill_served = 0;      // kSpillGet answered with bytes
  std::uint64_t spill_missed = 0;      // kSpillGet answered with a miss
};

[[nodiscard]] std::string EncodeFleetStats(const FleetStats& stats);
[[nodiscard]] FleetStats DecodeFleetStats(std::string_view payload);

// ── Trace dump payload ─────────────────────────────────────────────────────

/// One shard's drained trace buffer (kTraceDump -> kTraceData): the shard
/// id that stamps the chrometrace `pid` field, plus a bracket-less
/// chrometrace event fragment (obs::AppendChromeTraceEvents) the collector
/// splices into one merged trace file.
struct TraceDump {
  std::uint32_t shard_id = 0;
  std::string events_json;  // comma-separated chrometrace event objects
};

[[nodiscard]] std::string EncodeTraceDump(const TraceDump& dump);
[[nodiscard]] TraceDump DecodeTraceDump(std::string_view payload);

}  // namespace respect::net
