#include "net/fleet_client.h"

#include <utility>

namespace respect::net {

FleetClient::FleetClient(const std::string& address,
                         const FleetClientOptions& options)
    : address_(address) {
  const auto [host, port] = SplitHostPort(address);
  socket_ = Socket::Connect(host, port, options.connect_timeout_ms);
  if (options.io_timeout_ms > 0) socket_.SetIoTimeout(options.io_timeout_ms);
}

std::pair<FrameType, std::string> FleetClient::Roundtrip(
    FrameType type, std::string_view payload) {
  SendFrame(socket_, type, payload);
  return RecvFrame(socket_);
}

void FleetClient::ExpectType(const std::pair<FrameType, std::string>& frame,
                             FrameType expected) {
  if (frame.first == expected) return;
  if (frame.first == FrameType::kError) {
    const auto [kind, message] = DecodeErrorPayload(frame.second);
    ThrowDecodedError(kind, message);
  }
  throw WireError(std::string("wire: expected ") +
                  std::string(FrameTypeName(expected)) + " frame, got " +
                  std::string(FrameTypeName(frame.first)));
}

serve::CompileResponse FleetClient::Compile(
    const serve::CompileRequest& request) {
  const auto frame = Roundtrip(FrameType::kCompileRequest,
                               EncodeCompileRequest(request,
                                                    /*no_forward=*/false));
  ExpectType(frame, FrameType::kCompileResponse);
  return DecodeCompileResponse(frame.second);
}

std::pair<FrameType, std::string> FleetClient::CompileRaw(
    std::string_view request_payload) {
  auto frame = Roundtrip(FrameType::kCompileRequest, request_payload);
  if (frame.first != FrameType::kCompileResponse &&
      frame.first != FrameType::kError) {
    throw WireError("wire: unexpected relay reply frame");
  }
  return frame;
}

std::optional<std::string> FleetClient::FetchSpill(
    const graph::CanonicalHash& key) {
  auto frame = Roundtrip(FrameType::kSpillGet, key.ToHex());
  if (frame.first == FrameType::kSpillMiss) return std::nullopt;
  ExpectType(frame, FrameType::kSpillData);
  return std::move(frame.second);
}

FleetStats FleetClient::Stats() {
  const auto frame = Roundtrip(FrameType::kStatsGet, {});
  ExpectType(frame, FrameType::kStatsData);
  return DecodeFleetStats(frame.second);
}

TraceDump FleetClient::TraceDumpFetch() {
  const auto frame = Roundtrip(FrameType::kTraceDump, {});
  ExpectType(frame, FrameType::kTraceData);
  return DecodeTraceDump(frame.second);
}

void FleetClient::Flush() {
  ExpectType(Roundtrip(FrameType::kFlush, {}), FrameType::kFlushOk);
}

void FleetClient::Ping() {
  ExpectType(Roundtrip(FrameType::kPing, {}), FrameType::kPong);
}

}  // namespace respect::net
