#include "net/consistent_hash.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/canonical_hash.h"

namespace respect::net {

ConsistentHashRing::ConsistentHashRing(std::vector<std::string> members,
                                       int virtual_nodes) {
  const int vnodes = std::max(1, virtual_nodes);
  members_.reserve(members.size());
  for (std::string& member : members) {
    if (std::find(members_.begin(), members_.end(), member) !=
        members_.end()) {
      continue;  // duplicates contribute nothing
    }
    members_.push_back(std::move(member));
  }
  ring_.reserve(members_.size() * static_cast<std::size_t>(vnodes));
  for (std::uint32_t index = 0; index < members_.size(); ++index) {
    for (int vnode = 0; vnode < vnodes; ++vnode) {
      graph::CanonicalHasher h;
      h.Update("respect-fleet-ring-v1");
      h.Update(members_[index]);
      h.Update(vnode);
      ring_.emplace_back(h.Finish().lo, index);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

const std::string& ConsistentHashRing::OwnerOf(std::uint64_t point) const {
  if (ring_.empty()) {
    throw std::logic_error("ConsistentHashRing: empty ring owns nothing");
  }
  // First ring point at or after `point`; past the last point wraps to the
  // ring's first.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry,
         std::uint64_t value) { return entry.first < value; });
  if (it == ring_.end()) it = ring_.begin();
  return members_[it->second];
}

}  // namespace respect::net
