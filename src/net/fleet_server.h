// FleetServer — the network front end that turns one serve::CompileService
// into a shard of a compile fleet.
//
// One accept thread feeds a core::ThreadPool of connection handlers
// (thread-per-connection over blocking sockets: a worker owns a connection
// for its lifetime and serves its frames sequentially).  Three roles in one
// server:
//
//   * Serving: kCompileRequest frames run through the local
//     CompileService; the service's typed failures travel back as kError
//     frames and rethrow as the same types client-side.
//   * Routing: with a membership list installed, a kUse request whose key
//     (CanonicalHash.lo on the consistent-hash ring) belongs to another
//     member is answered locally only when already warm (TryServeLocal);
//     otherwise the frame is re-encoded with no_forward=true and relayed
//     to its owner, so each unique graph is solved once, at its home
//     shard.  A dead owner degrades to a local solve — forwarding is an
//     optimization, never a point of failure.
//   * Peer warm: the server installs a CompileService peer-fetch hook that
//     asks each peer (owner first) for its spill envelope on a cold miss,
//     and answers peers' kSpillGet fetch-by-hex requests from the local
//     store — so a restarted shard refills from the fleet instead of
//     re-solving (CacheOutcome::kPeerHit).
//
// Liveness: every peer RPC runs under io_timeout_ms and every failure
// degrades (local solve, skipped peer) — a wedged member costs latency,
// never correctness.  Stop() uninstalls the hook, joins the accept thread,
// shuts every open connection, and drains the pool; it is called by the
// destructor.  Stop (or destroy) the server before destroying the service
// it fronts.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "graph/canonical_hash.h"
#include "net/consistent_hash.h"
#include "net/fleet_client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/compile_service.h"

namespace respect::core {
class ThreadPool;
}  // namespace respect::core

namespace respect::net {

struct FleetServerOptions {
  /// Numeric listen address; port 0 binds an ephemeral port (Port()
  /// reports the real one).
  std::string host = "127.0.0.1";
  int port = 0;

  /// Connection-handler workers.  Thread-per-connection: size this at
  /// least (expected client connections + 2 * (fleet size - 1)) — each
  /// peer may hold one forward link and one spill-fetch link inbound.
  int num_threads = 8;

  /// Fleet membership ("host:port" per member, self included) and this
  /// server's own address in that list.  Leave empty to start standalone
  /// and install later via SetMembers (the demo's two-phase handshake:
  /// bind first, learn the full member list, then join).
  std::vector<std::string> members;
  std::string self_address;

  int virtual_nodes = ConsistentHashRing::kDefaultVirtualNodes;

  /// Relay non-owned cold requests to their home shard (else: always serve
  /// locally, which forfeits fleet-wide dedup but never pays a hop).
  bool forward_to_owner = true;

  /// Install the peer spill-fetch hook on the service.
  bool peer_warm = true;

  /// Per peer-RPC I/O bound (forward + fetch).  Also the liveness
  /// backstop: mutual peer traffic can never deadlock, only time out and
  /// degrade.
  int io_timeout_ms = 10000;

  /// Read timeout on accepted connections; <= 0 = block until the client
  /// closes (Stop still unsticks handlers via socket shutdown).
  int idle_timeout_ms = 0;

  /// Stamped as the chrometrace `pid` on this shard's kTraceDump replies,
  /// so a merged fleet trace shows one process row per shard.
  std::uint32_t shard_id = 0;
};

/// Server-side counters (the service keeps its own cache/solve metrics).
struct FleetServerMetrics {
  std::uint64_t accepted = 0;          // connections accepted
  std::uint64_t requests = 0;          // compile frames handled
  std::uint64_t forwarded = 0;         // relayed to their owner shard
  std::uint64_t forward_failures = 0;  // relays degraded to a local solve
  std::uint64_t spill_requests = 0;    // kSpillGet frames received
  std::uint64_t spill_served = 0;      // answered with envelope bytes
  std::uint64_t spill_missed = 0;      // answered kSpillMiss
  std::uint64_t protocol_errors = 0;   // malformed frames from clients
  std::uint64_t flushes = 0;           // kFlush frames handled
};

class FleetServer {
 public:
  /// Binds, installs the ring/hook when members are given, and starts
  /// accepting.  Throws NetError when the address cannot be bound.
  explicit FleetServer(serve::CompileService& service,
                       const FleetServerOptions& options = {});
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  [[nodiscard]] int Port() const { return listener_.Port(); }

  /// "host:port" as bound (self_address when set, else host + real port).
  [[nodiscard]] std::string Address() const;

  /// Installs (or replaces) the fleet membership after start — the ring is
  /// rebuilt and swapped atomically under traffic.
  void SetMembers(std::vector<std::string> members, std::string self_address);

  [[nodiscard]] FleetServerMetrics Metrics() const;

  /// Idempotent orderly shutdown; see the file comment.
  void Stop();

 private:
  /// One persistent outbound connection per peer (forwarding and spill
  /// fetch share it); reset on transport failure, reconnected on next use.
  struct PeerLink {
    std::mutex mutex;
    std::unique_ptr<FleetClient> client;  // null until first use / after
                                          // a failure
  };

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Socket>& conn);

  /// Dispatches one frame; sends exactly one reply frame (or throws
  /// NetError when the connection died).
  void HandleFrame(Socket& conn, FrameType type, const std::string& payload);

  void HandleCompile(Socket& conn, const std::string& payload);
  void HandleSpillGet(Socket& conn, const std::string& payload);

  [[nodiscard]] std::shared_ptr<const ConsistentHashRing> RingSnapshot() const;
  [[nodiscard]] PeerLink& LinkFor(const std::string& address);

  /// One RPC on a peer's persistent link; transport failures reset the
  /// link and rethrow.
  [[nodiscard]] std::pair<FrameType, std::string> ForwardCompile(
      const std::string& owner, std::string_view request_payload);

  /// The CompileService peer-fetch hook body: ask each peer (owner first)
  /// for the envelope; "" when every peer missed or failed.
  [[nodiscard]] std::string PeerFetch(const graph::CanonicalHash& key);

  serve::CompileService& service_;
  FleetServerOptions options_;
  ListenSocket listener_;

  mutable std::mutex ring_mutex_;
  std::shared_ptr<const ConsistentHashRing> ring_;  // null = standalone
  std::string self_;

  std::unique_ptr<core::ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};

  mutable std::mutex links_mutex_;
  std::map<std::string, std::unique_ptr<PeerLink>> links_;

  /// Open connections, so Stop can shut them down and unblock handlers.
  std::mutex conns_mutex_;
  std::list<std::weak_ptr<Socket>> conns_;

  /// Counters live in the fronted service's registry (one exposition page
  /// per shard covers service + store + fleet tiers); the references keep
  /// the std::atomic increment surface, so counting sites are unchanged.
  obs::Counter& accepted_;
  obs::Counter& requests_;
  obs::Counter& forwarded_;
  obs::Counter& forward_failures_;
  obs::Counter& spill_requests_;
  obs::Counter& spill_served_;
  obs::Counter& spill_missed_;
  obs::Counter& protocol_errors_;
  obs::Counter& flushes_;
};

}  // namespace respect::net
