// FleetClient — one blocking connection to a net::FleetServer shard.
//
// Each method is a complete request/response exchange on the same socket
// (the protocol is strictly client-speaks-first, one frame each way), so a
// client is cheap state: reconnecting after a NetError is just constructing
// a new one.  Not thread-safe — one client per thread, or external
// locking (net::FleetServer keeps one mutex-guarded client per peer link).
//
// Error mapping: transport failures throw NetError, malformed frames throw
// WireError, and a peer's kError frames rethrow as the typed exception the
// remote service threw — std::invalid_argument, serve::DeadlineExceeded,
// serve::Overloaded, or RemoteError for everything else.  "Valid result or
// typed error" survives the hop.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "graph/canonical_hash.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/request.h"

namespace respect::net {

struct FleetClientOptions {
  int connect_timeout_ms = 2000;

  /// Bound on every blocking send/recv; covers the peer's whole handling
  /// of one request (including a cold solve), so keep it generous relative
  /// to solve budgets.  <= 0 blocks indefinitely.
  int io_timeout_ms = 10000;
};

class FleetClient {
 public:
  /// Connects immediately ("host:port", numeric host).  Throws NetError.
  explicit FleetClient(const std::string& address,
                       const FleetClientOptions& options = {});

  [[nodiscard]] const std::string& Address() const { return address_; }

  /// Remote compile: encodes the request, round-trips, decodes the
  /// response or rethrows the typed remote error.
  [[nodiscard]] serve::CompileResponse Compile(
      const serve::CompileRequest& request);

  /// Relay form: sends pre-encoded compile-request payload bytes and
  /// returns the raw reply frame (kCompileResponse or kError) without
  /// decoding — the forward-to-owner hop copies frames, not objects.
  [[nodiscard]] std::pair<FrameType, std::string> CompileRaw(
      std::string_view request_payload);

  /// Fetch-by-hex of the peer's spill envelope for `key`: bytes on a hit,
  /// nullopt on a typed miss (absent, corrupt, or expired on the peer).
  [[nodiscard]] std::optional<std::string> FetchSpill(
      const graph::CanonicalHash& key);

  [[nodiscard]] FleetStats Stats();

  /// Drains the peer's trace ring: its shard id plus a chrometrace event
  /// fragment ready to splice into a merged fleet trace.  Draining is
  /// destructive on the peer — each event is reported exactly once.
  [[nodiscard]] TraceDump TraceDumpFetch();

  /// Blocks until the peer's background spill writes have landed.
  void Flush();

  void Ping();

 private:
  [[nodiscard]] std::pair<FrameType, std::string> Roundtrip(
      FrameType type, std::string_view payload);

  /// Throws the decoded typed error for a kError frame; otherwise asserts
  /// the frame type is `expected` (WireError when not).
  static void ExpectType(const std::pair<FrameType, std::string>& frame,
                         FrameType expected);

  std::string address_;
  Socket socket_;
};

}  // namespace respect::net
