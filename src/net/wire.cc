#include "net/wire.h"

#include <chrono>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "core/respect.h"
#include "deploy/pod_io.h"
#include "engines/registry.h"
#include "graph/serialize.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "serve/store/spill_codec.h"

namespace respect::net {
namespace {

using deploy::ReadPod;
using deploy::WritePod;

void WriteString(std::ostream& os, std::string_view text) {
  WritePod(os, static_cast<std::uint64_t>(text.size()));
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string ReadString(std::istream& is, std::uint64_t max_bytes,
                       const char* what) {
  std::uint64_t size = 0;
  ReadPod(is, size);
  if (!is || size > max_bytes) {
    throw WireError(std::string("wire: implausible ") + what + " length");
  }
  std::string text(static_cast<std::size_t>(size), '\0');
  is.read(text.data(), static_cast<std::streamsize>(text.size()));
  if (!is) throw WireError(std::string("wire: truncated ") + what);
  return text;
}

std::uint32_t ReadPayloadVersion(std::istream& is, const char* what) {
  std::uint32_t version = 0;
  ReadPod(is, version);
  if (!is || version < 1) {
    throw WireError(std::string("wire: bad ") + what + " payload version");
  }
  return version;
}

/// Engine names arriving off the wire become process-lifetime
/// string_views: known names borrow the registry's canonical storage;
/// unknown ones (a peer running a newer build) are interned here so a
/// CompileResponse never carries a dangling view.
std::string_view InternEngineName(std::string name) {
  if (name.empty()) return {};
  try {
    return engines::EngineRegistry::Global()
        .Resolve(engines::EngineRef(name))
        .name;
  } catch (const std::exception&) {
    static std::mutex mutex;
    static std::set<std::string>* pool = new std::set<std::string>();
    const std::lock_guard<std::mutex> lock(mutex);
    return *pool->insert(std::move(name)).first;
  }
}

/// Decoders promise WireError (or a bad_alloc-class failure) and nothing
/// else; this folds the inner parsers' std::runtime_error and friends into
/// that contract.
template <typename Fn>
auto WrapDecode(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& e) {
    throw WireError(std::string("wire: malformed ") + what + ": " + e.what());
  }
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kCompileRequest: return "compile-request";
    case FrameType::kCompileResponse: return "compile-response";
    case FrameType::kError: return "error";
    case FrameType::kSpillGet: return "spill-get";
    case FrameType::kSpillData: return "spill-data";
    case FrameType::kSpillMiss: return "spill-miss";
    case FrameType::kStatsGet: return "stats-get";
    case FrameType::kStatsData: return "stats-data";
    case FrameType::kFlush: return "flush";
    case FrameType::kFlushOk: return "flush-ok";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kTraceDump: return "trace-dump";
    case FrameType::kTraceData: return "trace-data";
  }
  return "unknown";
}

std::string EncodeFrameHeader(FrameType type, std::string_view payload) {
  const graph::CanonicalHash checksum =
      serve::store::SpillChecksum(payload);  // same digest as the spill tier
  std::ostringstream os(std::ios::binary);
  WritePod(os, kWireMagic);
  WritePod(os, static_cast<std::uint32_t>(type));
  WritePod(os, static_cast<std::uint64_t>(payload.size()));
  WritePod(os, checksum.hi);
  WritePod(os, checksum.lo);
  return std::move(os).str();
}

FrameHeader DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw WireError("wire: truncated frame header");
  }
  std::istringstream is(std::string(bytes.substr(0, kFrameHeaderBytes)),
                        std::ios::binary);
  std::uint32_t magic = 0;
  std::uint32_t raw_type = 0;
  FrameHeader header;
  ReadPod(is, magic);
  ReadPod(is, raw_type);
  ReadPod(is, header.payload_size);
  ReadPod(is, header.checksum.hi);
  ReadPod(is, header.checksum.lo);
  if (!is || magic != kWireMagic) throw WireError("wire: bad frame magic");
  if (raw_type < static_cast<std::uint32_t>(FrameType::kCompileRequest) ||
      raw_type > static_cast<std::uint32_t>(FrameType::kTraceData)) {
    throw WireError("wire: unknown frame type " + std::to_string(raw_type));
  }
  header.type = static_cast<FrameType>(raw_type);
  if (header.payload_size > kMaxFramePayloadBytes) {
    throw WireError("wire: implausible frame payload size");
  }
  return header;
}

void VerifyFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_size) {
    throw WireError("wire: frame payload size mismatch");
  }
  if (serve::store::SpillChecksum(payload) != header.checksum) {
    throw WireError("wire: frame checksum mismatch");
  }
}

void SendFrame(Socket& socket, FrameType type, std::string_view payload) {
  const std::string_view frame_name = FrameTypeName(type);
  OBS_SPAN_DETAIL("net.send_frame", frame_name.data(),
                  static_cast<std::uint32_t>(frame_name.size()));
  std::string frame = EncodeFrameHeader(type, payload);
  frame.append(payload);
  socket.SendAll(frame);
}

std::pair<FrameType, std::string> RecvFrame(Socket& socket) {
  char header_bytes[kFrameHeaderBytes];
  socket.RecvExact(header_bytes, sizeof(header_bytes));
  const FrameHeader header =
      DecodeFrameHeader(std::string_view(header_bytes, sizeof(header_bytes)));
  // The span opens only once the header has landed: a server connection
  // sits in the RecvExact above for its whole idle life, and an idle wait
  // is not frame-decode work.
  const std::string_view frame_name = FrameTypeName(header.type);
  OBS_SPAN_DETAIL("net.recv_frame", frame_name.data(),
                  static_cast<std::uint32_t>(frame_name.size()));
  std::string payload(static_cast<std::size_t>(header.payload_size), '\0');
  if (!payload.empty()) socket.RecvExact(payload.data(), payload.size());
  VerifyFramePayload(header, payload);
  return {header.type, std::move(payload)};
}

std::string EncodeCompileRequest(const serve::CompileRequest& request,
                                 bool no_forward) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, kWireVersion);
  {
    std::ostringstream dag_text;
    graph::WriteDag(request.dag, dag_text);
    WriteString(os, std::move(dag_text).str());
  }
  WritePod(os, static_cast<std::int32_t>(request.num_stages));
  // An unset EngineRef travels as the empty string and decodes back to an
  // unset ref, so the service's invalid_argument contract fires on the
  // serving side, same as a local call.
  WriteString(os, request.engine.IsEmpty() ? std::string()
                                           : request.engine.Spelling());
  WritePod(os, static_cast<std::uint8_t>(request.priority));
  const bool has_deadline = request.deadline.has_value();
  WritePod(os, static_cast<std::uint8_t>(has_deadline));
  std::int64_t remaining_ms = 0;
  if (has_deadline) {
    // Relative on the wire: steady_clock points are process-local.  An
    // already-expired deadline stays expired (negative remaining).
    remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       *request.deadline - std::chrono::steady_clock::now())
                       .count();
  }
  WritePod(os, remaining_ms);
  WritePod(os, static_cast<std::uint8_t>(request.cache_policy));
  WriteString(os, request.profile);
  WriteString(os, request.tenant);
  WritePod(os, request.solve_budget_seconds);
  WritePod(os, static_cast<std::uint8_t>(no_forward));
  // Appended after the v1 fields (old readers skip it as trailing bytes):
  // the observability trace id, so a forwarded request's spans on the owner
  // shard join the client-minted trace.
  WritePod(os, request.trace_id);
  return std::move(os).str();
}

WireCompileRequest DecodeCompileRequest(std::string_view payload) {
  return WrapDecode("compile request", [&] {
    std::istringstream is(std::string(payload), std::ios::binary);
    ReadPayloadVersion(is, "compile request");
    WireCompileRequest decoded;
    serve::CompileRequest& request = decoded.request;
    {
      const std::string dag_text = ReadString(is, kMaxWireDagBytes, "dag");
      std::istringstream dag_stream(dag_text);
      request.dag = graph::ReadDag(dag_stream);  // throws on malformed text
    }
    std::int32_t num_stages = 0;
    ReadPod(is, num_stages);
    request.num_stages = num_stages;
    {
      const std::string engine =
          ReadString(is, kMaxWireStringBytes, "engine name");
      if (!engine.empty()) request.engine = engines::EngineRef(engine);
    }
    std::uint8_t priority = 0;
    ReadPod(is, priority);
    if (priority >= serve::kNumPriorityLanes) {
      throw WireError("wire: out-of-range priority");
    }
    request.priority = static_cast<serve::Priority>(priority);
    std::uint8_t has_deadline = 0;
    ReadPod(is, has_deadline);
    std::int64_t remaining_ms = 0;
    ReadPod(is, remaining_ms);
    if (has_deadline != 0) {
      request.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(remaining_ms);
    }
    std::uint8_t cache_policy = 0;
    ReadPod(is, cache_policy);
    if (cache_policy > static_cast<std::uint8_t>(serve::CachePolicy::kRefresh)) {
      throw WireError("wire: out-of-range cache policy");
    }
    request.cache_policy = static_cast<serve::CachePolicy>(cache_policy);
    request.profile = ReadString(is, kMaxWireStringBytes, "profile");
    request.tenant = ReadString(is, kMaxWireStringBytes, "tenant");
    ReadPod(is, request.solve_budget_seconds);
    std::uint8_t no_forward = 0;
    ReadPod(is, no_forward);
    if (!is) throw WireError("wire: truncated compile request");
    decoded.no_forward = no_forward != 0;
    // Post-v1 appended field: absent from an old writer's frames, in which
    // case the read fails cleanly and the id stays 0 (no trace).
    std::uint64_t trace_id = 0;
    ReadPod(is, trace_id);
    if (is) request.trace_id = trace_id;
    // Trailing bytes are a newer writer's appended fields: ignored by
    // design (the checksum already vouched for them).
    return decoded;
  });
}

std::string EncodeCompileResponse(const serve::CompileResponse& response) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, kWireVersion);
  WritePod(os, static_cast<std::uint8_t>(response.outcome));
  WritePod(os, response.queue_wait_seconds);
  WritePod(os, response.solve_seconds);
  WriteString(os, response.engine_name);
  WriteString(os, response.key_hex);
  WritePod(os, static_cast<std::uint8_t>(response.degraded));
  WriteString(os, response.requested_engine);
  const bool has_result = response.result != nullptr;
  WritePod(os, static_cast<std::uint8_t>(has_result));
  if (has_result) {
    serve::store::WriteResultBody(os, *response.result);
  }
  return std::move(os).str();
}

serve::CompileResponse DecodeCompileResponse(std::string_view payload) {
  return WrapDecode("compile response", [&] {
    std::istringstream is(std::string(payload), std::ios::binary);
    ReadPayloadVersion(is, "compile response");
    serve::CompileResponse response;
    std::uint8_t outcome = 0;
    ReadPod(is, outcome);
    if (outcome > static_cast<std::uint8_t>(serve::CacheOutcome::kPeerHit)) {
      throw WireError("wire: out-of-range cache outcome");
    }
    response.outcome = static_cast<serve::CacheOutcome>(outcome);
    ReadPod(is, response.queue_wait_seconds);
    ReadPod(is, response.solve_seconds);
    response.engine_name =
        InternEngineName(ReadString(is, kMaxWireStringBytes, "engine name"));
    response.key_hex = ReadString(is, kMaxWireStringBytes, "key hex");
    std::uint8_t degraded = 0;
    ReadPod(is, degraded);
    response.degraded = degraded != 0;
    response.requested_engine = InternEngineName(
        ReadString(is, kMaxWireStringBytes, "requested engine"));
    std::uint8_t has_result = 0;
    ReadPod(is, has_result);
    if (!is) throw WireError("wire: truncated compile response");
    if (has_result != 0) {
      response.result = serve::store::ReadResultBody(is);
    }
    return response;
  });
}

std::string EncodeErrorPayload(WireErrorKind kind, std::string_view message) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, kWireVersion);
  WritePod(os, static_cast<std::uint8_t>(kind));
  WriteString(os, message);
  return std::move(os).str();
}

std::pair<WireErrorKind, std::string> DecodeErrorPayload(
    std::string_view payload) {
  return WrapDecode("error payload", [&] {
    std::istringstream is(std::string(payload), std::ios::binary);
    ReadPayloadVersion(is, "error");
    std::uint8_t kind = 0;
    ReadPod(is, kind);
    if (!is || kind > static_cast<std::uint8_t>(WireErrorKind::kInternal)) {
      throw WireError("wire: out-of-range error kind");
    }
    std::string message = ReadString(is, kMaxWireStringBytes, "error message");
    return std::pair<WireErrorKind, std::string>(
        static_cast<WireErrorKind>(kind), std::move(message));
  });
}

void ThrowDecodedError(WireErrorKind kind, const std::string& message) {
  switch (kind) {
    case WireErrorKind::kInvalidArgument:
      throw std::invalid_argument(message);
    case WireErrorKind::kDeadlineExceeded:
      throw serve::DeadlineExceeded(message);
    case WireErrorKind::kOverloaded:
      throw serve::Overloaded(message);
    case WireErrorKind::kInternal:
      break;
  }
  throw RemoteError(message);
}

std::string EncodeFleetStats(const FleetStats& stats) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, kWireVersion);
  WritePod(os, stats.requests);
  WritePod(os, stats.engine_solves);
  WritePod(os, stats.cache_hits);
  WritePod(os, stats.disk_hits);
  WritePod(os, stats.peer_hits);
  WritePod(os, stats.peer_fetches);
  WritePod(os, stats.forwarded);
  WritePod(os, stats.forward_failures);
  WritePod(os, stats.spill_served);
  WritePod(os, stats.spill_missed);
  return std::move(os).str();
}

FleetStats DecodeFleetStats(std::string_view payload) {
  return WrapDecode("fleet stats", [&] {
    std::istringstream is(std::string(payload), std::ios::binary);
    ReadPayloadVersion(is, "fleet stats");
    FleetStats stats;
    ReadPod(is, stats.requests);
    ReadPod(is, stats.engine_solves);
    ReadPod(is, stats.cache_hits);
    ReadPod(is, stats.disk_hits);
    ReadPod(is, stats.peer_hits);
    ReadPod(is, stats.peer_fetches);
    ReadPod(is, stats.forwarded);
    ReadPod(is, stats.forward_failures);
    ReadPod(is, stats.spill_served);
    ReadPod(is, stats.spill_missed);
    if (!is) throw WireError("wire: truncated fleet stats");
    return stats;
  });
}

std::string EncodeTraceDump(const TraceDump& dump) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, kWireVersion);
  WritePod(os, dump.shard_id);
  WriteString(os, dump.events_json);
  return std::move(os).str();
}

TraceDump DecodeTraceDump(std::string_view payload) {
  return WrapDecode("trace dump", [&] {
    std::istringstream is(std::string(payload), std::ios::binary);
    ReadPayloadVersion(is, "trace dump");
    TraceDump dump;
    ReadPod(is, dump.shard_id);
    if (!is) throw WireError("wire: truncated trace dump");
    // The fragment is bounded by the frame payload cap, not the generic
    // string cap: a busy shard's ring drains to well over a megabyte.
    dump.events_json =
        ReadString(is, kMaxFramePayloadBytes, "trace events json");
    return dump;
  });
}

}  // namespace respect::net
