#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "core/failpoint.h"

namespace respect::net {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in MakeAddress(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("invalid IPv4 address: \"" + host +
                   "\" (numeric addresses only; no DNS)");
  }
  return addr;
}

}  // namespace

std::pair<std::string, int> SplitHostPort(std::string_view address) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    throw NetError("malformed address \"" + std::string(address) +
                   "\" (want host:port)");
  }
  const std::string_view port_text = address.substr(colon + 1);
  int port = 0;
  const auto [end, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || end != port_text.data() + port_text.size() ||
      port < 1 || port > 65535) {
    throw NetError("malformed port in \"" + std::string(address) + "\"");
  }
  return {std::string(address.substr(0, colon)), port};
}

Socket::~Socket() { Close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::Connect(const std::string& host, int port, int timeout_ms) {
  const sockaddr_in addr = MakeAddress(host, port);
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.Valid()) ThrowErrno("socket");
  const int fd = socket.fd_;
  // Non-blocking connect + poll bounds the handshake; the socket goes back
  // to blocking before any data moves.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) ThrowErrno("connect to " + host);
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) {
      throw NetError("connect to " + host + ":" + std::to_string(port) +
                     " timed out");
    }
    if (rc < 0) ThrowErrno("poll during connect");
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      throw NetError("connect to " + host + ":" + std::to_string(port) +
                     " failed: " + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  SetNoDelay(fd);
  return socket;
}

void Socket::SetIoTimeout(int timeout_ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void Socket::SendAll(std::string_view bytes) {
  // Chaos seam: an injected write error surfaces as the same NetError a
  // peer dying mid-frame would produce.
  try {
    RESPECT_FAILPOINT("net.write");
  } catch (const std::exception& e) {
    throw NetError(std::string("send failed (injected): ") + e.what());
  }
  if (fd_ < 0) throw NetError("send on closed socket");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing
    // SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("send timed out");
      }
      ThrowErrno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::RecvExact(void* buffer, std::size_t size) {
  // Chaos seam: an injected read error surfaces as the same NetError a
  // reset or short read would produce.
  try {
    RESPECT_FAILPOINT("net.read");
  } catch (const std::exception& e) {
    throw NetError(std::string("recv failed (injected): ") + e.what());
  }
  if (fd_ < 0) throw NetError("recv on closed socket");
  char* out = static_cast<char*>(buffer);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd_, out + received, size - received, 0);
    if (n == 0) throw NetError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("recv timed out");
      }
      ThrowErrno("recv");
    }
    received += static_cast<std::size_t>(n);
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(const std::string& host, int port) {
  const sockaddr_in addr = MakeAddress(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    ThrowErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket ListenSocket::AcceptOnce(int poll_ms) {
  // Chaos seam: an injected accept error exercises the server's
  // keep-listening-anyway path, as the NetError a failing accept yields.
  try {
    RESPECT_FAILPOINT("net.accept");
  } catch (const std::exception& e) {
    throw NetError(std::string("accept failed (injected): ") + e.what());
  }
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, poll_ms);
  if (rc == 0) return Socket();  // nothing arrived; caller re-checks stop
  if (rc < 0) {
    if (errno == EINTR) return Socket();
    ThrowErrno("poll on listener");
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket();
    ThrowErrno("accept");
  }
  SetNoDelay(conn);
  return Socket(conn);
}

}  // namespace respect::net
