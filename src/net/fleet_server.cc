#include "net/fleet_server.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/failpoint.h"
#include "core/thread_pool.h"
#include "obs/chrometrace.h"
#include "obs/trace.h"

namespace respect::net {

FleetServer::FleetServer(serve::CompileService& service,
                         const FleetServerOptions& options)
    : service_(service),
      options_(options),
      listener_(options.host, options.port),
      accepted_(service.MetricsRegistry().GetCounter(
          "respect_fleet_accepted_total", "Connections accepted")),
      requests_(service.MetricsRegistry().GetCounter(
          "respect_fleet_requests_total", "Compile frames handled")),
      forwarded_(service.MetricsRegistry().GetCounter(
          "respect_fleet_forwarded_total",
          "Compile requests relayed to their owner shard")),
      forward_failures_(service.MetricsRegistry().GetCounter(
          "respect_fleet_forward_failures_total",
          "Relays degraded to a local solve")),
      spill_requests_(service.MetricsRegistry().GetCounter(
          "respect_fleet_spill_requests_total", "kSpillGet frames received")),
      spill_served_(service.MetricsRegistry().GetCounter(
          "respect_fleet_spill_served_total",
          "Spill fetches answered with envelope bytes")),
      spill_missed_(service.MetricsRegistry().GetCounter(
          "respect_fleet_spill_missed_total",
          "Spill fetches answered with a miss")),
      protocol_errors_(service.MetricsRegistry().GetCounter(
          "respect_fleet_protocol_errors_total",
          "Malformed frames from clients")),
      flushes_(service.MetricsRegistry().GetCounter(
          "respect_fleet_flushes_total", "kFlush frames handled")) {
  if (!options_.members.empty()) {
    SetMembers(options_.members, options_.self_address);
  }
  if (options_.peer_warm) {
    service_.SetPeerFetch(
        [this](const graph::CanonicalHash& key) { return PeerFetch(key); });
  }
  pool_ = std::make_unique<core::ThreadPool>(std::max(1, options_.num_threads));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

FleetServer::~FleetServer() { Stop(); }

std::string FleetServer::Address() const {
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    if (!self_.empty()) return self_;
  }
  return options_.host + ":" + std::to_string(listener_.Port());
}

void FleetServer::SetMembers(std::vector<std::string> members,
                             std::string self_address) {
  auto ring = std::make_shared<const ConsistentHashRing>(
      std::move(members), options_.virtual_nodes);
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  ring_ = std::move(ring);
  self_ = std::move(self_address);
}

std::shared_ptr<const ConsistentHashRing> FleetServer::RingSnapshot() const {
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  return ring_;
}

void FleetServer::Stop() {
  if (stop_.exchange(true)) return;
  // Uninstall the hook first: after Stop returns, no service thread may
  // call back into this (soon-to-be-destroyed) server.
  if (options_.peer_warm) service_.SetPeerFetch(nullptr);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unstick handlers blocked in RecvFrame; they observe the shutdown as
    // a NetError and return.
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::weak_ptr<Socket>& weak : conns_) {
      if (const std::shared_ptr<Socket> conn = weak.lock()) {
        conn->ShutdownBoth();
      }
    }
  }
  pool_.reset();  // joins every connection handler
}

void FleetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket accepted;
    try {
      accepted = listener_.AcceptOnce(/*poll_ms=*/100);
    } catch (const std::exception&) {
      // Injected (net.accept) or real accept failure: stay listening —
      // existing connections are unaffected and the condition may clear.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (!accepted.Valid()) continue;  // poll tick; re-check stop
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Socket>(std::move(accepted));
    {
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.remove_if(
          [](const std::weak_ptr<Socket>& weak) { return weak.expired(); });
      conns_.push_back(conn);
    }
    pool_->Submit([this, conn] { ServeConnection(conn); });
  }
}

namespace {

/// Best-effort error reply; false when the connection is already dead.
bool TrySendError(Socket& conn, WireErrorKind kind, const char* message) {
  try {
    SendFrame(conn, FrameType::kError, EncodeErrorPayload(kind, message));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

void FleetServer::ServeConnection(const std::shared_ptr<Socket>& conn) {
  if (options_.idle_timeout_ms > 0) conn->SetIoTimeout(options_.idle_timeout_ms);
  while (!stop_.load(std::memory_order_relaxed)) {
    FrameType type = FrameType::kPing;
    std::string payload;
    try {
      auto frame = RecvFrame(*conn);
      type = frame.first;
      payload = std::move(frame.second);
    } catch (const WireError&) {
      // Garbage framing: the stream position is unrecoverable — reply if
      // possible and drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      TrySendError(*conn, WireErrorKind::kInvalidArgument,
                   "malformed frame; closing connection");
      return;
    } catch (const NetError&) {
      return;  // clean close, reset, idle timeout, or Stop's shutdown
    }
    try {
      HandleFrame(*conn, type, payload);
    } catch (const WireError& e) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      TrySendError(*conn, WireErrorKind::kInvalidArgument, e.what());
      return;
    } catch (const NetError&) {
      return;
    } catch (const std::exception& e) {
      // Unexpected service failure: typed kInternal, connection stays up.
      if (!TrySendError(*conn, WireErrorKind::kInternal, e.what())) return;
    }
  }
}

void FleetServer::HandleFrame(Socket& conn, FrameType type,
                              const std::string& payload) {
  switch (type) {
    case FrameType::kCompileRequest:
      HandleCompile(conn, payload);
      return;
    case FrameType::kSpillGet:
      HandleSpillGet(conn, payload);
      return;
    case FrameType::kStatsGet: {
      const serve::ServiceMetrics m = service_.Metrics();
      FleetStats stats;
      stats.requests = requests_.load(std::memory_order_relaxed);
      // Engine solves = every path that ran a local solve: cold misses,
      // bypasses, refreshes.
      stats.engine_solves = m.misses + m.bypasses + m.refreshes;
      stats.cache_hits = m.hits;
      stats.disk_hits = m.disk_hits;
      stats.peer_hits = m.peer_hits;
      stats.peer_fetches = m.peer_fetches;
      stats.forwarded = forwarded_.load(std::memory_order_relaxed);
      stats.forward_failures =
          forward_failures_.load(std::memory_order_relaxed);
      stats.spill_served = spill_served_.load(std::memory_order_relaxed);
      stats.spill_missed = spill_missed_.load(std::memory_order_relaxed);
      SendFrame(conn, FrameType::kStatsData, EncodeFleetStats(stats));
      return;
    }
    case FrameType::kFlush:
      flushes_.fetch_add(1, std::memory_order_relaxed);
      service_.FlushStore();
      SendFrame(conn, FrameType::kFlushOk, {});
      return;
    case FrameType::kPing:
      SendFrame(conn, FrameType::kPong, {});
      return;
    case FrameType::kTraceDump: {
      // Drain this shard's ring into a bracket-less fragment; the collector
      // splices every shard's fragment into one merged chrometrace, with
      // this shard's events on process row `shard_id`.
      TraceDump dump;
      dump.shard_id = options_.shard_id;
      obs::AppendChromeTraceEvents(dump.events_json,
                                   obs::Tracer::Global().Drain(),
                                   options_.shard_id);
      SendFrame(conn, FrameType::kTraceData, EncodeTraceDump(dump));
      return;
    }
    default:
      throw WireError(std::string("wire: unexpected client frame ") +
                      std::string(FrameTypeName(type)));
  }
}

void FleetServer::HandleCompile(Socket& conn, const std::string& payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Malformed payloads throw WireError through to the caller (protocol
  // error); everything after this line is a well-formed request whose
  // failures are typed kError replies.
  WireCompileRequest decoded = DecodeCompileRequest(payload);
  serve::CompileRequest& request = decoded.request;
  // Adopt the client-minted trace id for everything this frame triggers
  // (routing, the local solve, the reply) so a forwarded request's spans on
  // every shard share one trace.
  const obs::ScopedTraceId trace_scope(request.trace_id);
  OBS_SPAN("net.handle_compile");
  try {
    if (request.cache_policy == serve::CachePolicy::kUse &&
        !decoded.no_forward && options_.forward_to_owner) {
      const std::shared_ptr<const ConsistentHashRing> ring = RingSnapshot();
      if (ring != nullptr && !ring->Empty()) {
        const graph::CanonicalHash key = service_.KeyFor(request);
        const std::string owner = ring->OwnerOf(key.lo);
        const std::string self = [this] {
          const std::lock_guard<std::mutex> lock(ring_mutex_);
          return self_;
        }();
        if (owner != self) {
          // Not ours: answer in place only when a local tier is already
          // warm; otherwise relay to the home shard so the fleet solves
          // each unique graph once.
          if (const std::optional<serve::CompileResponse> local =
                  service_.TryServeLocal(request)) {
            SendFrame(conn, FrameType::kCompileResponse,
                      EncodeCompileResponse(*local));
            return;
          }
          std::optional<std::pair<FrameType, std::string>> reply;
          try {
            reply = ForwardCompile(
                owner, EncodeCompileRequest(request, /*no_forward=*/true));
          } catch (const std::exception&) {
            // Dead/misbehaving owner: degrade to a local solve below.
            // Valid-or-typed holds; ownership is an optimization.
            forward_failures_.fetch_add(1, std::memory_order_relaxed);
          }
          if (reply) {
            forwarded_.fetch_add(1, std::memory_order_relaxed);
            SendFrame(conn, reply->first, reply->second);  // raw relay
            return;
          }
        }
      }
    }
    const serve::CompileResponse response = service_.Compile(request);
    SendFrame(conn, FrameType::kCompileResponse,
              EncodeCompileResponse(response));
  } catch (const serve::DeadlineExceeded& e) {
    SendFrame(conn, FrameType::kError,
              EncodeErrorPayload(WireErrorKind::kDeadlineExceeded, e.what()));
  } catch (const serve::Overloaded& e) {
    SendFrame(conn, FrameType::kError,
              EncodeErrorPayload(WireErrorKind::kOverloaded, e.what()));
  } catch (const std::invalid_argument& e) {
    SendFrame(conn, FrameType::kError,
              EncodeErrorPayload(WireErrorKind::kInvalidArgument, e.what()));
  } catch (const NetError&) {
    throw;  // this connection died mid-reply; nothing left to send
  } catch (const std::exception& e) {
    SendFrame(conn, FrameType::kError,
              EncodeErrorPayload(WireErrorKind::kInternal, e.what()));
  }
}

void FleetServer::HandleSpillGet(Socket& conn, const std::string& payload) {
  spill_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::optional<graph::CanonicalHash> key =
      graph::CanonicalHash::FromHex(payload);
  if (!key) {
    throw WireError("wire: spill-get payload is not a key hex");
  }
  const std::optional<std::string> bytes = service_.ExportSpill(*key);
  if (bytes) {
    spill_served_.fetch_add(1, std::memory_order_relaxed);
    SendFrame(conn, FrameType::kSpillData, *bytes);
  } else {
    // Absent, corrupt (quarantined server-side), or expired: one typed
    // miss, never a guess.
    spill_missed_.fetch_add(1, std::memory_order_relaxed);
    SendFrame(conn, FrameType::kSpillMiss, {});
  }
}

FleetServer::PeerLink& FleetServer::LinkFor(const std::string& address) {
  const std::lock_guard<std::mutex> lock(links_mutex_);
  std::unique_ptr<PeerLink>& link = links_[address];
  if (link == nullptr) link = std::make_unique<PeerLink>();
  return *link;
}

std::pair<FrameType, std::string> FleetServer::ForwardCompile(
    const std::string& owner, std::string_view request_payload) {
  OBS_SPAN("net.forward");
  PeerLink& link = LinkFor(owner);
  const std::lock_guard<std::mutex> lock(link.mutex);
  if (link.client == nullptr) {
    FleetClientOptions client_options;
    client_options.io_timeout_ms = options_.io_timeout_ms;
    link.client = std::make_unique<FleetClient>(owner, client_options);
  }
  try {
    return link.client->CompileRaw(request_payload);
  } catch (const std::exception&) {
    link.client.reset();  // reconnect on next use
    throw;
  }
}

std::string FleetServer::PeerFetch(const graph::CanonicalHash& key) {
  OBS_SPAN("net.spill_fetch");
  // Chaos seam: an injected fetch error degrades this miss to a local
  // solve, exactly like an unreachable fleet.
  RESPECT_FAILPOINT("net.peer_fetch");
  const std::shared_ptr<const ConsistentHashRing> ring = RingSnapshot();
  if (ring == nullptr || ring->Empty()) return {};
  const std::string self = [this] {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    return self_;
  }();
  // Owner first — the home shard is the member most likely to hold the
  // spill — then every other peer.
  std::vector<std::string> order;
  order.reserve(ring->Members().size());
  const std::string& owner = ring->OwnerOf(key.lo);
  if (owner != self) order.push_back(owner);
  for (const std::string& member : ring->Members()) {
    if (member != self && member != owner) order.push_back(member);
  }
  for (const std::string& member : order) {
    if (stop_.load(std::memory_order_relaxed)) break;
    try {
      PeerLink& link = LinkFor(member);
      const std::lock_guard<std::mutex> lock(link.mutex);
      if (link.client == nullptr) {
        FleetClientOptions client_options;
        client_options.io_timeout_ms = options_.io_timeout_ms;
        link.client = std::make_unique<FleetClient>(member, client_options);
      }
      try {
        if (std::optional<std::string> bytes = link.client->FetchSpill(key);
            bytes && !bytes->empty()) {
          return *std::move(bytes);
        }
      } catch (const std::exception&) {
        link.client.reset();
        throw;
      }
    } catch (const std::exception&) {
      // Dead peer: the next member may still have it.
    }
  }
  return {};  // clean fleet-wide miss
}

FleetServerMetrics FleetServer::Metrics() const {
  FleetServerMetrics metrics;
  metrics.accepted = accepted_.load(std::memory_order_relaxed);
  metrics.requests = requests_.load(std::memory_order_relaxed);
  metrics.forwarded = forwarded_.load(std::memory_order_relaxed);
  metrics.forward_failures =
      forward_failures_.load(std::memory_order_relaxed);
  metrics.spill_requests = spill_requests_.load(std::memory_order_relaxed);
  metrics.spill_served = spill_served_.load(std::memory_order_relaxed);
  metrics.spill_missed = spill_missed_.load(std::memory_order_relaxed);
  metrics.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  metrics.flushes = flushes_.load(std::memory_order_relaxed);
  return metrics;
}

}  // namespace respect::net
