// Consistent-hash ring over fleet member addresses — the routing rule that
// gives every content-addressed request key one home shard.
//
// Each member contributes `virtual_nodes` points on a 64-bit ring (the
// graph::CanonicalHasher digest of member + vnode index, taking .lo — the
// same well-mixed half the request key routes on); a key's owner is the
// member holding the first point at or clockwise after key.lo.  Properties
// the fleet relies on:
//
//   * Stable across membership-list order: the ring is built from hashes,
//     so ["a","b","c"] and ["c","a","b"] route identically — every shard
//     computes the same owner from the same member set, no coordinator.
//   * Minimal movement: adding/removing one member remaps only the keys
//     adjacent to its points (~1/N of the space), not the whole key space.
//   * Virtual nodes smooth the load spread (64 points per member keeps the
//     max/mean shard load within a few percent for small fleets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace respect::net {

class ConsistentHashRing {
 public:
  inline static constexpr int kDefaultVirtualNodes = 64;

  /// An empty ring owns nothing (OwnerOf throws).
  ConsistentHashRing() = default;

  /// Builds the ring from member addresses.  Duplicate members collapse;
  /// virtual_nodes is clamped to >= 1.
  explicit ConsistentHashRing(std::vector<std::string> members,
                              int virtual_nodes = kDefaultVirtualNodes);

  [[nodiscard]] bool Empty() const { return ring_.empty(); }
  [[nodiscard]] const std::vector<std::string>& Members() const {
    return members_;
  }

  /// The member owning `point` (first ring point >= point, wrapping).
  /// Throws std::logic_error on an empty ring.
  [[nodiscard]] const std::string& OwnerOf(std::uint64_t point) const;

 private:
  std::vector<std::string> members_;  // deduplicated, construction order
  /// Sorted (ring point, index into members_) pairs; ties broken by member
  /// index so every process agrees even on hash collisions.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace respect::net
