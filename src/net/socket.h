// Blocking POSIX TCP sockets for the compile fleet — a deliberately small
// RAII layer under the wire codec (net/wire.h): connect with a timeout,
// send-all, recv-exact, and a poll-driven accept loop that a server can
// stop cleanly.
//
// Scope: loopback/LAN fleets with numeric addresses ("127.0.0.1:7430").
// There is no DNS, no TLS, and no non-blocking I/O beyond the connect
// handshake; per-socket send/receive timeouts (SetIoTimeout) bound every
// blocking call so a hung peer degrades to a typed NetError instead of a
// wedged worker.
//
// Failure model: every I/O problem — refused connection, reset, short
// read, timeout — throws NetError.  Failpoint sites net.read / net.write /
// net.accept let the chaos suite inject those same failures without a
// misbehaving kernel.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace respect::net {

/// Transport-layer failure (connect/send/recv/accept).  Distinct from
/// WireError (net/wire.h), which means the bytes arrived but are not a
/// valid frame.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Splits "host:port" into its parts.  Throws NetError on a malformed
/// address (missing colon, empty host, non-numeric or out-of-range port).
[[nodiscard]] std::pair<std::string, int> SplitHostPort(
    std::string_view address);

/// A connected (or accepted) stream socket.  Move-only; the destructor
/// closes the descriptor.
class Socket {
 public:
  Socket() = default;  // invalid until assigned
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  /// Connects to a numeric IPv4 host with a bounded handshake.  Throws
  /// NetError on refusal, timeout, or any setup failure.  The returned
  /// socket is blocking with TCP_NODELAY set.
  [[nodiscard]] static Socket Connect(const std::string& host, int port,
                                      int timeout_ms = 5000);

  [[nodiscard]] bool Valid() const { return fd_ >= 0; }

  /// Bounds every subsequent blocking send/recv; 0 restores
  /// block-indefinitely.  A lapsed timeout surfaces as NetError.
  void SetIoTimeout(int timeout_ms);

  /// Writes all of `bytes` or throws NetError.  Failpoint site: net.write.
  void SendAll(std::string_view bytes);

  /// Reads exactly `size` bytes into `buffer` or throws NetError (a clean
  /// peer close mid-message is an error here; framing decides where
  /// messages end).  Failpoint site: net.read.
  void RecvExact(void* buffer, std::size_t size);

  /// Half-closes both directions so a thread blocked in RecvExact on this
  /// socket fails over to NetError — how a server unsticks its connection
  /// handlers at Stop.  Safe on an invalid socket.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A bound, listening socket.  Port 0 binds an ephemeral port; Port()
/// reports the real one.
class ListenSocket {
 public:
  /// Binds and listens on a numeric IPv4 host.  Throws NetError.
  ListenSocket(const std::string& host, int port);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] int Port() const { return port_; }

  /// Waits up to `poll_ms` for one connection.  Returns an invalid Socket
  /// when nothing arrived in time (the caller's accept loop re-checks its
  /// stop flag and calls again); throws NetError on accept failure.
  /// Failpoint site: net.accept.
  [[nodiscard]] Socket AcceptOnce(int poll_ms);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace respect::net
