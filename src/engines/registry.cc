#include "engines/registry.h"

#include <stdexcept>
#include <string>

#include "engines/builtin.h"

namespace respect::engines {

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterBuiltinEngines(*r);
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(EngineRegistration registration) {
  if (registration.name.empty()) {
    throw std::invalid_argument("engine registration needs a name");
  }
  if (!registration.factory) {
    throw std::invalid_argument("engine '" + registration.name +
                                "' registered without a factory");
  }
  for (const EngineRegistration& existing : registrations_) {
    const bool name_clash = existing.name == registration.name ||
                            existing.alias == registration.name;
    const bool alias_clash =
        !registration.alias.empty() &&
        (existing.name == registration.alias ||
         existing.alias == registration.alias);
    if (name_clash || alias_clash) {
      throw std::invalid_argument("engine '" + registration.name +
                                  "' collides with registered engine '" +
                                  existing.name + "'");
    }
    if (registration.method && existing.method == registration.method) {
      throw std::invalid_argument("engine '" + registration.name +
                                  "' reuses the Method enum value of '" +
                                  existing.name + "'");
    }
  }
  registrations_.push_back(std::move(registration));
}

bool EngineRegistry::Contains(std::string_view name_or_alias) const {
  return Find(name_or_alias) != nullptr;
}

const EngineRegistration* EngineRegistry::Find(
    std::string_view name_or_alias) const {
  for (const EngineRegistration& registration : registrations_) {
    // An empty alias is "no alias" — it must not match an empty query.
    if (registration.name == name_or_alias ||
        (!registration.alias.empty() && registration.alias == name_or_alias)) {
      return &registration;
    }
  }
  return nullptr;
}

const EngineRegistration* EngineRegistry::Find(Method method) const {
  for (const EngineRegistration& registration : registrations_) {
    if (registration.method == method) return &registration;
  }
  return nullptr;
}

const EngineRegistration& EngineRegistry::Resolve(const EngineRef& ref) const {
  if (ref.IsEmpty()) {
    throw std::invalid_argument(
        "no engine specified (EngineRef is empty; set a name, alias, or "
        "Method value)");
  }
  const EngineRegistration* registration = nullptr;
  if (const auto* method = std::get_if<Method>(&ref.ref_)) {
    registration = Find(*method);
  } else if (const auto* name = std::get_if<std::string>(&ref.ref_)) {
    registration = Find(std::string_view(*name));
  }
  if (registration == nullptr) {
    throw std::invalid_argument("unknown scheduling engine '" +
                                ref.Spelling() + "'");
  }
  return *registration;
}

namespace {

std::unique_ptr<SchedulerEngine> RunFactory(
    const EngineRegistration& registration, const EngineContext& context) {
  std::unique_ptr<SchedulerEngine> engine = registration.factory(context);
  if (engine == nullptr) {
    throw std::runtime_error("factory of engine '" + registration.name +
                             "' returned null");
  }
  return engine;
}

}  // namespace

std::unique_ptr<SchedulerEngine> EngineRegistry::Create(
    std::string_view name_or_alias, const EngineContext& context) const {
  const EngineRegistration* registration = Find(name_or_alias);
  if (registration == nullptr) {
    throw std::invalid_argument("unknown scheduling engine '" +
                                std::string(name_or_alias) + "'");
  }
  return RunFactory(*registration, context);
}

std::unique_ptr<SchedulerEngine> EngineRegistry::Create(
    Method method, const EngineContext& context) const {
  const EngineRegistration* registration = Find(method);
  if (registration == nullptr) {
    throw std::invalid_argument("Method enum value without registered engine");
  }
  return RunFactory(*registration, context);
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(registrations_.size());
  for (const EngineRegistration& registration : registrations_) {
    names.push_back(registration.name);
  }
  return names;
}

std::string EngineRef::Spelling() const {
  if (const auto* name = std::get_if<std::string>(&ref_)) return *name;
  if (const auto* method = std::get_if<Method>(&ref_)) {
    return std::string(MethodName(*method));
  }
  return "<unset>";
}

}  // namespace respect::engines

namespace respect {

std::string_view MethodName(Method method) {
  const engines::EngineRegistration* registration =
      engines::EngineRegistry::Global().Find(method);
  return registration != nullptr ? std::string_view(registration->name)
                                 : std::string_view("Unknown");
}

std::optional<Method> MethodFromName(std::string_view name) {
  const engines::EngineRegistration* registration =
      engines::EngineRegistry::Global().Find(name);
  if (registration == nullptr) return std::nullopt;
  return registration->method;
}

}  // namespace respect
