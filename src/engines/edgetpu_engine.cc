#include "engines/edgetpu_engine.h"

namespace respect::engines {

EngineResult EdgeTpuCompilerEngine::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    const EngineBudget& budget) const {
  // One-shot profile-and-rebalance pass: entry check only (see the note in
  // heuristic_engines.cc).
  budget.cancel.ThrowIfCancelled("edgetpu compiler");
  heuristics::EdgeTpuCompilerConfig config = config_;
  config.num_stages = constraints.num_stages;
  return TimedSolve(
      [&] { return heuristics::CompileForPipeline(dag, config).schedule; });
}

}  // namespace respect::engines
