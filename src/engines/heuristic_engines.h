// SchedulerEngine adapters for the classic heuristics and the greedy exact
// partitioner: list scheduling, Hu's level algorithm, force-directed
// scheduling, simulated annealing, and the balanced contiguous partition of
// the default topological order.
#pragma once

#include "engines/engine.h"

namespace respect::engines {

class ListSchedulingEngine : public SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override {
    return "ListScheduling";
  }
  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;
};

class HuLevelEngine : public SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override { return "HuLevel"; }
  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;
};

class ForceDirectedEngine : public SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override {
    return "ForceDirected";
  }
  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;
};

class AnnealingEngine : public SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override { return "Annealing"; }
  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;
};

class GreedyBalanceEngine : public SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override {
    return "GreedyBalance";
  }
  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;
};

}  // namespace respect::engines
