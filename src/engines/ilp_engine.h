// SchedulerEngine adapter for the exact ILP route (ilp/scheduling_ilp.h),
// which itself dispatches small instances to the generic Model-level B&B and
// larger ones to the structure-aware exact engine in src/exact.
#pragma once

#include "engines/engine.h"

namespace respect::engines {

class IlpEngine : public SchedulerEngine {
 public:
  [[nodiscard]] std::string_view Name() const override { return "ExactILP"; }

  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;
};

}  // namespace respect::engines
