#include "engines/heuristic_engines.h"

#include "exact/dp_partitioner.h"
#include "heuristics/annealing.h"
#include "heuristics/force_directed.h"
#include "heuristics/hu_scheduler.h"
#include "heuristics/list_scheduler.h"

namespace respect::engines {

// The one-shot heuristics run in microseconds, so a single entry check is
// the right granularity: a pre-cancelled token (already-blown budget) is
// refused without doing work, and a token firing mid-solve gains nothing.

EngineResult ListSchedulingEngine::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    const EngineBudget& budget) const {
  budget.cancel.ThrowIfCancelled("list scheduling");
  return TimedSolve(
      [&] { return heuristics::ListSchedule(dag, constraints.num_stages); });
}

EngineResult HuLevelEngine::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    const EngineBudget& budget) const {
  budget.cancel.ThrowIfCancelled("hu level scheduling");
  return TimedSolve(
      [&] { return heuristics::HuLevelSchedule(dag, constraints.num_stages); });
}

EngineResult ForceDirectedEngine::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    const EngineBudget& budget) const {
  budget.cancel.ThrowIfCancelled("force directed scheduling");
  return TimedSolve([&] {
    return heuristics::ForceDirectedSchedule(dag, constraints.num_stages);
  });
}

EngineResult AnnealingEngine::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    const EngineBudget& budget) const {
  return TimedSolve([&] {
    heuristics::AnnealingConfig config;
    config.num_stages = constraints.num_stages;
    // Non-default profiles flip the annealer's cost to the device-aware
    // service-time bottleneck; the default keeps the paper's byte objective.
    config.profile = constraints.profile;
    config.cancel = budget.cancel;
    return heuristics::AnnealSchedule(dag, config);
  });
}

EngineResult GreedyBalanceEngine::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    const EngineBudget& budget) const {
  budget.cancel.ThrowIfCancelled("greedy balance");
  return TimedSolve([&] {
    return exact::PartitionDefaultOrder(dag, constraints.num_stages).schedule;
  });
}

}  // namespace respect::engines
