#include "engines/builtin.h"

#include <memory>

#include "engines/edgetpu_engine.h"
#include "engines/heuristic_engines.h"
#include "engines/ilp_engine.h"
#include "engines/registry.h"
#include "engines/rl_engine.h"

namespace respect::engines {
namespace {

/// Factory for engines whose constructor takes no context.
template <typename Engine>
std::unique_ptr<SchedulerEngine> Stateless(const EngineContext&) {
  return std::make_unique<Engine>();
}

}  // namespace

void RegisterBuiltinEngines(EngineRegistry& registry) {
  registry.Register(
      {"RESPECT", "respect",
       "RL pointer-network scheduler (the paper's contribution)",
       Method::kRespectRl,
       [](const EngineContext& context) {
         return std::make_unique<RlEngine>(context.rl);
       },
       /*uses_rl=*/true});
  registry.Register({"ExactILP", "exact",
                     "exact ILP / branch-and-bound route (CPLEX role)",
                     Method::kExactIlp, Stateless<IlpEngine>});
  registry.Register(
      {"EdgeTPUCompiler", "compiler",
       "Edge TPU compiler substitute (profile-and-rebalance baseline)",
       Method::kEdgeTpuCompiler, [](const EngineContext& context) {
         return std::make_unique<EdgeTpuCompilerEngine>(context.compiler);
       }});
  registry.Register({"ListScheduling", "list",
                     "memory-balancing list scheduler", Method::kListScheduling,
                     Stateless<ListSchedulingEngine>});
  registry.Register({"HuLevel", "hu", "Hu's level-based scheduling",
                     Method::kHuLevel, Stateless<HuLevelEngine>});
  registry.Register({"ForceDirected", "fds", "force-directed scheduling",
                     Method::kForceDirected, Stateless<ForceDirectedEngine>});
  registry.Register({"Annealing", "anneal", "simulated annealing",
                     Method::kAnnealing, Stateless<AnnealingEngine>});
  registry.Register(
      {"GreedyBalance", "greedy",
       "balanced contiguous partition of the default topological order",
       Method::kGreedyBalance, Stateless<GreedyBalanceEngine>});
}

}  // namespace respect::engines
