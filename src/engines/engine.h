// The SchedulerEngine interface — one interchangeable scheduling backend.
//
// Every engine is a stateless adapter: Schedule() is const, takes the graph,
// the pipeline constraints and a per-call budget, and returns a schedule plus
// the engine-only solve time.  Statelessness is what makes the batch
// compilation path safe: one engine instance may serve many threads, and two
// calls with the same inputs return the same schedule.
//
// Engines receive shared read-only state (trained RL weights, compiler
// substitute tuning) through an EngineContext captured at construction.  The
// RL weights are a shared immutable snapshot (shared_ptr<const RlScheduler>),
// never copied per call and never mutated by an engine.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cancel.h"
#include "graph/dag.h"
#include "heuristics/edgetpu_compiler.h"
#include "rl/scheduler.h"
#include "sched/schedule.h"

namespace respect::engines {

/// Per-call budget for engines that search (exact ILP / branch-and-bound).
/// Engines without a search loop ignore it.  The façade always fills both
/// fields from CompilerOptions; the defaults here are the neutral
/// "unlimited" values for direct engine callers.
struct EngineBudget {
  /// Maximum search-tree expansions (0 = unlimited).
  std::int64_t max_expansions = 0;

  /// Wall-clock ceiling in seconds (0 = unlimited).
  double time_limit_seconds = 0.0;

  /// Cooperative cancellation, polled in engine inner loops (annealing
  /// sweeps, B&B expansion, RL decode steps).  Unlike the two soft limits
  /// above — which return the best incumbent found — a fired token unwinds
  /// with core::CancelledError so a cancelled solve never yields a partial
  /// schedule.  Default-constructed (empty) tokens cost one null check.
  core::CancelToken cancel;
};

/// Read-only state shared by every engine created for one compiler.
struct EngineContext {
  /// Immutable snapshot of the trained RESPECT agent.  Null is allowed; the
  /// RL engine then builds a fresh (untrained) agent of its own.
  std::shared_ptr<const rl::RlScheduler> rl;

  /// Tuning for the Edge TPU compiler substitute (num_stages is overridden
  /// per call from the constraints).
  heuristics::EdgeTpuCompilerConfig compiler;
};

/// What an engine hands back to the serving layer.
struct EngineResult {
  sched::Schedule schedule;

  /// Engine solve time only — excludes the façade's post-processing and
  /// packaging/quantization (the Fig. 3 metric).
  double solve_seconds = 0.0;

  /// True for exact engines that proved optimality within budget.
  bool proved_optimal = false;
};

/// How a ScheduleBatch call split its work between the batched decode path
/// and per-graph solves.  Counters are additive, so per-group stats merge
/// into per-call and per-service totals (see serve::ServiceMetrics).
struct SolveStats {
  /// Graphs solved through a lock-stepped batch decode (group size >= 2).
  std::uint64_t batch_solved = 0;

  /// Graphs solved one at a time (stragglers, singleton size groups, or an
  /// engine without batch support).
  std::uint64_t single_solved = 0;

  /// Number of lock-stepped groups the batch-solved graphs were split into.
  std::uint64_t batch_groups = 0;

  /// Fraction of graphs that went through the batch path; 0 when empty.
  [[nodiscard]] double BatchUtilization() const {
    const std::uint64_t total = batch_solved + single_solved;
    return total == 0 ? 0.0
                      : static_cast<double>(batch_solved) /
                            static_cast<double>(total);
  }

  void Merge(const SolveStats& other) {
    batch_solved += other.batch_solved;
    single_solved += other.single_solved;
    batch_groups += other.batch_groups;
  }
};

/// Runs `solve` and packs its schedule with the measured solve time —
/// shared by every adapter whose backend does not report its own timing.
template <typename Solve>
EngineResult TimedSolve(Solve&& solve) {
  const auto start = std::chrono::steady_clock::now();
  EngineResult result;
  result.schedule = std::forward<Solve>(solve)();
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

class SchedulerEngine {
 public:
  virtual ~SchedulerEngine() = default;

  /// Canonical engine name; matches the registry entry it was created from.
  [[nodiscard]] virtual std::string_view Name() const = 0;

  /// Schedules `dag` onto `constraints.num_stages` pipeline stages.  Must be
  /// deterministic for fixed inputs and safe to call concurrently.
  [[nodiscard]] virtual EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const = 0;

  /// True when ScheduleBatch can amortize work across same-node-count
  /// graphs (overridden by RlEngine's lock-stepped batch decode).  Callers
  /// use this to decide whether size-grouping a batch is worth it.
  [[nodiscard]] virtual bool SupportsBatch() const { return false; }

  /// Schedules every graph in `dags` under the same constraints and budget,
  /// returning results index-aligned with the input.  The default just
  /// loops over Schedule(); engines with SupportsBatch() group same-sized
  /// graphs into lock-stepped solves.  Deterministic and identical, graph
  /// for graph, to per-graph Schedule() calls on the scalar path.  `stats`
  /// (optional) accumulates how the work was split.
  [[nodiscard]] virtual std::vector<EngineResult> ScheduleBatch(
      std::span<const graph::Dag* const> dags,
      const sched::PipelineConstraints& constraints,
      const EngineBudget& budget, SolveStats* stats = nullptr) const {
    std::vector<EngineResult> results;
    results.reserve(dags.size());
    for (const graph::Dag* dag : dags) {
      results.push_back(Schedule(*dag, constraints, budget));
    }
    if (stats != nullptr) stats->single_solved += dags.size();
    return results;
  }
};

}  // namespace respect::engines
