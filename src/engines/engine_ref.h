// EngineRef — one value unifying the three spellings callers use to pick a
// scheduling engine: the canonical registry name ("Annealing"), the CLI
// alias ("anneal"), or the Method enum value (Method::kAnnealing).
//
// APIs that accept an EngineRef replace pairs of string_view/Method
// overloads with a single entry point; the registry resolves all three
// spellings to the same EngineRegistration (see EngineRegistry::Resolve).
// The string form is owned, so a request carrying an EngineRef can outlive
// the buffer it was parsed from.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "engines/method.h"

namespace respect::engines {

class EngineRef {
 public:
  /// Empty reference; EngineRegistry::Resolve rejects it with a clear error
  /// (kept default-constructible so request structs stay aggregates).
  EngineRef() = default;

  // Implicit by design: call sites write Compile({.engine = "anneal"}) or
  // Compile({.engine = Method::kAnnealing}) without naming this type.
  EngineRef(Method method) : ref_(method) {}  // NOLINT(google-explicit-constructor)
  EngineRef(std::string name) : ref_(std::move(name)) {}  // NOLINT
  EngineRef(std::string_view name) : ref_(std::string(name)) {}  // NOLINT
  EngineRef(const char* name) : ref_(std::string(name)) {}  // NOLINT

  [[nodiscard]] bool IsEmpty() const {
    return std::holds_alternative<std::monostate>(ref_);
  }

  /// How the caller spelled the engine — for error messages ("<unset>" when
  /// empty; the canonical name for Method values).  Defined in registry.cc.
  [[nodiscard]] std::string Spelling() const;

 private:
  friend class EngineRegistry;

  std::variant<std::monostate, Method, std::string> ref_;
};

}  // namespace respect::engines
