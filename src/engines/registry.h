// Engine registry — the single source of truth mapping engine names, CLI
// aliases and Method enum values to factories.
//
// Built-in engines are registered the first time Global() is called; user
// code may register additional engines at startup:
//
//   engines::EngineRegistry::Global().Register({
//       .name = "MyEngine", .alias = "mine", .description = "...",
//       .method = std::nullopt,
//       .factory = [](const engines::EngineContext&) { ... }});
//   auto result = compiler.Compile(dag, 4, "MyEngine");
//
// Registration is not synchronized: register engines during startup, before
// handing the registry to concurrent compile paths.  Lookups are const and
// safe to run concurrently once registration is done.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engines/engine.h"
#include "engines/engine_ref.h"
#include "engines/method.h"

namespace respect::engines {

using EngineFactory =
    std::function<std::unique_ptr<SchedulerEngine>(const EngineContext&)>;

/// One registry entry.  `name` is the canonical spelling (what MethodName
/// returns); `alias` is the short CLI spelling.  `method` is set for the
/// built-in engines addressable through the Method enum and empty for
/// engines registered at runtime.
struct EngineRegistration {
  std::string name;
  std::string alias;
  std::string description;
  std::optional<Method> method;
  EngineFactory factory;

  /// True when the engine reads EngineContext::rl — i.e. its output depends
  /// on the current RL weight snapshot.  The serving layer keys its schedule
  /// cache on the snapshot version for exactly these engines, so ReplaceRl
  /// invalidates their cached results while deterministic engines stay warm.
  bool uses_rl = false;
};

class EngineRegistry {
 public:
  /// The process-wide registry, with the built-in engines pre-registered.
  static EngineRegistry& Global();

  /// Adds an engine.  Throws std::invalid_argument when the name or alias
  /// collides with an existing entry, when the factory is empty, or when the
  /// name is empty.
  void Register(EngineRegistration registration);

  [[nodiscard]] bool Contains(std::string_view name_or_alias) const;

  /// Finds by canonical name or alias (exact match); null when absent.
  [[nodiscard]] const EngineRegistration* Find(
      std::string_view name_or_alias) const;
  [[nodiscard]] const EngineRegistration* Find(Method method) const;

  /// Looks up whatever an EngineRef spells — canonical name, alias, or
  /// Method value — and throws std::invalid_argument (naming the caller's
  /// spelling) when the ref is empty or unknown.  Deliberately not a Find
  /// overload: EngineRef converts implicitly from strings, which would make
  /// Find(std::string) ambiguous.  The returned reference stays valid for
  /// the process lifetime (entries are never relocated or removed).
  [[nodiscard]] const EngineRegistration& Resolve(const EngineRef& ref) const;

  /// Instantiates an engine.  Throws std::invalid_argument on unknown
  /// name/method.
  [[nodiscard]] std::unique_ptr<SchedulerEngine> Create(
      std::string_view name_or_alias, const EngineContext& context) const;
  [[nodiscard]] std::unique_ptr<SchedulerEngine> Create(
      Method method, const EngineContext& context) const;

  /// All entries, in registration order (built-ins first).
  [[nodiscard]] const std::deque<EngineRegistration>& Registrations() const {
    return registrations_;
  }

  /// Canonical names, in registration order.
  [[nodiscard]] std::vector<std::string> Names() const;

 private:
  // Deque, not vector: Register() must never relocate existing entries, so
  // pointers from Find() and string_views from MethodName() stay valid
  // across later registrations.
  std::deque<EngineRegistration> registrations_;
};

}  // namespace respect::engines

namespace respect {

/// Canonical name of a built-in method, resolved through the registry.
[[nodiscard]] std::string_view MethodName(Method method);

/// Inverse lookup accepting either the canonical name or the CLI alias;
/// empty for unknown strings and for runtime-registered engines that have no
/// enum value.
[[nodiscard]] std::optional<Method> MethodFromName(std::string_view name);

}  // namespace respect
