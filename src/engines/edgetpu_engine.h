// SchedulerEngine adapter for the Edge TPU compiler substitute
// (heuristics/edgetpu_compiler.h) — the commercial-compiler baseline.
#pragma once

#include "engines/engine.h"
#include "heuristics/edgetpu_compiler.h"

namespace respect::engines {

class EdgeTpuCompilerEngine : public SchedulerEngine {
 public:
  explicit EdgeTpuCompilerEngine(const heuristics::EdgeTpuCompilerConfig& config)
      : config_(config) {}

  [[nodiscard]] std::string_view Name() const override {
    return "EdgeTPUCompiler";
  }

  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;

 private:
  heuristics::EdgeTpuCompilerConfig config_;
};

}  // namespace respect::engines
