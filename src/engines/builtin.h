// Registration of the eight engines that ship with the library.
#pragma once

namespace respect::engines {

class EngineRegistry;

/// Registers the built-in engines (one per Method enum value).  Called once
/// by EngineRegistry::Global(); call it yourself only on a private registry.
void RegisterBuiltinEngines(EngineRegistry& registry);

}  // namespace respect::engines
