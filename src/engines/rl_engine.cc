#include "engines/rl_engine.h"

#include <utility>

#include "rl/decode_workspace.h"

namespace respect::engines {

RlEngine::RlEngine(std::shared_ptr<const rl::RlScheduler> rl)
    : rl_(std::move(rl)) {
  if (rl_ == nullptr) rl_ = std::make_shared<const rl::RlScheduler>();
}

EngineResult RlEngine::Schedule(const graph::Dag& dag,
                                const sched::PipelineConstraints& constraints,
                                const EngineBudget& /*budget*/) const {
  // One decode workspace per thread: CompileBatch workers and the
  // CompileService pool each reuse their own buffers across requests, so
  // concurrent serving decodes stay allocation-free without sharing state.
  thread_local rl::DecodeWorkspace workspace;

  // ScheduleRaw = decode + ρ packing only — like every engine, the raw
  // schedule is repaired exactly once by the façade's PostProcess, outside
  // the solve time (RESPECT's Fig. 3 metric stays comparable to the
  // baseline engines).
  rl::RlScheduler::Result raw = rl_->ScheduleRaw(dag, constraints, workspace);
  EngineResult result;
  result.schedule = std::move(raw.schedule);
  result.solve_seconds = raw.solve_seconds;
  return result;
}

}  // namespace respect::engines
