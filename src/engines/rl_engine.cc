#include "engines/rl_engine.h"

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "rl/batch_decode_workspace.h"
#include "rl/decode_workspace.h"

namespace respect::engines {

RlEngine::RlEngine(std::shared_ptr<const rl::RlScheduler> rl)
    : rl_(std::move(rl)) {
  if (rl_ == nullptr) rl_ = std::make_shared<const rl::RlScheduler>();
}

EngineResult RlEngine::Schedule(const graph::Dag& dag,
                                const sched::PipelineConstraints& constraints,
                                const EngineBudget& budget) const {
  // One decode workspace per thread: CompileBatch workers and the
  // CompileService pool each reuse their own buffers across requests, so
  // concurrent serving decodes stay allocation-free without sharing state.
  thread_local rl::DecodeWorkspace workspace;

  // ScheduleRaw = decode + ρ packing only — like every engine, the raw
  // schedule is repaired exactly once by the façade's PostProcess, outside
  // the solve time (RESPECT's Fig. 3 metric stays comparable to the
  // baseline engines).
  rl::RlScheduler::Result raw =
      rl_->ScheduleRaw(dag, constraints, workspace, budget.cancel);
  EngineResult result;
  result.schedule = std::move(raw.schedule);
  result.solve_seconds = raw.solve_seconds;
  return result;
}

std::vector<EngineResult> RlEngine::ScheduleBatch(
    std::span<const graph::Dag* const> dags,
    const sched::PipelineConstraints& constraints, const EngineBudget& budget,
    SolveStats* stats) const {
  // Same per-thread reuse as Schedule(): one batch workspace per thread,
  // grown to the largest (nodes, batch) this thread has lock-stepped.
  thread_local rl::BatchDecodeWorkspace batch_workspace;

  // The lock-stepped kernels are not cancellation-aware (a fired token
  // would strand the whole group), so the batch path checks once up front;
  // straggler singletons still poll per decode step via Schedule().
  budget.cancel.ThrowIfCancelled("rl batch decode");

  std::vector<EngineResult> results(dags.size());

  // Group by node count — lock-stepping needs equal decode lengths.
  // std::map keeps the grouping (and thus group/chunk boundaries)
  // deterministic for a given input order.
  std::map<int, std::vector<std::size_t>> by_nodes;
  for (std::size_t i = 0; i < dags.size(); ++i) {
    by_nodes[dags[i]->NodeCount()].push_back(i);
  }

  std::vector<const graph::Dag*> chunk;
  for (const auto& [nodes, indices] : by_nodes) {
    if (indices.size() < 2) {
      // Straggler: the single-graph path (identical result, no batch
      // overhead for a batch of one).
      for (const std::size_t i : indices) {
        results[i] = Schedule(*dags[i], constraints, budget);
      }
      if (stats != nullptr) stats->single_solved += indices.size();
      continue;
    }
    // Balanced chunking under the workspace cap: ceil-divide the group so
    // chunk sizes differ by at most one and every chunk keeps >= 2 graphs.
    const std::size_t group = indices.size();
    const std::size_t num_chunks =
        (group + rl::kMaxDecodeBatch - 1) / rl::kMaxDecodeBatch;
    const std::size_t base = group / num_chunks;
    const std::size_t extra = group % num_chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t size = base + (c < extra ? 1 : 0);
      chunk.clear();
      for (std::size_t k = begin; k < begin + size; ++k) {
        chunk.push_back(dags[indices[k]]);
      }
      std::vector<rl::RlScheduler::Result> raw = rl_->ScheduleRawBatch(
          std::span<const graph::Dag* const>(chunk), constraints,
          batch_workspace);
      for (std::size_t k = 0; k < size; ++k) {
        EngineResult& out = results[indices[begin + k]];
        out.schedule = std::move(raw[k].schedule);
        out.solve_seconds = raw[k].solve_seconds;
      }
      if (stats != nullptr) {
        stats->batch_solved += size;
        ++stats->batch_groups;
      }
      begin += size;
    }
  }
  return results;
}

}  // namespace respect::engines
