#include "engines/rl_engine.h"

#include "sched/rho.h"

namespace respect::engines {

RlEngine::RlEngine(std::shared_ptr<const rl::RlScheduler> rl)
    : rl_(std::move(rl)) {
  if (rl_ == nullptr) rl_ = std::make_shared<const rl::RlScheduler>();
}

EngineResult RlEngine::Schedule(const graph::Dag& dag,
                                const sched::PipelineConstraints& constraints,
                                const EngineBudget& /*budget*/) const {
  // Decode + ρ packing only — like every engine, the raw schedule is
  // repaired once by the façade's PostProcess, outside the solve time.
  // (RlScheduler::Schedule also repairs internally; calling it here would
  // run the repair twice and fold it into RESPECT's Fig. 3 solve time while
  // the baseline engines exclude it.)
  return TimedSolve([&] {
    return sched::PackSequence(dag, rl_->Agent().DecodeGreedy(dag),
                               constraints.num_stages);
  });
}

}  // namespace respect::engines
