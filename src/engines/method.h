// Stable identifiers for the scheduling engines that ship with the library.
//
// `Method` is the compact enum downstream code passes to the façade; the
// authoritative mapping from enum value to engine (name, alias, factory)
// lives in the EngineRegistry (registry.h) — there is deliberately no switch
// over this enum anywhere else.  Engines registered at runtime extend the
// registry without extending this enum; they are addressed by name.
#pragma once

#include <array>

namespace respect {

/// The single definition of the built-in method list.  The enum and
/// kAllMethods are both generated from it, so adding a method here keeps
/// them in sync by construction — and the registry test asserting every
/// kAllMethods entry is registered then catches a missing adapter.
///
///   kRespectRl        the paper's contribution
///   kExactIlp         exact method (ILP route, CPLEX role)
///   kEdgeTpuCompiler  commercial-compiler substitute (count + profiling)
///   kGreedyBalance    balanced contiguous partition of the default order
#define RESPECT_METHOD_LIST(X) \
  X(kRespectRl)                \
  X(kExactIlp)                 \
  X(kEdgeTpuCompiler)          \
  X(kListScheduling)           \
  X(kHuLevel)                  \
  X(kForceDirected)            \
  X(kAnnealing)                \
  X(kGreedyBalance)

/// Scheduling engines available through the façade.
enum class Method {
#define RESPECT_METHOD_ENUMERATOR(name) name,
  RESPECT_METHOD_LIST(RESPECT_METHOD_ENUMERATOR)
#undef RESPECT_METHOD_ENUMERATOR
};

/// Every built-in method, in registry order.
inline constexpr std::array kAllMethods = {
#define RESPECT_METHOD_VALUE(name) Method::name,
    RESPECT_METHOD_LIST(RESPECT_METHOD_VALUE)
#undef RESPECT_METHOD_VALUE
};

}  // namespace respect
