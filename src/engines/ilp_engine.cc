#include "engines/ilp_engine.h"

#include "ilp/scheduling_ilp.h"

namespace respect::engines {

EngineResult IlpEngine::Schedule(const graph::Dag& dag,
                                 const sched::PipelineConstraints& constraints,
                                 const EngineBudget& budget) const {
  ilp::IlpScheduleConfig config;
  config.num_stages = constraints.num_stages;
  config.max_nodes = budget.max_expansions;
  config.time_limit_seconds = budget.time_limit_seconds;
  config.cancel = budget.cancel;

  ilp::IlpScheduleResult r = ilp::SolveSchedulingIlp(dag, config);
  EngineResult result;
  result.schedule = std::move(r.schedule);
  result.solve_seconds = r.solve_seconds;
  result.proved_optimal = r.proved_optimal;
  return result;
}

}  // namespace respect::engines
