// SchedulerEngine adapter for the paper's RL scheduler (rl/scheduler.h).
#pragma once

#include <memory>

#include "engines/engine.h"
#include "rl/scheduler.h"

namespace respect::engines {

/// Wraps a shared immutable RlScheduler snapshot; decoding is const on the
/// agent, so one snapshot serves any number of concurrent Schedule() calls.
class RlEngine : public SchedulerEngine {
 public:
  /// A null `rl` builds a fresh default-configured (untrained) agent.
  explicit RlEngine(std::shared_ptr<const rl::RlScheduler> rl);

  [[nodiscard]] std::string_view Name() const override { return "RESPECT"; }

  [[nodiscard]] EngineResult Schedule(
      const graph::Dag& dag, const sched::PipelineConstraints& constraints,
      const EngineBudget& budget) const override;

  [[nodiscard]] bool SupportsBatch() const override { return true; }

  /// Groups `dags` by node count (lock-stepped decodes need equal lengths),
  /// routes every group of >= 2 through the batched decode path — chunked
  /// into balanced pieces of at most rl::kMaxDecodeBatch — and falls back
  /// to the single-graph path for singletons.  Scalar-path results are
  /// bit-identical to per-graph Schedule() calls; `stats` reports the
  /// batch/single split.
  [[nodiscard]] std::vector<EngineResult> ScheduleBatch(
      std::span<const graph::Dag* const> dags,
      const sched::PipelineConstraints& constraints,
      const EngineBudget& budget, SolveStats* stats = nullptr) const override;

 private:
  std::shared_ptr<const rl::RlScheduler> rl_;
};

}  // namespace respect::engines
