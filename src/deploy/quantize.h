// Post-training quantization pass.
//
// The paper's deployment flow quantizes the TensorFlow model (TOCO) before
// Edge TPU compilation: float32 weights and activations become uint8.  For
// scheduling and simulation what matters is the byte-count change, so the
// pass rewrites the graph's memory attributes (params/activations shrink
// 4x by default) and records the scale factors a real converter would emit.
#pragma once

#include "graph/dag.h"

namespace respect::deploy {

struct QuantizationSpec {
  int weight_bits = 8;
  int activation_bits = 8;

  /// Keras-style float source width.
  int source_bits = 32;
};

/// Returns a copy of `dag` with param_bytes / output_bytes scaled to the
/// quantized widths (rounded up; zero stays zero).  Names, edges, MACs are
/// unchanged.
[[nodiscard]] graph::Dag QuantizeGraph(const graph::Dag& dag,
                                       const QuantizationSpec& spec = {});

}  // namespace respect::deploy
