#include "deploy/package.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "deploy/pod_io.h"
#include "deploy/quantize.h"
#include "graph/topology.h"

namespace respect::deploy {

PipelinePackage BuildPackage(const graph::Dag& dag,
                             const sched::Schedule& schedule, bool quantize) {
  sched::PipelineConstraints constraints;
  constraints.num_stages = schedule.num_stages;
  const sched::ValidationResult valid =
      sched::ValidateSchedule(dag, schedule, constraints);
  if (!valid.ok) {
    throw std::invalid_argument("BuildPackage: invalid schedule: " +
                                valid.reason);
  }

  const graph::Dag graph = quantize ? QuantizeGraph(dag) : dag;
  const graph::TopoInfo topo = graph::AnalyzeTopology(graph);

  PipelinePackage package;
  package.model_name = dag.Name();
  package.num_stages = schedule.num_stages;
  package.quantized = quantize;
  package.segments.resize(schedule.num_stages);
  for (int k = 0; k < schedule.num_stages; ++k) {
    package.segments[k].stage = k;
  }

  for (const graph::NodeId v : topo.order) {
    Segment& seg = package.segments[schedule.stage[v]];
    seg.ops.push_back(v);
    seg.param_bytes += graph.Attr(v).param_bytes;
    seg.macs += graph.Attr(v).macs;
  }

  // Boundary tensors: producer in stage s, consumers possibly in several
  // later stages — the tensor is shipped once per receiving stage hop chain
  // (from_stage -> first consuming stage; further stages relay it).
  for (graph::NodeId v = 0; v < graph.NodeCount(); ++v) {
    const int s = schedule.stage[v];
    int last = s;
    int first_after = schedule.num_stages;
    for (const graph::NodeId c : graph.Children(v)) {
      const int cs = schedule.stage[c];
      last = std::max(last, cs);
      if (cs > s) first_after = std::min(first_after, cs);
    }
    if (last > s) {
      BoundaryTensor t;
      t.producer = v;
      t.bytes = graph.Attr(v).output_bytes;
      t.from_stage = s;
      t.to_stage = first_after;
      package.segments[s].outputs.push_back(t);
      // Every stage from the first consumer through the last consumer needs
      // the tensor as input (relay through the chain).
      for (int k = first_after; k <= last; ++k) {
        package.segments[k].inputs.push_back(t);
      }
    }
  }

  // Host transfers: model input into stage 0, logits out of the last stage.
  const auto sources = graph.Sources();
  for (const graph::NodeId s : sources) {
    package.host_input_bytes += graph.Attr(s).output_bytes;
  }
  const auto sinks = graph.Sinks();
  for (const graph::NodeId s : sinks) {
    package.host_output_bytes += graph.Attr(s).output_bytes;
  }
  return package;
}

namespace {
constexpr std::uint32_t kMagic = 0x52455350;  // "RESP"

void WriteTensorList(std::ostream& os,
                     const std::vector<BoundaryTensor>& list) {
  WritePod(os, static_cast<std::uint32_t>(list.size()));
  for (const BoundaryTensor& t : list) {
    WritePod(os, t.producer);
    WritePod(os, t.bytes);
    WritePod(os, t.from_stage);
    WritePod(os, t.to_stage);
  }
}

void ReadTensorList(std::istream& is, std::vector<BoundaryTensor>& list) {
  std::uint32_t count = 0;
  ReadPod(is, count);
  if (!is || count > (1u << 24)) {
    throw std::runtime_error("ReadPackage: corrupt tensor count");
  }
  list.resize(count);
  for (BoundaryTensor& t : list) {
    ReadPod(is, t.producer);
    ReadPod(is, t.bytes);
    ReadPod(is, t.from_stage);
    ReadPod(is, t.to_stage);
  }
}

}  // namespace

void WritePackage(const PipelinePackage& package, std::ostream& os) {
  WritePod(os, kMagic);
  const std::uint32_t name_len =
      static_cast<std::uint32_t>(package.model_name.size());
  WritePod(os, name_len);
  os.write(package.model_name.data(), name_len);
  WritePod(os, package.num_stages);
  WritePod(os, package.quantized);
  WritePod(os, package.host_input_bytes);
  WritePod(os, package.host_output_bytes);
  WritePod(os, static_cast<std::uint32_t>(package.segments.size()));
  for (const Segment& seg : package.segments) {
    WritePod(os, seg.stage);
    WritePod(os, seg.param_bytes);
    WritePod(os, seg.macs);
    WritePod(os, static_cast<std::uint32_t>(seg.ops.size()));
    for (const graph::NodeId v : seg.ops) WritePod(os, v);
    WriteTensorList(os, seg.inputs);
    WriteTensorList(os, seg.outputs);
  }
}

PipelinePackage ReadPackage(std::istream& is) {
  std::uint32_t magic = 0;
  ReadPod(is, magic);
  if (!is || magic != kMagic) {
    throw std::runtime_error("ReadPackage: bad header");
  }
  PipelinePackage package;
  std::uint32_t name_len = 0;
  ReadPod(is, name_len);
  if (!is || name_len > 4096) {
    throw std::runtime_error("ReadPackage: corrupt name");
  }
  package.model_name.resize(name_len);
  is.read(package.model_name.data(), name_len);
  ReadPod(is, package.num_stages);
  ReadPod(is, package.quantized);
  ReadPod(is, package.host_input_bytes);
  ReadPod(is, package.host_output_bytes);
  std::uint32_t seg_count = 0;
  ReadPod(is, seg_count);
  if (!is || seg_count > 1024) {
    throw std::runtime_error("ReadPackage: corrupt segment count");
  }
  package.segments.resize(seg_count);
  for (Segment& seg : package.segments) {
    ReadPod(is, seg.stage);
    ReadPod(is, seg.param_bytes);
    ReadPod(is, seg.macs);
    std::uint32_t op_count = 0;
    ReadPod(is, op_count);
    if (!is || op_count > (1u << 24)) {
      throw std::runtime_error("ReadPackage: corrupt op count");
    }
    seg.ops.resize(op_count);
    for (graph::NodeId& v : seg.ops) ReadPod(is, v);
    ReadTensorList(is, seg.inputs);
    ReadTensorList(is, seg.outputs);
  }
  if (!is) throw std::runtime_error("ReadPackage: truncated input");
  return package;
}

void SavePackage(const PipelinePackage& package, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("SavePackage: cannot open " + path);
  WritePackage(package, os);
  if (!os) throw std::runtime_error("SavePackage: write failed: " + path);
}

PipelinePackage LoadPackage(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("LoadPackage: cannot open " + path);
  try {
    return ReadPackage(is);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " (" + path + ")");
  }
}

}  // namespace respect::deploy
