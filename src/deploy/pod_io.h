// Host-native POD stream serialization — the one definition of the
// fixed-width read/write primitives shared by the package format
// (deploy/package.cc) and the serving layer's spill envelopes
// (serve/store/disk_store.cc).  Bytes are memcpy'd in host order: these
// are local artifact formats, not wire formats.
#pragma once

#include <istream>
#include <ostream>

namespace respect::deploy {

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void ReadPod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
}

}  // namespace respect::deploy
