// Pipeline package: the deployable artifact of a scheduling decision.
//
// BuildPackage turns (graph, schedule) into n dependency-closed segments
// with explicit boundary tensors — the sub-models the paper deploys to each
// Edge TPU — optionally applying the quantization pass first.  Packages are
// what the pipeline simulator executes and what Save/Load round-trips to
// disk (our stand-in for the n .tflite files of the real flow).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::deploy {

/// A tensor crossing a segment boundary.
struct BoundaryTensor {
  graph::NodeId producer = graph::kInvalidNode;
  std::int64_t bytes = 0;
  int from_stage = 0;
  int to_stage = 0;  // first consuming stage after from_stage
};

/// One per-device sub-model.
struct Segment {
  int stage = 0;
  std::vector<graph::NodeId> ops;  // topological execution order
  std::int64_t param_bytes = 0;
  std::int64_t macs = 0;

  /// Tensors this segment receives from earlier stages (or the host for
  /// stage 0: the network input).
  std::vector<BoundaryTensor> inputs;

  /// Tensors this segment ships to later stages (or the host for the last
  /// stage: the logits).
  std::vector<BoundaryTensor> outputs;
};

struct PipelinePackage {
  std::string model_name;
  int num_stages = 0;
  bool quantized = false;
  std::vector<Segment> segments;  // indexed by stage

  /// Network input / final output bytes (host transfers).
  std::int64_t host_input_bytes = 0;
  std::int64_t host_output_bytes = 0;
};

/// Validates the schedule and extracts segments.  When `quantize` is set the
/// byte counts are the uint8 ones (the deployment default, matching the real
/// Edge TPU flow).
[[nodiscard]] PipelinePackage BuildPackage(const graph::Dag& dag,
                                           const sched::Schedule& schedule,
                                           bool quantize = true);

/// Binary round trip of a package.
void SavePackage(const PipelinePackage& package, const std::string& path);
[[nodiscard]] PipelinePackage LoadPackage(const std::string& path);

/// Stream forms of the same binary format — what Save/LoadPackage run over
/// their file streams, exposed so callers can embed a package inside a
/// larger record (the serving layer's spill envelope, serve/store).  The
/// bytes are host-native (a local artifact format, not a wire format).
/// ReadPackage throws std::runtime_error on malformed or truncated input;
/// its messages carry no path — wrap them with location context as
/// LoadPackage does.
void WritePackage(const PipelinePackage& package, std::ostream& os);
[[nodiscard]] PipelinePackage ReadPackage(std::istream& is);

}  // namespace respect::deploy
