#include "deploy/quantize.h"

#include <stdexcept>

namespace respect::deploy {

graph::Dag QuantizeGraph(const graph::Dag& dag, const QuantizationSpec& spec) {
  if (spec.weight_bits <= 0 || spec.activation_bits <= 0 ||
      spec.source_bits <= 0) {
    throw std::invalid_argument("QuantizeGraph: non-positive bit width");
  }
  graph::Dag out(dag.Name() + "_quant");
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    graph::OpAttr attr = dag.Attr(v);
    attr.param_bytes = (attr.param_bytes * spec.weight_bits +
                        spec.source_bits - 1) /
                       spec.source_bits;
    attr.output_bytes = (attr.output_bytes * spec.activation_bits +
                         spec.source_bits - 1) /
                        spec.source_bits;
    out.AddNode(std::move(attr));
  }
  for (const graph::Edge& e : dag.Edges()) out.AddEdge(e.from, e.to);
  return out;
}

}  // namespace respect::deploy
