// List scheduling adapted to pipeline-stage partitioning.
//
// Classic list scheduling (Yang & Gerasoulis [19], cited by the paper as a
// canonical RCS heuristic) keeps a ready list ordered by priority and packs
// the highest-priority ready operator into the current resource until its
// budget is exhausted.  Here the "resource" is a pipeline stage with a
// parameter-memory budget of total/num_stages; the priority is the
// critical-path length in MACs.  Assigning only ready nodes makes the
// result dependency-monotone by construction.
#pragma once

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::heuristics {

[[nodiscard]] sched::Schedule ListSchedule(const graph::Dag& dag,
                                           int num_stages);

}  // namespace respect::heuristics
