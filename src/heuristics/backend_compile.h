// Mini compiler backend for Edge TPU submodels.
//
// The real Edge TPU compiler lowers each submodel to a proprietary
// instruction stream, lays out parameters for the on-chip cache and
// allocates scratch memory for activations.  Our substitute performs the
// same classes of work — op lowering to micro-instructions, liveness
// analysis, first-fit linear-scan tensor allocation, parameter layout — so
// that (a) the deployment flow produces a concrete compiled artifact and
// (b) the compiler's *solving cost* is honestly heavy, which is the paper's
// Fig. 3 baseline behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"

namespace respect::heuristics {

/// One lowered micro-instruction.
struct MicroInstruction {
  enum class Kind : std::uint8_t {
    kLoadParams,
    kLoadActivation,
    kCompute,
    kStoreActivation,
  };
  Kind kind = Kind::kCompute;
  graph::NodeId node = graph::kInvalidNode;
  std::int64_t address = 0;
  std::int64_t bytes = 0;
};

/// Result of compiling one pipeline segment.
struct CompiledSegment {
  std::vector<graph::NodeId> ops;       // in execution order
  std::vector<MicroInstruction> code;   // lowered stream
  std::int64_t param_bytes = 0;         // parameter footprint
  std::int64_t scratch_bytes = 0;       // peak activation arena usage
  std::uint64_t checksum = 0;           // layout checksum (determinism probe)
};

/// Compiles the subgraph induced by `ops` (must be closed under the
/// segment's internal dependencies and given in a valid execution order
/// relative to `dag`).  Runs lowering, liveness analysis and first-fit
/// arena allocation.
[[nodiscard]] CompiledSegment CompileSegment(const graph::Dag& dag,
                                             const std::vector<graph::NodeId>& ops);

}  // namespace respect::heuristics
