#include "heuristics/hu_scheduler.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "exact/dp_partitioner.h"
#include "graph/topology.h"

namespace respect::heuristics {

sched::Schedule HuLevelSchedule(const graph::Dag& dag, int num_stages) {
  dag.Validate();
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  if (topo.depth < num_stages) {
    // Fewer levels than stages: level bands cannot fill every stage; fall
    // back to the contiguous-order partition.
    return exact::PartitionDefaultOrder(dag, num_stages).schedule;
  }

  // Weight of each ASAP level.
  const int depth = topo.depth;
  std::vector<std::int64_t> level_weight(depth, 0);
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    level_weight[topo.asap_level[v]] += dag.Attr(v).param_bytes;
  }
  std::vector<std::int64_t> prefix(depth + 1, 0);
  for (int i = 0; i < depth; ++i) prefix[i + 1] = prefix[i] + level_weight[i];

  // Exact min-bottleneck partition of the level sequence into exactly
  // num_stages non-empty bands: dp[k][i] = best achievable bottleneck for
  // the first i levels in k bands.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 2;
  std::vector<std::vector<std::int64_t>> dp(
      num_stages + 1, std::vector<std::int64_t>(depth + 1, kInf));
  std::vector<std::vector<int>> parent(num_stages + 1,
                                       std::vector<int>(depth + 1, -1));
  dp[0][0] = 0;
  for (int k = 1; k <= num_stages; ++k) {
    for (int i = k; i <= depth; ++i) {
      for (int j = k - 1; j < i; ++j) {
        if (dp[k - 1][j] >= kInf) continue;
        const std::int64_t cand =
            std::max(dp[k - 1][j], prefix[i] - prefix[j]);
        if (cand < dp[k][i]) {
          dp[k][i] = cand;
          parent[k][i] = j;
        }
      }
    }
  }

  std::vector<int> level_stage(depth, 0);
  int i = depth;
  for (int k = num_stages; k >= 1; --k) {
    const int j = parent[k][i];
    for (int lvl = j; lvl < i; ++lvl) level_stage[lvl] = k - 1;
    i = j;
  }

  sched::Schedule sched;
  sched.num_stages = num_stages;
  sched.stage.resize(dag.NodeCount());
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    sched.stage[v] = level_stage[topo.asap_level[v]];
  }
  return sched;
}

}  // namespace respect::heuristics
