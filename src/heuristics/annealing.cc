#include "heuristics/annealing.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "exact/dp_partitioner.h"
#include "sched/device_aware.h"

namespace respect::heuristics {
namespace {

/// Scalarized byte cost: peak parameter bytes dominate, communication
/// breaks ties (weighted far below one byte of peak).
double ByteCost(const sched::ScheduleMetrics& m) {
  return static_cast<double>(m.peak_stage_param_bytes) +
         1e-6 * static_cast<double>(m.comm_bytes);
}

/// Device-aware cost: estimated service-time bottleneck dominates, the sum
/// of stage service times (fill latency) breaks ties.
double DeviceCost(const graph::Dag& dag, const sched::Schedule& schedule,
                  const AnnealingConfig& config) {
  const sched::StageServiceEstimate estimate = sched::EstimateStageService(
      dag, schedule, config.profile, config.bytes_scale);
  return estimate.bottleneck_us + 1e-6 * estimate.total_us;
}

}  // namespace

sched::Schedule AnnealSchedule(const graph::Dag& dag,
                               const AnnealingConfig& config) {
  dag.Validate();
  const int n = dag.NodeCount();
  if (n < config.num_stages) {
    throw std::invalid_argument("AnnealSchedule: |V| < num_stages");
  }
  const bool device_aware = !config.profile.IsDefault();
  const auto cost_of = [&](const sched::Schedule& schedule) {
    return device_aware ? DeviceCost(dag, schedule, config)
                        : ByteCost(sched::ComputeMetrics(dag, schedule));
  };

  sched::Schedule current =
      exact::PartitionDefaultOrder(dag, config.num_stages).schedule;
  double current_cost = cost_of(current);

  sched::Schedule best = current;
  double best_cost = current_cost;

  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<int> pick_node(0, n - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<int> stage_count(config.num_stages, 0);
  for (const int s : current.stage) ++stage_count[s];

  // Temperature is relative to the cost scale: total parameter bytes for
  // the byte objective, the seed schedule's cost for the device-aware one
  // (microseconds live on a very different scale than bytes).
  double temperature =
      config.initial_temperature *
      (device_aware ? std::max(current_cost, 1.0)
                    : static_cast<double>(dag.TotalParamBytes()));

  for (int it = 0; it < config.iterations; ++it, temperature *= config.cooling) {
    if ((it & 0x3F) == 0) {
      config.cancel.ThrowIfCancelled("annealing sweep");
    }
    const graph::NodeId v = pick_node(rng);

    // Feasible window of v given the rest of the schedule.
    int lo = 0;
    int hi = config.num_stages - 1;
    for (const graph::NodeId p : dag.Parents(v)) {
      lo = std::max(lo, current.stage[p]);
    }
    for (const graph::NodeId c : dag.Children(v)) {
      hi = std::min(hi, current.stage[c]);
    }
    if (lo >= hi) continue;  // no freedom

    std::uniform_int_distribution<int> pick_stage(lo, hi);
    const int new_stage = pick_stage(rng);
    const int old_stage = current.stage[v];
    if (new_stage == old_stage) continue;
    if (stage_count[old_stage] == 1) continue;  // would empty the stage

    current.stage[v] = new_stage;
    const double new_cost = cost_of(current);

    const double delta = new_cost - current_cost;
    if (delta <= 0 ||
        unit(rng) < std::exp(-delta / std::max(temperature, 1.0))) {
      current_cost = new_cost;
      --stage_count[old_stage];
      ++stage_count[new_stage];
      if (new_cost < best_cost) {
        best_cost = new_cost;
        best = current;
      }
    } else {
      current.stage[v] = old_stage;  // reject
    }
  }
  return best;
}

}  // namespace respect::heuristics
