// Force-directed scheduling (Paulin & Knight [12]) adapted to pipeline
// memory balancing.
//
// Each node has a feasible stage window derived from its ASAP/ALAP levels.
// The distribution graph spreads a node's parameter mass uniformly over its
// window; the force of committing node v to stage k measures how much that
// commitment (plus the implied window tightening of its neighbours) pushes
// the distribution away from uniform.  Nodes are committed lowest-force
// first, which balances per-stage memory while honouring dependencies.
#pragma once

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::heuristics {

[[nodiscard]] sched::Schedule ForceDirectedSchedule(const graph::Dag& dag,
                                                    int num_stages);

}  // namespace respect::heuristics
