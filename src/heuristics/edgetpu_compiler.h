// Edge TPU compiler substitute — the paper's commercial-compiler baseline.
//
// The closed-source Google Edge TPU compiler pipelines a model by cutting it
// into `num_segments` sub-models.  Publicly documented behaviour that this
// substitute reproduces:
//  * the initial split balances *operation counts*, not parameter memory
//    (coral.ai documents that segments "contain roughly equal amounts of
//    ops"), so heavy stages can overflow the 8 MiB parameter cache;
//  * the `partition_with_profiling` tool then iterates: compile every
//    segment, profile, move ops from the slowest segment to a neighbour,
//    recompile — an expensive loop dominated by repeated compilation;
//  * its internal latency estimate ignores the cache-overflow penalty (the
//    "performance-modeling miscorrelation" of §IV-A), which is exactly why
//    memory-aware schedulers beat it on-chip.
//
// Each refinement round really recompiles the affected segments with the
// mini backend (backend_compile.h), so solving time scales like the real
// tool's — this is the Fig. 3 runtime baseline.
#pragma once

#include <cstdint>

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::heuristics {

struct EdgeTpuCompilerConfig {
  int num_stages = 4;

  /// Profile-and-rebalance rounds; 0 selects the auto budget
  /// max(8, |V|/8), approximating the real tool's run-until-converged loop.
  int refinement_rounds = 0;

  /// Number of compile passes per segment per evaluation (the real compiler
  /// runs multiple fitting passes when a segment overflows).
  int compile_passes = 6;
};

struct EdgeTpuCompileResult {
  sched::Schedule schedule;

  /// Internal (cache-oblivious) latency estimate per stage, microseconds —
  /// what the profiling loop balanced.
  std::vector<double> estimated_stage_us;

  int rounds_executed = 0;
  std::int64_t ops_compiled = 0;  // total ops pushed through the backend
};

[[nodiscard]] EdgeTpuCompileResult CompileForPipeline(
    const graph::Dag& dag, const EdgeTpuCompilerConfig& config);

}  // namespace respect::heuristics
