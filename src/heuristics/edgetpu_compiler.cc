#include "heuristics/edgetpu_compiler.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/topology.h"
#include "heuristics/backend_compile.h"

namespace respect::heuristics {
namespace {

/// Cache-oblivious latency estimate of one compiled segment, microseconds.
/// Mirrors the vendor tool's internal model: systolic compute plus boundary
/// activation transfers, assuming all parameters are cache-resident — the
/// very assumption that breaks on overflowing stages (§IV-A
/// "performance modeling miscorrelation").
double EstimateSegmentUs(const graph::Dag& dag, const CompiledSegment& seg) {
  constexpr double kMacsPerUs = 2.0e6;       // 4 TOPS int8 ≈ 2e12 MAC/s
  constexpr double kUsbBytesPerUs = 335.5;   // USB 3.0 effective ≈ 320 MiB/s
  double us = 0.0;
  for (const MicroInstruction& mi : seg.code) {
    switch (mi.kind) {
      case MicroInstruction::Kind::kCompute:
        us += static_cast<double>(dag.Attr(mi.node).macs) / kMacsPerUs;
        break;
      case MicroInstruction::Kind::kLoadActivation:
      case MicroInstruction::Kind::kStoreActivation:
        us += static_cast<double>(mi.bytes) / kUsbBytesPerUs;
        break;
      case MicroInstruction::Kind::kLoadParams:
        break;  // assumed cached — the miscorrelation
    }
  }
  return us;
}

}  // namespace

EdgeTpuCompileResult CompileForPipeline(const graph::Dag& dag,
                                        const EdgeTpuCompilerConfig& config) {
  dag.Validate();
  const int n = dag.NodeCount();
  const int stages = config.num_stages;
  if (n < stages) {
    throw std::invalid_argument("CompileForPipeline: |V| < num_stages");
  }
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);

  // Initial split: roughly equal *parameter data size* per segment, walking
  // the model's own order (the coral.ai documented behaviour of
  // `--num_segments`).
  std::vector<int> cut(stages + 1, 0);
  cut[stages] = n;
  {
    const std::int64_t total = dag.TotalParamBytes();
    std::int64_t cumulative = 0;
    int k = 1;
    for (int i = 0; i < n && k < stages; ++i) {
      cumulative += dag.Attr(topo.order[i]).param_bytes;
      if (cumulative * stages >= total * static_cast<std::int64_t>(k) &&
          i + 1 <= n - (stages - k)) {
        cut[k++] = i + 1;
      }
    }
    for (; k < stages; ++k) cut[k] = std::max(cut[k - 1] + 1, n - (stages - k));
  }

  EdgeTpuCompileResult result;
  std::vector<double> est(stages, 0.0);

  // Compiles segment k at the given boundaries; every call runs the full
  // backend (lowering + liveness + arena allocation), `compile_passes`
  // times, exactly like the vendor tool's repeated fitting passes.
  const auto compile_segment = [&](const std::vector<int>& cuts,
                                   int k) -> double {
    const std::vector<graph::NodeId> ops(topo.order.begin() + cuts[k],
                                         topo.order.begin() + cuts[k + 1]);
    CompiledSegment seg;
    for (int pass = 0; pass < config.compile_passes; ++pass) {
      seg = CompileSegment(dag, ops);
      result.ops_compiled += static_cast<std::int64_t>(ops.size());
    }
    return EstimateSegmentUs(dag, seg);
  };

  for (int k = 0; k < stages; ++k) est[k] = compile_segment(cut, k);

  // Profiling refinement (partition_with_profiling): hill-climb on the
  // *estimated latency* spread.  Each candidate boundary shift triggers a
  // full pipeline recompile — every `edgetpu_compiler` invocation of the
  // real tool recompiles all segments — which is what makes the loop
  // expensive.  No early exit: the tool keeps probing within its diff
  // tolerance for the whole budget.
  const int rounds = config.refinement_rounds > 0
                         ? config.refinement_rounds
                         : std::max(6, n / 10);
  constexpr int kMaxShift = 3;
  for (int round = 0; round < rounds; ++round) {
    ++result.rounds_executed;
    const double current_worst = *std::max_element(est.begin(), est.end());

    double best_worst = current_worst;
    std::vector<int> best_cut;
    std::vector<double> best_est;
    for (int b = 1; b < stages; ++b) {
      for (int shift = -kMaxShift; shift <= kMaxShift; ++shift) {
        if (shift == 0) continue;
        std::vector<int> cand = cut;
        cand[b] += shift;
        if (cand[b] <= cand[b - 1] || cand[b] >= cand[b + 1]) continue;
        std::vector<double> cand_est(stages);
        for (int k = 0; k < stages; ++k) {
          cand_est[k] = compile_segment(cand, k);
        }
        const double worst =
            *std::max_element(cand_est.begin(), cand_est.end());
        if (worst < best_worst) {
          best_worst = worst;
          best_cut = std::move(cand);
          best_est = std::move(cand_est);
        }
      }
    }
    if (!best_cut.empty()) {
      cut = std::move(best_cut);
      est = std::move(best_est);
    }
    // At a local optimum the real tool still recompiles while tightening its
    // tolerance; we keep burning the same per-round compile budget.
  }

  result.schedule.num_stages = stages;
  result.schedule.stage.assign(n, 0);
  for (int k = 0; k < stages; ++k) {
    for (int i = cut[k]; i < cut[k + 1]; ++i) {
      result.schedule.stage[topo.order[i]] = k;
    }
  }
  result.estimated_stage_us = est;
  return result;
}

}  // namespace respect::heuristics
