// Hu-style level scheduling for pipeline partitioning.
//
// Hu's algorithm (cited by the paper among the classic RCS heuristics)
// schedules by topological levels.  The pipeline adaptation groups the ASAP
// levels into `num_stages` contiguous bands; the band boundaries are chosen
// by the exact min-bottleneck partition of the per-level parameter weights,
// so the heuristic is "optimal among level-respecting schedules".
#pragma once

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::heuristics {

[[nodiscard]] sched::Schedule HuLevelSchedule(const graph::Dag& dag,
                                              int num_stages);

}  // namespace respect::heuristics
