#include "heuristics/force_directed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/topology.h"
#include "sched/postprocess.h"

namespace respect::heuristics {
namespace {

/// Feasible stage window of every node given current commitments: forward
/// pass propagates committed/min stages, backward pass the max stages.
struct Windows {
  std::vector<int> lo;
  std::vector<int> hi;
};

Windows ComputeWindows(const graph::Dag& dag, const graph::TopoInfo& topo,
                       const std::vector<int>& committed, int num_stages) {
  const int n = dag.NodeCount();
  Windows w;
  w.lo.assign(n, 0);
  w.hi.assign(n, num_stages - 1);

  // Map ASAP/ALAP levels proportionally into the stage axis as the initial
  // window, then tighten with dependencies and commitments.
  const int depth = topo.depth;
  for (graph::NodeId v = 0; v < n; ++v) {
    w.lo[v] = static_cast<int>((static_cast<std::int64_t>(topo.asap_level[v]) *
                                num_stages) /
                               depth);
    w.hi[v] = static_cast<int>((static_cast<std::int64_t>(topo.alap_level[v]) *
                                num_stages) /
                               depth);
  }
  for (const graph::NodeId v : topo.order) {
    if (committed[v] >= 0) w.lo[v] = w.hi[v] = committed[v];
    for (const graph::NodeId p : dag.Parents(v)) {
      w.lo[v] = std::max(w.lo[v], w.lo[p]);
    }
    w.hi[v] = std::max(w.hi[v], w.lo[v]);
  }
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const graph::NodeId v = *it;
    if (committed[v] >= 0) w.lo[v] = w.hi[v] = committed[v];
    for (const graph::NodeId c : dag.Children(v)) {
      w.hi[v] = std::min(w.hi[v], w.hi[c]);
    }
    w.lo[v] = std::min(w.lo[v], w.hi[v]);
  }
  return w;
}

/// Distribution graph: expected parameter mass per stage when every node
/// spreads uniformly over its window.
std::vector<double> Distribution(const graph::Dag& dag, const Windows& w,
                                 int num_stages) {
  std::vector<double> dg(num_stages, 0.0);
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    const int width = w.hi[v] - w.lo[v] + 1;
    const double share =
        static_cast<double>(dag.Attr(v).param_bytes) / width;
    for (int k = w.lo[v]; k <= w.hi[v]; ++k) dg[k] += share;
  }
  return dg;
}

}  // namespace

sched::Schedule ForceDirectedSchedule(const graph::Dag& dag, int num_stages) {
  dag.Validate();
  const int n = dag.NodeCount();
  if (n < num_stages) {
    throw std::invalid_argument("ForceDirectedSchedule: |V| < num_stages");
  }
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);

  std::vector<int> committed(n, -1);
  for (int round = 0; round < n; ++round) {
    const Windows w = ComputeWindows(dag, topo, committed, num_stages);
    const std::vector<double> dg = Distribution(dag, w, num_stages);

    // Pick the uncommitted (node, stage) with the lowest self force =
    // dg[k] increase of moving the node's whole mass to k.
    double best_force = std::numeric_limits<double>::infinity();
    graph::NodeId best_node = graph::kInvalidNode;
    int best_stage = -1;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (committed[v] >= 0) continue;
      const int width = w.hi[v] - w.lo[v] + 1;
      const double mass = static_cast<double>(dag.Attr(v).param_bytes);
      const double share = mass / width;
      for (int k = w.lo[v]; k <= w.hi[v]; ++k) {
        // Self force relative to the node's current expected placement.
        double force = (mass - share) * dg[k];
        for (int j = w.lo[v]; j <= w.hi[v]; ++j) {
          if (j != k) force -= share * dg[j] / width;
        }
        if (force < best_force ||
            (force == best_force && v < best_node)) {
          best_force = force;
          best_node = v;
          best_stage = k;
        }
      }
    }
    if (best_node == graph::kInvalidNode) break;
    committed[best_node] = best_stage;
  }

  sched::Schedule sched;
  sched.num_stages = num_stages;
  sched.stage.assign(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    sched.stage[v] = committed[v] >= 0 ? committed[v] : 0;
  }
  // Windows guarantee dependency feasibility, but repair defensively and fill
  // any stage left empty by tight windows.
  sched::PipelineConstraints constraints;
  constraints.num_stages = num_stages;
  sched::PostProcess(dag, constraints, sched);
  return sched;
}

}  // namespace respect::heuristics
