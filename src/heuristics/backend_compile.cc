#include "heuristics/backend_compile.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace respect::heuristics {
namespace {

/// Live interval of a tensor inside a segment, in instruction positions.
struct Interval {
  graph::NodeId producer = graph::kInvalidNode;
  int start = 0;
  int end = 0;
  std::int64_t bytes = 0;
  std::int64_t address = -1;
};

/// First-fit placement: scan the sorted allocated blocks overlapping this
/// lifetime for the lowest gap that fits.  O(live * allocated) — this is the
/// honest cost of arena allocation, the dominant term of real compile time.
std::int64_t FirstFit(const std::vector<Interval>& placed,
                      const Interval& want) {
  // Collect blocks whose lifetimes overlap.
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks;  // (addr, bytes)
  for (const Interval& p : placed) {
    if (p.address < 0) continue;
    if (p.end < want.start || p.start > want.end) continue;
    blocks.emplace_back(p.address, p.bytes);
  }
  std::sort(blocks.begin(), blocks.end());
  std::int64_t cursor = 0;
  for (const auto& [addr, bytes] : blocks) {
    if (addr - cursor >= want.bytes) return cursor;
    cursor = std::max(cursor, addr + bytes);
  }
  return cursor;
}

/// Parameter-layout optimization: first-fit-decreasing packing of weight
/// tensors into 128 KiB cache banks, the way the vendor compiler arranges
/// the on-chip parameter image.  Returns a layout checksum.
std::uint64_t OptimizeParameterLayout(const graph::Dag& dag,
                                      const std::vector<graph::NodeId>& ops) {
  constexpr std::int64_t kBankBytes = 128 * 1024;
  std::vector<std::pair<std::int64_t, graph::NodeId>> tensors;
  tensors.reserve(ops.size());
  for (const graph::NodeId v : ops) {
    if (dag.Attr(v).param_bytes > 0) {
      tensors.emplace_back(dag.Attr(v).param_bytes, v);
    }
  }
  std::sort(tensors.begin(), tensors.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::int64_t> bank_free;
  std::uint64_t checksum = 0x9e3779b97f4a7c15ULL;
  for (const auto& [bytes, v] : tensors) {
    std::int64_t remaining = bytes;
    while (remaining > 0) {
      const std::int64_t chunk = std::min(remaining, kBankBytes);
      bool placed = false;
      for (std::size_t b = 0; b < bank_free.size(); ++b) {
        if (bank_free[b] >= chunk) {
          bank_free[b] -= chunk;
          checksum ^= (static_cast<std::uint64_t>(v) << (b % 48)) + chunk;
          placed = true;
          break;
        }
      }
      if (!placed) {
        bank_free.push_back(kBankBytes - chunk);
        checksum += static_cast<std::uint64_t>(chunk) * 0x100000001b3ULL;
      }
      remaining -= chunk;
    }
  }
  return checksum;
}

std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

CompiledSegment CompileSegment(const graph::Dag& dag,
                               const std::vector<graph::NodeId>& ops) {
  CompiledSegment out;
  out.ops = ops;

  // Position of each segment-local op.
  std::unordered_map<graph::NodeId, int> pos;
  pos.reserve(ops.size());
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    if (!pos.emplace(ops[i], i).second) {
      throw std::invalid_argument("CompileSegment: duplicate op in segment");
    }
  }

  // Liveness: a tensor produced at position i lives until its last local
  // consumer (or position i if it leaves the segment — it is stored out
  // immediately).
  std::vector<Interval> intervals;
  intervals.reserve(ops.size());
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    const graph::NodeId v = ops[i];
    Interval iv;
    iv.producer = v;
    iv.start = i;
    iv.end = i;
    iv.bytes = dag.Attr(v).output_bytes;
    for (const graph::NodeId c : dag.Children(v)) {
      const auto it = pos.find(c);
      if (it != pos.end()) iv.end = std::max(iv.end, it->second);
    }
    intervals.push_back(iv);
  }

  // Linear-scan first-fit allocation in position order.
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    intervals[i].address = FirstFit(intervals, intervals[i]);
    out.scratch_bytes = std::max(out.scratch_bytes,
                                 intervals[i].address + intervals[i].bytes);
  }

  // Lowering: parameter load, activation loads for cross-segment inputs,
  // compute, store.  Parameter layout is a running offset (the cache image).
  std::int64_t param_cursor = 0;
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    const graph::NodeId v = ops[i];
    const graph::OpAttr& attr = dag.Attr(v);

    if (attr.param_bytes > 0) {
      out.code.push_back({MicroInstruction::Kind::kLoadParams, v, param_cursor,
                          attr.param_bytes});
      param_cursor += attr.param_bytes;
    }
    for (const graph::NodeId p : dag.Parents(v)) {
      if (pos.find(p) == pos.end()) {
        out.code.push_back({MicroInstruction::Kind::kLoadActivation, p, 0,
                            dag.Attr(p).output_bytes});
      }
    }
    out.code.push_back({MicroInstruction::Kind::kCompute, v,
                        intervals[i].address, attr.output_bytes});
    bool leaves_segment = dag.Children(v).empty();
    for (const graph::NodeId c : dag.Children(v)) {
      if (pos.find(c) == pos.end()) leaves_segment = true;
    }
    if (leaves_segment) {
      out.code.push_back({MicroInstruction::Kind::kStoreActivation, v,
                          intervals[i].address, attr.output_bytes});
    }
    checksum = Mix(checksum, static_cast<std::uint64_t>(v));
    checksum = Mix(checksum, static_cast<std::uint64_t>(intervals[i].address));
  }
  out.param_bytes = param_cursor;
  out.checksum = checksum ^ OptimizeParameterLayout(dag, ops);
  return out;
}

}  // namespace respect::heuristics
