// Simulated-annealing metaheuristic scheduler.
//
// The paper lists iterative metaheuristics (simulated annealing, ant colony,
// DP budgeting) as the middle ground between fast heuristics and exact
// solvers.  This implementation starts from the balanced contiguous
// partition and explores single-node stage moves inside each node's feasible
// window under a geometric cooling schedule, optimizing the same
// lexicographic objective as the exact solvers (scalarized).
#pragma once

#include <cstdint>

#include "core/cancel.h"
#include "graph/dag.h"
#include "sched/schedule.h"
#include "tpu/device_profile.h"

namespace respect::heuristics {

struct AnnealingConfig {
  int num_stages = 4;
  int iterations = 20000;
  double initial_temperature = 0.35;  // relative to the initial cost scale
  double cooling = 0.9995;
  std::uint64_t seed = 0x5eed;

  /// Target hardware.  With the default profile the cost is the paper's
  /// byte objective (bit-identical to the pre-profile annealer); any other
  /// profile switches the cost to the estimated per-stage service-time
  /// bottleneck (sched::EstimateStageService), so the annealer loads faster
  /// stages harder instead of flattening bytes.
  tpu::DeviceProfile profile;

  /// Byte-width scale applied to graph byte attributes when evaluating the
  /// device-aware cost (0.25 when deployment will quantize float32->uint8).
  double bytes_scale = 1.0;

  /// Polled every 64 sweeps; fires as core::CancelledError (the incumbent
  /// is discarded, not returned).  Empty token = no cancellation.
  core::CancelToken cancel;
};

[[nodiscard]] sched::Schedule AnnealSchedule(const graph::Dag& dag,
                                             const AnnealingConfig& config);

}  // namespace respect::heuristics
