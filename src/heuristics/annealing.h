// Simulated-annealing metaheuristic scheduler.
//
// The paper lists iterative metaheuristics (simulated annealing, ant colony,
// DP budgeting) as the middle ground between fast heuristics and exact
// solvers.  This implementation starts from the balanced contiguous
// partition and explores single-node stage moves inside each node's feasible
// window under a geometric cooling schedule, optimizing the same
// lexicographic objective as the exact solvers (scalarized).
#pragma once

#include <cstdint>

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::heuristics {

struct AnnealingConfig {
  int num_stages = 4;
  int iterations = 20000;
  double initial_temperature = 0.35;  // relative to total parameter bytes
  double cooling = 0.9995;
  std::uint64_t seed = 0x5eed;
};

[[nodiscard]] sched::Schedule AnnealSchedule(const graph::Dag& dag,
                                             const AnnealingConfig& config);

}  // namespace respect::heuristics
