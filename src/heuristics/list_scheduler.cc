#include "heuristics/list_scheduler.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "graph/topology.h"

namespace respect::heuristics {

sched::Schedule ListSchedule(const graph::Dag& dag, int num_stages) {
  dag.Validate();
  const int n = dag.NodeCount();
  if (n < num_stages) {
    throw std::invalid_argument("ListSchedule: |V| < num_stages");
  }
  const std::vector<std::int64_t> priority = graph::CriticalPathMacs(dag);
  const std::int64_t total = dag.TotalParamBytes();

  // Max-heap on (critical path, then smaller id for determinism).
  const auto cmp = [&](graph::NodeId a, graph::NodeId b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a > b;
  };
  std::priority_queue<graph::NodeId, std::vector<graph::NodeId>,
                      decltype(cmp)>
      ready(cmp);

  std::vector<int> indeg(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(dag.Parents(v).size());
    if (indeg[v] == 0) ready.push(v);
  }

  sched::Schedule sched;
  sched.num_stages = num_stages;
  sched.stage.assign(n, 0);

  int stage = 0;
  std::int64_t cumulative = 0;
  int placed = 0;
  while (!ready.empty()) {
    const graph::NodeId v = ready.top();
    ready.pop();
    sched.stage[v] = stage;
    cumulative += dag.Attr(v).param_bytes;
    ++placed;
    const int remaining = n - placed;
    const bool share_filled =
        total > 0 &&
        cumulative * num_stages >= total * static_cast<std::int64_t>(stage + 1);
    const bool must_advance = remaining <= (num_stages - 1 - stage);
    if (stage < num_stages - 1 && (share_filled || must_advance) &&
        remaining > 0) {
      ++stage;
    }
    for (const graph::NodeId c : dag.Children(v)) {
      if (--indeg[c] == 0) ready.push(c);
    }
  }
  if (placed != n) {
    throw std::logic_error("ListSchedule: graph was not fully scheduled");
  }
  return sched;
}

}  // namespace respect::heuristics
