// ResNet v1 and v2 generators (He et al.), mirroring the Keras
// keras.applications reference implementations layer by layer.
#include <string>

#include "models/builder.h"
#include "models/zoo.h"

namespace respect::models {
namespace {

std::string N(const std::string& base, const std::string& suffix) {
  return base + "_" + suffix;
}

/// One v1 bottleneck block.  `conv_shortcut` selects the projection form
/// used by the first block of each stage.
Layer ResNetBlockV1(ModelBuilder& b, const Layer& x, int filters, int stride,
                    bool conv_shortcut, const std::string& name) {
  Layer shortcut = x;
  if (conv_shortcut) {
    shortcut = b.Conv2D(x, 4 * filters, 1, 1, stride, Padding::kSame, true,
                        N(name, "0_conv"));
    shortcut = b.BatchNorm(shortcut, N(name, "0_bn"));
  }
  Layer y = b.Conv2D(x, filters, 1, 1, stride, Padding::kSame, true,
                     N(name, "1_conv"));
  y = b.BatchNorm(y, N(name, "1_bn"));
  y = b.Relu(y, N(name, "1_relu"));
  y = b.Conv2D(y, filters, 3, 3, 1, Padding::kSame, true, N(name, "2_conv"));
  y = b.BatchNorm(y, N(name, "2_bn"));
  y = b.Relu(y, N(name, "2_relu"));
  y = b.Conv2D(y, 4 * filters, 1, 1, 1, Padding::kSame, true,
               N(name, "3_conv"));
  y = b.BatchNorm(y, N(name, "3_bn"));
  y = b.Add(shortcut, y, N(name, "add"));
  return b.Relu(y, N(name, "out"));
}

Layer ResNetStackV1(ModelBuilder& b, Layer x, int filters, int blocks,
                    int stride1, const std::string& name) {
  x = ResNetBlockV1(b, x, filters, stride1, /*conv_shortcut=*/true,
                    N(name, "block1"));
  for (int i = 2; i <= blocks; ++i) {
    x = ResNetBlockV1(b, x, filters, 1, /*conv_shortcut=*/false,
                      N(name, "block" + std::to_string(i)));
  }
  return x;
}

/// One v2 pre-activation bottleneck block.
Layer ResNetBlockV2(ModelBuilder& b, const Layer& x, int filters, int stride,
                    bool conv_shortcut, const std::string& name) {
  Layer preact = b.BatchNorm(x, N(name, "preact_bn"));
  preact = b.Relu(preact, N(name, "preact_relu"));

  Layer shortcut = x;
  if (conv_shortcut) {
    shortcut = b.Conv2D(preact, 4 * filters, 1, 1, stride, Padding::kSame,
                        true, N(name, "0_conv"));
  } else if (stride > 1) {
    shortcut = b.MaxPool(x, 1, stride, Padding::kSame, N(name, "0_pool"));
  }

  Layer y = b.Conv2D(preact, filters, 1, 1, 1, Padding::kSame, false,
                     N(name, "1_conv"));
  y = b.BatchNorm(y, N(name, "1_bn"));
  y = b.Relu(y, N(name, "1_relu"));
  y = b.ZeroPad(y, 1, N(name, "2_pad"));
  y = b.Conv2D(y, filters, 3, 3, stride, Padding::kValid, false,
               N(name, "2_conv"));
  y = b.BatchNorm(y, N(name, "2_bn"));
  y = b.Relu(y, N(name, "2_relu"));
  y = b.Conv2D(y, 4 * filters, 1, 1, 1, Padding::kSame, true,
               N(name, "3_conv"));
  return b.Add(shortcut, y, N(name, "out"));
}

Layer ResNetStackV2(ModelBuilder& b, Layer x, int filters, int blocks,
                    int stride1, const std::string& name) {
  x = ResNetBlockV2(b, x, filters, 1, /*conv_shortcut=*/true,
                    N(name, "block1"));
  for (int i = 2; i < blocks; ++i) {
    x = ResNetBlockV2(b, x, filters, 1, /*conv_shortcut=*/false,
                      N(name, "block" + std::to_string(i)));
  }
  // Keras applies the stage's stride at its *last* block in v2.
  x = ResNetBlockV2(b, x, filters, stride1, /*conv_shortcut=*/false,
                    N(name, "block" + std::to_string(blocks)));
  return x;
}

}  // namespace

graph::Dag BuildResNet(int stage3_blocks, int stage2_blocks,
                       const std::string& name) {
  ModelBuilder b(name);
  Layer x = b.Input(224, 224, 3);
  x = b.ZeroPad(x, 3, "conv1_pad");
  x = b.Conv2D(x, 64, 7, 7, 2, Padding::kValid, true, "conv1_conv");
  x = b.BatchNorm(x, "conv1_bn");
  x = b.Relu(x, "conv1_relu");
  x = b.ZeroPad(x, 1, "pool1_pad");
  x = b.MaxPool(x, 3, 2, Padding::kValid, "pool1_pool");

  x = ResNetStackV1(b, x, 64, 3, 1, "conv2");
  x = ResNetStackV1(b, x, 128, stage2_blocks, 2, "conv3");
  x = ResNetStackV1(b, x, 256, stage3_blocks, 2, "conv4");
  x = ResNetStackV1(b, x, 512, 3, 2, "conv5");

  x = b.GlobalAvgPool(x, "avg_pool");
  x = b.Dense(x, 1000, "predictions");
  return std::move(b).Build();
}

graph::Dag BuildResNetV2(int stage3_blocks, int stage2_blocks,
                         const std::string& name) {
  ModelBuilder b(name);
  Layer x = b.Input(224, 224, 3);
  x = b.ZeroPad(x, 3, "conv1_pad");
  x = b.Conv2D(x, 64, 7, 7, 2, Padding::kValid, true, "conv1_conv");
  x = b.ZeroPad(x, 1, "pool1_pad");
  x = b.MaxPool(x, 3, 2, Padding::kValid, "pool1_pool");

  x = ResNetStackV2(b, x, 64, 3, 2, "conv2");
  x = ResNetStackV2(b, x, 128, stage2_blocks, 2, "conv3");
  x = ResNetStackV2(b, x, 256, stage3_blocks, 2, "conv4");
  x = ResNetStackV2(b, x, 512, 3, 1, "conv5");

  x = b.BatchNorm(x, "post_bn");
  x = b.Relu(x, "post_relu");
  x = b.GlobalAvgPool(x, "avg_pool");
  x = b.Dense(x, 1000, "predictions");
  return std::move(b).Build();
}

}  // namespace respect::models
