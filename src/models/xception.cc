// Xception generator (Chollet), mirroring keras.applications.xception.
#include <string>

#include "models/builder.h"
#include "models/zoo.h"

namespace respect::models {
namespace {

/// Entry/exit-flow residual block with a strided conv projection shortcut.
/// `pre_act` selects whether an activation precedes the first separable
/// conv (true for blocks 3, 4 and 13; false for block 2, which follows a
/// fresh ReLU already).
Layer XceptionResidualBlock(ModelBuilder& b, const Layer& x, int f1, int f2,
                            bool pre_act, const std::string& name) {
  Layer residual =
      b.Conv2D(x, f2, 1, 1, 2, Padding::kSame, false, name + "_res_conv");
  residual = b.BatchNorm(residual, name + "_res_bn");

  Layer y = x;
  if (pre_act) y = b.Relu(y, name + "_sepconv1_act");
  y = b.SeparableConv2D(y, f1, 3, 1, Padding::kSame, name + "_sepconv1");
  y = b.BatchNorm(y, name + "_sepconv1_bn");
  y = b.Relu(y, name + "_sepconv2_act");
  y = b.SeparableConv2D(y, f2, 3, 1, Padding::kSame, name + "_sepconv2");
  y = b.BatchNorm(y, name + "_sepconv2_bn");
  y = b.MaxPool(y, 3, 2, Padding::kSame, name + "_pool");
  return b.Add(y, residual, name + "_add");
}

/// Middle-flow block: three ReLU+SepConv+BN triples with identity shortcut.
Layer XceptionMiddleBlock(ModelBuilder& b, const Layer& x,
                          const std::string& name) {
  Layer y = x;
  for (int i = 1; i <= 3; ++i) {
    const std::string s = name + "_sepconv" + std::to_string(i);
    y = b.Relu(y, s + "_act");
    y = b.SeparableConv2D(y, 728, 3, 1, Padding::kSame, s);
    y = b.BatchNorm(y, s + "_bn");
  }
  return b.Add(y, x, name + "_add");
}

}  // namespace

graph::Dag BuildXception() {
  ModelBuilder b("Xception");
  Layer x = b.Input(299, 299, 3);
  x = b.Conv2D(x, 32, 3, 3, 2, Padding::kValid, false, "block1_conv1");
  x = b.BatchNorm(x, "block1_conv1_bn");
  x = b.Relu(x, "block1_conv1_act");
  x = b.Conv2D(x, 64, 3, 3, 1, Padding::kValid, false, "block1_conv2");
  x = b.BatchNorm(x, "block1_conv2_bn");
  x = b.Relu(x, "block1_conv2_act");

  x = XceptionResidualBlock(b, x, 128, 128, /*pre_act=*/false, "block2");
  x = XceptionResidualBlock(b, x, 256, 256, /*pre_act=*/true, "block3");
  x = XceptionResidualBlock(b, x, 728, 728, /*pre_act=*/true, "block4");

  for (int i = 5; i <= 12; ++i) {
    x = XceptionMiddleBlock(b, x, "block" + std::to_string(i));
  }

  x = XceptionResidualBlock(b, x, 728, 1024, /*pre_act=*/true, "block13");

  x = b.SeparableConv2D(x, 1536, 3, 1, Padding::kSame, "block14_sepconv1");
  x = b.BatchNorm(x, "block14_sepconv1_bn");
  x = b.Relu(x, "block14_sepconv1_act");
  x = b.SeparableConv2D(x, 2048, 3, 1, Padding::kSame, "block14_sepconv2");
  x = b.BatchNorm(x, "block14_sepconv2_bn");
  x = b.Relu(x, "block14_sepconv2_act");
  x = b.GlobalAvgPool(x, "avg_pool");
  x = b.Dense(x, 1000, "predictions");
  return std::move(b).Build();
}

}  // namespace respect::models
