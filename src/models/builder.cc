#include "models/builder.h"

#include <cmath>
#include <stdexcept>

namespace respect::models {
namespace {

constexpr std::int64_t kFloatBytes = 4;

int ConvOutDim(int in, int k, int stride, Padding padding) {
  if (in <= 0 || k <= 0 || stride <= 0) {
    throw std::invalid_argument("ConvOutDim: non-positive dimension");
  }
  if (padding == Padding::kSame) {
    return (in + stride - 1) / stride;
  }
  if (in < k) {
    throw std::invalid_argument("ConvOutDim: kernel larger than input");
  }
  return (in - k) / stride + 1;
}

std::int64_t ActivationBytes(const TensorShape& s) {
  return s.Elements() * kFloatBytes;
}

}  // namespace

ModelBuilder::ModelBuilder(std::string model_name)
    : dag_(std::move(model_name)) {}

Layer ModelBuilder::AddLayer(graph::OpAttr attr, TensorShape shape,
                             std::initializer_list<graph::NodeId> inputs) {
  attr.output_bytes = ActivationBytes(shape);
  const graph::NodeId id = dag_.AddNode(std::move(attr));
  for (const graph::NodeId in : inputs) dag_.AddEdge(in, id);
  return Layer{id, shape};
}

Layer ModelBuilder::Input(int h, int w, int c) {
  if (has_input_) {
    throw std::logic_error("ModelBuilder::Input called twice");
  }
  has_input_ = true;
  graph::OpAttr attr;
  attr.name = "input";
  attr.type = graph::OpType::kInput;
  return AddLayer(std::move(attr), TensorShape{h, w, c}, {});
}

Layer ModelBuilder::Conv2D(const Layer& in, int filters, int kh, int kw,
                           int stride, Padding padding, bool use_bias,
                           const std::string& name) {
  const TensorShape out{ConvOutDim(in.shape.h, kh, stride, padding),
                        ConvOutDim(in.shape.w, kw, stride, padding), filters};
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kConv2D;
  const std::int64_t weights =
      std::int64_t{kh} * kw * in.shape.c * filters + (use_bias ? filters : 0);
  attr.param_bytes = weights * kFloatBytes;
  attr.macs = std::int64_t{kh} * kw * in.shape.c * filters * out.h * out.w;
  return AddLayer(std::move(attr), out, {in.node});
}

Layer ModelBuilder::SeparableConv2D(const Layer& in, int filters, int k,
                                    int stride, Padding padding,
                                    const std::string& name) {
  const TensorShape out{ConvOutDim(in.shape.h, k, stride, padding),
                        ConvOutDim(in.shape.w, k, stride, padding), filters};
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kSeparableConv2D;
  const std::int64_t depthwise = std::int64_t{k} * k * in.shape.c;
  const std::int64_t pointwise = std::int64_t{in.shape.c} * filters;
  attr.param_bytes = (depthwise + pointwise) * kFloatBytes;
  attr.macs = depthwise * out.h * out.w + pointwise * out.h * out.w;
  return AddLayer(std::move(attr), out, {in.node});
}

Layer ModelBuilder::BatchNorm(const Layer& in, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kBatchNorm;
  attr.param_bytes = std::int64_t{4} * in.shape.c * kFloatBytes;
  attr.macs = 2 * in.shape.Elements();
  return AddLayer(std::move(attr), in.shape, {in.node});
}

Layer ModelBuilder::Relu(const Layer& in, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kRelu;
  attr.macs = in.shape.Elements();
  return AddLayer(std::move(attr), in.shape, {in.node});
}

Layer ModelBuilder::Add(const Layer& a, const Layer& b,
                        const std::string& name) {
  if (!(a.shape == b.shape)) {
    throw std::invalid_argument("ModelBuilder::Add: shape mismatch at " + name);
  }
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kAdd;
  attr.macs = a.shape.Elements();
  return AddLayer(std::move(attr), a.shape, {a.node, b.node});
}

Layer ModelBuilder::ScaledAdd(const Layer& a, const Layer& b, double scale,
                              const std::string& name) {
  if (a.shape.h != b.shape.h || a.shape.w != b.shape.w ||
      a.shape.c != b.shape.c) {
    throw std::invalid_argument("ModelBuilder::ScaledAdd: shape mismatch at " +
                                name);
  }
  (void)scale;  // affects values only, not graph structure or cost
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kAdd;
  attr.macs = 2 * a.shape.Elements();
  return AddLayer(std::move(attr), a.shape, {a.node, b.node});
}

Layer ModelBuilder::Concat(const std::vector<Layer>& ins,
                           const std::string& name) {
  if (ins.size() < 2) {
    throw std::invalid_argument("ModelBuilder::Concat: needs >= 2 inputs");
  }
  TensorShape out = ins.front().shape;
  out.c = 0;
  for (const Layer& in : ins) {
    if (in.shape.h != out.h || in.shape.w != out.w) {
      throw std::invalid_argument(
          "ModelBuilder::Concat: spatial mismatch at " + name);
    }
    out.c += in.shape.c;
  }
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kConcat;
  attr.macs = out.Elements();  // copy cost
  std::vector<graph::NodeId> nodes;
  nodes.reserve(ins.size());
  for (const Layer& in : ins) nodes.push_back(in.node);
  attr.output_bytes = out.Elements() * kFloatBytes;
  const graph::NodeId id = dag_.AddNode(std::move(attr));
  for (const graph::NodeId n : nodes) dag_.AddEdge(n, id);
  return Layer{id, out};
}

TensorShape ModelBuilder::PoolOut(const Layer& in, int k, int stride,
                                  Padding padding) {
  return TensorShape{ConvOutDim(in.shape.h, k, stride, padding),
                     ConvOutDim(in.shape.w, k, stride, padding), in.shape.c};
}

Layer ModelBuilder::MaxPool(const Layer& in, int k, int stride,
                            Padding padding, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kMaxPool;
  const TensorShape out = PoolOut(in, k, stride, padding);
  attr.macs = std::int64_t{k} * k * out.Elements();
  return AddLayer(std::move(attr), out, {in.node});
}

Layer ModelBuilder::AvgPool(const Layer& in, int k, int stride,
                            Padding padding, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kAvgPool;
  const TensorShape out = PoolOut(in, k, stride, padding);
  attr.macs = std::int64_t{k} * k * out.Elements();
  return AddLayer(std::move(attr), out, {in.node});
}

Layer ModelBuilder::GlobalAvgPool(const Layer& in, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kGlobalPool;
  attr.macs = in.shape.Elements();
  return AddLayer(std::move(attr), TensorShape{1, 1, in.shape.c}, {in.node});
}

Layer ModelBuilder::Dense(const Layer& in, int units, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kDense;
  const std::int64_t cin = in.shape.Elements();
  attr.param_bytes = (cin * units + units) * kFloatBytes;
  attr.macs = cin * units;
  return AddLayer(std::move(attr), TensorShape{1, 1, units}, {in.node});
}

Layer ModelBuilder::ZeroPad(const Layer& in, int pad, const std::string& name) {
  graph::OpAttr attr;
  attr.name = name;
  attr.type = graph::OpType::kPad;
  const TensorShape out{in.shape.h + 2 * pad, in.shape.w + 2 * pad, in.shape.c};
  attr.macs = out.Elements();
  return AddLayer(std::move(attr), out, {in.node});
}

graph::Dag ModelBuilder::Build() && {
  dag_.Validate();
  return std::move(dag_);
}

}  // namespace respect::models
