#include "models/zoo.h"

#include <stdexcept>

namespace respect::models {

std::string_view ModelNameString(ModelName name) {
  switch (name) {
    case ModelName::kXception: return "Xception";
    case ModelName::kResNet50: return "ResNet50";
    case ModelName::kResNet101: return "ResNet101";
    case ModelName::kResNet152: return "ResNet152";
    case ModelName::kDenseNet121: return "DenseNet121";
    case ModelName::kResNet101V2: return "ResNet101v2";
    case ModelName::kResNet152V2: return "ResNet152v2";
    case ModelName::kDenseNet169: return "DenseNet169";
    case ModelName::kDenseNet201: return "DenseNet201";
    case ModelName::kInceptionResNetV2: return "InceptionResNetv2";
    case ModelName::kResNet50V2: return "ResNet50v2";
    case ModelName::kInceptionV3: return "InceptionV3";
  }
  return "Unknown";
}

TableIStats PaperStats(ModelName name) {
  // Table I of the paper, verbatim.
  switch (name) {
    case ModelName::kXception: return {134, 2, 125};
    case ModelName::kResNet50: return {177, 2, 168};
    case ModelName::kResNet101: return {347, 2, 338};
    case ModelName::kResNet152: return {517, 2, 508};
    case ModelName::kDenseNet121: return {429, 2, 428};
    case ModelName::kResNet101V2: return {379, 2, 371};
    case ModelName::kResNet152V2: return {566, 2, 558};
    case ModelName::kDenseNet169: return {597, 2, 596};
    case ModelName::kDenseNet201: return {709, 2, 708};
    case ModelName::kInceptionResNetV2: return {782, 4, 571};
    case ModelName::kResNet50V2:
    case ModelName::kInceptionV3:
      return {0, 0, 0};  // not reported in Table I
  }
  return {0, 0, 0};
}

graph::Dag BuildModel(ModelName name) {
  switch (name) {
    case ModelName::kXception: return BuildXception();
    case ModelName::kResNet50: return BuildResNet(6, 4, "ResNet50");
    case ModelName::kResNet101: return BuildResNet(23, 4, "ResNet101");
    case ModelName::kResNet152: return BuildResNet(36, 8, "ResNet152");
    case ModelName::kDenseNet121:
      return BuildDenseNet({6, 12, 24, 16}, "DenseNet121");
    case ModelName::kResNet101V2: return BuildResNetV2(23, 4, "ResNet101v2");
    case ModelName::kResNet152V2: return BuildResNetV2(36, 8, "ResNet152v2");
    case ModelName::kDenseNet169:
      return BuildDenseNet({6, 12, 32, 32}, "DenseNet169");
    case ModelName::kDenseNet201:
      return BuildDenseNet({6, 12, 48, 32}, "DenseNet201");
    case ModelName::kInceptionResNetV2: return BuildInceptionResNetV2();
    case ModelName::kResNet50V2: return BuildResNetV2(6, 4, "ResNet50v2");
    case ModelName::kInceptionV3: return BuildInceptionV3();
  }
  throw std::invalid_argument("BuildModel: unknown model");
}

std::vector<ModelName> TableIModels() {
  return {ModelName::kXception,        ModelName::kResNet50,
          ModelName::kResNet101,       ModelName::kResNet152,
          ModelName::kDenseNet121,     ModelName::kResNet101V2,
          ModelName::kResNet152V2,     ModelName::kDenseNet169,
          ModelName::kDenseNet201,     ModelName::kInceptionResNetV2};
}

std::vector<ModelName> Fig5Models() {
  return {ModelName::kDenseNet121,     ModelName::kDenseNet169,
          ModelName::kDenseNet201,     ModelName::kResNet50,
          ModelName::kResNet101,       ModelName::kResNet152,
          ModelName::kResNet50V2,      ModelName::kResNet101V2,
          ModelName::kInceptionResNetV2, ModelName::kResNet152V2,
          ModelName::kInceptionV3,     ModelName::kXception};
}

}  // namespace respect::models
