// DenseNet generator (Huang et al.), mirroring keras.applications.densenet.
#include <string>

#include "models/builder.h"
#include "models/zoo.h"

namespace respect::models {
namespace {

/// One dense layer ("conv block" in Keras): BN-ReLU-Conv1x1 bottleneck,
/// BN-ReLU-Conv3x3 growth, then concat with the running feature map.
Layer DenseConvBlock(ModelBuilder& b, const Layer& x, int growth,
                     const std::string& name) {
  Layer y = b.BatchNorm(x, name + "_0_bn");
  y = b.Relu(y, name + "_0_relu");
  y = b.Conv2D(y, 4 * growth, 1, 1, 1, Padding::kSame, false,
               name + "_1_conv");
  y = b.BatchNorm(y, name + "_1_bn");
  y = b.Relu(y, name + "_1_relu");
  y = b.Conv2D(y, growth, 3, 3, 1, Padding::kSame, false, name + "_2_conv");
  return b.Concat({x, y}, name + "_concat");
}

Layer DenseBlock(ModelBuilder& b, Layer x, int blocks,
                 const std::string& name) {
  for (int i = 1; i <= blocks; ++i) {
    x = DenseConvBlock(b, x, /*growth=*/32,
                       name + "_block" + std::to_string(i));
  }
  return x;
}

/// Transition: BN-ReLU-Conv1x1 (compression 0.5) + 2x2 average pool.
Layer Transition(ModelBuilder& b, const Layer& x, const std::string& name) {
  Layer y = b.BatchNorm(x, name + "_bn");
  y = b.Relu(y, name + "_relu");
  y = b.Conv2D(y, x.shape.c / 2, 1, 1, 1, Padding::kSame, false,
               name + "_conv");
  return b.AvgPool(y, 2, 2, Padding::kSame, name + "_pool");
}

}  // namespace

graph::Dag BuildDenseNet(const std::vector<int>& blocks,
                         const std::string& name) {
  ModelBuilder b(name);
  Layer x = b.Input(224, 224, 3);
  x = b.ZeroPad(x, 3, "zero_padding2d");
  x = b.Conv2D(x, 64, 7, 7, 2, Padding::kValid, false, "conv1/conv");
  x = b.BatchNorm(x, "conv1/bn");
  x = b.Relu(x, "conv1/relu");
  x = b.ZeroPad(x, 1, "zero_padding2d_1");
  x = b.MaxPool(x, 3, 2, Padding::kValid, "pool1");

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    x = DenseBlock(b, x, blocks[i], "conv" + std::to_string(i + 2));
    if (i + 1 < blocks.size()) {
      x = Transition(b, x, "pool" + std::to_string(i + 2));
    }
  }

  x = b.BatchNorm(x, "bn");
  x = b.Relu(x, "relu");
  x = b.GlobalAvgPool(x, "avg_pool");
  x = b.Dense(x, 1000, "predictions");
  return std::move(b).Build();
}

}  // namespace respect::models
