// InceptionV3 (Szegedy et al.) and InceptionResNetV2 generators, mirroring
// keras.applications.inception_v3 / inception_resnet_v2.
#include <string>
#include <vector>

#include "models/builder.h"
#include "models/zoo.h"

namespace respect::models {
namespace {

/// Keras `conv2d_bn`: Conv (no bias) + BatchNorm + ReLU — three nodes.
Layer ConvBnRelu(ModelBuilder& b, const Layer& x, int filters, int kh, int kw,
                 int stride, Padding padding, const std::string& name) {
  Layer y = b.Conv2D(x, filters, kh, kw, stride, padding, false,
                     name + "_conv");
  y = b.BatchNorm(y, name + "_bn");
  return b.Relu(y, name + "_act");
}

/// Builder-local conv2d_bn namer (sequential Keras-style layer names).
auto MakeCbr(ModelBuilder& b, int& counter) {
  return [&b, &counter](const Layer& x, int filters, int kh, int kw,
                        int stride = 1, Padding padding = Padding::kSame) {
    return ConvBnRelu(b, x, filters, kh, kw, stride, padding,
                      "conv2d_" + std::to_string(++counter));
  };
}

}  // namespace

graph::Dag BuildInceptionV3() {
  ModelBuilder b("InceptionV3");
  int cbr_counter = 0;
  const auto Cbr = MakeCbr(b, cbr_counter);
  Layer x = b.Input(299, 299, 3);
  x = Cbr(x, 32, 3, 3, 2, Padding::kValid);
  x = Cbr(x, 32, 3, 3, 1, Padding::kValid);
  x = Cbr(x, 64, 3, 3);
  x = b.MaxPool(x, 3, 2, Padding::kValid, "max_pooling2d");
  x = Cbr(x, 80, 1, 1, 1, Padding::kValid);
  x = Cbr(x, 192, 3, 3, 1, Padding::kValid);
  x = b.MaxPool(x, 3, 2, Padding::kValid, "max_pooling2d_1");

  // Three Inception-A blocks (mixed0..mixed2).
  for (int i = 0; i < 3; ++i) {
    const int pool_filters = (i == 0) ? 32 : 64;
    Layer b0 = Cbr(x, 64, 1, 1);
    Layer b1 = Cbr(x, 48, 1, 1);
    b1 = Cbr(b1, 64, 5, 5);
    Layer b2 = Cbr(x, 64, 1, 1);
    b2 = Cbr(b2, 96, 3, 3);
    b2 = Cbr(b2, 96, 3, 3);
    Layer bp = b.AvgPool(x, 3, 1, Padding::kSame,
                         "avg_pool_mixed" + std::to_string(i));
    bp = Cbr(bp, pool_filters, 1, 1);
    x = b.Concat({b0, b1, b2, bp}, "mixed" + std::to_string(i));
  }

  // Reduction-A (mixed3).
  {
    Layer b0 = Cbr(x, 384, 3, 3, 2, Padding::kValid);
    Layer b1 = Cbr(x, 64, 1, 1);
    b1 = Cbr(b1, 96, 3, 3);
    b1 = Cbr(b1, 96, 3, 3, 2, Padding::kValid);
    Layer bp = b.MaxPool(x, 3, 2, Padding::kValid, "max_pool_mixed3");
    x = b.Concat({b0, b1, bp}, "mixed3");
  }

  // Four Inception-B blocks (mixed4..mixed7) with factorized 7x7 convs.
  for (int i = 4; i <= 7; ++i) {
    const int f = (i == 4) ? 128 : (i == 7 ? 192 : 160);
    Layer b0 = Cbr(x, 192, 1, 1);
    Layer b1 = Cbr(x, f, 1, 1);
    b1 = Cbr(b1, f, 1, 7);
    b1 = Cbr(b1, 192, 7, 1);
    Layer b2 = Cbr(x, f, 1, 1);
    b2 = Cbr(b2, f, 7, 1);
    b2 = Cbr(b2, f, 1, 7);
    b2 = Cbr(b2, f, 7, 1);
    b2 = Cbr(b2, 192, 1, 7);
    Layer bp = b.AvgPool(x, 3, 1, Padding::kSame,
                         "avg_pool_mixed" + std::to_string(i));
    bp = Cbr(bp, 192, 1, 1);
    x = b.Concat({b0, b1, b2, bp}, "mixed" + std::to_string(i));
  }

  // Reduction-B (mixed8).
  {
    Layer b0 = Cbr(x, 192, 1, 1);
    b0 = Cbr(b0, 320, 3, 3, 2, Padding::kValid);
    Layer b1 = Cbr(x, 192, 1, 1);
    b1 = Cbr(b1, 192, 1, 7);
    b1 = Cbr(b1, 192, 7, 1);
    b1 = Cbr(b1, 192, 3, 3, 2, Padding::kValid);
    Layer bp = b.MaxPool(x, 3, 2, Padding::kValid, "max_pool_mixed8");
    x = b.Concat({b0, b1, bp}, "mixed8");
  }

  // Two Inception-C blocks (mixed9, mixed10) with split branches.
  for (int i = 9; i <= 10; ++i) {
    const std::string m = "mixed" + std::to_string(i);
    Layer b0 = Cbr(x, 320, 1, 1);
    Layer b1 = Cbr(x, 384, 1, 1);
    Layer b1a = Cbr(b1, 384, 1, 3);
    Layer b1b = Cbr(b1, 384, 3, 1);
    Layer b1c = b.Concat({b1a, b1b}, m + "_1");
    Layer b2 = Cbr(x, 448, 1, 1);
    b2 = Cbr(b2, 384, 3, 3);
    Layer b2a = Cbr(b2, 384, 1, 3);
    Layer b2b = Cbr(b2, 384, 3, 1);
    Layer b2c = b.Concat({b2a, b2b}, m + "_2");
    Layer bp = b.AvgPool(x, 3, 1, Padding::kSame, "avg_pool_" + m);
    bp = Cbr(bp, 192, 1, 1);
    x = b.Concat({b0, b1c, b2c, bp}, m);
  }

  x = b.GlobalAvgPool(x, "avg_pool");
  x = b.Dense(x, 1000, "predictions");
  return std::move(b).Build();
}

graph::Dag BuildInceptionResNetV2() {
  ModelBuilder b("InceptionResNetV2");
  int cbr_counter = 0;
  const auto Cbr = MakeCbr(b, cbr_counter);
  Layer x = b.Input(299, 299, 3);
  x = Cbr(x, 32, 3, 3, 2, Padding::kValid);
  x = Cbr(x, 32, 3, 3, 1, Padding::kValid);
  x = Cbr(x, 64, 3, 3);
  x = b.MaxPool(x, 3, 2, Padding::kValid, "max_pooling2d");
  x = Cbr(x, 80, 1, 1, 1, Padding::kValid);
  x = Cbr(x, 192, 3, 3, 1, Padding::kValid);
  x = b.MaxPool(x, 3, 2, Padding::kValid, "max_pooling2d_1");

  // mixed_5b (Inception-A): the 4-way concat that gives deg(V) = 4.
  {
    Layer b0 = Cbr(x, 96, 1, 1);
    Layer b1 = Cbr(x, 48, 1, 1);
    b1 = Cbr(b1, 64, 5, 5);
    Layer b2 = Cbr(x, 64, 1, 1);
    b2 = Cbr(b2, 96, 3, 3);
    b2 = Cbr(b2, 96, 3, 3);
    Layer bp = b.AvgPool(x, 3, 1, Padding::kSame, "avg_pool_5b");
    bp = Cbr(bp, 64, 1, 1);
    x = b.Concat({b0, b1, b2, bp}, "mixed_5b");
  }

  // 10x block35 (Inception-ResNet-A).
  for (int i = 1; i <= 10; ++i) {
    const std::string m = "block35_" + std::to_string(i);
    Layer b0 = Cbr(x, 32, 1, 1);
    Layer b1 = Cbr(x, 32, 1, 1);
    b1 = Cbr(b1, 32, 3, 3);
    Layer b2 = Cbr(x, 32, 1, 1);
    b2 = Cbr(b2, 48, 3, 3);
    b2 = Cbr(b2, 64, 3, 3);
    Layer mixed = b.Concat({b0, b1, b2}, m + "_mixed");
    Layer up = b.Conv2D(mixed, x.shape.c, 1, 1, 1, Padding::kSame, true,
                        m + "_conv");
    x = b.ScaledAdd(x, up, 0.17, m);
    x = b.Relu(x, m + "_ac");
  }

  // mixed_6a (Reduction-A).
  {
    Layer b0 = Cbr(x, 384, 3, 3, 2, Padding::kValid);
    Layer b1 = Cbr(x, 256, 1, 1);
    b1 = Cbr(b1, 256, 3, 3);
    b1 = Cbr(b1, 384, 3, 3, 2, Padding::kValid);
    Layer bp = b.MaxPool(x, 3, 2, Padding::kValid, "max_pool_6a");
    x = b.Concat({b0, b1, bp}, "mixed_6a");
  }

  // 20x block17 (Inception-ResNet-B).
  for (int i = 1; i <= 20; ++i) {
    const std::string m = "block17_" + std::to_string(i);
    Layer b0 = Cbr(x, 192, 1, 1);
    Layer b1 = Cbr(x, 128, 1, 1);
    b1 = Cbr(b1, 160, 1, 7);
    b1 = Cbr(b1, 192, 7, 1);
    Layer mixed = b.Concat({b0, b1}, m + "_mixed");
    Layer up = b.Conv2D(mixed, x.shape.c, 1, 1, 1, Padding::kSame, true,
                        m + "_conv");
    x = b.ScaledAdd(x, up, 0.1, m);
    x = b.Relu(x, m + "_ac");
  }

  // mixed_7a (Reduction-B): another 4-way concat.
  {
    Layer b0 = Cbr(x, 256, 1, 1);
    b0 = Cbr(b0, 384, 3, 3, 2, Padding::kValid);
    Layer b1 = Cbr(x, 256, 1, 1);
    b1 = Cbr(b1, 288, 3, 3, 2, Padding::kValid);
    Layer b2 = Cbr(x, 256, 1, 1);
    b2 = Cbr(b2, 288, 3, 3);
    b2 = Cbr(b2, 320, 3, 3, 2, Padding::kValid);
    Layer bp = b.MaxPool(x, 3, 2, Padding::kValid, "max_pool_7a");
    x = b.Concat({b0, b1, b2, bp}, "mixed_7a");
  }

  // 9x block8 with activation + 1 final block8 without.
  for (int i = 1; i <= 10; ++i) {
    const std::string m = "block8_" + std::to_string(i);
    Layer b0 = Cbr(x, 192, 1, 1);
    Layer b1 = Cbr(x, 192, 1, 1);
    b1 = Cbr(b1, 224, 1, 3);
    b1 = Cbr(b1, 256, 3, 1);
    Layer mixed = b.Concat({b0, b1}, m + "_mixed");
    Layer up = b.Conv2D(mixed, x.shape.c, 1, 1, 1, Padding::kSame, true,
                        m + "_conv");
    x = b.ScaledAdd(x, up, i < 10 ? 0.2 : 1.0, m);
    if (i < 10) x = b.Relu(x, m + "_ac");
  }

  x = Cbr(x, 1536, 1, 1);  // conv_7b
  x = b.GlobalAvgPool(x, "avg_pool");
  x = b.Dense(x, 1000, "predictions");
  return std::move(b).Build();
}

}  // namespace respect::models
