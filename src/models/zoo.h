// Model zoo: structural reconstructions of the twelve ImageNet architectures
// evaluated in the paper (Table I plus the two extra models of Fig. 5).
//
// Each generator reproduces the Keras layer graph of the architecture —
// verified against Table I of the paper: |V| (node count), deg(V) (max
// in-degree) and Depth (longest path, input excluded) match exactly for all
// ten Table I models.  Parameter/activation/MAC attributes are derived from
// the real layer shapes, so total weight footprints match the published
// models (e.g. ResNet50 ≈ 25.6 M parameters).
#pragma once

#include <string>
#include <vector>

#include "graph/dag.h"

namespace respect::models {

/// Evaluated architectures.  Order matches the paper's Table I followed by
/// the two models that only appear in Fig. 5.
enum class ModelName {
  kXception,
  kResNet50,
  kResNet101,
  kResNet152,
  kDenseNet121,
  kResNet101V2,
  kResNet152V2,
  kDenseNet169,
  kDenseNet201,
  kInceptionResNetV2,
  // Fig. 5 additions:
  kResNet50V2,
  kInceptionV3,
};

/// Reference statistics as printed in Table I of the paper.
struct TableIStats {
  int num_nodes = 0;     // |V|
  int max_in_degree = 0; // deg(V)
  int depth = 0;         // longest path, input excluded
};

[[nodiscard]] std::string_view ModelNameString(ModelName name);

/// Paper-reported statistics (only defined for the ten Table I models;
/// returns zeros for the two Fig. 5-only models).
[[nodiscard]] TableIStats PaperStats(ModelName name);

/// Builds the computational graph of the given architecture.
[[nodiscard]] graph::Dag BuildModel(ModelName name);

/// The ten models of Table I, in the paper's order.
[[nodiscard]] std::vector<ModelName> TableIModels();

/// The twelve models of Fig. 5 (gap-to-optimal analysis).
[[nodiscard]] std::vector<ModelName> Fig5Models();

// Individual generators (exposed for tests and examples).
[[nodiscard]] graph::Dag BuildResNet(int stage3_blocks, int stage2_blocks,
                                     const std::string& name);
[[nodiscard]] graph::Dag BuildResNetV2(int stage3_blocks, int stage2_blocks,
                                       const std::string& name);
[[nodiscard]] graph::Dag BuildDenseNet(const std::vector<int>& blocks,
                                       const std::string& name);
[[nodiscard]] graph::Dag BuildXception();
[[nodiscard]] graph::Dag BuildInceptionV3();
[[nodiscard]] graph::Dag BuildInceptionResNetV2();

}  // namespace respect::models
