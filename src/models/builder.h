// Shape-tracking builder for DNN computational graphs.
//
// The model zoo (zoo.h) reconstructs the layer graphs of the twelve ImageNet
// architectures the paper evaluates.  Every Keras layer becomes one Dag node,
// which is exactly the granularity at which the paper's Table I counts |V|,
// deg(V) and Depth.  The builder tracks tensor shapes through the network so
// each node gets realistic parameter bytes, activation bytes and MAC counts —
// the three attributes all schedulers and the Edge TPU simulator consume.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "graph/dag.h"

namespace respect::models {

/// Spatial/channel shape of an activation tensor (NHWC with N=1).
struct TensorShape {
  int h = 0;
  int w = 0;
  int c = 0;

  [[nodiscard]] std::int64_t Elements() const {
    return std::int64_t{h} * w * c;
  }
  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

/// Padding mode following convolution arithmetic ("same" keeps
/// ceil(h/stride), "valid" computes floor((h-k)/stride)+1).
enum class Padding { kSame, kValid };

/// Handle to a node inside the builder: the node id plus its output shape.
struct Layer {
  graph::NodeId node = graph::kInvalidNode;
  TensorShape shape;
};

/// Builds a Dag layer by layer, mirroring the Keras functional API closely
/// enough that the zoo generators read like the original model definitions.
class ModelBuilder {
 public:
  explicit ModelBuilder(std::string model_name);

  /// The network input (h x w x c image).  Must be called exactly once
  /// before any other layer.
  Layer Input(int h, int w, int c);

  /// Standard 2-D convolution.  `use_bias` mirrors Keras (conv layers feeding
  /// a BatchNorm are bias-free).  kh/kw may differ (e.g. 1x7 factorized
  /// convolutions in InceptionV3).
  Layer Conv2D(const Layer& in, int filters, int kh, int kw, int stride,
               Padding padding, bool use_bias, const std::string& name);

  /// Depthwise separable convolution (one node, as in Keras Xception).
  Layer SeparableConv2D(const Layer& in, int filters, int k, int stride,
                        Padding padding, const std::string& name);

  Layer BatchNorm(const Layer& in, const std::string& name);
  Layer Relu(const Layer& in, const std::string& name);

  /// Elementwise residual addition; shapes must match.
  Layer Add(const Layer& a, const Layer& b, const std::string& name);

  /// Scaled residual addition (the Lambda layer of InceptionResNetV2:
  /// out = a + scale * b).  One node, like the Keras Lambda.
  Layer ScaledAdd(const Layer& a, const Layer& b, double scale,
                  const std::string& name);

  /// Channel concatenation of two or more inputs.
  Layer Concat(const std::vector<Layer>& ins, const std::string& name);

  Layer MaxPool(const Layer& in, int k, int stride, Padding padding,
                const std::string& name);
  Layer AvgPool(const Layer& in, int k, int stride, Padding padding,
                const std::string& name);
  Layer GlobalAvgPool(const Layer& in, const std::string& name);

  /// Fully connected head ("predictions" in Keras; softmax folded in).
  Layer Dense(const Layer& in, int units, const std::string& name);

  /// Explicit zero padding node (Keras ZeroPadding2D).
  Layer ZeroPad(const Layer& in, int pad, const std::string& name);

  /// Finalizes and returns the graph (validates acyclicity).
  [[nodiscard]] graph::Dag Build() &&;

 private:
  Layer AddLayer(graph::OpAttr attr, TensorShape shape,
                 std::initializer_list<graph::NodeId> inputs);
  static TensorShape PoolOut(const Layer& in, int k, int stride,
                             Padding padding);

  graph::Dag dag_;
  bool has_input_ = false;
};

}  // namespace respect::models
