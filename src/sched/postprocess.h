// Post-inference processing (paper §III-B, last paragraph).
//
// The RL agent's output is a sequence with no feasibility guarantee.  After
// ρ packs it into stages, two deterministic repairs make it deployable:
//  1. dependency repair — "corrects the dependency violation by simply
//     pushing the involved node forward";
//  2. co-children repair — "Edge TPU hardware requires children nodes of any
//     node to be in the same pipeline, where the post-inference procedure
//     assigns these nodes to the earliest predicted stage".
#pragma once

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::sched {

/// Pushes every node forward to at least the maximum stage of its parents
/// (single topological sweep; minimal change, preserves stage count).
/// Returns the number of nodes moved.
int RepairDependencies(const graph::Dag& dag, Schedule& schedule);

/// Moves all children of every multi-fanout node to the earliest stage among
/// them, then re-runs dependency repair, iterating to a fixpoint.  Returns
/// the number of fixpoint iterations executed.
int EnforceCochildren(const graph::Dag& dag, Schedule& schedule);

/// If some stages ended up empty (packing very small graphs, or repairs
/// collapsing stages), shifts boundary nodes to re-populate them so the
/// schedule satisfies the no-empty-stage deployment rule.  Keeps dependency
/// feasibility.  Throws std::logic_error when |V| < num_stages.
void FillEmptyStages(const graph::Dag& dag, Schedule& schedule);

/// Full deployment repair: dependency repair, optional co-children pass,
/// then empty-stage filling.  The result always satisfies
/// ValidateSchedule(dag, s, constraints).
void PostProcess(const graph::Dag& dag, const PipelineConstraints& constraints,
                 Schedule& schedule);

}  // namespace respect::sched
