// Schedule representation, feasibility checks and cost metrics.
//
// A schedule assigns every operator of a computational graph to one of `n`
// pipeline stages (stage k runs on Edge TPU k).  Feasibility means stage
// assignments are monotone along every dataflow edge — data only flows
// forward through the pipeline.  The optimization objective follows the
// paper (§IV): balance per-stage parameter memory (peak stage memory is what
// parameter caching cares about, Fig. 5) with communication bytes across
// stage boundaries as the tie breaker.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "tpu/device_profile.h"

namespace respect::sched {

/// Assignment of every node to a pipeline stage in [0, num_stages).
struct Schedule {
  int num_stages = 0;
  std::vector<int> stage;  // indexed by NodeId

  [[nodiscard]] int StageOf(graph::NodeId v) const { return stage.at(v); }
};

/// Constraints a valid deployment schedule must satisfy.
struct PipelineConstraints {
  int num_stages = 4;

  /// Whether a stage may end up with no operators.  Physical pipelines
  /// require every Edge TPU to receive a submodel.
  bool allow_empty_stages = false;

  /// Edge TPU deployment rule from the paper's post-inference processing:
  /// all children of any node must live in the same stage.  Off by default
  /// (it is applied as a deployment repair, not a scheduling constraint).
  bool require_cochildren = false;

  /// Hardware the schedule will run on.  Engines consult it through
  /// sched::EstimateStageService (device_aware.h); the default profile
  /// (uniform stock Corals) preserves the paper's pure byte objective
  /// bit-for-bit.
  tpu::DeviceProfile profile;
};

/// Result of validating a schedule; `ok` plus a human-readable reason.
struct ValidationResult {
  bool ok = true;
  std::string reason;
};

/// Checks dependency monotonicity, stage ranges, assignment completeness,
/// and the optional constraint flags.
[[nodiscard]] ValidationResult ValidateSchedule(
    const graph::Dag& dag, const Schedule& schedule,
    const PipelineConstraints& constraints);

/// Per-schedule cost metrics.
struct ScheduleMetrics {
  /// Parameter bytes resident on each stage (what must fit the 8 MiB cache).
  std::vector<std::int64_t> stage_param_bytes;

  /// max over stages of stage_param_bytes — the paper's Fig. 5 metric.
  std::int64_t peak_stage_param_bytes = 0;

  /// Activation bytes crossing stage boundaries, hop-weighted: a tensor
  /// produced in stage s and last consumed in stage t travels t-s hops over
  /// USB.
  std::int64_t comm_bytes = 0;

  /// Number of distinct tensors that cross at least one boundary.
  int cut_tensor_count = 0;
};

[[nodiscard]] ScheduleMetrics ComputeMetrics(const graph::Dag& dag,
                                             const Schedule& schedule);

/// Lexicographic objective value: primary peak stage memory, secondary
/// hop-weighted communication.  Smaller is better.
struct ObjectiveValue {
  std::int64_t peak_param_bytes = 0;
  std::int64_t comm_bytes = 0;

  friend std::strong_ordering operator<=>(const ObjectiveValue&,
                                          const ObjectiveValue&) = default;
};

[[nodiscard]] ObjectiveValue Evaluate(const graph::Dag& dag,
                                      const Schedule& schedule);

/// Stage-label vector used by the paper's reward (Eq. 3): entry i is
/// stage(node i) + 1 (1-based so an all-stage-0 schedule is not the zero
/// vector).
[[nodiscard]] std::vector<double> StageVector(const Schedule& schedule);

/// Cosine similarity between two equally-sized vectors, with the paper's
/// epsilon guard in the denominator (Eq. 1 / Eq. 3).
[[nodiscard]] double CosineSimilarity(const std::vector<double>& a,
                                      const std::vector<double>& b);

}  // namespace respect::sched
