#include "sched/device_aware.h"

#include <algorithm>
#include <stdexcept>

namespace respect::sched {
namespace {

constexpr double kEps = 1e-9;

double XferUs(const tpu::UsbLinkModel& link, double bytes) {
  return bytes <= 0.0 ? 0.0 : link.latency_us + bytes / link.bytes_per_us;
}

}  // namespace

StageServiceEstimate EstimateStageService(const graph::Dag& dag,
                                          const Schedule& schedule,
                                          const tpu::DeviceProfile& profile,
                                          double bytes_scale) {
  const int n = schedule.num_stages;
  if (n <= 0 ||
      schedule.stage.size() != static_cast<std::size_t>(dag.NodeCount())) {
    throw std::invalid_argument(
        "EstimateStageService: schedule does not cover the graph");
  }

  std::vector<double> macs(n, 0.0);
  std::vector<double> param_bytes(n, 0.0);
  std::vector<double> in_bytes(n, 0.0);
  std::vector<double> out_bytes(n, 0.0);

  const auto stage_of = [&](graph::NodeId v) {
    return std::clamp(schedule.stage[v], 0, n - 1);
  };

  std::vector<int> consumer_stages;
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    const graph::OpAttr& attr = dag.Attr(v);
    const int s = stage_of(v);
    macs[s] += static_cast<double>(attr.macs);
    param_bytes[s] += static_cast<double>(attr.param_bytes) * bytes_scale;

    // A tensor leaving stage s ships once from the producer and lands on
    // each distinct later consuming stage (host-mediated star transfer —
    // an estimate of the packaged boundary-tensor accounting).
    consumer_stages.clear();
    for (const graph::NodeId child : dag.Children(v)) {
      const int t = stage_of(child);
      if (t > s) consumer_stages.push_back(t);
    }
    if (consumer_stages.empty()) continue;
    std::sort(consumer_stages.begin(), consumer_stages.end());
    consumer_stages.erase(
        std::unique(consumer_stages.begin(), consumer_stages.end()),
        consumer_stages.end());
    const double bytes = static_cast<double>(attr.output_bytes) * bytes_scale;
    out_bytes[s] += bytes;
    for (const int t : consumer_stages) in_bytes[t] += bytes;
  }

  // Host transfers, mirroring deploy::BuildPackage: the model input lands on
  // stage 0 and the logits leave the last stage.  Without these the end
  // stages look one link hop cheaper than the simulator charges them, and a
  // rebalance would pile work there.
  for (const graph::NodeId s : dag.Sources()) {
    in_bytes[0] += static_cast<double>(dag.Attr(s).output_bytes) * bytes_scale;
  }
  for (const graph::NodeId s : dag.Sinks()) {
    out_bytes[n - 1] +=
        static_cast<double>(dag.Attr(s).output_bytes) * bytes_scale;
  }

  StageServiceEstimate estimate;
  estimate.stage_us.resize(n);
  for (int k = 0; k < n; ++k) {
    const tpu::EdgeTpuModel& device = profile.DeviceAt(k);
    const double compute_us =
        macs[k] / device.macs_per_us + device.dispatch_us;
    const double overflow =
        param_bytes[k] - static_cast<double>(device.cache_bytes);
    const double stream_us = XferUs(profile.link, overflow);
    const double service = std::max(compute_us, stream_us) +
                           XferUs(profile.link, in_bytes[k]) +
                           XferUs(profile.link, out_bytes[k]);
    estimate.stage_us[k] = service;
    estimate.bottleneck_us = std::max(estimate.bottleneck_us, service);
    estimate.total_us += service;
  }
  return estimate;
}

double EstimateBottleneckUs(const graph::Dag& dag, const Schedule& schedule,
                            const tpu::DeviceProfile& profile,
                            double bytes_scale) {
  return EstimateStageService(dag, schedule, profile, bytes_scale)
      .bottleneck_us;
}

bool RebalanceForProfile(const graph::Dag& dag,
                         const PipelineConstraints& constraints,
                         Schedule& schedule, double bytes_scale) {
  const tpu::DeviceProfile& profile = constraints.profile;
  if (profile.IsDefault() || constraints.require_cochildren) return false;
  const int n = schedule.num_stages;
  if (n <= 1 || dag.NodeCount() == 0) return false;

  std::vector<int> stage_count(n, 0);
  for (const int s : schedule.stage) {
    if (s < 0 || s >= n) return false;  // leave invalid schedules alone
    ++stage_count[s];
  }

  StageServiceEstimate estimate =
      EstimateStageService(dag, schedule, profile, bytes_scale);
  bool changed = false;
  const int max_moves = std::max(64, 4 * dag.NodeCount());
  for (int move = 0; move < max_moves; ++move) {
    const int b = static_cast<int>(
        std::max_element(estimate.stage_us.begin(), estimate.stage_us.end()) -
        estimate.stage_us.begin());
    if (stage_count[b] <= 1 && !constraints.allow_empty_stages) break;

    graph::NodeId best_node = graph::kInvalidNode;
    int best_target = -1;
    double best_bottleneck = estimate.bottleneck_us;
    double best_total = estimate.total_us;
    for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
      if (schedule.stage[v] != b) continue;
      int lo = 0;
      for (const graph::NodeId p : dag.Parents(v)) {
        lo = std::max(lo, schedule.stage[p]);
      }
      int hi = n - 1;
      for (const graph::NodeId c : dag.Children(v)) {
        hi = std::min(hi, schedule.stage[c]);
      }
      for (const int target : {b - 1, b + 1}) {
        if (target < lo || target > hi || target < 0 || target >= n) continue;
        schedule.stage[v] = target;
        const StageServiceEstimate candidate =
            EstimateStageService(dag, schedule, profile, bytes_scale);
        schedule.stage[v] = b;
        const bool better =
            candidate.bottleneck_us < best_bottleneck - kEps ||
            (candidate.bottleneck_us < best_bottleneck + kEps &&
             candidate.total_us < best_total - kEps);
        if (better) {
          best_node = v;
          best_target = target;
          best_bottleneck = candidate.bottleneck_us;
          best_total = candidate.total_us;
        }
      }
    }
    if (best_node == graph::kInvalidNode) break;
    --stage_count[b];
    ++stage_count[best_target];
    schedule.stage[best_node] = best_target;
    estimate = EstimateStageService(dag, schedule, profile, bytes_scale);
    changed = true;
  }
  return changed;
}

}  // namespace respect::sched
