#include "sched/postprocess.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/topology.h"
#include "sched/rho.h"

namespace respect::sched {
namespace {

/// Minimal union-find over node ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

/// Groups all co-children (children of a common parent) together and returns
/// the group id of every node.
std::vector<int> CochildGroups(const graph::Dag& dag) {
  UnionFind uf(dag.NodeCount());
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    const auto kids = dag.Children(v);
    for (std::size_t i = 1; i < kids.size(); ++i) {
      uf.Union(kids[0], kids[i]);
    }
  }
  std::vector<int> group(dag.NodeCount());
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) group[v] = uf.Find(v);
  return group;
}

}  // namespace

int RepairDependencies(const graph::Dag& dag, Schedule& schedule) {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  int moved = 0;
  for (const graph::NodeId v : topo.order) {
    int lo = schedule.stage[v];
    for (const graph::NodeId p : dag.Parents(v)) {
      lo = std::max(lo, schedule.stage[p]);
    }
    if (lo != schedule.stage[v]) {
      schedule.stage[v] = lo;
      ++moved;
    }
  }
  return moved;
}

int EnforceCochildren(const graph::Dag& dag, Schedule& schedule) {
  const std::vector<int> group = CochildGroups(dag);
  const int n = dag.NodeCount();

  // Paper rule: each co-child group starts at the earliest predicted stage
  // among its members.
  std::vector<int> gstage(n, schedule.num_stages - 1);
  for (graph::NodeId v = 0; v < n; ++v) {
    gstage[group[v]] = std::min(gstage[group[v]], schedule.stage[v]);
  }

  // Group-level dependency repair: max-relaxation along edges until
  // fixpoint.  Stages only increase and are bounded by num_stages-1, so this
  // terminates in at most num_stages sweeps.
  int iterations = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations;
    for (const graph::Edge& e : dag.Edges()) {
      const int gu = group[e.from];
      const int gv = group[e.to];
      if (gu != gv && gstage[gv] < gstage[gu]) {
        gstage[gv] = gstage[gu];
        changed = true;
      }
    }
    if (iterations > schedule.num_stages + 2) {
      // Can only happen if a group cycle demands equal stages; the
      // max-relaxation above already equalizes them, so this is a guard.
      break;
    }
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    schedule.stage[v] = gstage[group[v]];
  }
  return iterations;
}

void FillEmptyStages(const graph::Dag& dag, Schedule& schedule) {
  if (dag.NodeCount() < schedule.num_stages) {
    throw std::logic_error("FillEmptyStages: fewer nodes than stages");
  }
  std::vector<int> count(schedule.num_stages, 0);
  for (const int s : schedule.stage) ++count[s];
  if (std::find(count.begin(), count.end(), 0) == count.end()) return;

  // Repack the canonical sequence: the schedule is dependency-feasible at
  // this point, so (stage, topo) order is a topological order, and packing a
  // topological order into contiguous balanced segments is always feasible
  // and leaves no stage empty.
  const std::vector<graph::NodeId> seq = ScheduleToSequence(dag, schedule);
  schedule = PackSequence(dag, seq, schedule.num_stages);
}

void PostProcess(const graph::Dag& dag, const PipelineConstraints& constraints,
                 Schedule& schedule) {
  if (schedule.num_stages != constraints.num_stages) {
    throw std::invalid_argument("PostProcess: stage count mismatch");
  }
  RepairDependencies(dag, schedule);
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (constraints.require_cochildren) {
      EnforceCochildren(dag, schedule);
    }
    if (!constraints.allow_empty_stages) {
      FillEmptyStages(dag, schedule);
    }
    const ValidationResult result =
        ValidateSchedule(dag, schedule, constraints);
    if (result.ok) return;
  }
  const ValidationResult result = ValidateSchedule(dag, schedule, constraints);
  if (!result.ok) {
    throw std::logic_error("PostProcess: could not reach a feasible schedule: " +
                           result.reason);
  }
}

}  // namespace respect::sched
