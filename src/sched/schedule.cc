#include "sched/schedule.h"

#include <algorithm>
#include <cmath>

namespace respect::sched {

ValidationResult ValidateSchedule(const graph::Dag& dag,
                                  const Schedule& schedule,
                                  const PipelineConstraints& constraints) {
  const int n = dag.NodeCount();
  if (schedule.num_stages != constraints.num_stages) {
    return {false, "stage count mismatch: schedule has " +
                       std::to_string(schedule.num_stages) + ", want " +
                       std::to_string(constraints.num_stages)};
  }
  if (static_cast<int>(schedule.stage.size()) != n) {
    return {false, "schedule covers " + std::to_string(schedule.stage.size()) +
                       " nodes, graph has " + std::to_string(n)};
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    const int s = schedule.stage[v];
    if (s < 0 || s >= schedule.num_stages) {
      return {false, "node " + std::to_string(v) + " assigned out-of-range stage " +
                         std::to_string(s)};
    }
  }
  for (const graph::Edge& e : dag.Edges()) {
    if (schedule.stage[e.from] > schedule.stage[e.to]) {
      return {false, "dependency violation: edge " + std::to_string(e.from) +
                         "->" + std::to_string(e.to) + " goes from stage " +
                         std::to_string(schedule.stage[e.from]) + " to " +
                         std::to_string(schedule.stage[e.to])};
    }
  }
  if (!constraints.allow_empty_stages) {
    std::vector<bool> used(schedule.num_stages, false);
    for (const int s : schedule.stage) used[s] = true;
    for (int k = 0; k < schedule.num_stages; ++k) {
      if (!used[k]) {
        return {false, "stage " + std::to_string(k) + " is empty"};
      }
    }
  }
  if (constraints.require_cochildren) {
    for (graph::NodeId v = 0; v < n; ++v) {
      const auto kids = dag.Children(v);
      for (std::size_t i = 1; i < kids.size(); ++i) {
        if (schedule.stage[kids[i]] != schedule.stage[kids[0]]) {
          return {false, "children of node " + std::to_string(v) +
                             " span stages " +
                             std::to_string(schedule.stage[kids[0]]) + " and " +
                             std::to_string(schedule.stage[kids[i]])};
        }
      }
    }
  }
  return {true, ""};
}

ScheduleMetrics ComputeMetrics(const graph::Dag& dag,
                               const Schedule& schedule) {
  ScheduleMetrics m;
  m.stage_param_bytes.assign(schedule.num_stages, 0);
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    m.stage_param_bytes[schedule.stage[v]] += dag.Attr(v).param_bytes;
  }
  m.peak_stage_param_bytes = 0;
  for (const std::int64_t b : m.stage_param_bytes) {
    m.peak_stage_param_bytes = std::max(m.peak_stage_param_bytes, b);
  }
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    int last_consumer_stage = schedule.stage[v];
    for (const graph::NodeId c : dag.Children(v)) {
      last_consumer_stage = std::max(last_consumer_stage, schedule.stage[c]);
    }
    const int hops = last_consumer_stage - schedule.stage[v];
    if (hops > 0) {
      m.comm_bytes += dag.Attr(v).output_bytes * hops;
      ++m.cut_tensor_count;
    }
  }
  return m;
}

ObjectiveValue Evaluate(const graph::Dag& dag, const Schedule& schedule) {
  const ScheduleMetrics m = ComputeMetrics(dag, schedule);
  return ObjectiveValue{m.peak_stage_param_bytes, m.comm_bytes};
}

std::vector<double> StageVector(const Schedule& schedule) {
  std::vector<double> v(schedule.stage.size());
  for (std::size_t i = 0; i < schedule.stage.size(); ++i) {
    v[i] = static_cast<double>(schedule.stage[i] + 1);
  }
  return v;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  constexpr double kEpsilon = 1e-9;
  double dot = 0.0, na = 0.0, nb = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / std::max(std::sqrt(na) * std::sqrt(nb), kEpsilon);
}

}  // namespace respect::sched
