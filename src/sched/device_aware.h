// Device-profile-aware schedule cost estimation and rebalancing.
//
// The byte objective (schedule.h) is hardware-blind: it balances parameter
// bytes because on identical devices that is what bounds the pipeline.  On a
// heterogeneous profile the bottleneck is the *service time* of the slowest
// stage, which depends on each stage's MAC rate, cache size and dispatch
// overhead.  EstimateStageService mirrors tpu::StageCost::TotalUs at the
// (dag, schedule) level — before packaging — so engines can evaluate
// candidate schedules against the profile they will run on, and
// RebalanceForProfile is a deterministic post-pass that shifts boundary
// nodes toward faster stages, adapting *any* engine's schedule to the
// profile without touching the engine.
#pragma once

#include <vector>

#include "graph/dag.h"
#include "sched/schedule.h"
#include "tpu/device_profile.h"

namespace respect::sched {

/// Estimated steady-state per-stage service time of a schedule on a profile.
struct StageServiceEstimate {
  std::vector<double> stage_us;  // indexed by stage
  double bottleneck_us = 0.0;    // max over stages — the pipeline rate limit
  double total_us = 0.0;         // sum over stages — fill latency proxy
};

/// Mirrors the packaged cost model per stage:
///   compute  = stage MACs / rate(k) + dispatch(k)
///   stream   = link transfer of parameter bytes beyond cache(k)
///   transfer = link transfer of boundary activations in and out
///   service  = max(compute, stream) + in + out
/// `bytes_scale` rescales graph byte attributes to the deployed width
/// (0.25 when the package will be uint8-quantized from float32 — see
/// deploy::QuantizeGraph); host input/output transfers are omitted because
/// they are schedule-independent.
[[nodiscard]] StageServiceEstimate EstimateStageService(
    const graph::Dag& dag, const Schedule& schedule,
    const tpu::DeviceProfile& profile, double bytes_scale = 1.0);

/// Convenience: EstimateStageService(...).bottleneck_us.
[[nodiscard]] double EstimateBottleneckUs(const graph::Dag& dag,
                                          const Schedule& schedule,
                                          const tpu::DeviceProfile& profile,
                                          double bytes_scale = 1.0);

/// Deterministic hill-climb that moves single nodes across adjacent stage
/// boundaries (within their dependency window, never emptying a stage
/// unless allowed) while the estimated bottleneck improves.  A no-op for
/// the default profile and under require_cochildren (moves could split
/// co-child groups).  Returns true iff the schedule changed; the result is
/// always valid if the input was.
bool RebalanceForProfile(const graph::Dag& dag,
                         const PipelineConstraints& constraints,
                         Schedule& schedule, double bytes_scale = 1.0);

}  // namespace respect::sched
