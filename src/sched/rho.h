// ρ — the deterministic sequence-to-schedule mapper of the paper (Eq. 2).
//
// Both the RL policy π and the ground-truth exact method γ produce node
// *sequences*; ρ maps a sequence to a stage assignment "w.r.t the specific
// Edge TPU": it walks the sequence and packs nodes into stages so per-stage
// parameter memory is balanced (cumulative-target packing).  The inverse
// direction (schedule → canonical sequence) is what turns the exact
// scheduler's solution into the imitation target γ.
#pragma once

#include <vector>

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::sched {

/// Smallest bound B such that `weights` can be cut into at most
/// `num_segments` contiguous segments each weighing <= B (binary search +
/// greedy feasibility; O(n log sum)).  Weights are byte counts and must be
/// non-negative; empty weights, num_segments < 1, or a negative weight throw
/// std::invalid_argument (each with its own message).  Safe up to weights
/// whose sum exceeds int64 max (the search interval saturates instead of
/// overflowing).
[[nodiscard]] std::int64_t MinBottleneckBound(
    const std::vector<std::int64_t>& weights, int num_segments);

/// Maps a node sequence to a stage assignment by optimal contiguous packing:
/// the sequence is cut into exactly num_stages non-empty segments whose peak
/// parameter bytes equal the min-bottleneck bound for this order.  The
/// sequence may be any permutation; dependency feasibility is restored
/// afterwards with RepairDependencies (see postprocess.h), mirroring the
/// paper's post-inference processing.
[[nodiscard]] Schedule PackSequence(const graph::Dag& dag,
                                    const std::vector<graph::NodeId>& sequence,
                                    int num_stages);

/// Canonical sequence of a schedule: nodes sorted by (stage, topological
/// position).  Applying PackSequence to this sequence and repairing yields a
/// schedule close to the original; the sequence is the imitation target γ
/// when the schedule comes from the exact method.
[[nodiscard]] std::vector<graph::NodeId> ScheduleToSequence(
    const graph::Dag& dag, const Schedule& schedule);

}  // namespace respect::sched
