#include "sched/rho.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "graph/topology.h"

namespace respect::sched {
namespace {

/// Minimum number of segments with per-segment weight <= bound (greedy).
/// Overflow-safe: `w > bound` is rejected first, so `bound - w` is
/// non-negative and the fill test never computes `load + w`, which would
/// overflow when a packed load approaches int64 max.
int GreedySegments(const std::vector<std::int64_t>& weights,
                   std::int64_t bound) {
  int segments = 1;
  std::int64_t load = 0;
  for (const std::int64_t w : weights) {
    if (w > bound) return static_cast<int>(weights.size()) + 1;
    if (load > bound - w) {
      ++segments;
      load = w;
    } else {
      load += w;
    }
  }
  return segments;
}

/// Sum of non-negative weights, clamped to int64 max instead of overflowing.
/// The clamp only widens the binary-search start interval; the search still
/// converges to the smallest feasible bound representable in int64.
std::int64_t SaturatingSum(const std::vector<std::int64_t>& weights) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::int64_t sum = 0;
  for (const std::int64_t w : weights) {
    if (sum > kMax - w) return kMax;
    sum += w;
  }
  return sum;
}

}  // namespace

std::int64_t MinBottleneckBound(const std::vector<std::int64_t>& weights,
                                int num_segments) {
  if (weights.empty()) {
    throw std::invalid_argument("MinBottleneckBound: empty weights");
  }
  if (num_segments < 1) {
    throw std::invalid_argument(
        "MinBottleneckBound: num_segments must be >= 1, got " +
        std::to_string(num_segments));
  }
  for (const std::int64_t w : weights) {
    if (w < 0) {
      throw std::invalid_argument(
          "MinBottleneckBound: negative weight " + std::to_string(w) +
          " (weights are byte counts)");
    }
  }
  std::int64_t lo = *std::max_element(weights.begin(), weights.end());
  std::int64_t hi = SaturatingSum(weights);
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (GreedySegments(weights, mid) <= num_segments) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Schedule PackSequence(const graph::Dag& dag,
                      const std::vector<graph::NodeId>& sequence,
                      int num_stages) {
  if (num_stages < 1) {
    throw std::invalid_argument("PackSequence: num_stages must be >= 1");
  }
  if (static_cast<int>(sequence.size()) != dag.NodeCount()) {
    throw std::invalid_argument("PackSequence: sequence length " +
                                std::to_string(sequence.size()) +
                                " != |V| = " +
                                std::to_string(dag.NodeCount()));
  }

  std::vector<std::int64_t> weights(sequence.size());
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    weights[i] = dag.Attr(sequence[i]).param_bytes;
  }
  const std::int64_t bound = MinBottleneckBound(weights, num_stages);

  Schedule sched;
  sched.num_stages = num_stages;
  sched.stage.assign(dag.NodeCount(), 0);

  // Greedy fill to the optimal bound; the tail guard keeps one node for each
  // still-unfilled stage (every TPU needs a submodel), which only ever
  // splits segments and so preserves the bound.
  int stage = 0;
  std::int64_t load = 0;
  int remaining = dag.NodeCount();
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const std::int64_t w = weights[i];
    const bool over_bound = load + w > bound && load > 0;
    const bool must_advance = remaining <= (num_stages - 1 - stage);
    if (stage < num_stages - 1 && (over_bound || must_advance)) {
      ++stage;
      load = 0;
    }
    sched.stage[sequence[i]] = stage;
    load += w;
    --remaining;
  }
  return sched;
}

std::vector<graph::NodeId> ScheduleToSequence(const graph::Dag& dag,
                                              const Schedule& schedule) {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  const std::vector<int> pos =
      graph::OrderPositions(topo.order, dag.NodeCount());

  std::vector<graph::NodeId> seq(dag.NodeCount());
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) seq[v] = v;
  std::sort(seq.begin(), seq.end(), [&](graph::NodeId a, graph::NodeId b) {
    if (schedule.stage[a] != schedule.stage[b]) {
      return schedule.stage[a] < schedule.stage[b];
    }
    return pos[a] < pos[b];
  });
  return seq;
}

}  // namespace respect::sched
