// Minimal 0/1 / integer linear program model.
//
// The paper solves scheduling exactly by mapping it to an ILP and handing it
// to IBM ILOG CPLEX.  This module provides the same workflow offline: a
// Model records variables, linear constraints and a linear objective, can
// serialize itself in CPLEX LP format (WriteLp) and is solved by the
// branch-and-bound engine in solver.h.  scheduling_ilp.h builds the paper's
// formulation on top of it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace respect::ilp {

using VarId = int;

enum class Sense { kLe, kGe, kEq };

struct LinearTerm {
  VarId var = -1;
  double coeff = 0.0;
};

struct Constraint {
  std::string name;
  std::vector<LinearTerm> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

struct Variable {
  std::string name;
  std::int64_t lower = 0;
  std::int64_t upper = 1;
  [[nodiscard]] bool IsBinary() const { return lower == 0 && upper == 1; }
};

/// A linear program over integer variables.  All variables are integral
/// (this is a pure ILP engine; the scheduling formulation needs nothing
/// else).
class Model {
 public:
  /// Adds a binary variable and returns its id.
  VarId AddBinaryVar(std::string name);

  /// Adds a bounded integer variable.
  VarId AddIntegerVar(std::string name, std::int64_t lower, std::int64_t upper);

  /// Adds `sum(terms) sense rhs`.  Term variable ids must exist.
  void AddConstraint(std::string name, std::vector<LinearTerm> terms,
                     Sense sense, double rhs);

  /// Sets the objective; `minimize` selects the direction.
  void SetObjective(std::vector<LinearTerm> terms, bool minimize);

  [[nodiscard]] int NumVars() const { return static_cast<int>(vars_.size()); }
  [[nodiscard]] int NumConstraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Variable& Var(VarId id) const { return vars_.at(id); }
  [[nodiscard]] const std::vector<Constraint>& Constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::vector<LinearTerm>& Objective() const {
    return objective_;
  }
  [[nodiscard]] bool Minimize() const { return minimize_; }

  /// Serializes in CPLEX LP file format (readable by CPLEX/Gurobi/SCIP, and
  /// by humans in tests).
  void WriteLp(std::ostream& os) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
  std::vector<LinearTerm> objective_;
  bool minimize_ = true;
};

}  // namespace respect::ilp
