// Generic branch-and-bound solver for the Model class.
//
// Depth-first search over variable assignments with constraint-activity
// propagation (prune as soon as the partial assignment makes a constraint's
// best reachable activity violate its bound) and an optimistic objective
// bound from the free variables.  Complete (proves optimality/infeasibility)
// within its node budget; designed for the model sizes the tests and small
// scheduling instances produce — the production scheduling path detects the
// assignment structure and uses the specialized engine in src/exact instead
// (see scheduling_ilp.h).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "ilp/model.h"

namespace respect::ilp {

struct SolverConfig {
  std::int64_t max_nodes = 10'000'000;
  double time_limit_seconds = 0.0;  // 0 = unlimited

  /// Polled with the periodic wall-clock check; fires by unwinding the
  /// search with core::CancelledError (no incumbent is returned).
  core::CancelToken cancel;
};

struct Solution {
  bool feasible = false;
  bool proved_optimal = false;
  double objective = 0.0;
  std::vector<std::int64_t> values;  // indexed by VarId
  std::int64_t nodes_explored = 0;
};

/// Solves the model by branch and bound.
[[nodiscard]] Solution SolveBranchAndBound(const Model& model,
                                           const SolverConfig& config = {});

/// Checks a full assignment against every constraint (used by tests and by
/// the solver's own assertions).
[[nodiscard]] bool IsFeasible(const Model& model,
                              const std::vector<std::int64_t>& values);

/// Objective value of a full assignment.
[[nodiscard]] double ObjectiveOf(const Model& model,
                                 const std::vector<std::int64_t>& values);

}  // namespace respect::ilp
