#include "ilp/model.h"

#include <ostream>
#include <stdexcept>

namespace respect::ilp {

VarId Model::AddBinaryVar(std::string name) {
  vars_.push_back(Variable{std::move(name), 0, 1});
  return static_cast<VarId>(vars_.size() - 1);
}

VarId Model::AddIntegerVar(std::string name, std::int64_t lower,
                           std::int64_t upper) {
  if (lower > upper) {
    throw std::invalid_argument("AddIntegerVar: lower > upper for " + name);
  }
  vars_.push_back(Variable{std::move(name), lower, upper});
  return static_cast<VarId>(vars_.size() - 1);
}

void Model::AddConstraint(std::string name, std::vector<LinearTerm> terms,
                          Sense sense, double rhs) {
  for (const LinearTerm& t : terms) {
    if (t.var < 0 || t.var >= NumVars()) {
      throw std::invalid_argument("AddConstraint: unknown variable in " + name);
    }
  }
  constraints_.push_back(Constraint{std::move(name), std::move(terms), sense, rhs});
}

void Model::SetObjective(std::vector<LinearTerm> terms, bool minimize) {
  for (const LinearTerm& t : terms) {
    if (t.var < 0 || t.var >= NumVars()) {
      throw std::invalid_argument("SetObjective: unknown variable");
    }
  }
  objective_ = std::move(terms);
  minimize_ = minimize;
}

void Model::WriteLp(std::ostream& os) const {
  os << (minimize_ ? "Minimize\n obj:" : "Maximize\n obj:");
  for (const LinearTerm& t : objective_) {
    os << (t.coeff >= 0 ? " + " : " - ")
       << (t.coeff >= 0 ? t.coeff : -t.coeff) << " " << vars_[t.var].name;
  }
  os << "\nSubject To\n";
  for (const Constraint& c : constraints_) {
    os << " " << c.name << ":";
    for (const LinearTerm& t : c.terms) {
      os << (t.coeff >= 0 ? " + " : " - ")
         << (t.coeff >= 0 ? t.coeff : -t.coeff) << " " << vars_[t.var].name;
    }
    switch (c.sense) {
      case Sense::kLe: os << " <= "; break;
      case Sense::kGe: os << " >= "; break;
      case Sense::kEq: os << " = "; break;
    }
    os << c.rhs << "\n";
  }
  os << "Bounds\n";
  for (const Variable& v : vars_) {
    if (!v.IsBinary()) {
      os << " " << v.lower << " <= " << v.name << " <= " << v.upper << "\n";
    }
  }
  os << "Binaries\n";
  for (const Variable& v : vars_) {
    if (v.IsBinary()) os << " " << v.name << "\n";
  }
  os << "End\n";
}

}  // namespace respect::ilp
