#include "ilp/scheduling_ilp.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "exact/bnb_scheduler.h"
#include "ilp/solver.h"

namespace respect::ilp {

SchedulingVars BuildSchedulingModel(const graph::Dag& dag, int num_stages,
                                    Model& model) {
  dag.Validate();
  if (num_stages < 1) {
    throw std::invalid_argument("BuildSchedulingModel: num_stages < 1");
  }
  SchedulingVars vars;
  vars.num_stages = num_stages;
  vars.x.reserve(static_cast<std::size_t>(dag.NodeCount()) * num_stages);

  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    for (int k = 0; k < num_stages; ++k) {
      vars.x.push_back(model.AddBinaryVar(
          "x_" + std::to_string(v) + "_" + std::to_string(k)));
    }
  }
  vars.z = model.AddIntegerVar("z", 0, dag.TotalParamBytes());

  // (1) each node on exactly one stage
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    std::vector<LinearTerm> terms;
    for (int k = 0; k < num_stages; ++k) {
      terms.push_back({vars.X(v, k), 1.0});
    }
    model.AddConstraint("assign_" + std::to_string(v), std::move(terms),
                        Sense::kEq, 1.0);
  }

  // (2) precedence: stage(u) <= stage(v)
  int ei = 0;
  for (const graph::Edge& e : dag.Edges()) {
    std::vector<LinearTerm> terms;
    for (int k = 1; k < num_stages; ++k) {
      terms.push_back({vars.X(e.from, k), static_cast<double>(k)});
      terms.push_back({vars.X(e.to, k), -static_cast<double>(k)});
    }
    model.AddConstraint("prec_" + std::to_string(ei++), std::move(terms),
                        Sense::kLe, 0.0);
  }

  // (3) per-stage parameter load below the peak variable
  for (int k = 0; k < num_stages; ++k) {
    std::vector<LinearTerm> terms;
    for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
      const double m = static_cast<double>(dag.Attr(v).param_bytes);
      if (m > 0) terms.push_back({vars.X(v, k), m});
    }
    terms.push_back({vars.z, -1.0});
    model.AddConstraint("peak_" + std::to_string(k), std::move(terms),
                        Sense::kLe, 0.0);
  }

  // (4) no empty stage
  for (int k = 0; k < num_stages; ++k) {
    std::vector<LinearTerm> terms;
    for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
      terms.push_back({vars.X(v, k), 1.0});
    }
    model.AddConstraint("nonempty_" + std::to_string(k), std::move(terms),
                        Sense::kGe, 1.0);
  }

  model.SetObjective({{vars.z, 1.0}}, /*minimize=*/true);
  return vars;
}

sched::Schedule ExtractSchedule(const graph::Dag& dag,
                                const SchedulingVars& vars,
                                const std::vector<std::int64_t>& values) {
  sched::Schedule s;
  s.num_stages = vars.num_stages;
  s.stage.assign(dag.NodeCount(), -1);
  for (graph::NodeId v = 0; v < dag.NodeCount(); ++v) {
    for (int k = 0; k < vars.num_stages; ++k) {
      if (values.at(vars.X(v, k)) == 1) {
        if (s.stage[v] != -1) {
          throw std::logic_error("ExtractSchedule: node on two stages");
        }
        s.stage[v] = k;
      }
    }
    if (s.stage[v] == -1) {
      throw std::logic_error("ExtractSchedule: node unassigned");
    }
  }
  return s;
}

IlpScheduleResult SolveSchedulingIlp(const graph::Dag& dag,
                                     const IlpScheduleConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  IlpScheduleResult result;

  const std::int64_t num_x =
      static_cast<std::int64_t>(dag.NodeCount()) * config.num_stages;
  if (num_x <= config.generic_engine_var_limit) {
    Model model;
    const SchedulingVars vars =
        BuildSchedulingModel(dag, config.num_stages, model);
    SolverConfig solver_config;
    solver_config.max_nodes = config.max_nodes;
    solver_config.time_limit_seconds = config.time_limit_seconds;
    solver_config.cancel = config.cancel;
    const Solution sol = SolveBranchAndBound(model, solver_config);
    if (!sol.feasible) {
      throw std::logic_error("SolveSchedulingIlp: infeasible model (|V| >= "
                             "num_stages should guarantee feasibility)");
    }
    result.schedule = ExtractSchedule(dag, vars, sol.values);
    result.objective = sched::Evaluate(dag, result.schedule);
    result.proved_optimal = sol.proved_optimal;
    result.used_generic_engine = true;
  } else {
    exact::BnbConfig bnb;
    bnb.num_stages = config.num_stages;
    bnb.require_nonempty = true;
    bnb.max_expansions = config.max_nodes;
    bnb.time_limit_seconds = config.time_limit_seconds;
    bnb.cancel = config.cancel;
    const exact::BnbResult bnb_result = exact::SolveExact(dag, bnb);
    result.schedule = bnb_result.schedule;
    result.objective = bnb_result.objective;
    result.proved_optimal = bnb_result.proved_optimal;
    result.used_generic_engine = false;
  }

  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace respect::ilp
