#include "ilp/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace respect::ilp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kTol = 1e-9;

/// Per-constraint activity bookkeeping: the reachable [min, max] activity
/// given currently fixed variables.  Fixing a variable tightens both ends.
struct ActivityBounds {
  std::vector<double> min_activity;
  std::vector<double> max_activity;
};

class Search {
 public:
  Search(const Model& model, const SolverConfig& config)
      : model_(model), config_(config) {
    const int nv = model_.NumVars();
    values_.assign(nv, 0);
    fixed_.assign(nv, false);

    bounds_.min_activity.assign(model_.NumConstraints(), 0.0);
    bounds_.max_activity.assign(model_.NumConstraints(), 0.0);
    for (int ci = 0; ci < model_.NumConstraints(); ++ci) {
      for (const LinearTerm& t : model_.Constraints()[ci].terms) {
        const Variable& v = model_.Var(t.var);
        const double lo = t.coeff * static_cast<double>(v.lower);
        const double hi = t.coeff * static_cast<double>(v.upper);
        bounds_.min_activity[ci] += std::min(lo, hi);
        bounds_.max_activity[ci] += std::max(lo, hi);
      }
    }
    // Optimistic objective contribution of each free variable.
    obj_coeff_.assign(nv, 0.0);
    for (const LinearTerm& t : model_.Objective()) obj_coeff_[t.var] += t.coeff;

    // Constraints touching each variable, for incremental updates.
    var_constraints_.assign(nv, {});
    for (int ci = 0; ci < model_.NumConstraints(); ++ci) {
      for (const LinearTerm& t : model_.Constraints()[ci].terms) {
        var_constraints_[t.var].push_back(
            {ci, t.coeff});
      }
    }
  }

  Solution Run() {
    start_ = Clock::now();
    double optimistic = 0.0;
    for (int v = 0; v < model_.NumVars(); ++v) {
      optimistic += FreeContribution(v);
    }
    Dfs(0, optimistic);
    Solution s;
    s.feasible = found_;
    s.proved_optimal = found_ && !budget_hit_;
    s.objective = best_obj_;
    s.values = best_values_;
    s.nodes_explored = nodes_;
    return s;
  }

 private:
  /// Best possible (for minimization) objective contribution of a free var.
  double FreeContribution(VarId v) const {
    const Variable& var = model_.Var(v);
    const double sign = model_.Minimize() ? 1.0 : -1.0;
    const double lo = obj_coeff_[v] * static_cast<double>(var.lower);
    const double hi = obj_coeff_[v] * static_cast<double>(var.upper);
    return sign * std::min(sign * lo, sign * hi);
  }

  bool ConstraintsSatisfiable() const {
    for (int ci = 0; ci < model_.NumConstraints(); ++ci) {
      const Constraint& c = model_.Constraints()[ci];
      switch (c.sense) {
        case Sense::kLe:
          if (bounds_.min_activity[ci] > c.rhs + kTol) return false;
          break;
        case Sense::kGe:
          if (bounds_.max_activity[ci] < c.rhs - kTol) return false;
          break;
        case Sense::kEq:
          if (bounds_.min_activity[ci] > c.rhs + kTol ||
              bounds_.max_activity[ci] < c.rhs - kTol) {
            return false;
          }
          break;
      }
    }
    return true;
  }

  bool BudgetExceeded() {
    if (budget_hit_) return true;
    if (config_.max_nodes > 0 && nodes_ >= config_.max_nodes) {
      budget_hit_ = true;
      return true;
    }
    if ((nodes_ & 0x3FF) == 0) {
      config_.cancel.ThrowIfCancelled("ilp node expansion");
    }
    if (config_.time_limit_seconds > 0 && (nodes_ & 0x3FF) == 0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed >= config_.time_limit_seconds) {
        budget_hit_ = true;
        return true;
      }
    }
    return false;
  }

  /// `optimistic` is the best reachable objective value of this subtree
  /// (fixed contributions + optimistic free contributions).
  void Dfs(VarId v, double optimistic) {
    if (BudgetExceeded()) return;
    ++nodes_;
    if (!ConstraintsSatisfiable()) return;
    const double sign = model_.Minimize() ? 1.0 : -1.0;
    if (found_ && sign * optimistic >= sign * best_obj_ - kTol) return;

    if (v == model_.NumVars()) {
      // All constraints have min==max activity now, so satisfiable implies
      // satisfied.
      found_ = true;
      best_obj_ = ObjectiveOf(model_, values_);
      best_values_ = values_;
      return;
    }

    const Variable& var = model_.Var(v);
    std::vector<std::int64_t> domain;
    if (v == model_.NumVars() - 1 && var.upper - var.lower > 64) {
      // Last unfixed variable with a wide domain (e.g. the peak-memory
      // variable z of the scheduling model): every other variable is fixed,
      // so each constraint pins an exact interval for this one — evaluate
      // only the objective-best feasible value instead of enumerating.
      std::int64_t lo = var.lower;
      std::int64_t hi = var.upper;
      for (const auto& [ci, coeff] : var_constraints_[v]) {
        const Constraint& c = model_.Constraints()[ci];
        // Rest activity is exact: subtract this var's optimistic term.
        const double vlo = coeff * static_cast<double>(var.lower);
        const double vhi = coeff * static_cast<double>(var.upper);
        const double rest = bounds_.min_activity[ci] - std::min(vlo, vhi);
        const double slack = c.rhs - rest;
        if (c.sense == Sense::kLe || c.sense == Sense::kEq) {
          if (coeff > 0) {
            hi = std::min(hi, static_cast<std::int64_t>(
                                  std::floor(slack / coeff + kTol)));
          } else if (coeff < 0) {
            lo = std::max(lo, static_cast<std::int64_t>(
                                  std::ceil(slack / coeff - kTol)));
          }
        }
        if (c.sense == Sense::kGe || c.sense == Sense::kEq) {
          if (coeff > 0) {
            lo = std::max(lo, static_cast<std::int64_t>(
                                  std::ceil(slack / coeff - kTol)));
          } else if (coeff < 0) {
            hi = std::min(hi, static_cast<std::int64_t>(
                                  std::floor(slack / coeff + kTol)));
          }
        }
      }
      if (lo > hi) return;  // infeasible under the fixed prefix
      const bool prefer_low = sign * obj_coeff_[v] >= 0;
      domain.push_back(prefer_low ? lo : hi);
    } else {
      // Try values in order of objective attractiveness.
      for (std::int64_t x = var.lower; x <= var.upper; ++x) {
        domain.push_back(x);
      }
      std::sort(domain.begin(), domain.end(),
                [&](std::int64_t a, std::int64_t b) {
                  return sign * obj_coeff_[v] * static_cast<double>(a) <
                         sign * obj_coeff_[v] * static_cast<double>(b);
                });
    }

    for (const std::int64_t x : domain) {
      // Fix v := x and update activities incrementally.
      for (const auto& [ci, coeff] : var_constraints_[v]) {
        const double lo = coeff * static_cast<double>(var.lower);
        const double hi = coeff * static_cast<double>(var.upper);
        bounds_.min_activity[ci] -= std::min(lo, hi);
        bounds_.max_activity[ci] -= std::max(lo, hi);
        bounds_.min_activity[ci] += coeff * static_cast<double>(x);
        bounds_.max_activity[ci] += coeff * static_cast<double>(x);
      }
      values_[v] = x;
      const double child_optimistic = optimistic - FreeContribution(v) +
                                      obj_coeff_[v] * static_cast<double>(x);
      Dfs(v + 1, child_optimistic);
      for (const auto& [ci, coeff] : var_constraints_[v]) {
        bounds_.min_activity[ci] -= coeff * static_cast<double>(x);
        bounds_.max_activity[ci] -= coeff * static_cast<double>(x);
        const double lo = coeff * static_cast<double>(var.lower);
        const double hi = coeff * static_cast<double>(var.upper);
        bounds_.min_activity[ci] += std::min(lo, hi);
        bounds_.max_activity[ci] += std::max(lo, hi);
      }
      if (budget_hit_) return;
    }
  }

  const Model& model_;
  const SolverConfig config_;

  std::vector<std::int64_t> values_;
  std::vector<bool> fixed_;
  std::vector<double> obj_coeff_;
  std::vector<std::vector<std::pair<int, double>>> var_constraints_;
  ActivityBounds bounds_;

  bool found_ = false;
  bool budget_hit_ = false;
  double best_obj_ = std::numeric_limits<double>::infinity();
  std::vector<std::int64_t> best_values_;
  std::int64_t nodes_ = 0;
  Clock::time_point start_;
};

}  // namespace

Solution SolveBranchAndBound(const Model& model, const SolverConfig& config) {
  Search search(model, config);
  return search.Run();
}

bool IsFeasible(const Model& model, const std::vector<std::int64_t>& values) {
  if (static_cast<int>(values.size()) != model.NumVars()) return false;
  for (int v = 0; v < model.NumVars(); ++v) {
    if (values[v] < model.Var(v).lower || values[v] > model.Var(v).upper) {
      return false;
    }
  }
  for (const Constraint& c : model.Constraints()) {
    double activity = 0.0;
    for (const LinearTerm& t : c.terms) {
      activity += t.coeff * static_cast<double>(values[t.var]);
    }
    switch (c.sense) {
      case Sense::kLe:
        if (activity > c.rhs + kTol) return false;
        break;
      case Sense::kGe:
        if (activity < c.rhs - kTol) return false;
        break;
      case Sense::kEq:
        if (std::abs(activity - c.rhs) > kTol) return false;
        break;
    }
  }
  return true;
}

double ObjectiveOf(const Model& model, const std::vector<std::int64_t>& values) {
  double obj = 0.0;
  for (const LinearTerm& t : model.Objective()) {
    obj += t.coeff * static_cast<double>(values[t.var]);
  }
  return obj;
}

}  // namespace respect::ilp
