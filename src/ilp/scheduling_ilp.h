// The paper's ILP formulation of pipeline scheduling, and the exact-method
// entry point the experiments call (the "CPLEX role").
//
// Formulation (following [21] / [24] as cited by the paper):
//   binaries x[v][k]  — node v runs on stage k
//   integer  z        — peak per-stage parameter bytes (objective)
//   (1) assignment     sum_k x[v][k] == 1                      for all v
//   (2) precedence     sum_k k*x[u][k] <= sum_k k*x[v][k]      for (u,v) in E
//   (3) peak memory    sum_v m_v * x[v][k] <= z                for all k
//   (4) non-empty      sum_v x[v][k] >= 1                      for all k
//   objective: minimize z
//
// SolveSchedulingIlp builds this model.  Small instances go through the
// generic branch-and-bound of solver.h directly on the ILP; larger instances
// are dispatched to the structure-aware exact engine (src/exact), which
// searches the identical feasible set and objective — the tests assert both
// paths return the same optimum on overlapping sizes.
#pragma once

#include <cstdint>

#include "core/cancel.h"
#include "graph/dag.h"
#include "ilp/model.h"
#include "sched/schedule.h"

namespace respect::ilp {

/// Mapping from (node, stage) to the x variable id, plus the z variable.
struct SchedulingVars {
  int num_stages = 0;
  std::vector<VarId> x;  // x[v * num_stages + k]
  VarId z = -1;

  [[nodiscard]] VarId X(graph::NodeId v, int k) const {
    return x[static_cast<std::size_t>(v) * num_stages + k];
  }
};

/// Builds the formulation above into `model`.
[[nodiscard]] SchedulingVars BuildSchedulingModel(const graph::Dag& dag,
                                                  int num_stages, Model& model);

struct IlpScheduleResult {
  sched::Schedule schedule;
  sched::ObjectiveValue objective;
  bool proved_optimal = false;
  double solve_seconds = 0.0;

  /// Which engine solved it: true when the generic Model-level B&B ran,
  /// false when the structure-aware engine was dispatched.
  bool used_generic_engine = false;
};

struct IlpScheduleConfig {
  int num_stages = 4;

  /// Instances with at most this many x variables use the generic engine.
  int generic_engine_var_limit = 48;

  /// Budgets forwarded to whichever engine runs.
  std::int64_t max_nodes = 20'000'000;
  double time_limit_seconds = 0.0;

  /// Forwarded to whichever engine runs; fires as core::CancelledError.
  core::CancelToken cancel;
};

/// Exact scheduling via the ILP route.
[[nodiscard]] IlpScheduleResult SolveSchedulingIlp(const graph::Dag& dag,
                                                   const IlpScheduleConfig& config);

/// Extracts a Schedule from a feasible assignment of the model variables.
[[nodiscard]] sched::Schedule ExtractSchedule(const graph::Dag& dag,
                                              const SchedulingVars& vars,
                                              const std::vector<std::int64_t>& values);

}  // namespace respect::ilp
