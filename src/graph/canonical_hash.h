// Content-addressed hashing of computational graphs.
//
// HashDag folds the exact byte stream WriteDag (graph/serialize.h) would emit
// into a 128-bit digest — without materializing the text — so two Dags hash
// equal iff their serialized forms are identical: same name, same nodes in id
// order with identical attributes, same edges in insertion order.  That is
// the cache-key contract the serving layer (serve/compile_service.h) builds
// on: a digest addresses the full compile input, not an approximation of it.
//
// The digest is a non-cryptographic mix (two independent FNV-1a streams with
// a splitmix64 finalizer).  It is stable across runs and platforms and
// collision-resistant enough for cache addressing; it is NOT suitable where
// an adversary controls the graphs and a collision must be impossible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/dag.h"

namespace respect::graph {

/// A 128-bit content digest.  Value type; usable as a hash-map key via
/// CanonicalHash::Hasher (lo is already well mixed).
struct CanonicalHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CanonicalHash&, const CanonicalHash&) = default;

  /// 32 lowercase hex digits, hi first — the spelling used in logs/CLIs.
  [[nodiscard]] std::string ToHex() const;

  /// Inverse of ToHex: exactly 32 hex digits (either case) parse back to
  /// the digest; anything else is nullopt.  The persistent cache store
  /// (serve/store) names spill files by ToHex and recovers keys from the
  /// file names with this on its warm-start scan.
  [[nodiscard]] static std::optional<CanonicalHash> FromHex(
      std::string_view hex);

  struct Hasher {
    [[nodiscard]] std::size_t operator()(const CanonicalHash& h) const {
      return static_cast<std::size_t>(h.lo);
    }
  };
};

/// Incremental digest builder.  Update order matters: feeding "ab" then "c"
/// equals feeding "abc", but integers are folded as fixed-width
/// little-endian blocks, so Update(1) != Update("1").
class CanonicalHasher {
 public:
  void Update(std::string_view bytes);
  // Exact match for string literals: without it, const char* would prefer
  // the standard pointer->bool conversion over the string_view overload.
  void Update(const char* bytes) { Update(std::string_view(bytes)); }
  void Update(std::uint64_t value);
  void Update(std::int64_t value) { Update(static_cast<std::uint64_t>(value)); }
  void Update(int value) { Update(static_cast<std::uint64_t>(value)); }
  void Update(bool value) { Update(static_cast<std::uint64_t>(value)); }

  /// Finalizes (avalanches) the accumulated state.  The hasher may keep
  /// receiving Update calls afterwards; Finish is const and repeatable.
  [[nodiscard]] CanonicalHash Finish() const;

 private:
  std::uint64_t a_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t b_ = 0x6c62272e07bb0142ULL;  // independent second stream
};

/// Digest of the graph's canonical serialized form (see file comment).
[[nodiscard]] CanonicalHash HashDag(const Dag& dag);

}  // namespace respect::graph
