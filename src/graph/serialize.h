// Plain-text (de)serialization of computational graphs.
//
// A small line-oriented format so graphs can be exported, diffed, and fed to
// the CLI tools without rebuilding the zoo:
//
//   respect-dag 1
//   name <model name>
//   node <id> <type> <param_bytes> <output_bytes> <macs> <op name...>
//   edge <from> <to>
//
// Round-trips exactly (names may contain spaces; they end the line).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/dag.h"

namespace respect::graph {

/// Writes `dag` to the stream in the format above.
void WriteDag(const Dag& dag, std::ostream& os);

/// Parses a graph written by WriteDag.  Throws std::runtime_error on
/// malformed input (wrong header, bad ids, duplicate edges).
[[nodiscard]] Dag ReadDag(std::istream& is);

/// File-path convenience wrappers.
void SaveDag(const Dag& dag, const std::string& path);
[[nodiscard]] Dag LoadDag(const std::string& path);

}  // namespace respect::graph
