#include "graph/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace respect::graph {
namespace {

/// Log-uniform integer in [lo, hi].
std::int64_t LogUniform(std::int64_t lo, std::int64_t hi,
                        std::mt19937_64& rng) {
  if (lo <= 0 || hi < lo) {
    throw std::invalid_argument("LogUniform: need 0 < lo <= hi");
  }
  std::uniform_real_distribution<double> dist(std::log(double(lo)),
                                              std::log(double(hi)));
  return static_cast<std::int64_t>(std::llround(std::exp(dist(rng))));
}

/// Picks a skip-edge source for node `v` among [0, v-2] with a recency bias:
/// the distance beyond the backbone parent decays geometrically with
/// `locality` (DNN skip connections are mostly short residuals).
NodeId PickSkipParent(NodeId v, double locality, std::mt19937_64& rng) {
  std::exponential_distribution<double> dist(locality / double(v + 1));
  const int d = 2 + static_cast<int>(dist(rng));
  return std::max<NodeId>(0, v - static_cast<NodeId>(d));
}

OpType PickType(int num_parents, std::mt19937_64& rng) {
  if (num_parents >= 2) {
    return (rng() & 1) ? OpType::kAdd : OpType::kConcat;
  }
  switch (rng() % 6) {
    case 0: return OpType::kConv2D;
    case 1: return OpType::kDepthwiseConv2D;
    case 2: return OpType::kBatchNorm;
    case 3: return OpType::kRelu;
    case 4: return OpType::kMaxPool;
    default: return OpType::kConv2D;
  }
}

}  // namespace

Dag SampleDag(const SamplerConfig& config, std::mt19937_64& rng) {
  if (config.num_nodes < 2) {
    throw std::invalid_argument("SampleDag: need at least 2 nodes");
  }
  if (config.max_in_degree < 1) {
    throw std::invalid_argument("SampleDag: max_in_degree must be >= 1");
  }

  // Structure: a backbone chain 0 -> 1 -> ... -> n-1 (DNN computational
  // graphs are overwhelmingly chain-like — cf. the Depth column of the
  // paper's Table I, which nearly equals |V| for every model) plus random
  // skip edges that form the residual/dense-style joins.  The construction
  // guarantees all sampler invariants directly: single source, single sink,
  // acyclicity, and the in-degree cap.
  Dag dag("synthetic");
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (int i = 0; i < config.num_nodes; ++i) {
    OpAttr attr;
    attr.param_bytes =
        LogUniform(config.min_param_bytes, config.max_param_bytes, rng);
    attr.output_bytes =
        LogUniform(config.min_output_bytes, config.max_output_bytes, rng);
    // MACs roughly track parameter size times a spatial reuse factor, the
    // way convolutions do.
    attr.macs = attr.param_bytes * (8 + static_cast<std::int64_t>(rng() % 56));
    const NodeId v = dag.AddNode(std::move(attr));

    if (v == 0) {
      dag.MutableAttr(v).type = OpType::kInput;
      dag.MutableAttr(v).param_bytes = 0;
      dag.MutableAttr(v).macs = 0;
      dag.MutableAttr(v).name = "input";
      continue;
    }

    dag.AddEdge(v - 1, v);  // backbone

    // Joins: extra skip parents up to the in-degree cap.
    if (v >= 2 && config.max_in_degree >= 2 &&
        coin(rng) < config.join_probability) {
      const int extra =
          1 + static_cast<int>(rng() % (config.max_in_degree - 1));
      int guard = 0;
      for (int e = 0; e < extra && guard < 32; ++guard) {
        const NodeId p = PickSkipParent(v, config.locality, rng);
        if (!dag.HasEdge(p, v)) {
          dag.AddEdge(p, v);
          ++e;
        }
      }
    }

    const int parents = static_cast<int>(dag.Parents(v).size());
    dag.MutableAttr(v).type = PickType(parents, rng);
    dag.MutableAttr(v).name =
        std::string(OpTypeName(dag.Attr(v).type)) + "_" + std::to_string(v);
  }

  // Guarantee the advertised complexity class: the final join reaches the
  // in-degree cap if no sampled node did (skip parents only, so the cap,
  // the single sink and acyclicity all stay intact).
  const NodeId last = static_cast<NodeId>(config.num_nodes - 1);
  if (config.max_in_degree >= 2 &&
      config.num_nodes > config.max_in_degree &&
      dag.MaxInDegree() < config.max_in_degree) {
    for (NodeId p = last - 2;
         p >= 0 && static_cast<int>(dag.Parents(last).size()) <
                       config.max_in_degree;
         --p) {
      if (!dag.HasEdge(p, last)) dag.AddEdge(p, last);
    }
    dag.MutableAttr(last).type = PickType(2, rng);
  }

  dag.Validate();
  return dag;
}

Dag SampleTrainingDag(int num_nodes, std::mt19937_64& rng) {
  SamplerConfig config;
  config.num_nodes = num_nodes;
  config.max_in_degree = 2 + static_cast<int>(rng() % 5);  // {2..6}
  return SampleDag(config, rng);
}

}  // namespace respect::graph
