#include "graph/serialize.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace respect::graph {
namespace {

constexpr int kFormatVersion = 1;

const std::unordered_map<std::string, OpType>& TypeByName() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, OpType>;
    for (const OpType t :
         {OpType::kInput, OpType::kConv2D, OpType::kDepthwiseConv2D,
          OpType::kSeparableConv2D, OpType::kDense, OpType::kBatchNorm,
          OpType::kRelu, OpType::kAdd, OpType::kConcat, OpType::kMaxPool,
          OpType::kAvgPool, OpType::kGlobalPool, OpType::kSoftmax,
          OpType::kPad, OpType::kGeneric}) {
      m->emplace(std::string(OpTypeName(t)), t);
    }
    return m;
  }();
  return *map;
}

}  // namespace

void WriteDag(const Dag& dag, std::ostream& os) {
  os << "respect-dag " << kFormatVersion << "\n";
  os << "name " << dag.Name() << "\n";
  for (NodeId v = 0; v < dag.NodeCount(); ++v) {
    const OpAttr& a = dag.Attr(v);
    os << "node " << v << " " << OpTypeName(a.type) << " " << a.param_bytes
       << " " << a.output_bytes << " " << a.macs << " " << a.name << "\n";
  }
  for (const Edge& e : dag.Edges()) {
    os << "edge " << e.from << " " << e.to << "\n";
  }
}

Dag ReadDag(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      line != "respect-dag " + std::to_string(kFormatVersion)) {
    throw std::runtime_error("ReadDag: bad header: '" + line + "'");
  }
  Dag dag;
  int expected_next_id = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "name") {
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
      dag.SetName(name);
    } else if (kind == "node") {
      int id = -1;
      std::string type_name;
      OpAttr attr;
      ls >> id >> type_name >> attr.param_bytes >> attr.output_bytes >>
          attr.macs;
      const bool fields_ok = !ls.fail();
      std::getline(ls, attr.name);
      if (!attr.name.empty() && attr.name.front() == ' ') {
        attr.name.erase(0, 1);
      }
      const auto it = TypeByName().find(type_name);
      if (!fields_ok || id != expected_next_id || it == TypeByName().end()) {
        throw std::runtime_error("ReadDag: malformed node line: '" + line +
                                 "'");
      }
      attr.type = it->second;
      dag.AddNode(std::move(attr));
      ++expected_next_id;
    } else if (kind == "edge") {
      NodeId from = kInvalidNode, to = kInvalidNode;
      ls >> from >> to;
      if (ls.fail()) {
        throw std::runtime_error("ReadDag: malformed edge line: '" + line +
                                 "'");
      }
      dag.AddEdge(from, to);  // range/duplicate checks inside
    } else {
      throw std::runtime_error("ReadDag: unknown record '" + kind + "'");
    }
  }
  dag.Validate();
  return dag;
}

void SaveDag(const Dag& dag, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("SaveDag: cannot open " + path);
  WriteDag(dag, os);
  if (!os) throw std::runtime_error("SaveDag: write failed: " + path);
}

Dag LoadDag(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("LoadDag: cannot open " + path);
  return ReadDag(is);
}

}  // namespace respect::graph
