#include "graph/topology.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace respect::graph {

TopoInfo AnalyzeTopology(const Dag& dag) {
  dag.Validate();
  const int n = dag.NodeCount();

  TopoInfo info;
  info.order.reserve(n);
  info.asap_level.assign(n, 0);

  std::vector<int> indeg(n);
  // Min-heap on node id gives a deterministic order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(dag.Parents(v).size());
    if (indeg[v] == 0) ready.push(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    info.order.push_back(v);
    for (const NodeId c : dag.Children(v)) {
      info.asap_level[c] =
          std::max(info.asap_level[c], info.asap_level[v] + 1);
      if (--indeg[c] == 0) ready.push(c);
    }
  }

  info.depth = 0;
  for (const int lvl : info.asap_level) info.depth = std::max(info.depth, lvl);
  info.depth += 1;  // level count, not max level index

  info.alap_level.assign(n, info.depth - 1);
  for (auto it = info.order.rbegin(); it != info.order.rend(); ++it) {
    const NodeId v = *it;
    for (const NodeId c : dag.Children(v)) {
      info.alap_level[v] = std::min(info.alap_level[v], info.alap_level[c] - 1);
    }
  }

  info.mobility.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    info.mobility[v] = info.alap_level[v] - info.asap_level[v];
  }
  return info;
}

std::vector<int> OrderPositions(const std::vector<NodeId>& order,
                                int node_count) {
  std::vector<int> pos(node_count, -1);
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    const NodeId v = order[i];
    if (v < 0 || v >= node_count || pos[v] != -1) {
      throw std::invalid_argument("OrderPositions: order is not a permutation");
    }
    pos[v] = i;
  }
  return pos;
}

bool IsTopologicalOrder(const Dag& dag, const std::vector<NodeId>& order) {
  if (static_cast<int>(order.size()) != dag.NodeCount()) return false;
  std::vector<int> pos(dag.NodeCount(), -1);
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    const NodeId v = order[i];
    if (v < 0 || v >= dag.NodeCount() || pos[v] != -1) return false;
    pos[v] = i;
  }
  for (const Edge& e : dag.Edges()) {
    if (pos[e.from] >= pos[e.to]) return false;
  }
  return true;
}

std::vector<std::vector<NodeId>> TransitiveReachability(const Dag& dag) {
  const TopoInfo topo = AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // Process in reverse topological order: reach(u) = union of children and
  // their reach sets.
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const NodeId u = *it;
    for (const NodeId c : dag.Children(u)) {
      reach[u][c] = true;
      for (NodeId w = 0; w < n; ++w) {
        if (reach[c][w]) reach[u][w] = true;
      }
    }
  }
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w = 0; w < n; ++w) {
      if (reach[u][w]) out[u].push_back(w);
    }
  }
  return out;
}

std::vector<std::int64_t> CriticalPathMacs(const Dag& dag) {
  const TopoInfo topo = AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  std::vector<std::int64_t> cp(n, 0);
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const NodeId v = *it;
    std::int64_t best_child = 0;
    for (const NodeId c : dag.Children(v)) {
      best_child = std::max(best_child, cp[c]);
    }
    cp[v] = dag.Attr(v).macs + best_child;
  }
  return cp;
}

}  // namespace respect::graph
