#include "graph/topology.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace respect::graph {

TopoInfo AnalyzeTopology(const Dag& dag) {
  dag.Validate();
  TopoScratch scratch;
  TopoInfo info;
  AnalyzeTopologyInto(dag, scratch, info);
  return info;
}

void AnalyzeTopologyInto(const Dag& dag, TopoScratch& scratch,
                         TopoInfo& info) {
  const int n = dag.NodeCount();
  if (n == 0) throw std::logic_error("AnalyzeTopology: empty graph");

  info.order.clear();
  info.order.reserve(n);
  info.asap_level.assign(n, 0);

  // Min-heap on node id gives a deterministic order (the same one
  // priority_queue<greater> pops: the unique minimum each round).
  scratch.indeg.assign(n, 0);
  scratch.heap.clear();
  scratch.heap.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    scratch.indeg[v] = static_cast<int>(dag.Parents(v).size());
    if (scratch.indeg[v] == 0) {
      scratch.heap.push_back(v);
      std::push_heap(scratch.heap.begin(), scratch.heap.end(),
                     std::greater<>());
    }
  }
  while (!scratch.heap.empty()) {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(), std::greater<>());
    const NodeId v = scratch.heap.back();
    scratch.heap.pop_back();
    info.order.push_back(v);
    for (const NodeId c : dag.Children(v)) {
      info.asap_level[c] =
          std::max(info.asap_level[c], info.asap_level[v] + 1);
      if (--scratch.indeg[c] == 0) {
        scratch.heap.push_back(c);
        std::push_heap(scratch.heap.begin(), scratch.heap.end(),
                       std::greater<>());
      }
    }
  }
  if (static_cast<int>(info.order.size()) != n) {
    throw std::logic_error("AnalyzeTopology: graph is cyclic");
  }

  info.depth = 0;
  for (const int lvl : info.asap_level) info.depth = std::max(info.depth, lvl);
  info.depth += 1;  // level count, not max level index

  info.alap_level.assign(n, info.depth - 1);
  for (auto it = info.order.rbegin(); it != info.order.rend(); ++it) {
    const NodeId v = *it;
    for (const NodeId c : dag.Children(v)) {
      info.alap_level[v] = std::min(info.alap_level[v], info.alap_level[c] - 1);
    }
  }

  info.mobility.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    info.mobility[v] = info.alap_level[v] - info.asap_level[v];
  }
}

std::vector<int> OrderPositions(const std::vector<NodeId>& order,
                                int node_count) {
  std::vector<int> pos(node_count, -1);
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    const NodeId v = order[i];
    if (v < 0 || v >= node_count || pos[v] != -1) {
      throw std::invalid_argument("OrderPositions: order is not a permutation");
    }
    pos[v] = i;
  }
  return pos;
}

bool IsTopologicalOrder(const Dag& dag, const std::vector<NodeId>& order) {
  if (static_cast<int>(order.size()) != dag.NodeCount()) return false;
  std::vector<int> pos(dag.NodeCount(), -1);
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    const NodeId v = order[i];
    if (v < 0 || v >= dag.NodeCount() || pos[v] != -1) return false;
    pos[v] = i;
  }
  for (const Edge& e : dag.Edges()) {
    if (pos[e.from] >= pos[e.to]) return false;
  }
  return true;
}

std::vector<std::vector<NodeId>> TransitiveReachability(const Dag& dag) {
  const TopoInfo topo = AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // Process in reverse topological order: reach(u) = union of children and
  // their reach sets.
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const NodeId u = *it;
    for (const NodeId c : dag.Children(u)) {
      reach[u][c] = true;
      for (NodeId w = 0; w < n; ++w) {
        if (reach[c][w]) reach[u][w] = true;
      }
    }
  }
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w = 0; w < n; ++w) {
      if (reach[u][w]) out[u].push_back(w);
    }
  }
  return out;
}

std::vector<std::int64_t> CriticalPathMacs(const Dag& dag) {
  const TopoInfo topo = AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  std::vector<std::int64_t> cp(n, 0);
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const NodeId v = *it;
    std::int64_t best_child = 0;
    for (const NodeId c : dag.Children(v)) {
      best_child = std::max(best_child, cp[c]);
    }
    cp[v] = dag.Attr(v).macs + best_child;
  }
  return cp;
}

}  // namespace respect::graph
