// Topological analyses of computational graphs.
//
// The paper's embedding (Fig. 1a step 2) is built from As-Soon-As-Possible
// (ASAP) topological levels; the exact schedulers use ASAP/ALAP levels to
// bound the feasible stage window of each node; and Table I reports the
// "Depth" of each evaluated model, which is the number of ASAP levels.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"

namespace respect::graph {

/// Result of a full topological analysis of a Dag.
struct TopoInfo {
  /// A deterministic topological order (Kahn's algorithm with a
  /// smallest-id-first tie break, so the order is reproducible).
  std::vector<NodeId> order;

  /// ASAP level of each node: sources are level 0, every other node is
  /// 1 + max(parent levels).  This is the paper's "absolute coordinate".
  std::vector<int> asap_level;

  /// ALAP level of each node w.r.t. the graph depth: sinks are at
  /// depth-1, every other node is min(child levels) - 1.
  std::vector<int> alap_level;

  /// Scheduling freedom per node: alap - asap (force-directed scheduling
  /// calls this the node's mobility).
  std::vector<int> mobility;

  /// Number of distinct ASAP levels == longest path length in nodes.
  /// Matches the "Depth" column of Table I.
  int depth = 0;
};

/// Runs Kahn's algorithm plus level computations.  Throws std::logic_error
/// (via Dag::Validate) if the graph is cyclic or empty.
[[nodiscard]] TopoInfo AnalyzeTopology(const Dag& dag);

/// Reusable scratch for AnalyzeTopologyInto: the in-degree array and the
/// ready min-heap Kahn's algorithm works on.
struct TopoScratch {
  std::vector<int> indeg;
  std::vector<NodeId> heap;
};

/// Allocation-free re-analysis for hot loops: identical results to
/// AnalyzeTopology, but every vector in `scratch` and `info` is reused, so
/// repeat calls on graphs of steady-state size perform no heap allocation.
/// Detects cyclic or empty graphs itself (throws std::logic_error) instead
/// of paying for Dag::Validate.
void AnalyzeTopologyInto(const Dag& dag, TopoScratch& scratch, TopoInfo& info);

/// Position of each node inside `order` (inverse permutation).
[[nodiscard]] std::vector<int> OrderPositions(const std::vector<NodeId>& order,
                                              int node_count);

/// True iff `order` is a valid topological order of `dag` covering every
/// node exactly once.
[[nodiscard]] bool IsTopologicalOrder(const Dag& dag,
                                      const std::vector<NodeId>& order);

/// Bitset-free transitive reachability: reach[u] lists all v with a directed
/// path u -> v (u excluded).  O(V * E); only used on small/medium graphs and
/// in tests.
[[nodiscard]] std::vector<std::vector<NodeId>> TransitiveReachability(
    const Dag& dag);

/// Length (in nodes) of the longest path through the graph weighted by MACs;
/// used by list scheduling as the critical-path priority.
[[nodiscard]] std::vector<std::int64_t> CriticalPathMacs(const Dag& dag);

}  // namespace respect::graph
