#include "graph/dag.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace respect::graph {

std::string_view OpTypeName(OpType type) {
  switch (type) {
    case OpType::kInput: return "Input";
    case OpType::kConv2D: return "Conv2D";
    case OpType::kDepthwiseConv2D: return "DepthwiseConv2D";
    case OpType::kSeparableConv2D: return "SeparableConv2D";
    case OpType::kDense: return "Dense";
    case OpType::kBatchNorm: return "BatchNorm";
    case OpType::kRelu: return "Relu";
    case OpType::kAdd: return "Add";
    case OpType::kConcat: return "Concat";
    case OpType::kMaxPool: return "MaxPool";
    case OpType::kAvgPool: return "AvgPool";
    case OpType::kGlobalPool: return "GlobalPool";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kPad: return "Pad";
    case OpType::kGeneric: return "Generic";
  }
  return "Unknown";
}

NodeId Dag::AddNode(OpAttr attr) {
  if (attr.param_bytes < 0 || attr.output_bytes < 0 || attr.macs < 0) {
    throw std::invalid_argument("Dag::AddNode: negative attribute for '" +
                                attr.name + "'");
  }
  attrs_.push_back(std::move(attr));
  parents_.emplace_back();
  children_.emplace_back();
  return static_cast<NodeId>(attrs_.size() - 1);
}

void Dag::CheckNode(NodeId id) const {
  if (id < 0 || id >= NodeCount()) {
    throw std::invalid_argument("Dag: node id " + std::to_string(id) +
                                " out of range (|V|=" +
                                std::to_string(NodeCount()) + ")");
  }
}

void Dag::AddEdge(NodeId from, NodeId to) {
  CheckNode(from);
  CheckNode(to);
  if (from == to) {
    throw std::invalid_argument("Dag::AddEdge: self edge on node " +
                                std::to_string(from));
  }
  if (HasEdge(from, to)) {
    throw std::invalid_argument("Dag::AddEdge: duplicate edge " +
                                std::to_string(from) + "->" +
                                std::to_string(to));
  }
  children_[from].push_back(to);
  parents_[to].push_back(from);
  edges_.push_back(Edge{from, to});
  ++edge_count_;
}

const OpAttr& Dag::Attr(NodeId id) const {
  CheckNode(id);
  return attrs_[id];
}

OpAttr& Dag::MutableAttr(NodeId id) {
  CheckNode(id);
  return attrs_[id];
}

std::span<const NodeId> Dag::Parents(NodeId id) const {
  CheckNode(id);
  return parents_[id];
}

std::span<const NodeId> Dag::Children(NodeId id) const {
  CheckNode(id);
  return children_[id];
}

bool Dag::HasEdge(NodeId from, NodeId to) const {
  CheckNode(from);
  CheckNode(to);
  const auto& kids = children_[from];
  return std::find(kids.begin(), kids.end(), to) != kids.end();
}

int Dag::MaxInDegree() const {
  int deg = 0;
  for (const auto& p : parents_) deg = std::max(deg, static_cast<int>(p.size()));
  return deg;
}

std::vector<NodeId> Dag::Sources() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < NodeCount(); ++v) {
    if (parents_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Dag::Sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < NodeCount(); ++v) {
    if (children_[v].empty()) out.push_back(v);
  }
  return out;
}

bool Dag::IsAcyclic() const {
  // Kahn's algorithm: the graph is acyclic iff every node gets popped.
  std::vector<int> indeg(NodeCount());
  for (NodeId v = 0; v < NodeCount(); ++v) {
    indeg[v] = static_cast<int>(parents_[v].size());
  }
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < NodeCount(); ++v) {
    if (indeg[v] == 0) stack.push_back(v);
  }
  int popped = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++popped;
    for (const NodeId c : children_[v]) {
      if (--indeg[c] == 0) stack.push_back(c);
    }
  }
  return popped == NodeCount();
}

void Dag::Validate() const {
  if (NodeCount() == 0) {
    throw std::logic_error("Dag::Validate: graph '" + name_ + "' is empty");
  }
  if (!IsAcyclic()) {
    throw std::logic_error("Dag::Validate: graph '" + name_ +
                           "' contains a cycle");
  }
}

std::int64_t Dag::TotalParamBytes() const {
  std::int64_t total = 0;
  for (const auto& a : attrs_) total += a.param_bytes;
  return total;
}

std::int64_t Dag::TotalMacs() const {
  std::int64_t total = 0;
  for (const auto& a : attrs_) total += a.macs;
  return total;
}

std::uint64_t HashOperatorName(std::string_view name) {
  // FNV-1a, 64 bit.  Deterministic across platforms, which keeps the RL
  // embedding reproducible.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ToDot(const Dag& dag) {
  std::ostringstream os;
  os << "digraph \"" << dag.Name() << "\" {\n";
  for (NodeId v = 0; v < dag.NodeCount(); ++v) {
    const OpAttr& a = dag.Attr(v);
    os << "  n" << v << " [label=\"" << a.name << "\\n"
       << OpTypeName(a.type) << " " << a.param_bytes << "B\"];\n";
  }
  for (const Edge& e : dag.Edges()) {
    os << "  n" << e.from << " -> n" << e.to << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace respect::graph
