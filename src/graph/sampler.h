// Synthetic DAG sampler — the paper's training-data generator.
//
// RESPECT is trained *entirely* on synthetic graphs: "we integrate a DAG
// sampler into our RL training framework which randomly generates network
// graphs with |V| = 30 but with different graph complexities ...
// deg(V) ∈ {2, 3, 4, 5, 6}" (§III-B).  This module reproduces that sampler:
// layered random DAGs that mimic the structure of DNN computational graphs
// (a single input, mostly chain-like flow with skip/branch edges, realistic
// per-operator memory attributes).
#pragma once

#include <cstdint>
#include <random>

#include "graph/dag.h"

namespace respect::graph {

/// Controls one draw from the synthetic distribution.
struct SamplerConfig {
  /// Number of operator nodes (the paper trains at 30).
  int num_nodes = 30;

  /// Maximum in-degree `deg(V)`; the paper sweeps {2,3,4,5,6}.
  int max_in_degree = 2;

  /// Probability that a non-source node receives skip parents in addition
  /// to its backbone parent (i.e. is a join such as Add/Concat).  Controls
  /// graph complexity beyond the in-degree cap.
  double join_probability = 0.35;

  /// How strongly skip parents are biased towards recent nodes; larger =
  /// shorter residual-style skips (DNN skip connections are mostly local).
  double locality = 8.0;

  /// Parameter-size distribution (log-uniform), in bytes.  Defaults cover
  /// the span from tiny batch-norm vectors to large conv kernels.
  std::int64_t min_param_bytes = 1 << 10;    // 1 KiB
  std::int64_t max_param_bytes = 2 << 20;    // 2 MiB

  /// Activation-size distribution (log-uniform), in bytes.
  std::int64_t min_output_bytes = 16 << 10;  // 16 KiB
  std::int64_t max_output_bytes = 4 << 20;   // 4 MiB
};

/// Draws one synthetic computational graph: a backbone chain (DNN graphs
/// are overwhelmingly chain-like — cf. Table I's Depth ~ |V|) decorated with
/// random residual/dense-style skip joins.  The result is guaranteed
/// acyclic, single-source, single-sink, respects `max_in_degree`, and has at
/// least one node with in-degree exactly `max_in_degree` when num_nodes
/// permits (so the sampled complexity class is actually realized).
[[nodiscard]] Dag SampleDag(const SamplerConfig& config, std::mt19937_64& rng);

/// Convenience wrapper around the paper's training curriculum: picks
/// deg(V) uniformly from {2..6} and samples with the default config.
[[nodiscard]] Dag SampleTrainingDag(int num_nodes, std::mt19937_64& rng);

}  // namespace respect::graph
