#include "graph/canonical_hash.h"

#include <cstdio>
#include <ostream>
#include <streambuf>

#include "graph/serialize.h"

namespace respect::graph {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kSecondPrime = 0xc6a4a7935bd1e995ULL;  // odd, distinct

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Forwards every byte written to the stream into a CanonicalHasher, so
/// WriteDag defines the hashed byte stream without materializing the text.
class HashingStreamBuf final : public std::streambuf {
 public:
  explicit HashingStreamBuf(CanonicalHasher& hasher) : hasher_(hasher) {}

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      const char c = traits_type::to_char_type(ch);
      hasher_.Update(std::string_view(&c, 1));
    }
    return traits_type::not_eof(ch);
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    hasher_.Update(std::string_view(s, static_cast<std::size_t>(n)));
    return n;
  }

 private:
  CanonicalHasher& hasher_;
};

}  // namespace

std::string CanonicalHash::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

std::optional<CanonicalHash> CanonicalHash::FromHex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(16 * w + i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
      words[w] = (words[w] << 4) | digit;
    }
  }
  return CanonicalHash{words[0], words[1]};
}

void CanonicalHasher::Update(std::string_view bytes) {
  std::uint64_t a = a_;
  std::uint64_t b = b_;
  for (const char c : bytes) {
    const auto byte = static_cast<unsigned char>(c);
    a = (a ^ byte) * kFnvPrime;
    b = (b ^ byte) * kSecondPrime;
  }
  a_ = a;
  b_ = b;
}

void CanonicalHasher::Update(std::uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  Update(std::string_view(buf, sizeof(buf)));
}

CanonicalHash CanonicalHasher::Finish() const {
  const std::uint64_t hi = SplitMix64(a_);
  return CanonicalHash{hi, SplitMix64(b_ ^ hi)};
}

CanonicalHash HashDag(const Dag& dag) {
  CanonicalHasher hasher;
  HashingStreamBuf buf(hasher);
  std::ostream os(&buf);
  WriteDag(dag, os);
  return hasher.Finish();
}

}  // namespace respect::graph
