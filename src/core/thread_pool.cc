#include "core/thread_pool.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <utility>

namespace respect::core {
namespace {

/// The pool the current thread is a worker of, if any — lets ParallelFor
/// detect nested use on the same pool and degrade to inline execution
/// instead of deadlocking on its own worker slot.
thread_local const ThreadPool* current_worker_pool = nullptr;

/// The default policy: strict submission order, attributes ignored.
class FifoTaskQueue final : public ThreadPool::TaskQueue {
 public:
  void Push(ThreadPool::Task task, ThreadPool::TaskAttrs) override {
    queue_.push_back(std::move(task));
  }

  [[nodiscard]] ThreadPool::Task Pop() override {
    ThreadPool::Task task = std::move(queue_.front());
    queue_.pop_front();
    return task;
  }

  [[nodiscard]] std::size_t Size() const override { return queue_.size(); }

 private:
  std::deque<ThreadPool::Task> queue_;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool(num_threads, nullptr) {}

ThreadPool::ThreadPool(int num_threads, std::unique_ptr<TaskQueue> queue)
    : queue_(queue != nullptr ? std::move(queue)
                              : std::make_unique<FifoTaskQueue>()) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers exit as soon as Size() reaches 0, which for a policy queue that
  // hides capped entries can leave unconsumed work behind.  Every entry
  // still queued must be settled exactly once (run or drop its on_expired)
  // so promise-holding consumers are never left hanging.
  queue_->Shutdown();
}

void ThreadPool::Submit(Task task) { Submit(std::move(task), TaskAttrs{}); }

void ThreadPool::Submit(Task task, TaskAttrs attrs) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_->Push(std::move(task), std::move(attrs));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || queue_->Size() > 0; });
      if (queue_->Size() == 0) return;  // stop_ set and nothing left to run
      task = queue_->Pop();
    }
    // A throwing task must not tear down the process (std::terminate) or
    // wedge Wait() by skipping the in_flight_ decrement.  Raw Submit offers
    // no channel to report the error; ParallelFor catches and rethrows on
    // the caller side before this backstop is reached.
    try {
      task();
    } catch (...) {
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Nested call from one of this pool's own workers: waiting would occupy
  // the worker slot the subtasks need (guaranteed deadlock on a 1-thread
  // pool), so run inline — with the same run-every-index-then-rethrow
  // semantics as the pooled path.
  if (current_worker_pool == &pool) {
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    return;
  }

  // Completion is tracked per call, not via pool-wide idleness (Wait()), so
  // concurrent ParallelFor calls sharing one pool never block on each
  // other's tasks.
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = n;
  std::vector<std::exception_ptr> errors(n);

  std::size_t submitted = 0;
  try {
    for (std::size_t i = 0; i < n; ++i) {
      pool.Submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        const std::lock_guard<std::mutex> lock(mutex);
        --remaining;
        done_cv.notify_all();
      });
      ++submitted;
    }
  } catch (...) {
    // Submit itself threw (e.g. bad_alloc) after some tasks went out.  The
    // stack locals they capture must outlive them: drain the submitted
    // tasks before letting the exception unwind this frame.
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return remaining == n - submitted; });
    throw;
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace respect::core
