// Failpoints: named fault-injection sites, zero-cost when disabled.
//
// Production code marks failure-prone spots with RESPECT_FAILPOINT("site");
// tests and the CLI arm sites at runtime to inject typed errors, delays, or
// a hard crash:
//
//   core::failpoint::Configure("store.write", "error(ENOSPC)", /*count=*/2);
//   core::failpoint::Configure("engine.solve.RESPECT", "delay(50)");
//   ...
//   core::failpoint::ClearAll();
//
// or from a CLI spec string: "store.write=error;queue.pop=delay(5)".
//
// Cost model: when no site is configured anywhere, a failpoint is one
// relaxed atomic load.  When RESPECT_FAILPOINTS is compiled out (CMake
// -DRESPECT_FAILPOINTS=OFF) the macro expands to nothing.
//
// Actions:
//   off         — count the visit, inject nothing (for assertions).
//   error       — throw FailpointError ("error(msg)" customizes the text).
//   delay(ms)   — sleep the calling thread for ms milliseconds.
//   crash       — std::abort() (chaos/crash-recovery tests only).
// A positive `count` limits how many times the action fires; after that the
// site keeps counting visits but injects nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace respect::core::failpoint {

/// Thrown by sites armed with the "error" action.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {
// Number of configured sites; the macro's fast-path gate.
extern std::atomic<int> g_configured;
}  // namespace internal

/// True when any site is configured (fast path for the macro).
inline bool Armed() noexcept {
  return internal::g_configured.load(std::memory_order_relaxed) != 0;
}

/// Runs the configured action for `site`, if any.  May throw FailpointError,
/// sleep, or abort.  Call through the macro, not directly.
void Evaluate(std::string_view site);

/// Evaluates both "site" and "site.tag" (e.g. "engine.solve" and
/// "engine.solve.RESPECT") so chaos tooling can target one engine.
void EvaluateTagged(std::string_view site, std::string_view tag);

/// Arms `site` with `action` (see the actions table above).  `count` > 0
/// limits the number of injections; 0 means unlimited.
void Configure(std::string site, std::string action, std::uint64_t count = 0);

/// Parses "site=action;site=action" (';' or ',' separated).  Returns false
/// on a malformed spec (nothing is configured for the bad clause).
bool ConfigureFromSpec(std::string_view spec);

/// Disarms one site / every site.  Visit counters are forgotten with them.
void Clear(std::string_view site);
void ClearAll();

/// Visits to `site` since it was configured (fired or not); 0 if unknown.
std::uint64_t HitCount(std::string_view site);

/// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, std::string action, std::uint64_t count = 0)
      : site_(site) {
    Configure(std::move(site), std::move(action), count);
  }
  ~ScopedFailpoint() { Clear(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace respect::core::failpoint

#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS
#define RESPECT_FAILPOINT(site)                     \
  do {                                              \
    if (::respect::core::failpoint::Armed()) {      \
      ::respect::core::failpoint::Evaluate(site);   \
    }                                               \
  } while (false)
#define RESPECT_FAILPOINT_TAGGED(site, tag)                  \
  do {                                                       \
    if (::respect::core::failpoint::Armed()) {               \
      ::respect::core::failpoint::EvaluateTagged(site, tag); \
    }                                                        \
  } while (false)
#else
#define RESPECT_FAILPOINT(site) \
  do {                          \
  } while (false)
#define RESPECT_FAILPOINT_TAGGED(site, tag) \
  do {                                      \
  } while (false)
#endif
