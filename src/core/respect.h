// RESPECT public API — the one-stop façade a downstream user consumes.
//
//   respect::PipelineCompiler compiler(options);
//   auto result = compiler.Compile(dag, /*num_stages=*/4,
//                                  respect::Method::kRespectRl);
//   auto sim = respect::tpu::SimulatePipeline(result.package);
//
// Compile() resolves the chosen engine through the SchedulerEngine registry
// (engines/registry.h — the RL agent, the exact ILP route, the Edge TPU
// compiler substitute, the classic heuristics, or anything registered at
// runtime), validates/repairs the schedule, and packages it for deployment
// (quantization + segment extraction).  Compile() is const and engines are
// stateless, so one compiler may serve many threads; CompileBatch runs a
// whole batch of graphs across a thread pool with results identical to the
// sequential path.  EnsureTrainedAgent implements the train-or-load weight
// cache used by the examples and benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/cancel.h"
#include "deploy/package.h"
#include "engines/method.h"
#include "engines/registry.h"
#include "graph/dag.h"
#include "heuristics/edgetpu_compiler.h"
#include "rl/scheduler.h"
#include "rl/trainer.h"
#include "sched/schedule.h"

namespace respect::core {
class ThreadPool;
}  // namespace respect::core

namespace respect {

struct CompilerOptions {
  /// RL agent configuration (hidden size, masking, embedding).
  rl::PtrNetConfig net;

  /// Weights file; loaded when non-empty and present.
  std::string weights_path;

  /// Exact-method budgets.
  std::int64_t exact_max_expansions = 2'000'000;
  double exact_time_limit_seconds = 10.0;

  /// Compiler-substitute knobs.
  heuristics::EdgeTpuCompilerConfig compiler;

  /// Quantize packages (uint8) as the real deployment flow does.
  bool quantize = true;
};

struct CompileResult {
  sched::Schedule schedule;
  deploy::PipelinePackage package;

  /// Engine solve time only (the Fig. 3 metric) — post-processing and
  /// packaging/quantization are excluded.
  double solve_seconds = 0.0;

  /// Peak per-stage parameter bytes of the deployed (quantized) package —
  /// the Fig. 5 metric.
  std::int64_t peak_stage_param_bytes = 0;

  /// True for exact runs that proved optimality within budget.
  bool proved_optimal = false;
};

class PipelineCompiler {
 public:
  explicit PipelineCompiler(const CompilerOptions& options = {});

  // Movable but not copyable: a copy would alias the live RL slot, letting
  // ReplaceRl / training on one copy silently change the other's weights.
  // A moved-from compiler may only be destroyed or assigned to.
  PipelineCompiler(PipelineCompiler&&) = default;
  PipelineCompiler& operator=(PipelineCompiler&&) = default;
  PipelineCompiler(const PipelineCompiler&) = delete;
  PipelineCompiler& operator=(const PipelineCompiler&) = delete;

  /// Compiles with a built-in engine addressed by enum value.
  [[nodiscard]] CompileResult Compile(const graph::Dag& dag, int num_stages,
                                      Method method) const;

  /// Compiles with any registered engine addressed by name or CLI alias —
  /// including engines registered at runtime that have no Method value.
  [[nodiscard]] CompileResult Compile(const graph::Dag& dag, int num_stages,
                                      std::string_view engine) const;

  /// Same, targeting an explicit device profile: the engine receives the
  /// profile through sched::PipelineConstraints, and for non-default
  /// profiles the repaired schedule additionally runs the deterministic
  /// device-aware rebalance (sched::RebalanceForProfile) before packaging.
  /// With tpu::DefaultProfile() this is byte-identical to the two-argument
  /// overload.
  [[nodiscard]] CompileResult Compile(const graph::Dag& dag, int num_stages,
                                      std::string_view engine,
                                      const tpu::DeviceProfile& profile) const;

  /// Same, carrying a cooperative cancellation token into the engine's
  /// inner loops (the serving layer's per-request solve budget).  A fired
  /// token unwinds with core::CancelledError — no partial schedule is ever
  /// returned.  An empty token makes this identical to the overload above.
  [[nodiscard]] CompileResult Compile(const graph::Dag& dag, int num_stages,
                                      std::string_view engine,
                                      const tpu::DeviceProfile& profile,
                                      const core::CancelToken& cancel) const;

  /// Compiles every graph of the batch across `num_threads` worker threads
  /// (values < 1 select ThreadPool::DefaultThreadCount()).  Engines are
  /// stateless and the RL weights are a shared immutable snapshot, so the
  /// results are element-wise identical to calling Compile() in a loop —
  /// except when a wall-clock budget cuts a solve short (ExactILP with
  /// exact_time_limit_seconds > 0): CPU contention changes how far such a
  /// solve gets, so its incumbent may differ between runs.  Expansion caps
  /// are deterministic; use those when bit-identical batches matter.
  /// When the chosen engine supports batched solving (RlEngine's
  /// lock-stepped decode), CompileBatch additionally groups the graphs by
  /// node count and routes every same-size group of >= 2 through the batch
  /// path, so the per-step recurrences run as GEMMs across the group;
  /// stragglers keep the per-graph path.  `stats` (optional, may be null)
  /// accumulates the batch/single split.
  [[nodiscard]] std::vector<CompileResult> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages, Method method,
      int num_threads, engines::SolveStats* stats = nullptr) const;
  [[nodiscard]] std::vector<CompileResult> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages,
      std::string_view engine, int num_threads,
      engines::SolveStats* stats = nullptr) const;

  /// Same, on a caller-owned pool — serving loops issuing many batches
  /// reuse one pool instead of paying thread spawn/join per call.
  [[nodiscard]] std::vector<CompileResult> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages, Method method,
      core::ThreadPool& pool, engines::SolveStats* stats = nullptr) const;
  [[nodiscard]] std::vector<CompileResult> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages,
      std::string_view engine, core::ThreadPool& pool,
      engines::SolveStats* stats = nullptr) const;

  /// Compiles a group of graphs INLINE on the calling thread through the
  /// engine's ScheduleBatch — same-node-count groups of >= 2 take the
  /// lock-stepped batch decode when the engine supports it.  This is the
  /// entry point for callers that already run on a worker thread (the
  /// serving layer's grouped miss handling must not nest pool submissions);
  /// results are element-wise identical to per-graph Compile() calls on
  /// the scalar path.
  [[nodiscard]] std::vector<CompileResult> CompileGroup(
      std::span<const graph::Dag* const> dags, int num_stages,
      std::string_view engine, engines::SolveStats* stats = nullptr) const;

  /// Profile-targeted group compile (every graph of the group shares the
  /// profile; the serving layer groups by profile fingerprint).
  [[nodiscard]] std::vector<CompileResult> CompileGroup(
      std::span<const graph::Dag* const> dags, int num_stages,
      std::string_view engine, const tpu::DeviceProfile& profile,
      engines::SolveStats* stats = nullptr) const;

  /// Snapshot of the current RL scheduler for training / weight loading
  /// (the train-then-serve flow of the benches and examples).  The returned
  /// shared_ptr keeps the object alive across a concurrent ReplaceRl, but
  /// mutating it while Compile/CompileBatch calls are in flight is a data
  /// race — to retrain under traffic, train a fresh scheduler and swap it
  /// in with ReplaceRl().  Const access yields a const snapshot, so
  /// const-only holders (the thread-safe serving interface) cannot mutate
  /// the weights the in-flight engines read.
  [[nodiscard]] std::shared_ptr<rl::RlScheduler> Rl();
  [[nodiscard]] std::shared_ptr<const rl::RlScheduler> Rl() const;

  /// Copy-on-write weight update: subsequent compiles snapshot `rl`;
  /// in-flight compiles keep reading the snapshot they started with.  Safe
  /// to call while Compile/CompileBatch calls are running.  Null resets to
  /// the constructor's configured state (options.net + options.weights_path).
  /// Every call bumps RlVersion().
  void ReplaceRl(std::shared_ptr<rl::RlScheduler> rl);

  /// Monotone version of the RL weight snapshot: 0 for the constructor's
  /// scheduler, +1 per ReplaceRl call.  Caching layers fold this into the
  /// key of any result computed by an RL-dependent engine
  /// (EngineRegistration::uses_rl), so stale weights can never answer a
  /// post-swap request.
  [[nodiscard]] std::uint64_t RlVersion() const;

  /// The read-only state handed to every engine this compiler creates.
  [[nodiscard]] engines::EngineContext MakeEngineContext() const;

 private:
  /// A scheduler in the constructor's configured state (options.net, with
  /// options.weights_path loaded when present).
  [[nodiscard]] std::shared_ptr<rl::RlScheduler> MakeConfiguredRl() const;

  [[nodiscard]] engines::EngineBudget MakeBudget() const;

  /// Post-solve half of a compile: repair, packaging, peak-bytes — shared
  /// by the single, batch, and group paths so every route finishes a solve
  /// identically.
  [[nodiscard]] CompileResult FinishCompile(
      engines::EngineResult engine_result, const graph::Dag& dag,
      const sched::PipelineConstraints& constraints) const;

  [[nodiscard]] CompileResult CompileWith(const engines::SchedulerEngine& engine,
                                          const graph::Dag& dag,
                                          const sched::PipelineConstraints&
                                              constraints,
                                          const core::CancelToken& cancel =
                                              {}) const;
  [[nodiscard]] std::vector<CompileResult> CompileBatchWith(
      const engines::SchedulerEngine& engine,
      std::span<const graph::Dag* const> dags, int num_stages,
      core::ThreadPool& pool, engines::SolveStats* stats) const;

  /// The current RL scheduler, behind a heap-allocated slot so the compiler
  /// stays movable: ReplaceRl swaps the inner pointer under the slot mutex
  /// while engine contexts hold their own shared_ptr snapshots.
  struct RlSlot {
    std::mutex mutex;
    std::shared_ptr<rl::RlScheduler> scheduler;
    std::uint64_t version = 0;  // bumped by every ReplaceRl
  };

  CompilerOptions options_;
  std::shared_ptr<RlSlot> rl_slot_;
};

/// Loads agent weights from `path` if the file exists; otherwise trains with
/// `train` (on synthetic graphs) and saves to `path`.  Returns true when
/// training happened.
bool EnsureTrainedAgent(rl::RlScheduler& scheduler, const std::string& path,
                        const rl::TrainConfig& train);

}  // namespace respect
