// RESPECT public API — the one-stop façade a downstream user consumes.
//
//   respect::PipelineCompiler compiler(options);
//   auto result = compiler.Compile(dag, /*num_stages=*/4,
//                                  respect::Method::kRespectRl);
//   auto sim = respect::tpu::SimulatePipeline(result.package);
//
// Compile() runs the chosen scheduler (the RL agent, the exact ILP route,
// the Edge TPU compiler substitute, or one of the classic heuristics),
// validates/repairs the schedule, and packages it for deployment
// (quantization + segment extraction).  EnsureTrainedAgent implements the
// train-or-load weight cache used by the examples and benchmarks.
#pragma once

#include <cstdint>
#include <string>

#include "deploy/package.h"
#include "graph/dag.h"
#include "heuristics/edgetpu_compiler.h"
#include "rl/scheduler.h"
#include "rl/trainer.h"
#include "sched/schedule.h"

namespace respect {

/// Scheduling engines available through the façade.
enum class Method {
  kRespectRl,        // the paper's contribution
  kExactIlp,         // exact method (ILP route, CPLEX role)
  kEdgeTpuCompiler,  // commercial-compiler substitute (count + profiling)
  kListScheduling,
  kHuLevel,
  kForceDirected,
  kAnnealing,
  kGreedyBalance,    // balanced contiguous partition of the default order
};

[[nodiscard]] std::string_view MethodName(Method method);

struct CompilerOptions {
  /// RL agent configuration (hidden size, masking, embedding).
  rl::PtrNetConfig net;

  /// Weights file; loaded when non-empty and present.
  std::string weights_path;

  /// Exact-method budgets.
  std::int64_t exact_max_expansions = 2'000'000;
  double exact_time_limit_seconds = 10.0;

  /// Compiler-substitute knobs.
  heuristics::EdgeTpuCompilerConfig compiler;

  /// Quantize packages (uint8) as the real deployment flow does.
  bool quantize = true;
};

struct CompileResult {
  sched::Schedule schedule;
  deploy::PipelinePackage package;
  double solve_seconds = 0.0;

  /// Peak per-stage parameter bytes of the deployed (quantized) package —
  /// the Fig. 5 metric.
  std::int64_t peak_stage_param_bytes = 0;

  /// True for exact runs that proved optimality within budget.
  bool proved_optimal = false;
};

class PipelineCompiler {
 public:
  explicit PipelineCompiler(const CompilerOptions& options = {});

  [[nodiscard]] CompileResult Compile(const graph::Dag& dag, int num_stages,
                                      Method method);

  [[nodiscard]] rl::RlScheduler& Rl() { return rl_; }

 private:
  CompilerOptions options_;
  rl::RlScheduler rl_;
};

/// Loads agent weights from `path` if the file exists; otherwise trains with
/// `train` (on synthetic graphs) and saves to `path`.  Returns true when
/// training happened.
bool EnsureTrainedAgent(rl::RlScheduler& scheduler, const std::string& path,
                        const rl::TrainConfig& train);

}  // namespace respect
