// A small fixed-size worker pool for the batch compilation path.
//
// Deliberately minimal: FIFO queue, Submit + Wait, no futures.  ParallelFor
// is the only shape CompileBatch needs — run fn(i) over an index range and
// rethrow the first worker exception on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace respect::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it may start running before Submit returns.  A task
  /// that throws is swallowed (there is no channel to report it) — use
  /// ParallelFor when exceptions must reach the caller.
  void Submit(std::function<void()> task);

  /// Blocks until the pool is fully idle — i.e. every task from every
  /// submitter has finished.  With multiple concurrent submitters prefer
  /// ParallelFor, which tracks completion of its own tasks only.
  void Wait();

  [[nodiscard]] int NumThreads() const {
    return static_cast<int>(workers_.size());
  }

  /// hardware_concurrency with a floor of 1 (the value is 0 when unknown).
  [[nodiscard]] static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task queued / stop
  std::condition_variable idle_cv_;  // signals Wait(): all work drained
  std::size_t in_flight_ = 0;        // queued + currently running tasks
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) on the pool and waits for all of them.  When workers
/// throw, the first exception (by index order) is rethrown on the caller.
/// Safe with concurrent callers sharing one pool (completion is tracked per
/// call), and safe to call from inside one of the pool's own tasks (the
/// nested call runs inline rather than deadlocking on its worker slot).
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace respect::core
