// A small fixed-size worker pool for the batch compilation and serving
// paths.
//
// The pool owns the workers and the hand-off machinery (mutex, condition
// variables, in-flight accounting); the *ordering* of pending tasks is a
// pluggable TaskQueue policy.  The default policy is plain FIFO — the shape
// CompileBatch needs — and the serving layer plugs in a deadline-aware
// multi-lane queue (serve::RequestQueue) without the pool knowing anything
// about priorities.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace respect::core {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Scheduling metadata forwarded from Submit to the pool's TaskQueue.
  /// The built-in FIFO queue ignores all of it; policy queues use `lane`
  /// for ordering and `deadline`/`on_expired` for in-queue expiry.
  struct TaskAttrs {
    /// Ordering hint; smaller = more urgent.  Meaning is defined by the
    /// TaskQueue implementation (the FIFO default has none).
    int lane = 0;

    /// Absolute expiry time, honored only when has_deadline is set and the
    /// installed TaskQueue implements expiry.
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;

    /// Runs on a worker *in place of* the task when the queue expires the
    /// entry — the channel for failing the task's consumers fast.  May be
    /// empty (the entry is then dropped silently).
    Task on_expired;

    /// Fair-queueing flow this task belongs to (the serving layer passes
    /// the tenant id).  Policy queues may schedule flows weighted-fair
    /// inside a lane and enforce per-flow concurrency quotas; the FIFO
    /// default and empty flows ("" = the shared default flow) behave as if
    /// the field did not exist.
    std::string flow;

    /// Marks the entry as load-sheddable: a bounded policy queue may refuse
    /// it at Push time by throwing (the exception propagates out of
    /// Submit(); nothing is enqueued).  Default false so bookkeeping tasks
    /// (writebacks, batch groups, ParallelFor bodies) are never shed.
    bool sheddable = false;

    /// Observability trace id of the request flow this task belongs to
    /// (0 = none).  Policy queues that record queue-wait spans tag them
    /// with it; the pool itself ignores the field.
    std::uint64_t trace_id = 0;
  };

  /// Ordering policy for pending tasks.  The pool calls every method under
  /// its internal mutex, so implementations need no synchronization of
  /// their own for Push/Pop/Size — but they must not block and must not
  /// call back into the pool.  Any state an implementation exposes to
  /// other threads besides these three methods must be independently
  /// synchronized (e.g. atomic counters).
  class TaskQueue {
   public:
    virtual ~TaskQueue() = default;

    /// Takes ownership of one pending entry.
    virtual void Push(Task task, TaskAttrs attrs) = 0;

    /// Pops the next task to run; called only when Size() > 0, and the
    /// returned task is executed outside the pool mutex.  An expired
    /// entry's on_expired callback may be returned in place of its task —
    /// either way exactly one pushed entry is consumed and a non-empty
    /// callable is returned.
    [[nodiscard]] virtual Task Pop() = 0;

    /// Entries poppable *right now* — a policy may report fewer than it
    /// holds (e.g. a lane at its concurrency cap, see serve::RequestQueue)
    /// and workers will sleep on the hidden remainder.  A policy that
    /// hides entries must guarantee they become visible again through the
    /// pool's own activity (a returned task's completion on a worker that
    /// then re-reads Size(), or a later Push) — the pool never polls.
    [[nodiscard]] virtual std::size_t Size() const = 0;

    /// Called exactly once by ~ThreadPool AFTER every worker has joined
    /// (single-threaded, no pool mutex).  Implementations that still hold
    /// entries — hidden by a concurrency cap or simply never popped before
    /// stop — must settle each exactly once here: run its on_expired (the
    /// channel that fails the entry's consumers) or deliberately drop it.
    /// The default is a no-op for policies that never hide entries.
    virtual void Shutdown() {}
  };

  /// Spawns `num_threads` workers (values < 1 are clamped to 1) over the
  /// default FIFO queue.
  explicit ThreadPool(int num_threads);

  /// Same, pulling tasks through `queue` (null selects the FIFO default).
  /// The pool owns the queue; callers that keep a non-owning pointer for
  /// out-of-band reads (metrics) must not outlive the pool.
  ThreadPool(int num_threads, std::unique_ptr<TaskQueue> queue);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it may start running before Submit returns.  A task
  /// that throws is swallowed (there is no channel to report it) — use
  /// ParallelFor when exceptions must reach the caller.
  void Submit(Task task);

  /// Same, with scheduling attributes for the installed TaskQueue.
  void Submit(Task task, TaskAttrs attrs);

  /// Blocks until the pool is fully idle — i.e. every task from every
  /// submitter has finished.  With multiple concurrent submitters prefer
  /// ParallelFor, which tracks completion of its own tasks only.
  void Wait();

  [[nodiscard]] int NumThreads() const {
    return static_cast<int>(workers_.size());
  }

  /// hardware_concurrency with a floor of 1 (the value is 0 when unknown).
  [[nodiscard]] static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::unique_ptr<TaskQueue> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: task queued / stop
  std::condition_variable idle_cv_;  // signals Wait(): all work drained
  std::size_t in_flight_ = 0;        // queued + currently running tasks
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) on the pool and waits for all of them.  When workers
/// throw, the first exception (by index order) is rethrown on the caller.
/// Safe with concurrent callers sharing one pool (completion is tracked per
/// call), and safe to call from inside one of the pool's own tasks (the
/// nested call runs inline rather than deadlocking on its worker slot).
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace respect::core
