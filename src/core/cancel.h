// Cooperative cancellation for engine solves.
//
// A CancelToken is a cheap, copyable handle that solver inner loops poll
// (annealing sweeps, B&B node expansion, RL decode steps).  The serving
// layer arms one per request from its solve budget; when the budget
// expires the engine unwinds with CancelledError and the service falls
// back down its engine chain instead of returning a truncated schedule.
//
// Semantics:
//  - A default-constructed token is "empty": Cancelled() is a null-check
//    and never true, so threading a token through hot loops costs nothing
//    when no budget is set.
//  - Cancellation always unwinds via CancelledError — a cancelled solve
//    never returns a partial or unvalidated schedule.  Engines' own
//    max_expansions / time_limit budgets keep their historical
//    best-incumbent return behavior; only the token throws.
//  - Tokens are thread-safe: Cancel() may race with Cancelled() from the
//    solver thread.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

namespace respect::core {

/// Thrown by solver loops when their CancelToken fires.  Deliberately a
/// distinct type from the serve-layer DeadlineExceeded: the service decides
/// how a blown budget surfaces (fallback, typed deadline error, ...).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  /// Empty token: never cancels, polling is a single null check.
  CancelToken() = default;

  /// A token that only fires when Cancel() is called.
  [[nodiscard]] static CancelToken Manual() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// A token that fires at `deadline` (steady clock) or on Cancel().
  [[nodiscard]] static CancelToken WithDeadline(
      std::chrono::steady_clock::time_point deadline) {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    token.state_->has_deadline = true;
    token.state_->deadline = deadline;
    return token;
  }

  /// A token that fires `budget_seconds` from now (or on Cancel()).
  [[nodiscard]] static CancelToken WithBudget(double budget_seconds) {
    return WithDeadline(std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(budget_seconds)));
  }

  /// True when the token can ever cancel (i.e. is not empty).
  [[nodiscard]] bool Cancellable() const noexcept { return state_ != nullptr; }

  void Cancel() const noexcept {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_release);
    }
  }

  /// Polled by solver loops.  Reads the wall clock only when a deadline is
  /// armed, so callers with tight loops should still stride their checks.
  [[nodiscard]] bool Cancelled() const {
    if (state_ == nullptr) {
      return false;
    }
    if (state_->cancelled.load(std::memory_order_acquire)) {
      return true;
    }
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      // Latch so later polls skip the clock read.
      state_->cancelled.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Unwinds with CancelledError naming the solver loop that noticed.
  void ThrowIfCancelled(std::string_view site) const {
    if (Cancelled()) {
      throw CancelledError("solve cancelled at " + std::string(site));
    }
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  std::shared_ptr<State> state_;
};

}  // namespace respect::core
