#include "core/respect.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <utility>

#include "core/failpoint.h"
#include "core/thread_pool.h"
#include "rl/batch_decode_workspace.h"
#include "sched/device_aware.h"
#include "sched/postprocess.h"

namespace respect {
namespace {

sched::PipelineConstraints ConstraintsFor(int num_stages,
                                          const tpu::DeviceProfile* profile) {
  sched::PipelineConstraints constraints;
  constraints.num_stages = num_stages;
  if (profile != nullptr) constraints.profile = *profile;
  return constraints;
}

}  // namespace

PipelineCompiler::PipelineCompiler(const CompilerOptions& options)
    : options_(options), rl_slot_(std::make_shared<RlSlot>()) {
  rl_slot_->scheduler = MakeConfiguredRl();
}

std::shared_ptr<rl::RlScheduler> PipelineCompiler::MakeConfiguredRl() const {
  auto rl = std::make_shared<rl::RlScheduler>(options_.net);
  if (!options_.weights_path.empty() &&
      std::filesystem::exists(options_.weights_path)) {
    rl->LoadWeights(options_.weights_path);
  }
  return rl;
}

std::shared_ptr<rl::RlScheduler> PipelineCompiler::Rl() {
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  return rl_slot_->scheduler;
}

std::shared_ptr<const rl::RlScheduler> PipelineCompiler::Rl() const {
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  return rl_slot_->scheduler;
}

void PipelineCompiler::ReplaceRl(std::shared_ptr<rl::RlScheduler> rl) {
  if (rl == nullptr) rl = MakeConfiguredRl();
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  rl_slot_->scheduler = std::move(rl);
  ++rl_slot_->version;
}

std::uint64_t PipelineCompiler::RlVersion() const {
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  return rl_slot_->version;
}

engines::EngineContext PipelineCompiler::MakeEngineContext() const {
  engines::EngineContext context;
  {
    // Shared immutable snapshot (const view): engines created from this
    // context keep it alive even across a concurrent ReplaceRl.
    const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
    context.rl = rl_slot_->scheduler;
  }
  context.compiler = options_.compiler;
  return context;
}

CompileResult PipelineCompiler::Compile(const graph::Dag& dag, int num_stages,
                                        Method method) const {
  const auto engine =
      engines::EngineRegistry::Global().Create(method, MakeEngineContext());
  return CompileWith(*engine, dag, ConstraintsFor(num_stages, nullptr));
}

CompileResult PipelineCompiler::Compile(const graph::Dag& dag, int num_stages,
                                        std::string_view engine_name) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  return CompileWith(*engine, dag, ConstraintsFor(num_stages, nullptr));
}

CompileResult PipelineCompiler::Compile(
    const graph::Dag& dag, int num_stages, std::string_view engine_name,
    const tpu::DeviceProfile& profile) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  return CompileWith(*engine, dag, ConstraintsFor(num_stages, &profile));
}

CompileResult PipelineCompiler::Compile(
    const graph::Dag& dag, int num_stages, std::string_view engine_name,
    const tpu::DeviceProfile& profile, const core::CancelToken& cancel) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  return CompileWith(*engine, dag, ConstraintsFor(num_stages, &profile),
                     cancel);
}

engines::EngineBudget PipelineCompiler::MakeBudget() const {
  engines::EngineBudget budget;
  budget.max_expansions = options_.exact_max_expansions;
  budget.time_limit_seconds = options_.exact_time_limit_seconds;
  return budget;
}

CompileResult PipelineCompiler::FinishCompile(
    engines::EngineResult engine_result, const graph::Dag& dag,
    const sched::PipelineConstraints& constraints) const {
  CompileResult result;
  result.schedule = std::move(engine_result.schedule);
  result.solve_seconds = engine_result.solve_seconds;
  result.proved_optimal = engine_result.proved_optimal;

  // Every engine must hand back a deployable schedule; the repair and the
  // packaging below are deliberately outside the reported solve time.
  sched::PostProcess(dag, constraints, result.schedule);

  // Non-default device profiles get the deterministic device-aware post-pass
  // on top of whatever the engine produced, so every engine's output adapts
  // to the hardware it will run on.  A no-op for the default profile.
  sched::RebalanceForProfile(dag, constraints, result.schedule,
                             options_.quantize ? 0.25 : 1.0);

  result.package = deploy::BuildPackage(dag, result.schedule, options_.quantize);
  for (const deploy::Segment& seg : result.package.segments) {
    result.peak_stage_param_bytes =
        std::max(result.peak_stage_param_bytes, seg.param_bytes);
  }
  return result;
}

CompileResult PipelineCompiler::CompileWith(
    const engines::SchedulerEngine& engine, const graph::Dag& dag,
    const sched::PipelineConstraints& constraints,
    const core::CancelToken& cancel) const {
  dag.Validate();
  // Chaos tooling can stall or fail one engine ("engine.solve.RESPECT") or
  // every solve ("engine.solve").
  RESPECT_FAILPOINT_TAGGED("engine.solve", engine.Name());
  engines::EngineBudget budget = MakeBudget();
  budget.cancel = cancel;
  return FinishCompile(engine.Schedule(dag, constraints, budget), dag,
                       constraints);
}

std::vector<CompileResult> PipelineCompiler::CompileGroup(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine_name, engines::SolveStats* stats) const {
  return CompileGroup(dags, num_stages, engine_name, tpu::DefaultProfile(),
                      stats);
}

std::vector<CompileResult> PipelineCompiler::CompileGroup(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine_name, const tpu::DeviceProfile& profile,
    engines::SolveStats* stats) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  for (const graph::Dag* dag : dags) dag->Validate();
  const sched::PipelineConstraints constraints =
      ConstraintsFor(num_stages, &profile);
  std::vector<engines::EngineResult> engine_results =
      engine->ScheduleBatch(dags, constraints, MakeBudget(), stats);
  std::vector<CompileResult> results;
  results.reserve(dags.size());
  for (std::size_t i = 0; i < dags.size(); ++i) {
    results.push_back(FinishCompile(std::move(engine_results[i]), *dags[i],
                                    constraints));
  }
  return results;
}

namespace {

/// Never spawn more per-call workers than there are graphs to compile.
int BatchThreadCount(int num_threads, std::size_t batch_size) {
  if (num_threads < 1) num_threads = core::ThreadPool::DefaultThreadCount();
  return static_cast<int>(
      std::min<std::size_t>(num_threads, std::max<std::size_t>(1, batch_size)));
}

}  // namespace

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages, Method method,
    int num_threads, engines::SolveStats* stats) const {
  core::ThreadPool pool(BatchThreadCount(num_threads, dags.size()));
  return CompileBatch(dags, num_stages, method, pool, stats);
}

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine_name, int num_threads,
    engines::SolveStats* stats) const {
  core::ThreadPool pool(BatchThreadCount(num_threads, dags.size()));
  return CompileBatch(dags, num_stages, engine_name, pool, stats);
}

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages, Method method,
    core::ThreadPool& pool, engines::SolveStats* stats) const {
  const auto engine =
      engines::EngineRegistry::Global().Create(method, MakeEngineContext());
  return CompileBatchWith(*engine, dags, num_stages, pool, stats);
}

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine_name, core::ThreadPool& pool,
    engines::SolveStats* stats) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  return CompileBatchWith(*engine, dags, num_stages, pool, stats);
}

std::vector<CompileResult> PipelineCompiler::CompileBatchWith(
    const engines::SchedulerEngine& engine,
    std::span<const graph::Dag* const> dags, int num_stages,
    core::ThreadPool& pool, engines::SolveStats* stats) const {
  std::vector<CompileResult> results(dags.size());
  if (!engine.SupportsBatch() || dags.size() < 2) {
    core::ParallelFor(pool, dags.size(), [&](std::size_t i) {
      results[i] = CompileWith(engine, *dags[i],
                               ConstraintsFor(num_stages, nullptr));
    });
    if (stats != nullptr) stats->single_solved += dags.size();
    return results;
  }

  // Size-group the batch so same-node-count graphs share lock-stepped
  // decodes, then fan the groups (not the graphs) across the pool: one
  // task per batch chunk of <= rl::kMaxDecodeBatch plus one per straggler,
  // so chunks of one storm still run concurrently on different workers.
  // std::map keeps chunk boundaries deterministic for a given input order.
  std::map<int, std::vector<std::size_t>> by_nodes;
  for (std::size_t i = 0; i < dags.size(); ++i) {
    by_nodes[dags[i]->NodeCount()].push_back(i);
  }
  std::vector<std::vector<std::size_t>> tasks;
  for (const auto& [nodes, indices] : by_nodes) {
    if (indices.size() < 2) {
      for (const std::size_t i : indices) tasks.push_back({i});
      continue;
    }
    // Balanced ceil-division chunking: sizes differ by at most one and
    // every chunk keeps >= 2 graphs.
    const std::size_t group = indices.size();
    const std::size_t num_chunks =
        (group + rl::kMaxDecodeBatch - 1) / rl::kMaxDecodeBatch;
    const std::size_t base = group / num_chunks;
    const std::size_t extra = group % num_chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t size = base + (c < extra ? 1 : 0);
      tasks.emplace_back(indices.begin() + begin,
                         indices.begin() + begin + size);
      begin += size;
    }
  }

  sched::PipelineConstraints constraints;
  constraints.num_stages = num_stages;
  const engines::EngineBudget budget = MakeBudget();
  std::vector<engines::SolveStats> task_stats(tasks.size());
  core::ParallelFor(pool, tasks.size(), [&](std::size_t t) {
    const std::vector<std::size_t>& indices = tasks[t];
    if (indices.size() == 1) {
      results[indices[0]] =
          CompileWith(engine, *dags[indices[0]], constraints);
      task_stats[t].single_solved = 1;
      return;
    }
    std::vector<const graph::Dag*> group;
    group.reserve(indices.size());
    for (const std::size_t i : indices) {
      dags[i]->Validate();
      group.push_back(dags[i]);
    }
    std::vector<engines::EngineResult> engine_results = engine.ScheduleBatch(
        std::span<const graph::Dag* const>(group), constraints, budget,
        &task_stats[t]);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      results[indices[k]] = FinishCompile(std::move(engine_results[k]),
                                          *dags[indices[k]], constraints);
    }
  });
  if (stats != nullptr) {
    for (const engines::SolveStats& s : task_stats) stats->Merge(s);
  }
  return results;
}

bool EnsureTrainedAgent(rl::RlScheduler& scheduler, const std::string& path,
                        const rl::TrainConfig& train) {
  if (std::filesystem::exists(path)) {
    scheduler.LoadWeights(path);
    return false;
  }
  rl::Train(scheduler.Agent(), train);
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  scheduler.SaveWeights(path);
  return true;
}

}  // namespace respect
