#include "core/respect.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "core/thread_pool.h"
#include "sched/postprocess.h"

namespace respect {

PipelineCompiler::PipelineCompiler(const CompilerOptions& options)
    : options_(options), rl_slot_(std::make_shared<RlSlot>()) {
  rl_slot_->scheduler = MakeConfiguredRl();
}

std::shared_ptr<rl::RlScheduler> PipelineCompiler::MakeConfiguredRl() const {
  auto rl = std::make_shared<rl::RlScheduler>(options_.net);
  if (!options_.weights_path.empty() &&
      std::filesystem::exists(options_.weights_path)) {
    rl->LoadWeights(options_.weights_path);
  }
  return rl;
}

std::shared_ptr<rl::RlScheduler> PipelineCompiler::Rl() {
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  return rl_slot_->scheduler;
}

std::shared_ptr<const rl::RlScheduler> PipelineCompiler::Rl() const {
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  return rl_slot_->scheduler;
}

void PipelineCompiler::ReplaceRl(std::shared_ptr<rl::RlScheduler> rl) {
  if (rl == nullptr) rl = MakeConfiguredRl();
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  rl_slot_->scheduler = std::move(rl);
  ++rl_slot_->version;
}

std::uint64_t PipelineCompiler::RlVersion() const {
  const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
  return rl_slot_->version;
}

engines::EngineContext PipelineCompiler::MakeEngineContext() const {
  engines::EngineContext context;
  {
    // Shared immutable snapshot (const view): engines created from this
    // context keep it alive even across a concurrent ReplaceRl.
    const std::lock_guard<std::mutex> lock(rl_slot_->mutex);
    context.rl = rl_slot_->scheduler;
  }
  context.compiler = options_.compiler;
  return context;
}

CompileResult PipelineCompiler::Compile(const graph::Dag& dag, int num_stages,
                                        Method method) const {
  const auto engine =
      engines::EngineRegistry::Global().Create(method, MakeEngineContext());
  return CompileWith(*engine, dag, num_stages);
}

CompileResult PipelineCompiler::Compile(const graph::Dag& dag, int num_stages,
                                        std::string_view engine_name) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  return CompileWith(*engine, dag, num_stages);
}

CompileResult PipelineCompiler::CompileWith(
    const engines::SchedulerEngine& engine, const graph::Dag& dag,
    int num_stages) const {
  dag.Validate();
  sched::PipelineConstraints constraints;
  constraints.num_stages = num_stages;

  engines::EngineBudget budget;
  budget.max_expansions = options_.exact_max_expansions;
  budget.time_limit_seconds = options_.exact_time_limit_seconds;

  engines::EngineResult engine_result =
      engine.Schedule(dag, constraints, budget);

  CompileResult result;
  result.schedule = std::move(engine_result.schedule);
  result.solve_seconds = engine_result.solve_seconds;
  result.proved_optimal = engine_result.proved_optimal;

  // Every engine must hand back a deployable schedule; the repair and the
  // packaging below are deliberately outside the reported solve time.
  sched::PostProcess(dag, constraints, result.schedule);

  result.package = deploy::BuildPackage(dag, result.schedule, options_.quantize);
  for (const deploy::Segment& seg : result.package.segments) {
    result.peak_stage_param_bytes =
        std::max(result.peak_stage_param_bytes, seg.param_bytes);
  }
  return result;
}

namespace {

/// Never spawn more per-call workers than there are graphs to compile.
int BatchThreadCount(int num_threads, std::size_t batch_size) {
  if (num_threads < 1) num_threads = core::ThreadPool::DefaultThreadCount();
  return static_cast<int>(
      std::min<std::size_t>(num_threads, std::max<std::size_t>(1, batch_size)));
}

}  // namespace

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages, Method method,
    int num_threads) const {
  core::ThreadPool pool(BatchThreadCount(num_threads, dags.size()));
  return CompileBatch(dags, num_stages, method, pool);
}

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine_name, int num_threads) const {
  core::ThreadPool pool(BatchThreadCount(num_threads, dags.size()));
  return CompileBatch(dags, num_stages, engine_name, pool);
}

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages, Method method,
    core::ThreadPool& pool) const {
  const auto engine =
      engines::EngineRegistry::Global().Create(method, MakeEngineContext());
  return CompileBatchWith(*engine, dags, num_stages, pool);
}

std::vector<CompileResult> PipelineCompiler::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine_name, core::ThreadPool& pool) const {
  const auto engine = engines::EngineRegistry::Global().Create(
      engine_name, MakeEngineContext());
  return CompileBatchWith(*engine, dags, num_stages, pool);
}

std::vector<CompileResult> PipelineCompiler::CompileBatchWith(
    const engines::SchedulerEngine& engine,
    std::span<const graph::Dag* const> dags, int num_stages,
    core::ThreadPool& pool) const {
  std::vector<CompileResult> results(dags.size());
  core::ParallelFor(pool, dags.size(), [&](std::size_t i) {
    results[i] = CompileWith(engine, *dags[i], num_stages);
  });
  return results;
}

bool EnsureTrainedAgent(rl::RlScheduler& scheduler, const std::string& path,
                        const rl::TrainConfig& train) {
  if (std::filesystem::exists(path)) {
    scheduler.LoadWeights(path);
    return false;
  }
  rl::Train(scheduler.Agent(), train);
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  scheduler.SaveWeights(path);
  return true;
}

}  // namespace respect
