#include "core/respect.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "exact/dp_partitioner.h"
#include "graph/topology.h"
#include "heuristics/annealing.h"
#include "heuristics/force_directed.h"
#include "heuristics/hu_scheduler.h"
#include "heuristics/list_scheduler.h"
#include "ilp/scheduling_ilp.h"
#include "sched/postprocess.h"

namespace respect {

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kRespectRl: return "RESPECT";
    case Method::kExactIlp: return "ExactILP";
    case Method::kEdgeTpuCompiler: return "EdgeTPUCompiler";
    case Method::kListScheduling: return "ListScheduling";
    case Method::kHuLevel: return "HuLevel";
    case Method::kForceDirected: return "ForceDirected";
    case Method::kAnnealing: return "Annealing";
    case Method::kGreedyBalance: return "GreedyBalance";
  }
  return "Unknown";
}

PipelineCompiler::PipelineCompiler(const CompilerOptions& options)
    : options_(options), rl_(options.net) {
  if (!options_.weights_path.empty() &&
      std::filesystem::exists(options_.weights_path)) {
    rl_.LoadWeights(options_.weights_path);
  }
}

CompileResult PipelineCompiler::Compile(const graph::Dag& dag, int num_stages,
                                        Method method) {
  dag.Validate();
  sched::PipelineConstraints constraints;
  constraints.num_stages = num_stages;

  CompileResult result;
  const auto start = std::chrono::steady_clock::now();

  switch (method) {
    case Method::kRespectRl: {
      const rl::RlScheduler::Result r = rl_.Schedule(dag, constraints);
      result.schedule = r.schedule;
      break;
    }
    case Method::kExactIlp: {
      ilp::IlpScheduleConfig config;
      config.num_stages = num_stages;
      config.max_nodes = options_.exact_max_expansions;
      config.time_limit_seconds = options_.exact_time_limit_seconds;
      const ilp::IlpScheduleResult r = ilp::SolveSchedulingIlp(dag, config);
      result.schedule = r.schedule;
      result.proved_optimal = r.proved_optimal;
      break;
    }
    case Method::kEdgeTpuCompiler: {
      heuristics::EdgeTpuCompilerConfig config = options_.compiler;
      config.num_stages = num_stages;
      result.schedule = heuristics::CompileForPipeline(dag, config).schedule;
      break;
    }
    case Method::kListScheduling:
      result.schedule = heuristics::ListSchedule(dag, num_stages);
      break;
    case Method::kHuLevel:
      result.schedule = heuristics::HuLevelSchedule(dag, num_stages);
      break;
    case Method::kForceDirected:
      result.schedule = heuristics::ForceDirectedSchedule(dag, num_stages);
      break;
    case Method::kAnnealing: {
      heuristics::AnnealingConfig config;
      config.num_stages = num_stages;
      result.schedule = heuristics::AnnealSchedule(dag, config);
      break;
    }
    case Method::kGreedyBalance:
      result.schedule = exact::PartitionDefaultOrder(dag, num_stages).schedule;
      break;
  }

  // Every engine must hand back a deployable schedule.
  sched::PostProcess(dag, constraints, result.schedule);
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.package = deploy::BuildPackage(dag, result.schedule, options_.quantize);
  for (const deploy::Segment& seg : result.package.segments) {
    result.peak_stage_param_bytes =
        std::max(result.peak_stage_param_bytes, seg.param_bytes);
  }
  return result;
}

bool EnsureTrainedAgent(rl::RlScheduler& scheduler, const std::string& path,
                        const rl::TrainConfig& train) {
  if (std::filesystem::exists(path)) {
    scheduler.LoadWeights(path);
    return false;
  }
  rl::Train(scheduler.Agent(), train);
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  scheduler.SaveWeights(path);
  return true;
}

}  // namespace respect
