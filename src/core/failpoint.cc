#include "core/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace respect::core::failpoint {

namespace internal {
std::atomic<int> g_configured{0};
}  // namespace internal

namespace {

enum class Kind { kOff, kError, kDelay, kCrash };

struct Site {
  Kind kind = Kind::kOff;
  std::string message;
  int delay_ms = 0;
  // Remaining injections; negative means unlimited.
  std::int64_t remaining = -1;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

// Looks up `site`, bumps counters under the lock, and returns the action to
// run outside it (delays must not hold the registry mutex).
struct Pending {
  Kind kind = Kind::kOff;
  std::string message;
  int delay_ms = 0;
};

bool Lookup(std::string_view site, Pending& out) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) {
    return false;
  }
  Site& entry = it->second;
  ++entry.hits;
  if (entry.kind == Kind::kOff) {
    return false;
  }
  if (entry.remaining == 0) {
    return false;  // budget exhausted: keep counting, stop injecting
  }
  if (entry.remaining > 0) {
    --entry.remaining;
  }
  out.kind = entry.kind;
  out.message = entry.message;
  out.delay_ms = entry.delay_ms;
  return true;
}

void Run(std::string_view site, const Pending& action) {
  switch (action.kind) {
    case Kind::kOff:
      return;
    case Kind::kError:
      throw FailpointError("failpoint " + std::string(site) + ": " +
                           (action.message.empty() ? "injected error"
                                                   : action.message));
    case Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      return;
    case Kind::kCrash:
      std::abort();
  }
}

// Parses "error", "error(msg)", "delay(ms)", "crash", "off" into a Site.
bool ParseAction(std::string_view action, Site& site) {
  std::string_view name = action;
  std::string_view arg;
  auto open = action.find('(');
  if (open != std::string_view::npos) {
    if (action.back() != ')') {
      return false;
    }
    name = action.substr(0, open);
    arg = action.substr(open + 1, action.size() - open - 2);
  }
  if (name == "off") {
    site.kind = Kind::kOff;
  } else if (name == "error") {
    site.kind = Kind::kError;
    site.message = std::string(arg);
  } else if (name == "delay") {
    site.kind = Kind::kDelay;
    try {
      site.delay_ms = std::stoi(std::string(arg));
    } catch (...) {
      return false;
    }
    if (site.delay_ms < 0) {
      return false;
    }
  } else if (name == "crash") {
    site.kind = Kind::kCrash;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void Evaluate(std::string_view site) {
  Pending action;
  if (Lookup(site, action)) {
    Run(site, action);
  }
}

void EvaluateTagged(std::string_view site, std::string_view tag) {
  Evaluate(site);
  std::string tagged;
  tagged.reserve(site.size() + 1 + tag.size());
  tagged.append(site);
  tagged.push_back('.');
  tagged.append(tag);
  Evaluate(tagged);
}

void Configure(std::string site, std::string action, std::uint64_t count) {
  Site entry;
  if (!ParseAction(action, entry)) {
    throw std::invalid_argument("failpoint: bad action '" + action + "'");
  }
  entry.remaining = count == 0 ? -1 : static_cast<std::int64_t>(count);
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.sites.insert_or_assign(std::move(site), entry);
  (void)it;
  if (inserted) {
    internal::g_configured.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ConfigureFromSpec(std::string_view spec) {
  std::size_t begin = 0;
  bool ok = true;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    std::string_view clause = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) {
      if (end == spec.size()) {
        break;
      }
      continue;
    }
    auto eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      ok = false;
      continue;
    }
    try {
      Configure(std::string(clause.substr(0, eq)),
                std::string(clause.substr(eq + 1)));
    } catch (const std::invalid_argument&) {
      ok = false;
    }
    if (end == spec.size()) {
      break;
    }
  }
  return ok;
}

void Clear(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.sites.erase(std::string(site)) > 0) {
    internal::g_configured.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  internal::g_configured.fetch_sub(static_cast<int>(registry.sites.size()),
                                   std::memory_order_relaxed);
  registry.sites.clear();
}

std::uint64_t HitCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  return it == registry.sites.end() ? 0 : it->second.hits;
}

}  // namespace respect::core::failpoint
