#include "serve/circuit_breaker.h"

namespace respect::serve {

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options()) {}

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {}

std::chrono::steady_clock::time_point CircuitBreaker::Now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() >= open_until_) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      ++short_circuits_;
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      ++short_circuits_;
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open for another full window.
    probe_in_flight_ = false;
    state_ = State::kOpen;
    open_until_ = Now() + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  options_.open_seconds));
    ++opened_;
    return;
  }
  if (state_ == State::kClosed && options_.failure_threshold > 0 &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = Now() + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  options_.open_seconds));
    ++opened_;
  }
}

CircuitBreaker::State CircuitBreaker::CurrentState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreaker::Snapshot CircuitBreaker::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  snapshot.state = state_;
  snapshot.consecutive_failures = consecutive_failures_;
  snapshot.opened = opened_;
  snapshot.short_circuits = short_circuits_;
  return snapshot;
}

std::string_view ToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace respect::serve
