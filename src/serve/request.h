// First-class serving request/response types for CompileService.
//
// A CompileRequest carries everything one compile needs — the graph, the
// stage count, the engine (any spelling, via engines::EngineRef) — plus the
// per-request serving attributes the old overload matrix could not express:
// a Priority lane, an optional absolute deadline, and a cache policy.  A
// CompileResponse pairs the shared result with its provenance: how the
// cache answered, how long the request queued and solved, the canonical
// engine name, and the content-addressed key.
//
//   serve::CompileRequest request{.dag = dag, .num_stages = 4,
//                                 .engine = "respect",
//                                 .priority = serve::Priority::kInteractive,
//                                 .deadline = serve::DeadlineIn(0.050)};
//   serve::CompileResponse response = service.Compile(request);
//
// A request whose deadline passes before a worker picks it up fails with
// DeadlineExceeded instead of occupying a worker (see RequestQueue).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "engines/engine_ref.h"
#include "graph/dag.h"

namespace respect {
struct CompileResult;
}  // namespace respect

namespace respect::serve {

/// Cached results are shared and immutable; holders may outlive the cache
/// entry (eviction and invalidation only drop the cache's reference).
using ResultPtr = std::shared_ptr<const CompileResult>;

using EngineRef = engines::EngineRef;

/// Scheduling lane of a request.  Values are the queue's lane indices:
/// smaller = more urgent (see serve::RequestQueue for the exact ordering
/// and anti-starvation aging rule).
enum class Priority : int {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};

inline constexpr std::size_t kNumPriorityLanes = 3;

[[nodiscard]] constexpr std::string_view PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

/// Inverse of PriorityName; nullopt for unknown spellings.
[[nodiscard]] inline std::optional<Priority> ParsePriority(
    std::string_view name) {
  if (name == "interactive") return Priority::kInteractive;
  if (name == "normal") return Priority::kNormal;
  if (name == "batch") return Priority::kBatch;
  return std::nullopt;
}

/// Per-request cache behavior.
enum class CachePolicy {
  /// Normal serving path: answer from cache, join an in-flight identical
  /// solve, or solve cold and populate the cache.
  kUse,
  /// Force a fresh solve and leave the cache untouched (no probe, no
  /// insert, no single-flight join) — for A/B-ing engines or measuring
  /// solve cost under live traffic.
  kBypass,
  /// Force a fresh solve and overwrite the cached entry — warms or repairs
  /// an entry in place.  Concurrent identical refreshes each solve.
  kRefresh,
};

/// How the cache answered a request (CompileResponse provenance).
enum class CacheOutcome {
  kHit,        // answered from a resident entry, no solve
  kMiss,       // this request ran the cold solve and populated the cache
  kCollapsed,  // waited on another request's identical in-flight solve
  kBypass,     // CachePolicy::kBypass solve, cache untouched
  kRefresh,    // CachePolicy::kRefresh solve, entry overwritten
  kDiskHit,    // answered from the persistent store, no solve (promoted
               // into memory subject to the admission policy)
  kPeerHit,    // answered by a peer-fetched spill envelope (fleet mode) —
               // verified, imported into the local store, and promoted
               // into memory; no local engine solve
};

[[nodiscard]] constexpr std::string_view CacheOutcomeName(
    CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kCollapsed: return "collapsed";
    case CacheOutcome::kBypass: return "bypass";
    case CacheOutcome::kRefresh: return "refresh";
    case CacheOutcome::kDiskHit: return "disk-hit";
    case CacheOutcome::kPeerHit: return "peer-hit";
  }
  return "unknown";
}

/// Nearest-rank percentile over an already-sorted ascending sample; 0.0
/// when empty.  The one rank rule behind every serving-layer p50/p99
/// (ServiceMetrics and the CLI reports) — keep them in agreement by using
/// this, not a local reimplementation.
[[nodiscard]] inline double PercentileSorted(
    const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  return sorted[std::min(sorted.size() - 1,
                         static_cast<std::size_t>(q * sorted.size()))];
}

/// Same over an unsorted sample (sorts a copy).
[[nodiscard]] inline double Percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, q);
}

/// Absolute deadline `seconds` from now — the convenience most call sites
/// want when filling CompileRequest::deadline.
[[nodiscard]] inline std::chrono::steady_clock::time_point DeadlineIn(
    double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Thrown (synchronously, or through Ticket::Wait) when a request's
/// deadline passes before its solve starts.  The request never runs an
/// engine solve; retry with a fresh deadline if the result still matters.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown (synchronously from Submit-side admission, or through
/// Ticket::Wait) when the service sheds the request instead of queueing it:
/// the request's lane is at its configured depth bound, or deadline-aware
/// admission estimates the queue wait alone already exceeds the deadline.
/// The request never occupies a worker; back off and retry, or retry
/// against a less loaded lane.
class Overloaded : public std::runtime_error {
 public:
  explicit Overloaded(const std::string& what) : std::runtime_error(what) {}
};

struct CompileRequest {
  graph::Dag dag;
  int num_stages = 0;

  /// Canonical name, CLI alias, or Method value; an unset ref fails with
  /// std::invalid_argument.
  EngineRef engine;

  Priority priority = Priority::kNormal;

  /// Absolute expiry (steady clock); unset = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  CachePolicy cache_policy = CachePolicy::kUse;

  /// Named device profile to schedule for (tpu::FindProfile).  Empty means
  /// the default profile (the paper's uniform Corals), which folds nothing
  /// into the cache key — old cache entries and spill files stay valid.
  /// Any non-default profile's fingerprint becomes part of the key, so the
  /// same DAG compiled for two fleets yields two cache entries.  Unknown
  /// names fail with std::invalid_argument.
  std::string profile;

  /// Tenant id for weighted-fair queueing and per-tenant quotas ("" = the
  /// shared default tenant).  The tenant never enters the cache key —
  /// identical work is shared across tenants; fairness applies to queueing,
  /// not to cached answers.
  std::string tenant;

  /// Per-engine-attempt solve budget in seconds; 0 inherits
  /// ServiceOptions::default_solve_budget_seconds (0 there too = no budget).
  /// When the preferred engine blows the budget its solve is cancelled
  /// (core::CancelToken) and the service walks the configured fallback
  /// chain; each fallback attempt gets a fresh budget.  With no fallback
  /// configured (or every engine blown), the request fails with
  /// DeadlineExceeded.
  double solve_budget_seconds = 0.0;

  /// Observability trace id tagging every span this request produces
  /// (obs::Tracer).  0 = unassigned: the service mints one at admission
  /// while tracing is armed.  Carried across the fleet wire so a forwarded
  /// request yields one coherent cross-shard trace; never part of the cache
  /// key.
  std::uint64_t trace_id = 0;
};

struct CompileResponse {
  ResultPtr result;

  CacheOutcome outcome = CacheOutcome::kMiss;

  /// Submit-to-start wait; 0.0 for synchronous Compile calls.
  double queue_wait_seconds = 0.0;

  /// This request's own cold solve (0.0 for hits and collapsed waits).
  double solve_seconds = 0.0;

  /// Canonical engine name that actually produced the result; borrowed
  /// from the registry, valid for the process lifetime.  Differs from the
  /// requested engine exactly when `degraded` is set.
  std::string_view engine_name;

  /// Hex of the content-addressed request key (graph::CanonicalHash).
  std::string key_hex;

  /// True when the preferred engine blew its solve budget / failed / had an
  /// open circuit breaker and a fallback engine produced this (still fully
  /// valid and repaired) schedule.  Degraded results are cached under the
  /// fallback engine's own key, never under the preferred engine's.
  bool degraded = false;

  /// Canonical name of the engine the request asked for.  Equal to
  /// engine_name unless `degraded` is set.
  std::string_view requested_engine;
};

}  // namespace respect::serve
