// CompileService — the serving front end over PipelineCompiler.
//
// Every Compile call is content-addressed: the request key is a
// graph::CanonicalHash folding the full compile input — the graph's
// serialized form, the engine's canonical name, num_stages, the compiler
// options fingerprint, and (for RL-dependent engines only) the RL weight
// snapshot version.  Repeat requests are answered from a sharded LRU cache
// of shared immutable CompileResults, and concurrent identical requests are
// collapsed by single-flight deduplication: one caller solves, everyone else
// waits on that solve instead of re-running the engine.
//
//   respect::serve::CompileService service(compiler_options);
//   auto r1 = service.Compile(dag, 4, "respect");   // cold: engine solve
//   auto r2 = service.Compile(dag, 4, "RESPECT");   // warm: cache hit (alias
//                                                   // and name share a key)
//   assert(r1 == r2);                               // same shared result
//
// Async path: Submit enqueues the request on the service's core::ThreadPool
// and returns a Ticket; Wait blocks for the shared result (or rethrows the
// solve's exception).  ReplaceRl swaps the RL weights under live traffic and
// invalidates exactly the RL-dependent cache entries — deterministic-engine
// entries stay warm.  Failed solves are never cached: the failure reaches
// every collapsed waiter and the next request retries.
//
// Thread safety: every public method is safe to call concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/respect.h"
#include "engines/method.h"
#include "graph/canonical_hash.h"
#include "graph/dag.h"

namespace respect::core {
class ThreadPool;
}  // namespace respect::core

namespace respect::serve {

struct ServiceOptions {
  /// Total cached results across all shards (0 disables caching; single-
  /// flight deduplication still applies).  Rounded up to a multiple of
  /// cache_shards.
  std::size_t cache_capacity = 1024;

  /// Lock shards; more shards = less contention.  Clamped to >= 1.
  int cache_shards = 8;

  /// Workers behind Submit/Wait; values < 1 select
  /// core::ThreadPool::DefaultThreadCount().
  int num_threads = 0;

  /// Cold-solve latencies kept for the p50/p99 metrics (sliding window).
  std::size_t latency_window = 2048;
};

/// Point-in-time counters; Metrics() assembles a consistent-enough snapshot
/// without stopping traffic.
struct ServiceMetrics {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;           // cold solves started (cacheable or not)
  std::uint64_t evictions = 0;        // LRU capacity evictions
  std::uint64_t invalidations = 0;    // entries dropped by ReplaceRl
  std::uint64_t single_flight_waits = 0;  // requests collapsed onto a solve
  std::uint64_t failures = 0;         // solves that threw
  double solve_p50_seconds = 0.0;     // over the recent cold-solve window
  double solve_p99_seconds = 0.0;
  std::size_t cache_size = 0;         // resident entries right now
};

class CompileService {
 public:
  /// Cached results are shared and immutable; holders may outlive the entry
  /// (eviction and invalidation only drop the cache's reference).
  using ResultPtr = std::shared_ptr<const CompileResult>;

  explicit CompileService(const CompilerOptions& compiler_options = {},
                          const ServiceOptions& options = {});
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Answers from cache, joins an in-flight identical solve, or solves cold
  /// — in that order.  `engine` is a canonical name or CLI alias; unknown
  /// names throw std::invalid_argument before touching the cache.  Solve
  /// exceptions propagate to every caller collapsed onto the failing flight.
  [[nodiscard]] ResultPtr Compile(const graph::Dag& dag, int num_stages,
                                  std::string_view engine);
  [[nodiscard]] ResultPtr Compile(const graph::Dag& dag, int num_stages,
                                  Method method);

  /// Handle to an async request; shareable (copies wait on the same solve).
  class Ticket {
   public:
    Ticket() = default;

    /// Blocks until the request completes; rethrows its exception on
    /// failure.  May be called repeatedly and from multiple threads.  A
    /// default-constructed (or moved-from) Ticket throws future_error
    /// (no_state) instead of hitting shared_future::get()'s UB.
    [[nodiscard]] ResultPtr Wait() const {
      if (!future_.valid()) {
        throw std::future_error(std::future_errc::no_state);
      }
      return future_.get();
    }

    [[nodiscard]] bool Valid() const { return future_.valid(); }

   private:
    friend class CompileService;
    explicit Ticket(std::shared_future<ResultPtr> future)
        : future_(std::move(future)) {}

    std::shared_future<ResultPtr> future_;
  };

  /// Enqueues the request on the service pool.  The dag is taken by value so
  /// the caller's copy may die before the solve runs (move it in when the
  /// caller is done with it).
  [[nodiscard]] Ticket Submit(graph::Dag dag, int num_stages,
                              std::string engine);
  [[nodiscard]] Ticket Submit(graph::Dag dag, int num_stages, Method method);

  /// Batch-aware caching: compiles every graph of the batch through the
  /// same content-addressed cache as Compile — warm entries answer without
  /// a solve, duplicate graphs inside one batch collapse via single-flight,
  /// and every cold solve populates the cache for later requests (unlike
  /// PipelineCompiler::CompileBatch, which always re-solves).  Graphs are
  /// solved concurrently on the service pool; results come back in input
  /// order.  The first solve failure rethrows after every flight finishes.
  [[nodiscard]] std::vector<ResultPtr> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages,
      std::string_view engine);
  [[nodiscard]] std::vector<ResultPtr> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages, Method method);

  /// Swaps the RL weight snapshot (null resets to the configured state),
  /// bumps the snapshot version, and drops every RL-dependent cache entry.
  /// Deterministic-engine entries are untouched.  In-flight RL solves finish
  /// on the snapshot they started with; their results land under the old
  /// version's keys, which no future request recomputes, so stale weights
  /// can never answer a post-swap request.
  void ReplaceRl(std::shared_ptr<rl::RlScheduler> rl);

  [[nodiscard]] ServiceMetrics Metrics() const;

  /// Drops every cached entry (counters are preserved).
  void ClearCache();

  /// The underlying compiler, e.g. for direct uncached batch compilation.
  [[nodiscard]] PipelineCompiler& Compiler() { return compiler_; }
  [[nodiscard]] const PipelineCompiler& Compiler() const { return compiler_; }

 private:
  struct CacheEntry {
    graph::CanonicalHash key;
    ResultPtr result;
    bool rl_dependent = false;
  };

  /// One single-flight slot: the owner solves and resolves the future; every
  /// concurrent identical request waits on it.
  struct Flight {
    std::promise<ResultPtr> promise;
    std::shared_future<ResultPtr> future;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<CacheEntry> lru;  // front = most recently used
    std::unordered_map<graph::CanonicalHash, std::list<CacheEntry>::iterator,
                       graph::CanonicalHash::Hasher>
        entries;
    std::unordered_map<graph::CanonicalHash, std::shared_ptr<Flight>,
                       graph::CanonicalHash::Hasher>
        flights;
  };

  struct RequestKey {
    graph::CanonicalHash hash;
    bool rl_dependent = false;
    std::string_view engine_name;  // canonical; borrowed from the registry
  };

  [[nodiscard]] RequestKey MakeKey(const graph::Dag& dag, int num_stages,
                                   std::string_view engine) const;
  [[nodiscard]] Shard& ShardFor(const graph::CanonicalHash& hash);

  /// Cache-only probe: returns the resident entry (counted as a hit, LRU
  /// refreshed) or null without joining flights or solving.
  [[nodiscard]] ResultPtr TryCached(const RequestKey& key);

  /// Compile with a precomputed key (the batch path probes the cache with
  /// the key first, then reuses it for the cold solve — one DAG
  /// serialization+hash per graph, not two).
  [[nodiscard]] ResultPtr CompileKeyed(const graph::Dag& dag, int num_stages,
                                       const RequestKey& key);
  [[nodiscard]] Ticket SubmitKeyed(graph::Dag dag, int num_stages,
                                   RequestKey key);
  void InsertLocked(Shard& shard, const RequestKey& key, ResultPtr result);
  void RecordSolveLatency(double seconds);

  PipelineCompiler compiler_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<core::ThreadPool> pool_;

  /// Constant-per-service fingerprint of CompilerOptions, folded into every
  /// key so results are only shared between identically configured services.
  graph::CanonicalHash options_fingerprint_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> single_flight_waits_{0};
  std::atomic<std::uint64_t> failures_{0};

  mutable std::mutex latency_mutex_;
  std::vector<double> latencies_;  // ring buffer of cold-solve seconds
  std::size_t latency_next_ = 0;
  bool latency_full_ = false;
};

}  // namespace respect::serve
