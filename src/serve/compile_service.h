// CompileService — the serving front end over PipelineCompiler.
//
// The API is built around two first-class types (serve/request.h):
// CompileRequest — dag, num_stages, engine (any spelling via EngineRef),
// priority lane, optional absolute deadline, cache policy — and
// CompileResponse — the shared result plus provenance (cache outcome,
// queue-wait and solve seconds, canonical engine name, key hex).
//
//   respect::serve::CompileService service(compiler_options);
//   auto r1 = service.Compile({.dag = dag, .num_stages = 4,
//                              .engine = "respect"});        // cold solve
//   auto r2 = service.Compile({.dag = dag, .num_stages = 4,
//                              .engine = "RESPECT"});        // cache hit
//   assert(r1.result == r2.result);   // alias and name share one key
//
// Every request is content-addressed: the key is a graph::CanonicalHash
// folding the graph's serialized form, the engine's canonical name,
// num_stages, the compiler options fingerprint, and (for RL-dependent
// engines only) the RL weight snapshot version.  Repeat requests are
// answered from a sharded LRU cache of shared immutable CompileResults, and
// concurrent identical requests are collapsed by single-flight
// deduplication: one caller solves, everyone else waits on that solve.
//
// Async path: Submit enqueues the request on a deadline-aware three-lane
// queue (serve::RequestQueue) feeding the service's core::ThreadPool and
// returns a Ticket.  Interactive requests overtake queued batch work
// (batch ages so it cannot starve; ServiceOptions::max_batch_inflight
// additionally caps how many batch solves may run at once); a request
// whose deadline passes in the queue fails fast with DeadlineExceeded
// instead of occupying a worker.  ReplaceRl swaps the RL weights under
// live traffic and invalidates exactly the RL-dependent cache entries.
// Failed solves are never cached.
//
// Persistent tier: ServiceOptions::cache_dir plugs a store::DiskStore
// behind the memory cache.  A memory miss probes the store before solving
// (the only synchronous disk read on the request path); a hit is surfaced
// as CacheOutcome::kDiskHit and promoted into memory subject to admission.
// Successful solves spill to disk as background writeback tasks on the
// service's pool, so a restart against the same directory warm-starts
// without re-running a single engine solve.  TinyLFU admission (on by
// default) keeps one-hit-wonder scans from flushing hot memory entries;
// cache_ttl_seconds bounds the age of both tiers, enforced lazily on
// probe.
//
// The pre-CompileRequest overloads (Compile/Submit/CompileBatch taking
// dag + stages + engine) survive as [[deprecated]] shims over the new entry
// points; migrate to CompileRequest.
//
// Thread safety: every public method is safe to call concurrently.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/respect.h"
#include "engines/method.h"
#include "graph/canonical_hash.h"
#include "graph/dag.h"
#include "obs/registry.h"
#include "serve/circuit_breaker.h"
#include "serve/request.h"
#include "serve/store/cache_store.h"
#include "tpu/device_profile.h"

namespace respect::core {
class ThreadPool;
}  // namespace respect::core

namespace respect::serve::store {
class TinyLfuAdmission;
}  // namespace respect::serve::store

namespace respect::serve {

struct ServiceOptions {
  /// Total cached results across all shards (0 disables caching; single-
  /// flight deduplication still applies).  Rounded up to a multiple of
  /// cache_shards.
  std::size_t cache_capacity = 1024;

  /// Lock shards; more shards = less contention.  Clamped to >= 1.
  int cache_shards = 8;

  /// Workers behind Submit; values < 1 select
  /// core::ThreadPool::DefaultThreadCount().
  int num_threads = 0;

  /// Samples kept per latency window (cold solves, and per-lane queue
  /// waits) for the p50/p99 metrics.
  std::size_t latency_window = 2048;

  /// Anti-starvation aging quantum of the priority queue (see
  /// serve::RequestQueue); <= 0 means pure strict priority.
  double queue_aging_seconds = 2.0;

  /// Baseline/escape hatch: hand Submit tasks to the pool in plain FIFO
  /// order — priority and aging are ignored, deadlines only fail fast when
  /// a worker picks the task up (not while it queues), and
  /// max_batch_inflight is ignored.
  bool fifo_queue = false;

  /// Max batch-lane solves running concurrently (<= 0 = unlimited).  With
  /// a cap of N, an interactive request never waits behind more than N
  /// batch solves even when a batch flood fills the queue — the remaining
  /// workers stay available to the other lanes.
  int max_batch_inflight = 0;

  /// Directory for the persistent spill tier (store::DiskStore); empty
  /// disables it.  On construction the directory is scanned, and a request
  /// already solved by a previous process is answered from disk
  /// (CacheOutcome::kDiskHit) instead of re-solving.
  std::string cache_dir;

  /// Time-to-live for cached entries in both tiers, enforced lazily on
  /// probe; <= 0 means entries never expire.  Memory entries age on the
  /// steady clock from insert; disk entries carry an absolute wall-clock
  /// expiry so the TTL survives restarts.
  double cache_ttl_seconds = 0.0;

  /// Frequency-aware admission (store::TinyLfuAdmission): when the memory
  /// cache is full, a cold insert only evicts the LRU victim if the new
  /// key's estimated access frequency is at least the victim's, so scan
  /// traffic cannot flush hot entries.  Disable for pure-LRU behavior.
  bool lfu_admission = true;

  /// Grouped miss solving for CompileBatch(requests): cold kUse requests on
  /// a batch-capable engine (RlEngine's lock-stepped decode) are grouped by
  /// (engine, num_stages, node count) and each group of >= 2 solves as one
  /// batched GEMM decode on a single worker — a cold-cache miss storm
  /// (e.g. right after ReplaceRl) refills at batch throughput instead of
  /// one GEMV decode per worker.  Disable to fan every miss out as an
  /// independent async request (the pre-batch behavior).
  bool batch_decode = true;

  /// Fair-queueing weight of tenants absent from tenant_weights (see
  /// serve::RequestQueue): inside each priority lane, backlogged tenants
  /// receive service proportional to their weight, so one tenant's flood
  /// deepens its own sub-queue instead of starving the others.  Ignored by
  /// the fifo_queue baseline.
  double default_tenant_weight = 1.0;

  /// Per-tenant fair-queueing weights ("" is the shared default tenant).
  std::map<std::string, double> tenant_weights;

  /// Concurrency quota of tenants absent from tenant_quotas: how many of
  /// one tenant's requests may *run* at once across all lanes; <= 0 means
  /// unlimited.  Ignored by the fifo_queue baseline.
  int default_tenant_quota = 0;

  /// Per-tenant concurrency quotas (<= 0 entries mean unlimited).
  std::map<std::string, int> tenant_quotas;

  /// Ordered engines tried after the preferred engine blows its solve
  /// budget, throws, or sits behind an open circuit breaker.  Any EngineRef
  /// spelling; resolved to canonical names at construction (unknown names
  /// throw std::invalid_argument there, not under traffic).  Empty = no
  /// fallback: a blown budget surfaces as DeadlineExceeded.  A response
  /// served by a fallback is tagged degraded and cached under the fallback
  /// engine's own key, never the preferred engine's.
  std::vector<std::string> fallback_chain;

  /// Per-engine-attempt solve budget (seconds) for requests that leave
  /// CompileRequest::solve_budget_seconds at 0; 0 here too = unlimited.
  /// Each attempt down the fallback chain gets a fresh budget.
  double default_solve_budget_seconds = 0.0;

  /// Consecutive solve failures (budget blows included) that open an
  /// engine's circuit breaker; <= 0 disables breakers entirely.  While
  /// open, requests skip the sick engine straight to its fallback —
  /// except when it is the last candidate, which is always attempted.
  int breaker_failure_threshold = 3;

  /// Seconds an open breaker short-circuits its engine before half-opening
  /// to admit a single probe solve.
  double breaker_open_seconds = 5.0;

  /// Test seam: breaker time source (null = steady_clock).
  std::function<std::chrono::steady_clock::time_point()> breaker_clock;

  /// Bound on queued entries per priority lane (serve::RequestQueue);
  /// <= 0 = unbounded.  A request submitted into a full lane is shed —
  /// Ticket::Wait throws Overloaded — instead of deepening the backlog.
  /// Ignored by the fifo_queue baseline.
  int max_lane_depth = 0;

  /// Deadline-aware admission: shed a request at Submit time (Overloaded)
  /// when its lane's backlog times the recent average solve cost already
  /// exceeds the request's deadline — the queue wait alone would expire it.
  /// Off by default: expiry then still fails the request fast, but only
  /// once it surfaces in the queue.
  bool deadline_admission = false;
};

/// Per-tenant async-path counters ("" is the shared default tenant).
struct TenantMetrics {
  std::uint64_t enqueued = 0;  // Submits carrying this tenant id
  std::uint64_t started = 0;   // began their compile on a worker
  std::uint64_t expired = 0;   // failed fast with DeadlineExceeded
};

/// Per-lane queue statistics (async path only; synchronous Compile calls
/// never enter a lane).
struct LaneMetrics {
  std::uint64_t enqueued = 0;  // Submits routed to this lane
  std::uint64_t started = 0;   // began their compile on a worker
  std::uint64_t expired = 0;   // failed fast with DeadlineExceeded
  std::uint64_t shed = 0;      // refused at admission with Overloaded
  std::size_t depth = 0;       // waiting in queue right now (approximate)
  double wait_p50_seconds = 0.0;  // queue wait of started requests
  double wait_p99_seconds = 0.0;
};

/// Point-in-time view of one engine's circuit breaker.
struct BreakerMetrics {
  std::string state;  // "closed" / "open" / "half-open"
  int consecutive_failures = 0;
  std::uint64_t opened = 0;          // transitions into open
  std::uint64_t short_circuits = 0;  // attempts skipped while open
};

/// Point-in-time counters; Metrics() assembles a consistent-enough snapshot
/// without stopping traffic.
struct ServiceMetrics {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;           // cold solves started (cacheable or not)
  std::uint64_t evictions = 0;        // LRU capacity evictions
  std::uint64_t invalidations = 0;    // entries dropped by ReplaceRl
  std::uint64_t single_flight_waits = 0;  // requests collapsed onto a solve
  std::uint64_t failures = 0;         // solves that threw
  std::uint64_t bypasses = 0;         // CachePolicy::kBypass solves
  std::uint64_t refreshes = 0;        // CachePolicy::kRefresh solves
  std::uint64_t deadline_expired = 0;  // DeadlineExceeded failures, all paths
  std::uint64_t disk_hits = 0;        // memory misses answered by the store
  std::uint64_t ttl_expired = 0;      // memory entries lazily expired
  std::uint64_t admission_rejected = 0;  // inserts refused by TinyLFU
  std::uint64_t batch_solved = 0;     // cold solves done by lock-stepped groups
  std::uint64_t batch_single = 0;     // grouped-path solves that fell back to
                                      // the per-graph decode (stragglers)
  std::uint64_t batch_groups = 0;     // lock-stepped group decodes executed
  std::uint64_t budget_blown = 0;     // engine attempts cancelled on budget
  std::uint64_t degraded_served = 0;  // responses produced by a fallback
  std::uint64_t fallback_exhausted = 0;  // requests whose whole chain failed
  std::uint64_t shed = 0;             // requests refused at admission
                                      // (Overloaded), summed over lanes
  std::uint64_t writeback_errors = 0;  // background spills that failed
  std::uint64_t peer_fetches = 0;     // peer warm attempts on cold misses
  std::uint64_t peer_hits = 0;        // requests answered by peer envelopes
  std::uint64_t peer_fetch_failures = 0;  // fetches that threw or returned
                                          // corrupt/mismatched bytes
  double solve_p50_seconds = 0.0;     // over the recent cold-solve window
  double solve_p99_seconds = 0.0;
  std::size_t cache_size = 0;         // resident entries right now
  std::array<LaneMetrics, kNumPriorityLanes> lanes{};

  /// Async-path counters by tenant id; empty until a Submit carries a
  /// non-empty tenant (the "" default tenant is tracked once it appears).
  std::map<std::string, TenantMetrics> tenants;

  /// Persistent-tier counters; all zero when no cache_dir is configured.
  store::StoreMetrics store{};

  /// Circuit-breaker state by canonical engine name; an engine appears
  /// once it has served (or skipped) at least one solve attempt.
  std::map<std::string, BreakerMetrics> breakers;
};

class CompileService {
 public:
  using ResultPtr = serve::ResultPtr;

  explicit CompileService(const CompilerOptions& compiler_options = {},
                          const ServiceOptions& options = {});
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Synchronous compile on the caller's thread: answers per the request's
  /// cache policy (cache hit, collapsed onto an in-flight identical solve,
  /// or cold solve — see CacheOutcome).  An unknown or empty engine throws
  /// std::invalid_argument before touching the cache; an already-expired
  /// deadline throws DeadlineExceeded before solving; solve exceptions
  /// propagate to every caller collapsed onto the failing flight.  The
  /// request's priority is ignored (nothing queues).
  [[nodiscard]] CompileResponse Compile(const CompileRequest& request);

  /// Handle to an async request; shareable (copies wait on the same solve).
  class Ticket {
   public:
    Ticket() = default;

    /// Blocks until the request completes and returns the shared result;
    /// rethrows its failure (DeadlineExceeded when it expired in queue).
    /// May be called repeatedly and from multiple threads.  A default-
    /// constructed (or moved-from) Ticket throws future_error (no_state)
    /// instead of hitting shared_future::get()'s UB.
    [[nodiscard]] ResultPtr Wait() const { return WaitResponse().result; }

    /// Same, returning the full response with provenance.  The reference
    /// stays valid while any copy of this Ticket is alive.
    [[nodiscard]] const CompileResponse& WaitResponse() const {
      if (!future_.valid()) {
        throw std::future_error(std::future_errc::no_state);
      }
      return future_.get();
    }

    [[nodiscard]] bool Valid() const { return future_.valid(); }

   private:
    friend class CompileService;
    explicit Ticket(std::shared_future<CompileResponse> future)
        : future_(std::move(future)) {}

    std::shared_future<CompileResponse> future_;
  };

  /// Enqueues the request on its priority lane.  The request is taken by
  /// value so the caller's copy may die before the solve runs (move it in
  /// when done with it).  Engine resolution happens on the worker: an
  /// unknown engine surfaces through Ticket::Wait, not here.
  [[nodiscard]] Ticket Submit(CompileRequest request);

  /// Compiles every request of the batch through the shared cache: warm
  /// kUse entries answer in place without a solve, and results come back in
  /// input order.  Cold kUse requests on a batch-capable engine are grouped
  /// by (engine, num_stages, node count) and every group of >= 2 solves as
  /// one lock-stepped batched decode on a single worker (see
  /// ServiceOptions::batch_decode); everything else fans out as ordinary
  /// async requests on its own priority lane (duplicates collapse via
  /// single-flight).  The first failure rethrows after every flight
  /// finishes.
  [[nodiscard]] std::vector<CompileResponse> CompileBatch(
      std::span<const CompileRequest> requests);

  // ── Deprecated pre-CompileRequest overloads ────────────────────────────
  // Thin shims over the request API: engine-spelling pairs collapse into
  // EngineRef, priority is kNormal, no deadline, CachePolicy::kUse.

  [[deprecated("build a serve::CompileRequest and call Compile(request)")]]
  [[nodiscard]] ResultPtr Compile(const graph::Dag& dag, int num_stages,
                                  std::string_view engine);
  [[deprecated("build a serve::CompileRequest and call Compile(request)")]]
  [[nodiscard]] ResultPtr Compile(const graph::Dag& dag, int num_stages,
                                  Method method);

  [[deprecated("build a serve::CompileRequest and call Submit(request)")]]
  [[nodiscard]] Ticket Submit(graph::Dag dag, int num_stages,
                              std::string engine);
  [[deprecated("build a serve::CompileRequest and call Submit(request)")]]
  [[nodiscard]] Ticket Submit(graph::Dag dag, int num_stages, Method method);

  [[deprecated(
      "build serve::CompileRequests and call CompileBatch(requests)")]]
  [[nodiscard]] std::vector<ResultPtr> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages,
      std::string_view engine);
  [[deprecated(
      "build serve::CompileRequests and call CompileBatch(requests)")]]
  [[nodiscard]] std::vector<ResultPtr> CompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages, Method method);

  // ───────────────────────────────────────────────────────────────────────

  /// Swaps the RL weight snapshot (null resets to the configured state),
  /// bumps the snapshot version, and drops every RL-dependent cache entry.
  /// Deterministic-engine entries are untouched.  In-flight RL solves finish
  /// on the snapshot they started with; their results land under the old
  /// version's keys, which no future request recomputes, so stale weights
  /// can never answer a post-swap request.  This is the only supported way
  /// to change compiler state under live traffic.
  void ReplaceRl(std::shared_ptr<rl::RlScheduler> rl);

  [[nodiscard]] ServiceMetrics Metrics() const;

  /// Drops every cached *memory* entry (counters are preserved; the
  /// persistent tier is untouched, so subsequent requests may come back as
  /// disk hits — which is exactly how the restart path behaves).
  void ClearCache();

  /// Blocks until every queued background spill write has landed in the
  /// store.  No-op without a cache_dir.  Call before dropping the process
  /// (or handing the directory to another service) when the very last
  /// solves must be on disk; the destructor drains the pool anyway.
  void FlushStore();

  /// Deletes unreachable store entries — RL-dependent spills from
  /// superseded weight snapshots (their keys embed the old version, so no
  /// future request recomputes them) and TTL-expired files.  Returns the
  /// number of entries removed; 0 without a cache_dir.  Synchronous and
  /// safe under live traffic.
  std::size_t CompactStore();

  /// Read-only view of the underlying compiler (e.g. RlVersion checks).
  /// Deliberately const-only: mutating the compiler behind the cache's back
  /// would desynchronize keys from results — weight swaps go through
  /// ReplaceRl.
  [[nodiscard]] const PipelineCompiler& Compiler() const { return compiler_; }

  // ── Fleet hooks (net::FleetServer) ─────────────────────────────────────

  /// The content-addressed key this request resolves to — what the fleet
  /// router hashes to pick an owner shard.  Same validation as Compile: an
  /// unknown engine or profile throws std::invalid_argument.  Pure (no
  /// cache side effects).
  [[nodiscard]] graph::CanonicalHash KeyFor(
      const CompileRequest& request) const;

  /// Local-tiers-only probe: answers a CachePolicy::kUse request from the
  /// memory cache (kHit) or the persistent store (kDiskHit, promoted), and
  /// returns nullopt otherwise — never joins a flight, never solves, never
  /// peer-fetches.  The fleet server uses this to decide whether a request
  /// it does not own can be answered in place or must forward.  Non-kUse
  /// policies always return nullopt (they never probe caches).
  [[nodiscard]] std::optional<CompileResponse> TryServeLocal(
      const CompileRequest& request);

  /// Peer warm hook: called on a cold miss (after both local tiers missed,
  /// before the engine solve) with the request key; returns raw spill
  /// envelope bytes or "" for a peer miss.  The bytes are fully verified
  /// here — checksum, embedded key, expiry — before anything is served;
  /// corrupt bytes and thrown exceptions count as peer_fetch_failures and
  /// the request falls through to a normal local solve.  A verified fetch
  /// is imported into the local store (durable warmth), promoted into
  /// memory, and surfaced as CacheOutcome::kPeerHit.  Pass nullptr to
  /// uninstall.  The function must stay callable until it is uninstalled
  /// and every in-flight request has settled (net::FleetServer::Stop does
  /// both).
  using PeerFetchFn = std::function<std::string(const graph::CanonicalHash&)>;
  void SetPeerFetch(PeerFetchFn fetch);

  /// Verified raw spill envelope bytes for `key` from the persistent tier,
  /// or nullopt (no store, absent, corrupt, expired) — the serving side of
  /// a peer's fetch-by-hex.
  [[nodiscard]] std::optional<std::string> ExportSpill(
      const graph::CanonicalHash& key);

  /// Verifies and persists raw envelope bytes under `key` (see
  /// store::CacheStore::ImportRaw).  False without a store or when the
  /// bytes are refused.
  bool ImportSpill(const graph::CanonicalHash& key, std::string_view bytes);

  // ── Observability ──────────────────────────────────────────────────────

  /// The unified metrics registry behind Metrics()'s counters.  Instance-
  /// scoped (tests assert exact per-service values); the disk store and the
  /// fleet server register their metrics here too, so one
  /// RenderPrometheus(os) call emits the whole shard's exposition page.
  [[nodiscard]] obs::Registry& MetricsRegistry() { return registry_; }

 private:
  struct CacheEntry {
    graph::CanonicalHash key;
    ResultPtr result;
    bool rl_dependent = false;
    bool has_ttl = false;
    std::chrono::steady_clock::time_point expires_at{};
  };

  /// One single-flight slot: the owner solves and resolves the future; every
  /// concurrent identical request waits on it.  The provenance fields are
  /// written by the owner before set_value — promise/future ordering makes
  /// them visible to every waiter that returned from future.get().
  struct Flight {
    std::promise<ResultPtr> promise;
    std::shared_future<ResultPtr> future;
    bool degraded = false;
    std::string_view served_by{};  // canonical engine that actually solved
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<CacheEntry> lru;  // front = most recently used
    std::unordered_map<graph::CanonicalHash, std::list<CacheEntry>::iterator,
                       graph::CanonicalHash::Hasher>
        entries;
    std::unordered_map<graph::CanonicalHash, std::shared_ptr<Flight>,
                       graph::CanonicalHash::Hasher>
        flights;
  };

  struct RequestKey {
    graph::CanonicalHash hash;
    bool rl_dependent = false;
    std::uint64_t rl_version = 0;  // snapshot folded into hash (RL only)
    std::string_view engine_name;  // canonical; borrowed from the registry

    /// Resolved device profile the solve targets.  The default profile
    /// folds nothing into the hash (pre-profile keys and spill files stay
    /// reachable); any other profile folds its fingerprint in.
    tpu::DeviceProfile profile;
    graph::CanonicalHash profile_fingerprint{};
  };

  /// Fixed-capacity ring of latency samples with mutex-guarded recording
  /// and sort-on-read percentiles.  Once the ring wraps, the window holds
  /// the most recent `capacity` samples.
  class LatencyWindow {
   public:
    /// Call once before traffic (capacity is clamped to >= 1).  When a
    /// histogram is supplied, every Record also observes it — the window
    /// keeps the snapshot's exact recent percentiles, the histogram feeds
    /// the Prometheus exposition.
    void Configure(std::size_t capacity, obs::Histogram* histogram = nullptr);
    void Record(double seconds);
    /// Percentiles over the resident window; both 0.0 while empty.
    void Percentiles(double& p50, double& p99) const;

   private:
    mutable std::mutex mutex_;
    std::vector<double> values_;  // grows to capacity, then a ring
    std::size_t next_ = 0;        // overwrite cursor once at capacity
    std::size_t capacity_limit_ = 1;
    obs::Histogram* histogram_ = nullptr;  // optional registry mirror
  };

  /// Resolves the engine and the named device profile and builds the
  /// content-addressed key.  An unknown profile name throws
  /// std::invalid_argument (same contract as an unknown engine).
  [[nodiscard]] RequestKey MakeKey(const graph::Dag& dag, int num_stages,
                                   const EngineRef& engine,
                                   std::string_view profile_name) const;
  [[nodiscard]] Shard& ShardFor(const graph::CanonicalHash& hash);

  /// Cache-only probe: returns the resident entry (counted as a hit, LRU
  /// refreshed) or null without joining flights or solving.
  [[nodiscard]] ResultPtr TryCached(const RequestKey& key);

  /// Deadline pre-check + Execute — the synchronous request path shared by
  /// Compile(request) and the deprecated sync shims.  `params.dag` is
  /// ignored; the graph comes in by reference so shims avoid copying it.
  [[nodiscard]] CompileResponse CompileOn(const graph::Dag& dag,
                                          const CompileRequest& params);

  /// Dispatch on cache policy; fills result/outcome/solve_seconds.
  [[nodiscard]] CompileResponse Execute(
      const graph::Dag& dag, const CompileRequest& params,
      const std::optional<RequestKey>& precomputed);

  /// The CachePolicy::kUse path: cache probe → single-flight join → disk
  /// probe → cold solve + insert, in that order.  `record_access` feeds the
  /// admission sketch; it is false when the batch path already recorded
  /// this logical request in its TryCached probe (one access per request,
  /// whatever the entry point).  A degraded solve is inserted (and written
  /// back) under the fallback engine's own key, never the preferred one's.
  void ExecuteCached(const graph::Dag& dag, const CompileRequest& params,
                     const RequestKey& key, bool record_access,
                     CompileResponse& response);

  /// Which engine actually solved, and whether that was a fallback.
  struct SolveOutcome {
    std::string_view engine_used{};  // canonical; borrowed from the registry
    bool degraded = false;
  };

  /// One cold solve through the engine chain: the preferred engine (unless
  /// its breaker is open and a fallback exists), then each configured
  /// fallback, each attempt under a fresh solve budget.  Records latency,
  /// breaker outcomes, and the budget/fallback counters.  Throws when every
  /// candidate failed — a chain that died purely on budgets surfaces as
  /// DeadlineExceeded.
  [[nodiscard]] ResultPtr SolveCold(const graph::Dag& dag, int num_stages,
                                    const RequestKey& key,
                                    const CompileRequest& params,
                                    double& solve_seconds,
                                    SolveOutcome& outcome);

  /// The breaker guarding `engine` (created closed on first use).
  [[nodiscard]] CircuitBreaker& BreakerFor(std::string_view engine);

  /// Submit with an optionally precomputed key (the batch path probes the
  /// cache with the key first, then reuses it — one DAG serialization+hash
  /// per graph, not two).
  [[nodiscard]] Ticket SubmitInternal(CompileRequest request,
                                      std::optional<RequestKey> key);

  /// One member of a grouped cold-miss solve: index into the caller's
  /// request span, the precomputed key, and the promise behind the
  /// member's ticket.
  struct GroupMember {
    std::size_t index = 0;
    RequestKey key;
    std::promise<CompileResponse> promise;
    std::chrono::steady_clock::time_point enqueue_time{};
  };

  /// True when the engine behind `engine_name` overrides ScheduleBatch
  /// with a real lock-stepped path (SchedulerEngine::SupportsBatch).
  [[nodiscard]] bool EngineSupportsBatch(std::string_view engine_name) const;

  /// Body of one grouped solve task (runs on a worker): per member, settle
  /// deadline expiries and late cache hits, acquire or join the
  /// single-flight slot, disk-probe owners, then solve every surviving
  /// cold owner through ONE inline PipelineCompiler::CompileGroup call —
  /// never a nested pool submission, so a full queue cannot deadlock the
  /// group.  Resolves every member's promise on all paths.
  void RunBatchGroup(std::span<const CompileRequest> requests, int num_stages,
                     std::string_view engine_name,
                     std::vector<GroupMember>& members);

  /// Body of the deprecated batch shims: probes warm entries through the
  /// caller's pointers (no Dag copy) and copies only cold graphs into
  /// async requests, as the pre-request batch path did.
  [[nodiscard]] std::vector<ResultPtr> LegacyCompileBatch(
      std::span<const graph::Dag* const> dags, int num_stages,
      const EngineRef& engine);

  /// Inserts (or refreshes) an entry.  `expires_at` caps the entry's
  /// lifetime below the default TTL — set on disk-hit promotion so a
  /// promoted entry dies at the spill's absolute expiry instead of getting
  /// a freshly re-armed TTL.
  void InsertLocked(
      Shard& shard, const RequestKey& key, ResultPtr result,
      std::optional<std::chrono::steady_clock::time_point> expires_at =
          std::nullopt);

  /// Lazily drops `it` when its TTL lapsed; true means the entry is gone
  /// and the lookup must proceed as a miss.  Call under the shard mutex.
  [[nodiscard]] bool DropIfExpiredLocked(Shard& shard,
                                         std::list<CacheEntry>::iterator it);

  /// Memory-promotion cap for an entry carrying an absolute wall-clock
  /// expiry (disk hit, peer-fetched envelope): promote at the *remaining*
  /// lifetime — re-arming a full TTL would let the entry outlive its age
  /// bound by up to 2x.  Nullopt when the entry never expires.
  [[nodiscard]] static std::optional<std::chrono::steady_clock::time_point>
  PromoteExpiry(std::int64_t expires_at_unix_ms);

  /// Snapshot of the installed peer-fetch hook (null when none).
  [[nodiscard]] std::shared_ptr<const PeerFetchFn> PeerFetchSnapshot() const;

  /// Flight-owner peer warm attempt: fetch → verify → import → promote →
  /// resolve the flight.  True when the response was filled (kPeerHit).
  [[nodiscard]] bool TryPeerWarm(const RequestKey& key, Shard& shard,
                                 const std::shared_ptr<Flight>& flight,
                                 CompileResponse& response);

  /// Enqueues a background spill of `result` on the pool (no-op without a
  /// store).  Never blocks on I/O; FlushStore waits for all of these.
  void EnqueueWriteback(const RequestKey& key, ResultPtr result);

  [[nodiscard]] static std::size_t LaneIndex(Priority priority);

  PipelineCompiler compiler_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// TTL for memory entries; zero duration = no expiry.
  std::chrono::steady_clock::duration memory_ttl_{};
  bool has_ttl_ = false;

  /// Frequency sketch consulted on insert/promote; null = always admit.
  std::unique_ptr<store::TinyLfuAdmission> admission_;

  /// ServiceOptions::batch_decode — grouped miss solving in CompileBatch.
  bool batch_decode_ = true;

  /// Persistent tier; null when no cache_dir is configured.  Declared
  /// before pool_ so queued writeback tasks (which reference it) are
  /// drained by the pool's destructor first.
  std::unique_ptr<store::CacheStore> store_;

  std::unique_ptr<core::ThreadPool> pool_;

  /// Constant-per-service fingerprint of CompilerOptions, folded into every
  /// key so results are only shared between identically configured services.
  graph::CanonicalHash options_fingerprint_;

  /// Unified metrics registry (obs::Registry).  Declared before every
  /// counter reference below — members bind into it at construction.  The
  /// references have the std::atomic fetch_add/load surface, so increment
  /// sites are byte-for-byte the pre-registry code.
  obs::Registry registry_;

  obs::Counter& hits_ =
      registry_.GetCounter("respect_serve_hits_total",
                           "Requests answered from a resident memory entry");
  obs::Counter& misses_ =
      registry_.GetCounter("respect_serve_misses_total",
                           "Cold solves started (cacheable or not)");
  obs::Counter& evictions_ = registry_.GetCounter(
      "respect_serve_evictions_total", "LRU capacity evictions");
  obs::Counter& invalidations_ = registry_.GetCounter(
      "respect_serve_invalidations_total", "Entries dropped by ReplaceRl");
  obs::Counter& single_flight_waits_ = registry_.GetCounter(
      "respect_serve_single_flight_waits_total",
      "Requests collapsed onto another caller's in-flight solve");
  obs::Counter& failures_ = registry_.GetCounter(
      "respect_serve_failures_total", "Solves that threw");
  obs::Counter& bypasses_ = registry_.GetCounter(
      "respect_serve_bypasses_total", "CachePolicy::kBypass solves");
  obs::Counter& refreshes_ = registry_.GetCounter(
      "respect_serve_refreshes_total", "CachePolicy::kRefresh solves");
  obs::Counter& deadline_expired_ = registry_.GetCounter(
      "respect_serve_deadline_expired_total",
      "DeadlineExceeded failures, all paths");
  obs::Counter& disk_hits_ = registry_.GetCounter(
      "respect_serve_disk_hits_total",
      "Memory misses answered by the persistent store");
  obs::Counter& ttl_expired_ = registry_.GetCounter(
      "respect_serve_ttl_expired_total", "Memory entries lazily expired");
  obs::Counter& admission_rejected_ = registry_.GetCounter(
      "respect_serve_admission_rejected_total",
      "Inserts refused by TinyLFU admission");
  obs::Counter& batch_solved_ = registry_.GetCounter(
      "respect_serve_batch_solved_total",
      "Cold solves done by lock-stepped groups");
  obs::Counter& batch_single_ = registry_.GetCounter(
      "respect_serve_batch_single_total",
      "Grouped-path solves that fell back to the per-graph decode");
  obs::Counter& batch_groups_ = registry_.GetCounter(
      "respect_serve_batch_groups_total",
      "Lock-stepped group decodes executed");
  obs::Counter& budget_blown_ = registry_.GetCounter(
      "respect_serve_budget_blown_total",
      "Engine attempts cancelled on solve budget");
  obs::Counter& degraded_served_ = registry_.GetCounter(
      "respect_serve_degraded_served_total",
      "Responses produced by a fallback engine");
  obs::Counter& fallback_exhausted_ = registry_.GetCounter(
      "respect_serve_fallback_exhausted_total",
      "Requests whose whole engine chain failed");
  obs::Counter& writeback_errors_ = registry_.GetCounter(
      "respect_serve_writeback_errors_total",
      "Background spill writes that failed");
  obs::Counter& peer_fetches_ = registry_.GetCounter(
      "respect_serve_peer_fetches_total",
      "Peer warm attempts on cold misses");
  obs::Counter& peer_hits_ = registry_.GetCounter(
      "respect_serve_peer_hits_total",
      "Requests answered by peer spill envelopes");
  obs::Counter& peer_fetch_failures_ = registry_.GetCounter(
      "respect_serve_peer_fetch_failures_total",
      "Peer fetches that threw or returned corrupt/mismatched bytes");

  /// Cold-solve latency distribution (seconds) with Prometheus buckets;
  /// LatencyWindow still backs the snapshot's exact windowed percentiles.
  obs::Histogram& solve_hist_ = registry_.GetHistogram(
      "respect_serve_solve_seconds", "Cold engine solve latency (seconds)");

  /// Peer warm hook (SetPeerFetch); swapped atomically under its mutex,
  /// read as a shared_ptr snapshot so an uninstall never races a call.
  mutable std::mutex peer_fetch_mutex_;
  std::shared_ptr<const PeerFetchFn> peer_fetch_;

  /// Fallback chain resolved to canonical registry names at construction.
  std::vector<std::string_view> fallback_chain_;
  double default_solve_budget_seconds_ = 0.0;

  /// Deadline-aware admission (ServiceOptions::deadline_admission) and the
  /// smoothed cold-solve cost its wait estimate uses.  The EWMA update is
  /// load-compute-store (not CAS): a lost race skews the estimate by one
  /// sample, which admission can tolerate.
  bool deadline_admission_ = false;
  std::atomic<double> ewma_solve_seconds_{0.0};

  /// One breaker per canonical engine name, created closed on first use.
  /// string_view keys borrow from the registry (process lifetime).
  CircuitBreaker::Options breaker_options_;
  mutable std::mutex breaker_mutex_;
  std::map<std::string_view, std::unique_ptr<CircuitBreaker>> breakers_;

  /// Spill writes queued on the pool but not yet landed (FlushStore waits
  /// on this reaching zero).
  std::mutex writeback_mutex_;
  std::condition_variable writeback_cv_;
  std::size_t pending_writebacks_ = 0;

  struct LaneCounters {
    obs::Counter& enqueued;
    obs::Counter& started;
    obs::Counter& expired;
    obs::Counter& shed;
  };
  /// Binds one lane's counters into the registry under
  /// respect_serve_lane_<lane>_* names.
  [[nodiscard]] LaneCounters MakeLaneCounters(std::size_t lane);
  static_assert(kNumPriorityLanes == 3, "extend lane_counters_ init");
  std::array<LaneCounters, kNumPriorityLanes> lane_counters_ = {
      MakeLaneCounters(0), MakeLaneCounters(1), MakeLaneCounters(2)};
  std::array<LatencyWindow, kNumPriorityLanes> lane_wait_;

  /// Per-tenant async-path counters, keyed by tenant id.  A small map under
  /// its own mutex (not atomics): tenant cardinality is low and the updates
  /// are off the solve's critical path.
  void BumpTenant(const std::string& tenant,
                  std::uint64_t TenantMetrics::*field);
  mutable std::mutex tenant_mutex_;
  std::map<std::string, TenantMetrics> tenant_counters_;

  LatencyWindow solve_latency_;
};

}  // namespace respect::serve
