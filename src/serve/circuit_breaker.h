// Per-engine circuit breaker: closed → open → half-open with a single probe.
//
// CompileService keeps one breaker per engine.  Consecutive failures
// (budget blows or solve errors) open the breaker; while open, requests
// skip the sick engine straight to its fallback instead of burning a solve
// budget each.  After `open_seconds` the breaker half-opens and admits
// exactly one probe; the probe's outcome closes or re-opens it.
//
// Usage contract: every Allow() == true must be paired with exactly one
// RecordSuccess() or RecordFailure() — that pairing is what releases the
// half-open probe slot.  Outcomes may also be recorded without a prior
// Allow() (a caller that attempted the engine despite an open breaker,
// e.g. because it has no fallback left); the state machine absorbs them.
//
// Thread-safe; all methods take one short mutex.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

namespace respect::serve {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that open the breaker (<= 0 disables opening;
    /// the breaker then always allows).
    int failure_threshold = 3;

    /// How long an opened breaker rejects before half-opening a probe.
    double open_seconds = 5.0;

    /// Injectable clock for deterministic tests; null = steady_clock.
    std::function<std::chrono::steady_clock::time_point()> clock;
  };

  struct Snapshot {
    State state = State::kClosed;
    int consecutive_failures = 0;
    std::uint64_t opened = 0;          // closed/half-open -> open transitions
    std::uint64_t short_circuits = 0;  // Allow() calls answered false
  };

  CircuitBreaker();
  explicit CircuitBreaker(const Options& options);

  /// True when the caller may attempt the protected operation now.  An
  /// expired open window flips to half-open and grants the probe slot to
  /// the first caller; later callers are refused until the probe resolves.
  [[nodiscard]] bool Allow();

  void RecordSuccess();
  void RecordFailure();

  [[nodiscard]] State CurrentState() const;
  [[nodiscard]] Snapshot GetSnapshot() const;

 private:
  [[nodiscard]] std::chrono::steady_clock::time_point Now() const;

  Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point open_until_{};
  std::uint64_t opened_ = 0;
  std::uint64_t short_circuits_ = 0;
};

/// Human-readable state name ("closed" / "open" / "half-open").
[[nodiscard]] std::string_view ToString(CircuitBreaker::State state);

}  // namespace respect::serve
