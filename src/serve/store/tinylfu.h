// TinyLfuAdmission — frequency-aware cache admission (the TinyLFU policy of
// Einziger et al., "TinyLFU: A Highly Efficient Cache Admission Policy").
//
// An LRU-only cache lets a scan of one-hit-wonder requests flush entries
// that are probed constantly: every cold insert evicts the LRU victim no
// matter how hot the victim is.  TinyLFU fixes that with an approximate
// frequency sketch over the *request stream*: every cache lookup records its
// key; on insert, the candidate is admitted only if its estimated frequency
// is at least the eviction victim's.  A one-hit wonder (estimate 1) can
// never displace an entry that keeps getting probed; a genuinely hot new
// key admits immediately (ties go to the candidate, so an all-cold cache
// behaves exactly like plain LRU).
//
// The sketch is a 4-bit count-min: `depth` rows of `counters` saturating
// 4-bit counters (two per byte), each row indexed by an independent mix of
// the key.  Estimate = min over rows, so collisions only ever inflate.  To
// keep the sketch fresh over long runs, every counter is halved once
// `sample_period` accesses have been recorded ("aging"): old traffic decays
// geometrically and the sketch keeps admitting new hot keys forever instead
// of saturating.  With 4-bit counters the whole sketch costs
// depth * counters / 2 bytes (the default configuration is ~8 KiB for a
// 4096-entry cache).
//
// Thread safety: all methods are safe to call concurrently (one internal
// mutex; every operation is a handful of array reads/writes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/canonical_hash.h"

namespace respect::serve::store {

class TinyLfuAdmission {
 public:
  struct Options {
    /// Counters per row, rounded up to a power of two (min 64).  Size to
    /// the cache capacity or a small multiple of it.
    std::size_t counters = 4096;

    /// Accesses between halvings; 0 selects 10 * counters (the paper's
    /// sample-to-size ratio).
    std::uint64_t sample_period = 0;
  };

  /// Sketch sized for a cache of `capacity_hint` entries.
  explicit TinyLfuAdmission(std::size_t capacity_hint);
  explicit TinyLfuAdmission(const Options& options);

  TinyLfuAdmission(const TinyLfuAdmission&) = delete;
  TinyLfuAdmission& operator=(const TinyLfuAdmission&) = delete;

  /// Records one lookup of `key` (hit or miss — the frequency stream is the
  /// request stream, not the hit stream).
  void RecordAccess(const graph::CanonicalHash& key);

  /// Approximate access count of `key` within the current sample window
  /// (saturates at 15; halvings decay it).  Never under-estimates within
  /// the window, may over-estimate on collisions.
  [[nodiscard]] std::uint64_t Estimate(const graph::CanonicalHash& key) const;

  /// Admission verdict for inserting `candidate` when the cache is full and
  /// `victim` is the entry that would be evicted: admit iff the candidate's
  /// estimated frequency is >= the victim's.
  [[nodiscard]] bool Admit(const graph::CanonicalHash& candidate,
                           const graph::CanonicalHash& victim) const;

  /// Number of halvings so far (observability / tests).
  [[nodiscard]] std::uint64_t Halvings() const;

 private:
  static constexpr int kDepth = 4;

  [[nodiscard]] std::size_t SlotIndex(const graph::CanonicalHash& key,
                                      int row) const;
  [[nodiscard]] std::uint8_t ReadCounterLocked(std::size_t slot) const;
  void HalveLocked();

  mutable std::mutex mutex_;
  std::size_t counters_per_row_ = 0;  // power of two
  std::uint64_t sample_period_ = 0;
  std::uint64_t ops_ = 0;        // accesses since the last halving
  std::uint64_t halvings_ = 0;
  std::vector<std::uint8_t> table_;  // two 4-bit counters per byte
};

}  // namespace respect::serve::store
