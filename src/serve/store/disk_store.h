// DiskStore — the on-disk CacheStore: one self-describing spill file per
// cached CompileResult, named `<key-hex>.spill` under a cache directory.
//
// File format (host-native bytes; a local cache artifact, not a wire
// format):
//
//   header   u32 magic 'RSPL'   u32 format version   u64 payload bytes
//            u64 checksum.hi    u64 checksum.lo      (checksum = the
//            graph::CanonicalHasher digest of the payload bytes)
//   payload  key.hi/key.lo      rl_dependent + rl_version
//            engine name
//            profile name + fingerprint hi/lo   (format v2 and later)
//            expires_at (unix milliseconds, 0 = never)
//            solve_seconds, peak_stage_param_bytes, proved_optimal
//            schedule (num_stages + per-node stages)
//            package  (deploy::WritePackage — the heavy part)
//
// Version compatibility: v1 files (pre-device-profile) read back as the
// default profile, so old cache directories warm-start default-profile
// services unchanged; files stamped with a version *newer* than this build
// writes are quarantined as clean misses (never guessed at).
//
// A probe verifies magic, version, payload size, checksum, and that the
// payload's embedded key equals the requested key before trusting a byte of
// it, so a truncated, bit-flipped, or renamed file is a clean miss — the
// offending file is deleted (quarantined) and counted, never served.
// Writes go to a `.tmp` sibling first and rename into place, so readers
// only ever see complete files and a crash mid-write leaves at most a
// stale temp file (swept on the next construction).
//
// Construction scans the directory and indexes every well-named spill file
// by the key parsed from its name (contents are verified lazily, at first
// probe) — that index is what makes restart warm-start O(files) instead of
// O(bytes), and makes a probe for an absent key cost zero I/O.
//
// TTL: when ttl_seconds > 0, each write stamps an absolute wall-clock
// expiry (system_clock — it must survive restarts) and an expired entry is
// dropped at probe time or by Compact().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>

#include "obs/registry.h"
#include "serve/store/cache_store.h"
#include "serve/store/spill_codec.h"

namespace respect::serve::store {

struct DiskStoreOptions {
  /// Cache directory; created (with parents) when missing.
  std::string directory;

  /// Per-entry time-to-live stamped on writes; <= 0 means entries never
  /// expire.
  double ttl_seconds = 0.0;

  /// Test seam: wall-clock source for expiry stamps and checks.  Defaults
  /// to std::chrono::system_clock::now.
  std::function<std::chrono::system_clock::time_point()> clock;

  /// Extra attempts after a failed spill write (transient ENOSPC/EIO often
  /// clears within milliseconds); 0 disables retrying.  Each retry backs
  /// off twice as long, starting at write_retry_backoff_ms.
  int write_retries = 2;
  int write_retry_backoff_ms = 2;

  /// Metrics registry to register the store's counters into (must outlive
  /// the store).  CompileService passes its own so one exposition page
  /// covers both tiers; null makes the store carry a private registry.
  obs::Registry* registry = nullptr;
};

class DiskStore final : public CacheStore {
 public:
  /// Scans `options.directory` (creating it when absent) and indexes the
  /// resident spill files.  Throws std::runtime_error when the directory
  /// cannot be created or read.
  explicit DiskStore(const DiskStoreOptions& options);

  [[nodiscard]] ResultPtr Probe(
      const graph::CanonicalHash& key,
      std::int64_t* expires_at_unix_ms = nullptr) override;
  void Put(const SpillMeta& meta, const ResultPtr& result) override;

  /// O(files * meta-prefix): decisions read only the envelope's meta
  /// fields (key, RL version, expiry), never the package bytes — safe to
  /// run synchronously under live traffic even for large stores.  A
  /// structurally corrupt prefix quarantines the file; full checksum
  /// verification stays where it matters, on the Probe path that serves
  /// bytes to callers.
  std::size_t Compact(std::uint64_t live_rl_version) override;

  /// Fleet peer-fetch read: the verified raw envelope bytes for `key`, or
  /// nullopt (absent, corrupt — quarantined on the way out — or expired).
  [[nodiscard]] std::optional<std::string> ExportRaw(
      const graph::CanonicalHash& key) override;

  /// Fleet peer-fetch write: fully verifies the envelope (checksum, version
  /// range, embedded key == `key`, not expired) then publishes it with the
  /// same temp-file + rename discipline as Put.  Refused bytes never touch
  /// the directory.
  bool ImportRaw(const graph::CanonicalHash& key,
                 std::string_view bytes) override;

  [[nodiscard]] StoreMetrics Metrics() const override;

  /// The `<key-hex>.spill` path an entry lives at (exposed for tests that
  /// corrupt real spill files).
  [[nodiscard]] std::filesystem::path PathFor(
      const graph::CanonicalHash& key) const;

 private:
  [[nodiscard]] std::chrono::system_clock::time_point Now() const;
  [[nodiscard]] bool Indexed(const graph::CanonicalHash& key) const;
  void Index(const graph::CanonicalHash& key);
  void Unindex(const graph::CanonicalHash& key);

  /// Deletes the file and drops it from the index, counting it against
  /// `counter` (one of the registry-backed members below).
  void Drop(const graph::CanonicalHash& key, const std::filesystem::path& path,
            obs::Counter& counter);

  /// True when a non-zero absolute expiry has passed (per the test clock).
  [[nodiscard]] bool Expired(std::int64_t expires_at_unix_ms) const;

  /// Reads and fully verifies the spill file for `key`, returning its raw
  /// bytes (and the decoded envelope through `envelope` when non-null).
  /// Corruption quarantines the file and expiry drops it — both are
  /// nullopt.  The shared read path behind Probe and ExportRaw.
  [[nodiscard]] std::optional<std::string> LoadVerified(
      const graph::CanonicalHash& key, SpillEnvelope* envelope);

  /// Writes `envelope` to `<key-hex>.spill` via a temp file + rename, with
  /// the configured retry/backoff schedule.  Counts write_failures on
  /// giving up; the caller counts the success.
  bool WriteEnvelopeAtomic(const graph::CanonicalHash& key,
                           std::string_view envelope);

  DiskStoreOptions options_;
  std::filesystem::path directory_;

  mutable std::mutex index_mutex_;
  std::unordered_set<graph::CanonicalHash, graph::CanonicalHash::Hasher>
      index_;  // keys with a (believed) resident spill file

  std::atomic<std::uint64_t> temp_counter_{0};  // unique temp-file suffixes

  /// Counters live in the caller's registry (DiskStoreOptions::registry)
  /// or the private one below; either way the references expose the same
  /// std::atomic surface the pre-registry code used, so increment sites
  /// are unchanged.  Declaration order matters: own_registry_ must
  /// construct before any counter binds.
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_ = nullptr;
  obs::Counter& probes_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& writes_;
  obs::Counter& write_failures_;
  obs::Counter& write_retries_;
  obs::Counter& corrupt_dropped_;
  obs::Counter& expired_dropped_;
  obs::Counter& compacted_;
  obs::Counter& exports_;
  obs::Counter& imports_;
  obs::Counter& import_rejected_;
};

}  // namespace respect::serve::store
