// CacheStore — the pluggable persistent tier behind CompileService's sharded
// in-memory schedule cache.
//
// The in-memory cache answers the hot set; a CacheStore keeps solved
// schedules across process restarts.  The service consults it in exactly
// three places:
//
//   * Probe  — on a memory miss (kUse policy only), before paying an engine
//              solve.  This is the one synchronous store call on the request
//              path; a hit is surfaced as CacheOutcome::kDiskHit and promoted
//              into memory subject to the admission policy.
//   * Put    — after a successful cold solve or refresh, enqueued as a
//              background task on the service's thread pool so the request
//              path never blocks on store I/O.  Put must not throw: a failed
//              write is a counted non-event (the entry simply is not
//              persisted), never a request failure.
//   * Compact — housekeeping: drop entries no future request can reach
//              (RL-dependent results from superseded weight snapshots — the
//              snapshot version is folded into the request key, so they are
//              unreachable the moment ReplaceRl bumps it) and entries past
//              their TTL.
//
// Keys are the service's content-addressed request keys
// (graph::CanonicalHash over the serialized DAG + canonical engine name +
// num_stages + options fingerprint + RL snapshot version), so a store entry
// answers exactly one request shape and restart warm-start needs no
// re-keying.  Implementations must be safe to call from multiple threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "graph/canonical_hash.h"
#include "serve/request.h"

namespace respect::serve::store {

/// Self-description stored next to the serialized result: what Compact()
/// and humans poking at a cache directory need without recomputing keys.
struct SpillMeta {
  /// The full content-addressed request key (also the file name, in hex).
  graph::CanonicalHash key;

  /// True when the result came from an RL-dependent engine; such entries
  /// become unreachable when the RL snapshot version moves past rl_version.
  bool rl_dependent = false;
  std::uint64_t rl_version = 0;

  /// Canonical engine name, for observability only (the key covers it).
  std::string engine_name;

  /// Device profile the schedule was optimized for.  Observability only —
  /// the key covers it (non-default profiles fold their fingerprint in).
  /// Format-v1 spills predate profiles and read back as the default
  /// profile with a zero fingerprint.
  std::string profile_name;
  graph::CanonicalHash profile_fingerprint{};
};

/// Point-in-time store counters (all monotone except resident).
struct StoreMetrics {
  std::uint64_t probes = 0;           // Probe calls
  std::uint64_t hits = 0;             // probes answered with a result
  std::uint64_t misses = 0;           // probes with no usable entry
  std::uint64_t writes = 0;           // successful Put spills
  std::uint64_t write_failures = 0;   // Puts that failed every attempt
  std::uint64_t write_retries = 0;    // transient failures retried inside Put
  std::uint64_t corrupt_dropped = 0;  // malformed entries quarantined
  std::uint64_t expired_dropped = 0;  // TTL-expired entries dropped lazily
  std::uint64_t compacted = 0;        // entries removed by Compact
  std::uint64_t exports = 0;          // raw envelopes served to peers
  std::uint64_t imports = 0;          // raw envelopes accepted from peers
  std::size_t resident = 0;           // entries indexed right now
};

class CacheStore {
 public:
  virtual ~CacheStore() = default;

  /// Returns the stored result for `key`, or null on a miss.  Every failure
  /// mode — absent, corrupt, truncated, expired, wrong envelope — is a
  /// clean miss, never an exception or a wrong answer.  On a hit with
  /// `expires_at_unix_ms` non-null, the entry's absolute wall-clock expiry
  /// (unix milliseconds; 0 = never) is written through — the caller caps
  /// any in-memory promotion at the entry's remaining lifetime instead of
  /// re-arming a fresh TTL.
  [[nodiscard]] virtual ResultPtr Probe(
      const graph::CanonicalHash& key,
      std::int64_t* expires_at_unix_ms = nullptr) = 0;

  /// Persists one result under meta.key.  Must not throw; failures are
  /// counted in StoreMetrics::write_failures.
  virtual void Put(const SpillMeta& meta, const ResultPtr& result) = 0;

  /// Deletes unreachable entries: RL-dependent results whose rl_version !=
  /// live_rl_version, TTL-expired entries, and anything malformed.  Returns
  /// the number of entries removed.
  virtual std::size_t Compact(std::uint64_t live_rl_version) = 0;

  /// Returns the verified raw envelope bytes stored under `key` — the exact
  /// self-describing `.spill` format (serve/store/spill_codec.h) — or
  /// nullopt when the entry is absent, corrupt, or expired.  This is the
  /// fleet peer-fetch read: bytes are fully verified (checksum + embedded
  /// key) before a single one leaves the process.  The default
  /// implementation has no raw form and always misses.
  [[nodiscard]] virtual std::optional<std::string> ExportRaw(
      const graph::CanonicalHash& key) {
    (void)key;
    return std::nullopt;
  }

  /// Accepts raw envelope bytes fetched from a peer and persists them under
  /// `key`.  The bytes are fully verified first (checksum, version range,
  /// embedded key == `key`, not expired); anything malformed is refused
  /// with `false` — corrupt peer bytes are a typed miss, never a stored
  /// lie.  Must not throw.  The default implementation stores nothing.
  virtual bool ImportRaw(const graph::CanonicalHash& key,
                         std::string_view bytes) {
    (void)key;
    (void)bytes;
    return false;
  }

  [[nodiscard]] virtual StoreMetrics Metrics() const = 0;
};

}  // namespace respect::serve::store
