// Spill envelope codec — the one definition of the `.spill` byte format,
// shared by the on-disk store (serve/store/disk_store.cc) and the fleet
// peer-fetch path (net/fleet_server.cc), which ships whole envelopes
// between processes so any node can warm any other.
//
// Envelope layout (host-native bytes via deploy/pod_io.h):
//
//   header   u32 magic 'RSPL'   u32 format version   u64 payload bytes
//            u64 checksum.hi    u64 checksum.lo      (checksum = the
//            graph::CanonicalHasher digest of the payload bytes)
//   payload  key.hi/key.lo      rl_dependent + rl_version
//            engine name
//            profile name + fingerprint hi/lo   (format v2 and later)
//            expires_at (unix milliseconds, 0 = never)
//            result body (WriteResultBody below)
//
// Version compatibility: v1 payloads (pre-device-profile) decode as the
// default profile; versions newer than kSpillFormatVersion are refused —
// a decoder never guesses at fields it does not know.
//
// Every structural problem — short buffer, bad magic, implausible sizes,
// checksum mismatch, trailing bytes — throws std::runtime_error from the
// Decode functions; TryDecodeSpillEnvelope converts all of those into
// nullopt for callers (peer fetch, raw import) that treat corrupt bytes as
// a typed miss.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "graph/canonical_hash.h"
#include "serve/store/cache_store.h"

namespace respect {
struct CompileResult;
}  // namespace respect

namespace respect::serve::store {

inline constexpr std::uint32_t kSpillMagic = 0x4c505352;  // "RSPL"
inline constexpr std::uint32_t kSpillFormatVersion = 2;
inline constexpr std::uint32_t kSpillMinFormatVersion = 1;

/// Fixed header size: magic + version + payload size + checksum hi/lo.
inline constexpr std::size_t kSpillHeaderBytes = 4 + 4 + 8 + 8 + 8;

/// Everything above the package is small; this bounds resize attacks from a
/// corrupt length field (the package reader has its own bounds).
inline constexpr std::uint64_t kMaxSpillPayloadBytes = 1ull << 30;
inline constexpr std::uint32_t kMaxSpillEngineNameBytes = 4096;
inline constexpr std::uint32_t kMaxSpillProfileNameBytes = 4096;
inline constexpr std::uint64_t kMaxSpillScheduleNodes = 1ull << 24;

/// The self-description at the front of every payload — what Compact and
/// TTL checks need without touching the package bytes.
struct SpillPrefix {
  SpillMeta meta;
  std::int64_t expires_at_unix_ms = 0;  // 0 = never
};

/// A fully decoded and verified envelope.
struct SpillEnvelope {
  SpillMeta meta;
  std::int64_t expires_at_unix_ms = 0;  // 0 = never
  ResultPtr result;
};

/// Serializes the result fields that follow the meta prefix (solve stats,
/// schedule, deploy package).  Shared with the wire response codec
/// (net/wire.cc) so a schedule travels in one byte layout whether it rides
/// in a spill file or a CompileResponse frame.
void WriteResultBody(std::ostream& os, const CompileResult& result);

/// Inverse of WriteResultBody.  Throws std::runtime_error on malformed or
/// truncated input.  Leaves the stream positioned exactly past the body.
[[nodiscard]] ResultPtr ReadResultBody(std::istream& is);

/// graph::CanonicalHasher digest of the payload bytes — the envelope
/// checksum.
[[nodiscard]] graph::CanonicalHash SpillChecksum(std::string_view payload);

/// Serializes one payload (no header).
[[nodiscard]] std::string EncodeSpillPayload(const SpillMeta& meta,
                                             std::int64_t expires_at_unix_ms,
                                             const CompileResult& result);

/// Serializes one complete envelope: header + payload, ready to write to a
/// file or ship over a socket.
[[nodiscard]] std::string EncodeSpillEnvelope(const SpillMeta& meta,
                                              std::int64_t expires_at_unix_ms,
                                              const CompileResult& result);

/// Parses and fully verifies one envelope (magic, version range, payload
/// size, checksum, no trailing bytes).  Throws std::runtime_error on any
/// problem.
[[nodiscard]] SpillEnvelope DecodeSpillEnvelope(std::string_view bytes);

/// DecodeSpillEnvelope with every failure mode folded to nullopt — the
/// typed-miss form used by peer fetch and raw import.
[[nodiscard]] std::optional<SpillEnvelope> TryDecodeSpillEnvelope(
    std::string_view bytes);

/// Reads only the header and the meta prefix from a stream — enough for
/// compaction decisions without deserializing (or even reading) the package
/// bytes.  Structural corruption throws; the prefix is NOT
/// checksum-verified (full verification stays where bytes are served).
[[nodiscard]] SpillPrefix DecodeSpillPrefix(std::istream& is);

}  // namespace respect::serve::store
