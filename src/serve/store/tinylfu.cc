#include "serve/store/tinylfu.h"

#include <algorithm>
#include <bit>

namespace respect::serve::store {
namespace {

/// Per-row seeds: large odd constants so the rows index independently.
constexpr std::uint64_t kRowSeed[4] = {
    0x9e3779b97f4a7c15ULL,
    0xc2b2ae3d27d4eb4fULL,
    0x165667b19e3779f9ULL,
    0x27d4eb2f165667c5ULL,
};

std::uint64_t Mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t NextPowerOfTwo(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(64, n));
}

}  // namespace

TinyLfuAdmission::TinyLfuAdmission(std::size_t capacity_hint)
    : TinyLfuAdmission(Options{.counters = capacity_hint}) {}

TinyLfuAdmission::TinyLfuAdmission(const Options& options)
    : counters_per_row_(NextPowerOfTwo(options.counters)),
      sample_period_(options.sample_period != 0
                         ? options.sample_period
                         : 10 * static_cast<std::uint64_t>(counters_per_row_)),
      table_(kDepth * counters_per_row_ / 2, 0) {}

std::size_t TinyLfuAdmission::SlotIndex(const graph::CanonicalHash& key,
                                        int row) const {
  const std::uint64_t mixed = Mix(key.lo ^ key.hi ^ kRowSeed[row]);
  return static_cast<std::size_t>(row) * counters_per_row_ +
         (static_cast<std::size_t>(mixed) & (counters_per_row_ - 1));
}

std::uint8_t TinyLfuAdmission::ReadCounterLocked(std::size_t slot) const {
  const std::uint8_t byte = table_[slot / 2];
  return (slot % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
}

void TinyLfuAdmission::HalveLocked() {
  for (std::uint8_t& byte : table_) {
    // Both nibbles halve in one shift; the mask clears the bit each high
    // nibble would otherwise leak into its low neighbour.
    byte = static_cast<std::uint8_t>((byte >> 1) & 0x77);
  }
  ++halvings_;
  ops_ = 0;
}

void TinyLfuAdmission::RecordAccess(const graph::CanonicalHash& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (int row = 0; row < kDepth; ++row) {
    const std::size_t slot = SlotIndex(key, row);
    const std::uint8_t value = ReadCounterLocked(slot);
    if (value >= 15) continue;  // saturate
    const std::uint8_t next = static_cast<std::uint8_t>(value + 1);
    std::uint8_t& byte = table_[slot / 2];
    byte = (slot % 2 == 0)
               ? static_cast<std::uint8_t>((byte & 0xf0) | next)
               : static_cast<std::uint8_t>((byte & 0x0f) | (next << 4));
  }
  if (++ops_ >= sample_period_) HalveLocked();
}

std::uint64_t TinyLfuAdmission::Estimate(
    const graph::CanonicalHash& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint8_t minimum = 15;
  for (int row = 0; row < kDepth; ++row) {
    minimum = std::min(minimum, ReadCounterLocked(SlotIndex(key, row)));
  }
  return minimum;
}

bool TinyLfuAdmission::Admit(const graph::CanonicalHash& candidate,
                             const graph::CanonicalHash& victim) const {
  return Estimate(candidate) >= Estimate(victim);
}

std::uint64_t TinyLfuAdmission::Halvings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return halvings_;
}

}  // namespace respect::serve::store
