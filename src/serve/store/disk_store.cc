#include "serve/store/disk_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "core/respect.h"
#include "deploy/package.h"
#include "deploy/pod_io.h"

namespace respect::serve::store {
namespace {

using deploy::ReadPod;
using deploy::WritePod;

constexpr std::uint32_t kMagic = 0x4c505352;  // "RSPL" little-endian

/// Written on every Put.  v2 added the device-profile fields to the meta
/// prefix; v1 files (no profile fields) still read back fine — as the
/// default profile — so a pre-profile cache directory warm-starts a
/// default-profile service without re-solving.  Versions above
/// kFormatVersion are from a *newer* writer and are quarantined as clean
/// misses rather than guessed at.
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::uint32_t kMinFormatVersion = 1;
constexpr const char* kSpillExtension = ".spill";

/// Everything above the package is small; this bounds resize attacks from a
/// corrupt length field (the package reader has its own bounds).
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;
constexpr std::uint32_t kMaxEngineNameBytes = 4096;
constexpr std::uint32_t kMaxProfileNameBytes = 4096;
constexpr std::uint64_t kMaxScheduleNodes = 1ull << 24;

/// The self-description at the front of every payload — what Compact and
/// TTL checks need without touching the package bytes.
struct SpillPrefix {
  SpillMeta meta;
  std::int64_t expires_at_unix_ms = 0;  // 0 = never
};

struct LoadedSpill {
  SpillMeta meta;
  std::int64_t expires_at_unix_ms = 0;  // 0 = never
  ResultPtr result;
};

std::string SerializePayload(const SpillMeta& meta,
                             std::int64_t expires_at_unix_ms,
                             const CompileResult& result) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, meta.key.hi);
  WritePod(os, meta.key.lo);
  WritePod(os, static_cast<std::uint8_t>(meta.rl_dependent));
  WritePod(os, meta.rl_version);
  WritePod(os, static_cast<std::uint32_t>(meta.engine_name.size()));
  os.write(meta.engine_name.data(),
           static_cast<std::streamsize>(meta.engine_name.size()));
  // v2 fields: the device profile the schedule targets.
  WritePod(os, static_cast<std::uint32_t>(meta.profile_name.size()));
  os.write(meta.profile_name.data(),
           static_cast<std::streamsize>(meta.profile_name.size()));
  WritePod(os, meta.profile_fingerprint.hi);
  WritePod(os, meta.profile_fingerprint.lo);
  WritePod(os, expires_at_unix_ms);
  WritePod(os, result.solve_seconds);
  WritePod(os, result.peak_stage_param_bytes);
  WritePod(os, static_cast<std::uint8_t>(result.proved_optimal));
  WritePod(os, result.schedule.num_stages);
  WritePod(os, static_cast<std::uint64_t>(result.schedule.stage.size()));
  for (const int stage : result.schedule.stage) WritePod(os, stage);
  deploy::WritePackage(result.package, os);
  return std::move(os).str();
}

/// Parses the meta fields at the front of a payload stream.  Throws
/// std::runtime_error on any structural problem.  v1 payloads have no
/// profile fields — they parse as the default profile ("coral", zero
/// fingerprint), which is exactly what a pre-profile writer was solving
/// for.
SpillPrefix ReadMetaFields(std::istream& is, std::uint32_t version) {
  SpillPrefix prefix;
  ReadPod(is, prefix.meta.key.hi);
  ReadPod(is, prefix.meta.key.lo);
  std::uint8_t rl_dependent = 0;
  ReadPod(is, rl_dependent);
  prefix.meta.rl_dependent = rl_dependent != 0;
  ReadPod(is, prefix.meta.rl_version);
  std::uint32_t name_len = 0;
  ReadPod(is, name_len);
  if (!is || name_len > kMaxEngineNameBytes) {
    throw std::runtime_error("spill: corrupt engine name");
  }
  prefix.meta.engine_name.resize(name_len);
  is.read(prefix.meta.engine_name.data(), name_len);
  if (version >= 2) {
    std::uint32_t profile_len = 0;
    ReadPod(is, profile_len);
    if (!is || profile_len > kMaxProfileNameBytes) {
      throw std::runtime_error("spill: corrupt profile name");
    }
    prefix.meta.profile_name.resize(profile_len);
    is.read(prefix.meta.profile_name.data(), profile_len);
    ReadPod(is, prefix.meta.profile_fingerprint.hi);
    ReadPod(is, prefix.meta.profile_fingerprint.lo);
  }
  ReadPod(is, prefix.expires_at_unix_ms);
  if (!is) throw std::runtime_error("spill: truncated meta");
  return prefix;
}

/// Parses a verified payload.  Throws std::runtime_error on any structural
/// problem; the caller translates that into quarantine-and-miss.
LoadedSpill ParsePayload(const std::string& payload, std::uint32_t version) {
  std::istringstream is(payload, std::ios::binary);
  LoadedSpill loaded;
  {
    SpillPrefix prefix = ReadMetaFields(is, version);
    loaded.meta = std::move(prefix.meta);
    loaded.expires_at_unix_ms = prefix.expires_at_unix_ms;
  }

  auto result = std::make_shared<CompileResult>();
  ReadPod(is, result->solve_seconds);
  ReadPod(is, result->peak_stage_param_bytes);
  std::uint8_t proved_optimal = 0;
  ReadPod(is, proved_optimal);
  result->proved_optimal = proved_optimal != 0;
  ReadPod(is, result->schedule.num_stages);
  std::uint64_t node_count = 0;
  ReadPod(is, node_count);
  if (!is || node_count > kMaxScheduleNodes) {
    throw std::runtime_error("spill: corrupt schedule");
  }
  result->schedule.stage.resize(node_count);
  for (int& stage : result->schedule.stage) ReadPod(is, stage);
  if (!is) throw std::runtime_error("spill: truncated schedule");
  result->package = deploy::ReadPackage(is);
  // The package reader stops exactly at its last field; anything after it
  // means the payload is not what the checksum was supposed to cover.
  if (is.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("spill: trailing bytes");
  }
  loaded.result = std::move(result);
  return loaded;
}

graph::CanonicalHash ChecksumOf(const std::string& payload) {
  graph::CanonicalHasher hasher;
  hasher.Update(std::string_view(payload));
  return hasher.Finish();
}

/// Reads and fully verifies one spill file.  Throws std::runtime_error on
/// any corruption; returns the parsed record otherwise.
LoadedSpill LoadSpillFile(const std::filesystem::path& path) {
  // Chaos seam: an injected read error takes the same quarantine-and-miss
  // path a real EIO would.
  RESPECT_FAILPOINT("store.read");
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("spill: cannot open");
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  graph::CanonicalHash checksum;
  ReadPod(is, magic);
  ReadPod(is, version);
  ReadPod(is, payload_size);
  ReadPod(is, checksum.hi);
  ReadPod(is, checksum.lo);
  if (!is || magic != kMagic) throw std::runtime_error("spill: bad magic");
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw std::runtime_error("spill: unsupported format version");
  }
  if (payload_size == 0 || payload_size > kMaxPayloadBytes) {
    throw std::runtime_error("spill: implausible payload size");
  }
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_size ||
      is.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("spill: truncated or oversized payload");
  }
  if (ChecksumOf(payload) != checksum) {
    throw std::runtime_error("spill: checksum mismatch");
  }
  return ParsePayload(payload, version);
}

/// Reads only the header and the meta prefix of a spill file — enough for
/// compaction decisions without deserializing (or even reading) the
/// package bytes.  Structural corruption throws; the prefix is NOT
/// checksum-verified (Probe fully verifies before any byte is served).
SpillPrefix LoadSpillPrefix(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("spill: cannot open");
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  graph::CanonicalHash checksum;
  ReadPod(is, magic);
  ReadPod(is, version);
  ReadPod(is, payload_size);
  ReadPod(is, checksum.hi);
  ReadPod(is, checksum.lo);
  if (!is || magic != kMagic) throw std::runtime_error("spill: bad magic");
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw std::runtime_error("spill: unsupported format version");
  }
  if (payload_size == 0 || payload_size > kMaxPayloadBytes) {
    throw std::runtime_error("spill: implausible payload size");
  }
  return ReadMetaFields(is, version);
}

}  // namespace

DiskStore::DiskStore(const DiskStoreOptions& options)
    : options_(options), directory_(options.directory) {
  if (directory_.empty()) {
    throw std::runtime_error("DiskStore: empty cache directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw std::runtime_error("DiskStore: cannot create " +
                             directory_.string() + ": " + ec.message());
  }
  // Warm-start scan: index by file name only (32 hex digits + ".spill");
  // contents are verified at first probe.  Leftover temp files from a
  // crashed writer are swept; foreign files are ignored.
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    if (path.extension() == ".tmp") {
      std::filesystem::remove(path, ec);
      continue;
    }
    if (path.extension() != kSpillExtension) continue;
    const std::string stem = path.stem().string();
    const auto key = graph::CanonicalHash::FromHex(stem);
    // Only the canonical (lowercase) spelling is indexed: PathFor always
    // rebuilds that spelling, so an uppercase-named copy would be indexed
    // yet unreachable — treat it as a foreign file instead.
    if (!key || key->ToHex() != stem) continue;
    index_.insert(*key);
  }
}

std::chrono::system_clock::time_point DiskStore::Now() const {
  return options_.clock ? options_.clock() : std::chrono::system_clock::now();
}

std::filesystem::path DiskStore::PathFor(
    const graph::CanonicalHash& key) const {
  return directory_ / (key.ToHex() + kSpillExtension);
}

bool DiskStore::Indexed(const graph::CanonicalHash& key) const {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  return index_.contains(key);
}

void DiskStore::Index(const graph::CanonicalHash& key) {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  index_.insert(key);
}

void DiskStore::Unindex(const graph::CanonicalHash& key) {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  index_.erase(key);
}

void DiskStore::Drop(const graph::CanonicalHash& key,
                     const std::filesystem::path& path,
                     std::atomic<std::uint64_t>& counter) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; the index is the truth
  Unindex(key);
  counter.fetch_add(1, std::memory_order_relaxed);
}

ResultPtr DiskStore::Probe(const graph::CanonicalHash& key,
                           std::int64_t* expires_at_unix_ms) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (!Indexed(key)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::filesystem::path path = PathFor(key);
  LoadedSpill loaded;
  try {
    loaded = LoadSpillFile(path);
  } catch (const std::exception&) {
    // Truncated, bit-flipped, wrong version, vanished — all the same clean
    // miss: quarantine (delete) the file so it is never re-probed.
    Drop(key, path, corrupt_dropped_);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (loaded.meta.key != key) {
    // A file whose envelope answers a different request than its name
    // claims (e.g. a renamed spill) must never be served.
    Drop(key, path, corrupt_dropped_);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (loaded.expires_at_unix_ms != 0 &&
      Now() > std::chrono::system_clock::time_point(
                  std::chrono::milliseconds(loaded.expires_at_unix_ms))) {
    Drop(key, path, expired_dropped_);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (expires_at_unix_ms != nullptr) {
    *expires_at_unix_ms = loaded.expires_at_unix_ms;
  }
  return loaded.result;
}

void DiskStore::Put(const SpillMeta& meta, const ResultPtr& result) {
  if (result == nullptr) return;
  std::int64_t expires_at_unix_ms = 0;
  if (options_.ttl_seconds > 0.0) {
    expires_at_unix_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            (Now() + std::chrono::duration_cast<
                         std::chrono::system_clock::duration>(
                         std::chrono::duration<double>(options_.ttl_seconds)))
                .time_since_epoch())
            .count();
  }
  const std::filesystem::path final_path = PathFor(meta.key);
  std::string payload;
  graph::CanonicalHash checksum;
  try {
    payload = SerializePayload(meta, expires_at_unix_ms, *result);
    checksum = ChecksumOf(payload);
  } catch (...) {
    // Serialization failures are deterministic — retrying cannot help.
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Transient I/O failures (ENOSPC racing a cleanup, EIO blips) often clear
  // within milliseconds: retry with doubling backoff before giving the
  // spill up.  Every attempt writes its own temp file and removes it on
  // failure — no litter however an attempt dies.
  const int attempts = 1 + std::max(0, options_.write_retries);
  int backoff_ms = std::max(0, options_.write_retry_backoff_ms);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::filesystem::path temp_path =
        final_path.string() + "." +
        std::to_string(temp_counter_.fetch_add(1, std::memory_order_relaxed)) +
        ".tmp";
    try {
      {
        std::ofstream os(temp_path, std::ios::binary | std::ios::trunc);
        if (!os) throw std::runtime_error("cannot open temp file");
        RESPECT_FAILPOINT("store.write");
        WritePod(os, kMagic);
        WritePod(os, kFormatVersion);
        WritePod(os, static_cast<std::uint64_t>(payload.size()));
        WritePod(os, checksum.hi);
        WritePod(os, checksum.lo);
        os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        os.flush();
        if (!os) throw std::runtime_error("write failed");
      }
      // Atomic publish: readers see the old complete file or the new one,
      // never a partial write.
      RESPECT_FAILPOINT("store.rename");
      std::filesystem::rename(temp_path, final_path);
      Index(meta.key);
      writes_.fetch_add(1, std::memory_order_relaxed);
      return;
    } catch (...) {
      std::error_code ec;
      std::filesystem::remove(temp_path, ec);
      if (attempt + 1 == attempts) {
        write_failures_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      write_retries_.fetch_add(1, std::memory_order_relaxed);
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
      }
    }
  }
}

std::size_t DiskStore::Compact(std::uint64_t live_rl_version) {
  std::vector<graph::CanonicalHash> keys;
  {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    keys.assign(index_.begin(), index_.end());
  }
  std::size_t removed = 0;
  for (const graph::CanonicalHash& key : keys) {
    const std::filesystem::path path = PathFor(key);
    SpillPrefix prefix;
    try {
      prefix = LoadSpillPrefix(path);
    } catch (const std::exception&) {
      Drop(key, path, corrupt_dropped_);
      ++removed;
      continue;
    }
    if (prefix.meta.key != key) {  // renamed/mismatched envelope
      Drop(key, path, corrupt_dropped_);
      ++removed;
      continue;
    }
    if (prefix.meta.rl_dependent &&
        prefix.meta.rl_version != live_rl_version) {
      // The request key folds the snapshot version in, so no future request
      // can reach this entry — reclaim the bytes.
      Drop(key, path, compacted_);
      ++removed;
      continue;
    }
    if (prefix.expires_at_unix_ms != 0 &&
        Now() > std::chrono::system_clock::time_point(
                    std::chrono::milliseconds(prefix.expires_at_unix_ms))) {
      Drop(key, path, expired_dropped_);
      ++removed;
    }
  }
  return removed;
}

StoreMetrics DiskStore::Metrics() const {
  StoreMetrics metrics;
  metrics.probes = probes_.load(std::memory_order_relaxed);
  metrics.hits = hits_.load(std::memory_order_relaxed);
  metrics.misses = misses_.load(std::memory_order_relaxed);
  metrics.writes = writes_.load(std::memory_order_relaxed);
  metrics.write_failures = write_failures_.load(std::memory_order_relaxed);
  metrics.write_retries = write_retries_.load(std::memory_order_relaxed);
  metrics.corrupt_dropped = corrupt_dropped_.load(std::memory_order_relaxed);
  metrics.expired_dropped = expired_dropped_.load(std::memory_order_relaxed);
  metrics.compacted = compacted_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    metrics.resident = index_.size();
  }
  return metrics;
}

}  // namespace respect::serve::store
