#include "serve/store/disk_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/failpoint.h"
#include "core/respect.h"
#include "obs/trace.h"
#include "serve/store/spill_codec.h"

namespace respect::serve::store {
namespace {

constexpr const char* kSpillExtension = ".spill";

/// Reads a whole file into a string.  Throws std::runtime_error when the
/// file cannot be opened or read.
std::string ReadFileBytes(const std::filesystem::path& path) {
  // Chaos seam: an injected read error takes the same quarantine-and-miss
  // path a real EIO would.
  RESPECT_FAILPOINT("store.read");
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("spill: cannot open");
  std::ostringstream os(std::ios::binary);
  os << is.rdbuf();
  if (!is && !is.eof()) throw std::runtime_error("spill: read failed");
  return std::move(os).str();
}

}  // namespace

DiskStore::DiskStore(const DiskStoreOptions& options)
    : options_(options),
      directory_(options.directory),
      own_registry_(options.registry ? nullptr : new obs::Registry()),
      registry_(options.registry ? options.registry : own_registry_.get()),
      probes_(registry_->GetCounter("respect_store_probes_total",
                                    "Disk-store probes")),
      hits_(registry_->GetCounter("respect_store_hits_total",
                                  "Disk-store verified hits")),
      misses_(registry_->GetCounter("respect_store_misses_total",
                                    "Disk-store misses")),
      writes_(registry_->GetCounter("respect_store_writes_total",
                                    "Spill files published")),
      write_failures_(registry_->GetCounter(
          "respect_store_write_failures_total",
          "Spill writes abandoned after every retry")),
      write_retries_(registry_->GetCounter("respect_store_write_retries_total",
                                           "Spill write attempts retried")),
      corrupt_dropped_(registry_->GetCounter(
          "respect_store_corrupt_dropped_total",
          "Spill files quarantined as corrupt or mismatched")),
      expired_dropped_(registry_->GetCounter(
          "respect_store_expired_dropped_total",
          "Spill files dropped past their TTL")),
      compacted_(registry_->GetCounter(
          "respect_store_compacted_total",
          "Spill files reclaimed by Compact (stale RL version)")),
      exports_(registry_->GetCounter("respect_store_exports_total",
                                     "Raw envelopes served to fleet peers")),
      imports_(registry_->GetCounter("respect_store_imports_total",
                                     "Peer envelopes verified and published")),
      import_rejected_(registry_->GetCounter(
          "respect_store_import_rejected_total",
          "Peer envelopes refused at verification")) {
  if (directory_.empty()) {
    throw std::runtime_error("DiskStore: empty cache directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw std::runtime_error("DiskStore: cannot create " +
                             directory_.string() + ": " + ec.message());
  }
  // Warm-start scan: index by file name only (32 hex digits + ".spill");
  // contents are verified at first probe.  Leftover temp files from a
  // crashed writer are swept; foreign files are ignored.
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    if (path.extension() == ".tmp") {
      std::filesystem::remove(path, ec);
      continue;
    }
    if (path.extension() != kSpillExtension) continue;
    const std::string stem = path.stem().string();
    const auto key = graph::CanonicalHash::FromHex(stem);
    // Only the canonical (lowercase) spelling is indexed: PathFor always
    // rebuilds that spelling, so an uppercase-named copy would be indexed
    // yet unreachable — treat it as a foreign file instead.
    if (!key || key->ToHex() != stem) continue;
    index_.insert(*key);
  }
}

std::chrono::system_clock::time_point DiskStore::Now() const {
  return options_.clock ? options_.clock() : std::chrono::system_clock::now();
}

std::filesystem::path DiskStore::PathFor(
    const graph::CanonicalHash& key) const {
  return directory_ / (key.ToHex() + kSpillExtension);
}

bool DiskStore::Indexed(const graph::CanonicalHash& key) const {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  return index_.contains(key);
}

void DiskStore::Index(const graph::CanonicalHash& key) {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  index_.insert(key);
}

void DiskStore::Unindex(const graph::CanonicalHash& key) {
  const std::lock_guard<std::mutex> lock(index_mutex_);
  index_.erase(key);
}

void DiskStore::Drop(const graph::CanonicalHash& key,
                     const std::filesystem::path& path,
                     obs::Counter& counter) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; the index is the truth
  Unindex(key);
  counter.fetch_add(1, std::memory_order_relaxed);
}

bool DiskStore::Expired(std::int64_t expires_at_unix_ms) const {
  return expires_at_unix_ms != 0 &&
         Now() > std::chrono::system_clock::time_point(
                     std::chrono::milliseconds(expires_at_unix_ms));
}

std::optional<std::string> DiskStore::LoadVerified(
    const graph::CanonicalHash& key, SpillEnvelope* envelope) {
  OBS_SPAN("store.read");
  const std::filesystem::path path = PathFor(key);
  std::string bytes;
  SpillEnvelope loaded;
  try {
    bytes = ReadFileBytes(path);
    loaded = DecodeSpillEnvelope(bytes);
  } catch (const std::exception&) {
    // Truncated, bit-flipped, wrong version, vanished — all the same clean
    // miss: quarantine (delete) the file so it is never re-probed.
    Drop(key, path, corrupt_dropped_);
    return std::nullopt;
  }
  if (loaded.meta.key != key) {
    // A file whose envelope answers a different request than its name
    // claims (e.g. a renamed spill) must never be served.
    Drop(key, path, corrupt_dropped_);
    return std::nullopt;
  }
  if (Expired(loaded.expires_at_unix_ms)) {
    Drop(key, path, expired_dropped_);
    return std::nullopt;
  }
  if (envelope != nullptr) *envelope = std::move(loaded);
  return bytes;
}

ResultPtr DiskStore::Probe(const graph::CanonicalHash& key,
                           std::int64_t* expires_at_unix_ms) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (!Indexed(key)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  SpillEnvelope envelope;
  if (!LoadVerified(key, &envelope)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (expires_at_unix_ms != nullptr) {
    *expires_at_unix_ms = envelope.expires_at_unix_ms;
  }
  return envelope.result;
}

bool DiskStore::WriteEnvelopeAtomic(const graph::CanonicalHash& key,
                                    std::string_view envelope) {
  OBS_SPAN("store.write");
  // Transient I/O failures (ENOSPC racing a cleanup, EIO blips) often clear
  // within milliseconds: retry with doubling backoff before giving the
  // spill up.  Every attempt writes its own temp file and removes it on
  // failure — no litter however an attempt dies.
  const std::filesystem::path final_path = PathFor(key);
  const int attempts = 1 + std::max(0, options_.write_retries);
  int backoff_ms = std::max(0, options_.write_retry_backoff_ms);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::filesystem::path temp_path =
        final_path.string() + "." +
        std::to_string(temp_counter_.fetch_add(1, std::memory_order_relaxed)) +
        ".tmp";
    try {
      {
        std::ofstream os(temp_path, std::ios::binary | std::ios::trunc);
        if (!os) throw std::runtime_error("cannot open temp file");
        RESPECT_FAILPOINT("store.write");
        os.write(envelope.data(),
                 static_cast<std::streamsize>(envelope.size()));
        os.flush();
        if (!os) throw std::runtime_error("write failed");
      }
      // Atomic publish: readers see the old complete file or the new one,
      // never a partial write.
      RESPECT_FAILPOINT("store.rename");
      std::filesystem::rename(temp_path, final_path);
      Index(key);
      return true;
    } catch (...) {
      std::error_code ec;
      std::filesystem::remove(temp_path, ec);
      if (attempt + 1 == attempts) {
        write_failures_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      write_retries_.fetch_add(1, std::memory_order_relaxed);
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms *= 2;
      }
    }
  }
  return false;
}

void DiskStore::Put(const SpillMeta& meta, const ResultPtr& result) {
  if (result == nullptr) return;
  std::int64_t expires_at_unix_ms = 0;
  if (options_.ttl_seconds > 0.0) {
    expires_at_unix_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            (Now() + std::chrono::duration_cast<
                         std::chrono::system_clock::duration>(
                         std::chrono::duration<double>(options_.ttl_seconds)))
                .time_since_epoch())
            .count();
  }
  std::string envelope;
  try {
    envelope = EncodeSpillEnvelope(meta, expires_at_unix_ms, *result);
  } catch (...) {
    // Serialization failures are deterministic — retrying cannot help.
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (WriteEnvelopeAtomic(meta.key, envelope)) {
    writes_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<std::string> DiskStore::ExportRaw(
    const graph::CanonicalHash& key) {
  if (!Indexed(key)) return std::nullopt;
  std::optional<std::string> bytes = LoadVerified(key, nullptr);
  if (bytes) exports_.fetch_add(1, std::memory_order_relaxed);
  return bytes;
}

bool DiskStore::ImportRaw(const graph::CanonicalHash& key,
                          std::string_view bytes) {
  const std::optional<SpillEnvelope> envelope = TryDecodeSpillEnvelope(bytes);
  if (!envelope || envelope->meta.key != key ||
      Expired(envelope->expires_at_unix_ms)) {
    // Corrupt, mismatched, or already-dead peer bytes never touch disk:
    // the caller sees a refusal, the directory keeps only verified truth.
    import_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!WriteEnvelopeAtomic(key, bytes)) return false;
  imports_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t DiskStore::Compact(std::uint64_t live_rl_version) {
  OBS_SPAN("store.compact");
  std::vector<graph::CanonicalHash> keys;
  {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    keys.assign(index_.begin(), index_.end());
  }
  std::size_t removed = 0;
  for (const graph::CanonicalHash& key : keys) {
    const std::filesystem::path path = PathFor(key);
    SpillPrefix prefix;
    try {
      std::ifstream is(path, std::ios::binary);
      if (!is) throw std::runtime_error("spill: cannot open");
      prefix = DecodeSpillPrefix(is);
    } catch (const std::exception&) {
      Drop(key, path, corrupt_dropped_);
      ++removed;
      continue;
    }
    if (prefix.meta.key != key) {  // renamed/mismatched envelope
      Drop(key, path, corrupt_dropped_);
      ++removed;
      continue;
    }
    if (prefix.meta.rl_dependent &&
        prefix.meta.rl_version != live_rl_version) {
      // The request key folds the snapshot version in, so no future request
      // can reach this entry — reclaim the bytes.
      Drop(key, path, compacted_);
      ++removed;
      continue;
    }
    if (Expired(prefix.expires_at_unix_ms)) {
      Drop(key, path, expired_dropped_);
      ++removed;
    }
  }
  return removed;
}

StoreMetrics DiskStore::Metrics() const {
  StoreMetrics metrics;
  metrics.probes = probes_.load(std::memory_order_relaxed);
  metrics.hits = hits_.load(std::memory_order_relaxed);
  metrics.misses = misses_.load(std::memory_order_relaxed);
  metrics.writes = writes_.load(std::memory_order_relaxed);
  metrics.write_failures = write_failures_.load(std::memory_order_relaxed);
  metrics.write_retries = write_retries_.load(std::memory_order_relaxed);
  metrics.corrupt_dropped = corrupt_dropped_.load(std::memory_order_relaxed);
  metrics.expired_dropped = expired_dropped_.load(std::memory_order_relaxed);
  metrics.compacted = compacted_.load(std::memory_order_relaxed);
  metrics.exports = exports_.load(std::memory_order_relaxed);
  metrics.imports = imports_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(index_mutex_);
    metrics.resident = index_.size();
  }
  return metrics;
}

}  // namespace respect::serve::store
