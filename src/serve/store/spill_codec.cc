#include "serve/store/spill_codec.h"

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/respect.h"
#include "deploy/package.h"
#include "deploy/pod_io.h"

namespace respect::serve::store {
namespace {

using deploy::ReadPod;
using deploy::WritePod;

/// Parses the meta fields at the front of a payload stream.  Throws
/// std::runtime_error on any structural problem.  v1 payloads have no
/// profile fields — they parse as the default profile ("coral", zero
/// fingerprint), which is exactly what a pre-profile writer was solving
/// for.
SpillPrefix ReadMetaFields(std::istream& is, std::uint32_t version) {
  SpillPrefix prefix;
  ReadPod(is, prefix.meta.key.hi);
  ReadPod(is, prefix.meta.key.lo);
  std::uint8_t rl_dependent = 0;
  ReadPod(is, rl_dependent);
  prefix.meta.rl_dependent = rl_dependent != 0;
  ReadPod(is, prefix.meta.rl_version);
  std::uint32_t name_len = 0;
  ReadPod(is, name_len);
  if (!is || name_len > kMaxSpillEngineNameBytes) {
    throw std::runtime_error("spill: corrupt engine name");
  }
  prefix.meta.engine_name.resize(name_len);
  is.read(prefix.meta.engine_name.data(), name_len);
  if (version >= 2) {
    std::uint32_t profile_len = 0;
    ReadPod(is, profile_len);
    if (!is || profile_len > kMaxSpillProfileNameBytes) {
      throw std::runtime_error("spill: corrupt profile name");
    }
    prefix.meta.profile_name.resize(profile_len);
    is.read(prefix.meta.profile_name.data(), profile_len);
    ReadPod(is, prefix.meta.profile_fingerprint.hi);
    ReadPod(is, prefix.meta.profile_fingerprint.lo);
  }
  ReadPod(is, prefix.expires_at_unix_ms);
  if (!is) throw std::runtime_error("spill: truncated meta");
  return prefix;
}

struct SpillHeader {
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  graph::CanonicalHash checksum;
};

/// Parses and range-checks the fixed header from a stream.  Throws on bad
/// magic, out-of-range version, or an implausible payload size.
SpillHeader ReadHeader(std::istream& is) {
  SpillHeader header;
  std::uint32_t magic = 0;
  ReadPod(is, magic);
  ReadPod(is, header.version);
  ReadPod(is, header.payload_size);
  ReadPod(is, header.checksum.hi);
  ReadPod(is, header.checksum.lo);
  if (!is || magic != kSpillMagic) {
    throw std::runtime_error("spill: bad magic");
  }
  if (header.version < kSpillMinFormatVersion ||
      header.version > kSpillFormatVersion) {
    throw std::runtime_error("spill: unsupported format version");
  }
  if (header.payload_size == 0 || header.payload_size > kMaxSpillPayloadBytes) {
    throw std::runtime_error("spill: implausible payload size");
  }
  return header;
}

}  // namespace

void WriteResultBody(std::ostream& os, const CompileResult& result) {
  WritePod(os, result.solve_seconds);
  WritePod(os, result.peak_stage_param_bytes);
  WritePod(os, static_cast<std::uint8_t>(result.proved_optimal));
  WritePod(os, result.schedule.num_stages);
  WritePod(os, static_cast<std::uint64_t>(result.schedule.stage.size()));
  for (const int stage : result.schedule.stage) WritePod(os, stage);
  deploy::WritePackage(result.package, os);
}

ResultPtr ReadResultBody(std::istream& is) {
  auto result = std::make_shared<CompileResult>();
  ReadPod(is, result->solve_seconds);
  ReadPod(is, result->peak_stage_param_bytes);
  std::uint8_t proved_optimal = 0;
  ReadPod(is, proved_optimal);
  result->proved_optimal = proved_optimal != 0;
  ReadPod(is, result->schedule.num_stages);
  std::uint64_t node_count = 0;
  ReadPod(is, node_count);
  if (!is || node_count > kMaxSpillScheduleNodes) {
    throw std::runtime_error("spill: corrupt schedule");
  }
  result->schedule.stage.resize(node_count);
  for (int& stage : result->schedule.stage) ReadPod(is, stage);
  if (!is) throw std::runtime_error("spill: truncated schedule");
  result->package = deploy::ReadPackage(is);
  return result;
}

graph::CanonicalHash SpillChecksum(std::string_view payload) {
  graph::CanonicalHasher hasher;
  hasher.Update(payload);
  return hasher.Finish();
}

std::string EncodeSpillPayload(const SpillMeta& meta,
                               std::int64_t expires_at_unix_ms,
                               const CompileResult& result) {
  std::ostringstream os(std::ios::binary);
  WritePod(os, meta.key.hi);
  WritePod(os, meta.key.lo);
  WritePod(os, static_cast<std::uint8_t>(meta.rl_dependent));
  WritePod(os, meta.rl_version);
  WritePod(os, static_cast<std::uint32_t>(meta.engine_name.size()));
  os.write(meta.engine_name.data(),
           static_cast<std::streamsize>(meta.engine_name.size()));
  // v2 fields: the device profile the schedule targets.
  WritePod(os, static_cast<std::uint32_t>(meta.profile_name.size()));
  os.write(meta.profile_name.data(),
           static_cast<std::streamsize>(meta.profile_name.size()));
  WritePod(os, meta.profile_fingerprint.hi);
  WritePod(os, meta.profile_fingerprint.lo);
  WritePod(os, expires_at_unix_ms);
  WriteResultBody(os, result);
  return std::move(os).str();
}

std::string EncodeSpillEnvelope(const SpillMeta& meta,
                                std::int64_t expires_at_unix_ms,
                                const CompileResult& result) {
  const std::string payload =
      EncodeSpillPayload(meta, expires_at_unix_ms, result);
  const graph::CanonicalHash checksum = SpillChecksum(payload);
  std::ostringstream os(std::ios::binary);
  WritePod(os, kSpillMagic);
  WritePod(os, kSpillFormatVersion);
  WritePod(os, static_cast<std::uint64_t>(payload.size()));
  WritePod(os, checksum.hi);
  WritePod(os, checksum.lo);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return std::move(os).str();
}

SpillEnvelope DecodeSpillEnvelope(std::string_view bytes) {
  if (bytes.size() < kSpillHeaderBytes) {
    throw std::runtime_error("spill: truncated header");
  }
  std::istringstream header_stream(
      std::string(bytes.substr(0, kSpillHeaderBytes)), std::ios::binary);
  const SpillHeader header = ReadHeader(header_stream);
  const std::string_view payload = bytes.substr(kSpillHeaderBytes);
  if (payload.size() != header.payload_size) {
    throw std::runtime_error("spill: truncated or oversized payload");
  }
  if (SpillChecksum(payload) != header.checksum) {
    throw std::runtime_error("spill: checksum mismatch");
  }
  std::istringstream is(std::string(payload), std::ios::binary);
  SpillEnvelope envelope;
  {
    SpillPrefix prefix = ReadMetaFields(is, header.version);
    envelope.meta = std::move(prefix.meta);
    envelope.expires_at_unix_ms = prefix.expires_at_unix_ms;
  }
  envelope.result = ReadResultBody(is);
  // The package reader stops exactly at its last field; anything after it
  // means the payload is not what the checksum was supposed to cover.
  if (is.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("spill: trailing bytes");
  }
  return envelope;
}

std::optional<SpillEnvelope> TryDecodeSpillEnvelope(std::string_view bytes) {
  try {
    return DecodeSpillEnvelope(bytes);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

SpillPrefix DecodeSpillPrefix(std::istream& is) {
  const SpillHeader header = ReadHeader(is);
  return ReadMetaFields(is, header.version);
}

}  // namespace respect::serve::store
