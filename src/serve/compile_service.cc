#include "serve/compile_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.h"
#include "engines/registry.h"

namespace respect::serve {
namespace {

/// Stable fingerprint of everything in CompilerOptions that can change a
/// CompileResult.  weights_path contributes as a path string: the key covers
/// the compiler's configuration, not the bytes of the file — swap weights
/// under traffic through ReplaceRl, which versions the snapshot.
graph::CanonicalHash FingerprintOptions(const CompilerOptions& options) {
  graph::CanonicalHasher h;
  h.Update("respect-compiler-options-v1");
  h.Update(options.net.hidden_dim);
  h.Update(static_cast<int>(options.net.masking));
  h.Update(options.net.init_seed);
  h.Update(options.net.embedding.include_topology);
  h.Update(options.net.embedding.include_ids);
  h.Update(options.net.embedding.include_memory);
  h.Update(options.weights_path);
  h.Update(options.exact_max_expansions);
  h.Update(std::bit_cast<std::uint64_t>(options.exact_time_limit_seconds));
  h.Update(options.compiler.num_stages);
  h.Update(options.compiler.refinement_rounds);
  h.Update(options.compiler.compile_passes);
  h.Update(options.quantize);
  return h.Finish();
}

}  // namespace

CompileService::CompileService(const CompilerOptions& compiler_options,
                               const ServiceOptions& options)
    : compiler_(compiler_options),
      options_fingerprint_(FingerprintOptions(compiler_options)) {
  const int num_shards = std::max(1, options.cache_shards);
  per_shard_capacity_ =
      (options.cache_capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  const int num_threads = options.num_threads < 1
                              ? core::ThreadPool::DefaultThreadCount()
                              : options.num_threads;
  pool_ = std::make_unique<core::ThreadPool>(num_threads);
  latencies_.resize(std::max<std::size_t>(1, options.latency_window), 0.0);
}

// The pool joins before the members the queued tasks reference are torn
// down; every outstanding Ticket is resolved by then.
CompileService::~CompileService() { pool_.reset(); }

CompileService::RequestKey CompileService::MakeKey(
    const graph::Dag& dag, int num_stages, std::string_view engine) const {
  const engines::EngineRegistration* registration =
      engines::EngineRegistry::Global().Find(engine);
  if (registration == nullptr) {
    throw std::invalid_argument("CompileService: unknown engine '" +
                                std::string(engine) + "'");
  }
  graph::CanonicalHasher h;
  h.Update("respect-serve-key-v1");
  h.Update(registration->name);  // canonical, so alias and name share a key
  h.Update(num_stages);
  h.Update(options_fingerprint_.hi);
  h.Update(options_fingerprint_.lo);
  if (registration->uses_rl) h.Update(compiler_.RlVersion());
  const graph::CanonicalHash dag_hash = graph::HashDag(dag);
  h.Update(dag_hash.hi);
  h.Update(dag_hash.lo);
  return RequestKey{h.Finish(), registration->uses_rl, registration->name};
}

CompileService::Shard& CompileService::ShardFor(
    const graph::CanonicalHash& hash) {
  // Shard on hi: the per-shard maps hash on lo (CanonicalHash::Hasher), so
  // sharding on lo too would leave every map with only 1/num_shards of its
  // buckets reachable.
  return *shards_[hash.hi % shards_.size()];
}

void CompileService::InsertLocked(Shard& shard, const RequestKey& key,
                                  ResultPtr result) {
  if (per_shard_capacity_ == 0) return;
  if (const auto it = shard.entries.find(key.hash);
      it != shard.entries.end()) {
    // Only a flight owner inserts its key, so a live duplicate is
    // impossible; refresh defensively rather than asserting.
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(
      CacheEntry{key.hash, std::move(result), key.rl_dependent});
  shard.entries.emplace(key.hash, shard.lru.begin());
  while (shard.entries.size() > per_shard_capacity_) {
    shard.entries.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CompileService::ResultPtr CompileService::TryCached(const RequestKey& key) {
  Shard& shard = ShardFor(key.hash);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key.hash);
  if (it == shard.entries.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void CompileService::RecordSolveLatency(double seconds) {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latencies_[latency_next_] = seconds;
  latency_next_ = (latency_next_ + 1) % latencies_.size();
  if (latency_next_ == 0) latency_full_ = true;
}

CompileService::ResultPtr CompileService::Compile(const graph::Dag& dag,
                                                  int num_stages,
                                                  std::string_view engine) {
  return CompileKeyed(dag, num_stages, MakeKey(dag, num_stages, engine));
}

CompileService::ResultPtr CompileService::CompileKeyed(const graph::Dag& dag,
                                                       int num_stages,
                                                       const RequestKey& key) {
  Shard& shard = ShardFor(key.hash);

  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.entries.find(key.hash);
        it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->result;
    }
    if (const auto it = shard.flights.find(key.hash);
        it != shard.flights.end()) {
      flight = it->second;
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      shard.flights.emplace(key.hash, flight);
      owner = true;
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!owner) return flight->future.get();  // rethrows the owner's failure

  try {
    const auto start = std::chrono::steady_clock::now();
    auto result = std::make_shared<const CompileResult>(
        compiler_.Compile(dag, num_stages, key.engine_name));
    RecordSolveLatency(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      InsertLocked(shard, key, result);
      shard.flights.erase(key.hash);
    }
    flight->promise.set_value(result);
    return result;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.flights.erase(key.hash);
    }
    failures_.fetch_add(1, std::memory_order_relaxed);
    flight->promise.set_exception(std::current_exception());
    throw;
  }
}

CompileService::ResultPtr CompileService::Compile(const graph::Dag& dag,
                                                  int num_stages,
                                                  Method method) {
  return Compile(dag, num_stages, MethodName(method));
}

CompileService::Ticket CompileService::Submit(graph::Dag dag, int num_stages,
                                              std::string engine) {
  // packaged_task owns the exception channel; the pool (which swallows
  // throwing tasks) only ever sees a non-throwing wrapper.
  auto task = std::make_shared<std::packaged_task<ResultPtr()>>(
      [this, dag = std::move(dag), num_stages, engine = std::move(engine)] {
        return Compile(dag, num_stages, engine);
      });
  Ticket ticket(task->get_future().share());
  pool_->Submit([task] { (*task)(); });
  return ticket;
}

CompileService::Ticket CompileService::Submit(graph::Dag dag, int num_stages,
                                              Method method) {
  return Submit(std::move(dag), num_stages, std::string(MethodName(method)));
}

CompileService::Ticket CompileService::SubmitKeyed(graph::Dag dag,
                                                   int num_stages,
                                                   RequestKey key) {
  // Safe to capture: the key's engine_name string_view borrows from the
  // global registry, whose entries outlive the service.
  auto task = std::make_shared<std::packaged_task<ResultPtr()>>(
      [this, dag = std::move(dag), num_stages, key] {
        return CompileKeyed(dag, num_stages, key);
      });
  Ticket ticket(task->get_future().share());
  pool_->Submit([task] { (*task)(); });
  return ticket;
}

std::vector<CompileService::ResultPtr> CompileService::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine) {
  // Warm entries answer in place — no Dag copy, no pool round-trip (an
  // all-warm batch costs one key hash + shard lookup per graph, like the
  // sync path).  Only misses fan out as ordinary async requests, so cold
  // graphs get the full single-flight treatment; results gather in input
  // order.  Waiters never deadlock the pool: a flight owner finishes
  // without needing any other queued task (a queued duplicate that runs
  // later simply hits the cache or the resolved flight).
  std::vector<ResultPtr> results(dags.size());
  std::vector<std::pair<std::size_t, Ticket>> pending;
  for (std::size_t i = 0; i < dags.size(); ++i) {
    RequestKey key = MakeKey(*dags[i], num_stages, engine);
    if (ResultPtr cached = TryCached(key)) {
      results[i] = std::move(cached);
      continue;
    }
    pending.emplace_back(i,
                         SubmitKeyed(*dags[i], num_stages, std::move(key)));
  }
  std::exception_ptr first_failure;
  for (const auto& [i, ticket] : pending) {
    try {
      results[i] = ticket.Wait();
    } catch (...) {
      if (first_failure == nullptr) first_failure = std::current_exception();
    }
  }
  if (first_failure != nullptr) std::rethrow_exception(first_failure);
  return results;
}

std::vector<CompileService::ResultPtr> CompileService::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages, Method method) {
  return CompileBatch(dags, num_stages, MethodName(method));
}

void CompileService::ReplaceRl(std::shared_ptr<rl::RlScheduler> rl) {
  // Bump the version first: every key computed from here on addresses the
  // new snapshot.  An in-flight solve keyed against the old version may
  // still insert after the sweep, but its key is unreachable (no future
  // request recomputes it), so it can only occupy capacity, never serve.
  compiler_.ReplaceRl(std::move(rl));
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->rl_dependent) {
        shard->entries.erase(it->key);
        it = shard->lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

ServiceMetrics CompileService::Metrics() const {
  ServiceMetrics metrics;
  metrics.hits = hits_.load(std::memory_order_relaxed);
  metrics.misses = misses_.load(std::memory_order_relaxed);
  metrics.evictions = evictions_.load(std::memory_order_relaxed);
  metrics.invalidations = invalidations_.load(std::memory_order_relaxed);
  metrics.single_flight_waits =
      single_flight_waits_.load(std::memory_order_relaxed);
  metrics.failures = failures_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    metrics.cache_size += shard->entries.size();
  }
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    window.assign(latencies_.begin(),
                  latency_full_ ? latencies_.end()
                                : latencies_.begin() + latency_next_);
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    const auto rank = [&](double q) {
      return window[std::min(window.size() - 1,
                             static_cast<std::size_t>(q * window.size()))];
    };
    metrics.solve_p50_seconds = rank(0.50);
    metrics.solve_p99_seconds = rank(0.99);
  }
  return metrics;
}

void CompileService::ClearCache() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace respect::serve
